"""Figure 4 — motivation: offloading baselines on OPT-30B / PC-High.

(a) per-iteration execution time of FlexGen, DejaVu-UM, and llama.cpp at
batch sizes 1..32; (b) the share of time each spends on weight transfer vs
GPU/CPU compute.  The paper's findings to reproduce: FlexGen and DejaVu-UM
spend >99% / most of their time on PCIe transfers; llama.cpp avoids
transfers but shifts ~98% of compute to the CPU, landing around 600 ms per
token.
"""

from __future__ import annotations

from repro.bench.runner import make_engine

__all__ = ["run_fig04", "BATCH_SIZES"]

BATCH_SIZES = (1, 8, 16, 32)
_ENGINES = ("flexgen", "dejavu-um", "llama.cpp")


def run_fig04(
    model_name: str = "opt-30b",
    machine_name: str = "pc-high",
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
) -> list[dict]:
    """One row per (engine, batch): iteration latency + time breakdown."""
    rows = []
    for engine_name in _ENGINES:
        engine = make_engine(engine_name, model_name, machine_name)
        for batch in batch_sizes:
            result = engine.simulate_iteration(ctx_len=64, n_tokens=1, batch=batch)
            shares = {}
            total = sum(result.time_by_tag().values())
            if total:
                shares = {t: v / total for t, v in result.time_by_tag().items()}
            rows.append(
                {
                    "engine": engine_name,
                    "batch": batch,
                    "iteration_ms": result.makespan * 1e3,
                    "transfer_share": shares.get("transfer", 0.0),
                    "cpu_share": shares.get("cpu-dense", 0.0)
                    + shares.get("cpu-neuron", 0.0)
                    + shares.get("kv", 0.0),
                    "gpu_share": shares.get("gpu-dense", 0.0)
                    + shares.get("gpu-neuron", 0.0)
                    + shares.get("lmhead", 0.0)
                    + shares.get("predictor", 0.0),
                }
            )
    return rows
