"""Tests for the memory-pool capacity accountant."""

import pytest

from repro.hardware.memory import MemoryPool, OutOfMemoryError


@pytest.fixture
def pool() -> MemoryPool:
    return MemoryPool(name="gpu", capacity=1000.0)


class TestAllocation:
    def test_allocate_and_free_accounting(self, pool):
        pool.allocate("weights", 600.0)
        assert pool.used == 600.0
        assert pool.free == 400.0

    def test_overflow_raises_with_context(self, pool):
        pool.allocate("weights", 900.0)
        with pytest.raises(OutOfMemoryError, match="gpu"):
            pool.allocate("kv", 200.0)

    def test_exact_fit_succeeds(self, pool):
        pool.allocate("all", 1000.0)
        assert pool.free == 0.0

    def test_duplicate_name_rejected(self, pool):
        pool.allocate("weights", 100.0)
        with pytest.raises(ValueError, match="already exists"):
            pool.allocate("weights", 100.0)

    def test_negative_size_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.allocate("neg", -1.0)

    def test_zero_size_allowed(self, pool):
        pool.allocate("empty", 0.0)
        assert pool.used == 0.0

    def test_try_allocate_returns_none_when_full(self, pool):
        pool.allocate("weights", 900.0)
        assert pool.try_allocate("kv", 200.0) is None
        assert pool.used == 900.0  # failed probe leaves no residue

    def test_try_allocate_succeeds_and_accounts(self, pool):
        alloc = pool.try_allocate("kv", 200.0)
        assert alloc is not None and alloc.nbytes == 200.0
        assert pool.used == 200.0

    def test_try_allocate_still_rejects_invalid_args(self, pool):
        pool.allocate("weights", 100.0)
        with pytest.raises(ValueError, match="already exists"):
            pool.try_allocate("weights", 1.0)
        with pytest.raises(ValueError):
            pool.try_allocate("neg", -1.0)

    def test_release_returns_capacity(self, pool):
        pool.allocate("a", 700.0)
        pool.release("a")
        pool.allocate("b", 900.0)  # would not fit before release
        assert pool.used == 900.0

    def test_release_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.release("ghost")

    def test_failed_allocation_leaves_state_unchanged(self, pool):
        pool.allocate("a", 800.0)
        with pytest.raises(OutOfMemoryError):
            pool.allocate("b", 300.0)
        assert pool.used == 800.0
        assert "b" not in pool.allocations()

    def test_try_allocate_release_round_trip_reuses_name(self, pool):
        # A released name is reusable — the cycle the KV admission
        # controller runs for every request id.
        for _ in range(3):
            assert pool.try_allocate("kv", 400.0) is not None
            assert pool.used == 400.0
            pool.release("kv")
            assert pool.used == 0.0

    def test_zero_byte_round_trip_and_double_release(self, pool):
        assert pool.try_allocate("empty", 0.0) is not None
        pool.release("empty")
        with pytest.raises(KeyError):
            pool.release("empty")
        assert pool.used == 0.0

    def test_exactly_full_pool_rejects_any_positive_request(self, pool):
        assert pool.try_allocate("all", 1000.0) is not None
        assert pool.free == 0.0
        assert pool.try_allocate("more", 1e-9) is None
        pool.try_allocate("also-empty", 0.0)  # zero bytes still fits
        pool.release("all")
        assert pool.try_allocate("refill", 1000.0) is not None


class TestReserve:
    def test_reserve_fraction_shrinks_usable(self):
        pool = MemoryPool(name="gpu", capacity=1000.0, reserve_fraction=0.2)
        assert pool.usable_capacity == pytest.approx(800.0)
        with pytest.raises(OutOfMemoryError):
            pool.allocate("big", 900.0)

    def test_invalid_reserve_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(name="gpu", capacity=1000.0, reserve_fraction=1.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(name="gpu", capacity=0.0)


class TestQueries:
    def test_fits(self, pool):
        pool.allocate("a", 400.0)
        assert pool.fits(600.0)
        assert not pool.fits(601.0)
        assert not pool.fits(-1.0)

    def test_allocations_snapshot_is_copy(self, pool):
        pool.allocate("a", 10.0)
        snap = pool.allocations()
        snap["b"] = 99.0
        assert "b" not in pool.allocations()

    def test_reset_clears_everything(self, pool):
        pool.allocate("a", 10.0)
        pool.reset()
        assert pool.used == 0.0
        assert pool.allocations() == {}
