"""Tests for the serve/bounds/trace CLI subcommands and example hygiene."""

import json
import pathlib
import py_compile

import pytest

from repro.cli import main

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


class TestServeCommand:
    def test_serve_reports_latency(self, capsys):
        code = main(
            [
                "serve",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--rate", "0.2",
                "--requests", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p50 latency" in out
        assert "utilization" in out

    def test_serve_with_baseline_engine(self, capsys):
        code = main(
            [
                "serve",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--engine", "llama.cpp",
                "--requests", "5",
            ]
        )
        assert code == 0
        assert "llama.cpp" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_writes_chrome_trace_and_summary(self, capsys, tmp_path):
        out = tmp_path / "run.trace.json"
        jsonl = tmp_path / "run.jsonl"
        summary = tmp_path / "run.summary.json"
        code = main(
            [
                "trace",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--rate", "0.5",
                "--requests", "6",
                "--faults", "none",
                "--out", str(out),
                "--jsonl", str(jsonl),
                "--summary", str(summary),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "traced" in stdout
        payload = json.loads(out.read_text())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "C"} <= phases
        assert jsonl.read_text().splitlines()
        merged = json.loads(summary.read_text())
        assert "telemetry" in merged and "n_requests" in merged

    def test_trace_with_fault_seed_annotates_faults(self, capsys, tmp_path):
        out = tmp_path / "chaos.trace.json"
        code = main(
            [
                "trace",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--rate", "0.5",
                "--requests", "4",
                "--fault-seed", "7",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        fault_threads = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["args"]["name"] == "faults"
        ]
        assert fault_threads


class TestBoundsCommand:
    def test_bounds_prints_four_rows(self, capsys):
        code = main(["bounds", "--model", "opt-30b", "--machine", "pc-high"])
        assert code == 0
        out = capsys.readouterr().out
        for bound in ("dense_gpu_only", "dense_hybrid", "sparse_hybrid", "oracle"):
            assert bound in out

    def test_bounds_int4(self, capsys):
        code = main(
            ["bounds", "--model", "opt-175b", "--machine", "pc-high", "--dtype", "int4"]
        )
        assert code == 0


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3, "the paper repro ships >= 3 examples"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_examples_have_main_guard_and_docstring(self, path):
        source = path.read_text()
        assert '__name__ == "__main__"' in source
        assert source.lstrip().startswith(("#!", '"""'))
