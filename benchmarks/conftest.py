"""Shared helpers for the benchmark suite.

Every bench runs its experiment exactly once through pytest-benchmark
(``pedantic(rounds=1)`` — the experiments are deterministic simulations,
not microbenchmarks) and records the resulting table under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.

Each result is persisted twice: the human-readable ``<name>.txt`` table
(what EXPERIMENTS.md quotes) and a structured ``<name>.json`` document
(title + rows) so downstream tooling can consume the numbers without
re-parsing ASCII tables.  NaN cells — legal in floats, illegal in strict
JSON — are serialized as ``null``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.bench.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def _json_safe(value):
    """Recursively replace non-finite floats with None (strict-JSON NaN)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@pytest.fixture(scope="session")
def record_rows():
    """Fixture: ``record_rows(name, rows, title)`` writes and prints a table.

    Writes ``results/<name>.txt`` (formatted table) and
    ``results/<name>.json`` (structured ``{"title", "rows"}``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, rows: list[dict], title: str = "") -> None:
        text = format_table(rows, title or name)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        document = {"title": title or name, "rows": _json_safe(rows)}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(document, indent=2) + "\n"
        )
        print(f"\n{text}")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
