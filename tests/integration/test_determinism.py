"""Whole-stack determinism: identical seeds must give identical results.

The reproduction promises (DESIGN.md §5) that every stochastic component is
driven by explicit generators, so experiments are replayable bit-for-bit.
"""

import numpy as np

from repro.core.pipeline import build_plan
from repro.engine.powerinfer import PowerInferEngine
from repro.quant.formats import FP16


class TestPlanDeterminism:
    def test_full_pipeline_replays(self, mini_model, mini_machine):
        a = build_plan(mini_model, mini_machine, FP16, policy="ilp", seed=11)
        b = build_plan(mini_model, mini_machine, FP16, policy="ilp", seed=11)
        for x, y in zip(a.mlp_probs, b.mlp_probs):
            assert np.array_equal(x, y)
        for x, y in zip(a.mlp_gpu_masks, b.mlp_gpu_masks):
            assert np.array_equal(x, y)
        assert a.predictor_bytes == b.predictor_bytes

    def test_different_seeds_differ(self, mini_model, mini_machine):
        a = build_plan(mini_model, mini_machine, FP16, policy="none", seed=1)
        b = build_plan(mini_model, mini_machine, FP16, policy="none", seed=2)
        assert not np.array_equal(a.mlp_probs[0], b.mlp_probs[0])

    def test_placement_quality_stable_across_seeds(self, mini_model, mini_machine):
        # The GPU load share is a property of the distribution, not the
        # seed: it must be stable to a few percent across redraws.
        shares = [
            build_plan(
                mini_model, mini_machine, FP16, policy="ilp", seed=s
            ).gpu_neuron_load_share()
            for s in (1, 2, 3)
        ]
        assert max(shares) - min(shares) < 0.05


class TestSimulationDeterminism:
    def test_request_simulation_replays(self, mini_plan):
        a = PowerInferEngine(mini_plan).simulate_request(16, 32)
        b = PowerInferEngine(mini_plan).simulate_request(16, 32)
        assert a.tokens_per_second == b.tokens_per_second
        assert a.breakdown == b.breakdown

    def test_sampled_simulation_replays_with_seed(self, mini_plan):
        engine = PowerInferEngine(mini_plan)
        a = engine.simulate_request(8, 16, rng=np.random.default_rng(3))
        b = engine.simulate_request(8, 16, rng=np.random.default_rng(3))
        assert a.total_time == b.total_time

    def test_numerical_generation_replays(self, tiny_model):
        from repro.engine.numerical import NumericalHybridEngine

        n = tiny_model.config.n_layers
        a = NumericalHybridEngine(tiny_model, [None] * n).generate([2, 4, 6], 6)
        b = NumericalHybridEngine(tiny_model, [None] * n).generate([2, 4, 6], 6)
        assert a == b
