"""Dynamic schedule-validator tests: clean schedules pass, seeded faults
are detected with precise task/time diagnostics.

The seeded-fault fixtures are the acceptance set from the issue: a
dependency-order race, an exclusive-device overlap, a KV double-free, and
a TaskCost component-sum mismatch — each must be reported with the
offending task id and simulated timestamp.
"""

import math

import pytest

from repro.check.schedule import (
    KVEvent,
    ScheduleValidationError,
    Violation,
    require_valid,
    validate_kv_ledger,
    validate_schedule,
    validate_server_run,
)
from repro.hardware.costmodel import CostModel, OpWork
from repro.hardware.events import (
    EventSimulator,
    ScheduleResult,
    SimTask,
    TaskResult,
)
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.spec import PC_HIGH
from repro.serving.metrics import ContinuousReport


def run_dag(tasks):
    return EventSimulator(["gpu", "cpu", "pcie"]).run(tasks)


def diamond_tasks():
    return [
        SimTask("load", "pcie", 0.002),
        SimTask("gpu-a", "gpu", 0.001, deps=("load",)),
        SimTask("cpu-a", "cpu", 0.003, deps=("load",)),
        SimTask("merge", "gpu", 0.001, deps=("gpu-a", "cpu-a")),
    ]


def result_from(task_results, makespan=None, busy=None, tags=None):
    """Assemble a (possibly tampered) ScheduleResult from TaskResults."""
    by_name = {tr.name: tr for tr in task_results}
    if busy is None:
        busy = {}
        for tr in task_results:
            busy[tr.resource] = busy.get(tr.resource, 0.0) + tr.duration
    if makespan is None:
        makespan = max((tr.end for tr in task_results), default=0.0)
    if tags is None:
        tags = {}
        for tr in task_results:
            if tr.tag:
                tags[tr.tag] = tags.get(tr.tag, 0.0) + tr.duration
    return ScheduleResult(
        tasks=by_name, makespan=makespan, busy_time=busy, tag_time=tags
    )


class TestCleanSchedules:
    def test_simulated_diamond_is_valid(self):
        result = run_dag(diamond_tasks())
        assert validate_schedule(result) == []

    def test_deps_recorded_on_task_results(self):
        result = run_dag(diamond_tasks())
        assert result.tasks["merge"].deps == ("gpu-a", "cpu-a")
        assert result.tasks["load"].deps == ()

    def test_priced_tasks_validate_cost_contract(self):
        gpu = PC_HIGH.gpu
        cost = CostModel.op_cost(OpWork(flops=1e9, bytes_read=1e6), gpu, sync=1e-5)
        task = SimTask("op", "gpu", cost.duration, cost=cost)
        result = run_dag([task])
        assert validate_schedule(result) == []

    def test_empty_schedule_is_valid(self):
        assert validate_schedule(run_dag([])) == []


class TestSeededFaults:
    """The issue's intentional-fault fixtures, each caught with diagnostics."""

    def test_dependency_race_detected(self):
        # `child` starts at t=0.5 while its dependency finishes at t=1.0.
        tampered = result_from(
            [
                TaskResult("parent", "gpu", 0.0, 1.0),
                TaskResult("child", "cpu", 0.5, 1.5, deps=("parent",)),
            ]
        )
        violations = validate_schedule(tampered)
        assert [v.check for v in violations] == ["dependency-order"]
        v = violations[0]
        assert v.task == "child"
        assert v.time == pytest.approx(0.5)
        assert "'parent'" in v.message and "1" in v.message

    def test_device_overlap_detected(self):
        tampered = result_from(
            [
                TaskResult("first", "gpu", 0.0, 1.0),
                TaskResult("second", "gpu", 0.5, 1.5),
            ]
        )
        violations = validate_schedule(tampered)
        assert [v.check for v in violations] == ["device-overlap"]
        v = violations[0]
        assert v.task == "second"
        assert v.time == pytest.approx(0.5)
        assert "'first'" in v.message and "gpu" in v.message

    def test_kv_double_free_detected(self):
        ledger = [
            KVEvent(0.0, "alloc", "req-1", 100.0),
            KVEvent(1.0, "free", "req-1", 100.0),
            KVEvent(2.0, "free", "req-1", 100.0),
        ]
        violations = validate_kv_ledger(ledger, budget=1000.0)
        assert [v.check for v in violations] == ["kv-double-free"]
        assert violations[0].task == "req-1"
        assert violations[0].time == pytest.approx(2.0)

    def test_cost_sum_mismatch_detected(self):
        class BrokenCost:
            duration = 1.0

            @staticmethod
            def components():
                return {"memory": 0.7, "compute": 0.0, "launch": 0.1}  # sums to 0.8

        tampered = result_from(
            [TaskResult("op", "gpu", 0.0, 1.0, cost=BrokenCost())]
        )
        violations = validate_schedule(tampered)
        assert [v.check for v in violations] == ["cost-sum-mismatch"]
        assert violations[0].task == "op"
        assert "0.8" in violations[0].message


class TestScheduleChecks:
    def test_negative_duration(self):
        tampered = result_from([TaskResult("op", "gpu", 1.0, 0.5)], makespan=1.0)
        checks = {v.check for v in validate_schedule(tampered)}
        assert "negative-duration" in checks

    def test_nan_time(self):
        tampered = result_from(
            [TaskResult("op", "gpu", 0.0, math.nan)], makespan=0.0, busy={"gpu": 0.0}
        )
        checks = {v.check for v in validate_schedule(tampered)}
        assert "non-finite-time" in checks

    def test_cost_duration_mismatch(self):
        gpu = PC_HIGH.gpu
        cost = CostModel.op_cost(OpWork(flops=1e9, bytes_read=1e6), gpu)
        # Scheduled for twice what the cost model priced.
        tampered = result_from(
            [TaskResult("op", "gpu", 0.0, 2.0 * cost.duration, cost=cost)]
        )
        checks = [v.check for v in validate_schedule(tampered)]
        assert checks == ["cost-duration-mismatch"]

    def test_missing_dependency(self):
        tampered = result_from(
            [TaskResult("child", "gpu", 0.0, 1.0, deps=("ghost",))]
        )
        checks = [v.check for v in validate_schedule(tampered)]
        assert checks == ["missing-dependency"]

    def test_busy_accounting_mismatch(self):
        tampered = result_from(
            [TaskResult("op", "gpu", 0.0, 1.0)], busy={"gpu": 2.0}
        )
        checks = [v.check for v in validate_schedule(tampered)]
        assert checks == ["busy-accounting"]

    def test_tag_accounting_mismatch(self):
        tampered = result_from(
            [TaskResult("op", "gpu", 0.0, 1.0, tag="mlp")], tags={"mlp": 0.25}
        )
        checks = [v.check for v in validate_schedule(tampered)]
        assert checks == ["tag-accounting"]

    def test_makespan_mismatch(self):
        tampered = result_from([TaskResult("op", "gpu", 0.0, 1.0)], makespan=9.0)
        checks = [v.check for v in validate_schedule(tampered)]
        assert checks == ["makespan-mismatch"]

    def test_explicit_tasks_override_recorded_deps(self):
        # The recorded results carry no deps; the original DAG does.
        tampered = result_from(
            [
                TaskResult("parent", "gpu", 0.0, 1.0),
                TaskResult("child", "cpu", 0.5, 1.5),
            ]
        )
        dag = [
            SimTask("parent", "gpu", 1.0),
            SimTask("child", "cpu", 1.0, deps=("parent",)),
        ]
        assert validate_schedule(tampered) == []
        assert [v.check for v in validate_schedule(tampered, dag)] == [
            "dependency-order"
        ]


class TestKvLedger:
    def test_clean_ledger(self):
        ledger = [
            KVEvent(0.0, "alloc", "req-1", 100.0),
            KVEvent(0.5, "alloc", "req-2", 200.0),
            KVEvent(1.0, "free", "req-1", 100.0),
            KVEvent(2.0, "free", "req-2", 200.0),
        ]
        assert validate_kv_ledger(ledger, budget=400.0, peak=300.0) == []

    def test_double_alloc(self):
        ledger = [
            KVEvent(0.0, "alloc", "req-1", 100.0),
            KVEvent(1.0, "alloc", "req-1", 100.0),
            KVEvent(2.0, "free", "req-1", 100.0),
        ]
        checks = [v.check for v in validate_kv_ledger(ledger, budget=400.0)]
        assert checks == ["kv-double-alloc"]

    def test_over_budget(self):
        ledger = [
            KVEvent(0.0, "alloc", "req-1", 300.0),
            KVEvent(0.5, "alloc", "req-2", 300.0),
            KVEvent(1.0, "free", "req-1", 300.0),
            KVEvent(1.0, "free", "req-2", 300.0),
        ]
        violations = validate_kv_ledger(ledger, budget=400.0)
        assert [v.check for v in violations] == ["kv-over-budget"]
        assert violations[0].task == "req-2"
        assert violations[0].time == pytest.approx(0.5)

    def test_leak(self):
        ledger = [KVEvent(0.0, "alloc", "req-1", 100.0)]
        violations = validate_kv_ledger(ledger, budget=400.0)
        assert [v.check for v in violations] == ["kv-leak"]
        assert violations[0].task == "req-1"

    def test_size_mismatch(self):
        ledger = [
            KVEvent(0.0, "alloc", "req-1", 100.0),
            KVEvent(1.0, "free", "req-1", 64.0),
        ]
        checks = [v.check for v in validate_kv_ledger(ledger, budget=400.0)]
        assert checks == ["kv-size-mismatch"]

    def test_time_order(self):
        ledger = [
            KVEvent(1.0, "alloc", "req-1", 100.0),
            KVEvent(0.5, "free", "req-1", 100.0),
        ]
        checks = [v.check for v in validate_kv_ledger(ledger, budget=400.0)]
        assert "kv-time-order" in checks

    def test_bad_bytes(self):
        checks = [
            v.check
            for v in validate_kv_ledger(
                [KVEvent(0.0, "alloc", "req-1", -5.0)], budget=400.0
            )
        ]
        assert checks == ["kv-bad-bytes"]

    def test_peak_reconciliation(self):
        ledger = [
            KVEvent(0.0, "alloc", "req-1", 100.0),
            KVEvent(1.0, "free", "req-1", 100.0),
        ]
        violations = validate_kv_ledger(ledger, budget=400.0, peak=250.0)
        assert [v.check for v in violations] == ["kv-peak-mismatch"]


class TestServerRun:
    def test_clean_report(self):
        report = ContinuousReport(
            busy_intervals=[(0.0, 1.0), (1.0, 2.0)], n_iterations=2
        )
        assert validate_server_run(report) == []

    def test_iteration_overlap(self):
        report = ContinuousReport(busy_intervals=[(0.0, 1.0), (0.9, 2.0)])
        violations = validate_server_run(report)
        assert [v.check for v in violations] == ["iteration-overlap"]
        assert violations[0].time == pytest.approx(0.9)

    def test_degenerate_interval(self):
        report = ContinuousReport(busy_intervals=[(1.0, 0.5)])
        checks = [v.check for v in validate_server_run(report)]
        assert "bad-busy-interval" in checks

    def test_stall_overlap(self):
        faults = FaultSchedule(
            [FaultEvent(FaultKind.DEVICE_STALL, start=1.0, duration=2.0)]
        )
        report = ContinuousReport(busy_intervals=[(0.0, 1.5)])
        violations = validate_server_run(report, faults=faults)
        assert [v.check for v in violations] == ["stall-overlap"]
        assert violations[0].time == pytest.approx(1.0)

    def test_busy_interval_ending_at_stall_start_ok(self):
        faults = FaultSchedule(
            [FaultEvent(FaultKind.DEVICE_STALL, start=1.0, duration=2.0)]
        )
        report = ContinuousReport(busy_intervals=[(0.0, 1.0), (3.0, 4.0)])
        assert validate_server_run(report, faults=faults) == []

    def test_ledger_requires_budget(self):
        report = ContinuousReport()
        with pytest.raises(ValueError, match="budget"):
            validate_server_run(report, ledger=[])

    def test_trace_drift_detected(self):
        from repro.telemetry.tracer import Tracer

        tracer = Tracer()
        tracer.add_task("op", "gpu", 0.0, 0.4)  # report says busy until 1.0
        tracer.metrics.counter("iterations").inc()
        report = ContinuousReport(busy_intervals=[(0.0, 1.0)], n_iterations=1)
        violations = validate_server_run(report, tracer=tracer)
        assert [v.check for v in violations] == ["trace-drift"]

    def test_iteration_count_mismatch_detected(self):
        from repro.telemetry.tracer import Tracer

        tracer = Tracer()
        tracer.add_task("op", "gpu", 0.0, 1.0)
        report = ContinuousReport(busy_intervals=[(0.0, 1.0)], n_iterations=3)
        violations = validate_server_run(report, tracer=tracer)
        assert [v.check for v in violations] == ["iteration-count-mismatch"]


class TestRequireValid:
    def test_raises_with_diagnostics(self):
        violations = [
            Violation(check="device-overlap", message="boom", task="op", time=1.25)
        ]
        with pytest.raises(ScheduleValidationError) as exc_info:
            require_valid(violations)
        err = exc_info.value
        assert err.violations == violations
        assert "device-overlap" in str(err)
        assert "task=op" in str(err)
        assert "t=1.25s" in str(err)

    def test_silent_on_clean(self):
        require_valid([])

    def test_violation_serialization(self):
        v = Violation(check="kv-leak", message="m", task="req-1", time=2.0)
        assert v.to_dict() == {
            "check": "kv-leak",
            "message": "m",
            "task": "req-1",
            "time": 2.0,
        }
        assert Violation(check="x", message="m").to_dict() == {
            "check": "x",
            "message": "m",
        }
