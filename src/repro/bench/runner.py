"""Shared experiment plumbing: cached plans and engine construction.

Offline plan building (profile synthesis + ILP) costs seconds per
(model, machine, dtype, policy) tuple; experiment drivers share one
process-wide cache so figure benches that reuse a deployment pay once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.pipeline import build_plan
from repro.engine.base import PerfEngine
from repro.engine.baselines import (
    DejaVuUmEngine,
    FlexGenEngine,
    LayerwiseSparseEngine,
    LlamaCppEngine,
    VllmEngine,
)
from repro.engine.plan import DeploymentPlan
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.spec import MACHINE_PRESETS
from repro.models.config import MODEL_PRESETS
from repro.quant.formats import DTYPE_PRESETS

__all__ = ["cached_plan", "make_engine", "ENGINE_CLASSES"]

ENGINE_CLASSES = {
    "powerinfer": PowerInferEngine,
    "llama.cpp": LlamaCppEngine,
    "flexgen": FlexGenEngine,
    "dejavu-um": DejaVuUmEngine,
    "vllm": VllmEngine,
    "+PO": LayerwiseSparseEngine,
}

# Engines that consult the placement masks need a solved policy; the rest
# run off a "none" plan (cheap — skips the ILP).
_POLICY_FOR_ENGINE = {
    "powerinfer": "ilp",
    "llama.cpp": "none",
    "flexgen": "none",
    "dejavu-um": "none",
    "vllm": "none",
    "+PO": "none",
}


@lru_cache(maxsize=128)
def cached_plan(
    model_name: str,
    machine_name: str,
    dtype_name: str = "fp16",
    policy: str = "ilp",
    seed: int = 0,
    kv_gpu_budget_bytes: float = 0.0,
) -> DeploymentPlan:
    """Build (or fetch) the deployment plan for a preset combination."""
    return build_plan(
        MODEL_PRESETS[model_name],
        MACHINE_PRESETS[machine_name],
        dtype=DTYPE_PRESETS[dtype_name],
        policy=policy,
        seed=seed,
        kv_gpu_budget_bytes=kv_gpu_budget_bytes,
    )


def make_engine(
    engine_name: str,
    model_name: str,
    machine_name: str,
    dtype_name: str = "fp16",
    policy: str | None = None,
    seed: int = 0,
    kv_gpu_budget_bytes: float = 0.0,
) -> PerfEngine:
    """Construct a named engine over a cached plan.

    ``kv_gpu_budget_bytes`` withholds GPU memory from neuron placement for
    serving-time KV cache (continuous-batching deployments).

    Raises:
        KeyError: Unknown engine/model/machine/dtype name.
        OutOfMemoryError: If the model does not fit the machine.
    """
    cls = ENGINE_CLASSES[engine_name]
    plan_policy = policy if policy is not None else _POLICY_FOR_ENGINE[engine_name]
    plan = cached_plan(
        model_name, machine_name, dtype_name, plan_policy, seed, kv_gpu_budget_bytes
    )
    return cls(plan)
