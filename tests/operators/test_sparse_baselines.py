"""Tests for the CSR and PIT baseline operators."""

import numpy as np
import pytest

from repro.operators.dense import dense_gemv
from repro.operators.sparse_baselines import (
    csr_from_row_sparse,
    csr_spmv,
    csr_work,
    pit_gemv,
    pit_work,
)


@pytest.fixture
def weight(rng):
    return rng.standard_normal((32, 16)).astype(np.float32)


@pytest.fixture
def x(rng):
    return rng.standard_normal(16).astype(np.float32)


class TestCsrConversion:
    def test_nnz_counts_active_rows_fully(self, weight):
        active = np.array([0, 5, 9])
        csr = csr_from_row_sparse(weight, active)
        assert csr.nnz == 3 * 16
        assert csr.shape == (32, 16)

    def test_indptr_structure(self, weight):
        csr = csr_from_row_sparse(weight, np.array([1]))
        assert csr.indptr[0] == 0
        assert csr.indptr[1] == 0  # row 0 empty
        assert csr.indptr[2] == 16  # row 1 full
        assert csr.indptr[-1] == 16

    def test_empty_active_set(self, weight):
        csr = csr_from_row_sparse(weight, np.array([], dtype=int))
        assert csr.nnz == 0


class TestCsrSpmv:
    def test_matches_masked_dense(self, weight, x, rng):
        active = np.sort(rng.choice(32, size=10, replace=False))
        csr = csr_from_row_sparse(weight, active)
        out = csr_spmv(csr, x)
        dense = dense_gemv(weight, x)
        assert np.allclose(out[active], dense[active], atol=1e-5)
        inactive = np.setdiff1d(np.arange(32), active)
        assert (out[inactive] == 0).all()

    def test_all_rows_empty(self, weight, x):
        csr = csr_from_row_sparse(weight, np.array([], dtype=int))
        assert (csr_spmv(csr, x) == 0).all()

    def test_wrong_x_shape_rejected(self, weight):
        csr = csr_from_row_sparse(weight, np.array([0]))
        with pytest.raises(ValueError):
            csr_spmv(csr, np.zeros(7))


class TestPit:
    def test_matches_gather(self, weight, x, rng):
        active = np.sort(rng.choice(32, size=8, replace=False))
        out = pit_gemv(weight, x, active)
        dense = dense_gemv(weight, x)
        assert np.allclose(out, dense[active], atol=1e-5)


class TestCostStructure:
    def test_dynamic_conversion_dominates(self):
        # With conversion charged per call, CSR reads at least the whole
        # dense matrix — it can never beat a dense kernel on bytes.
        dynamic = csr_work(4096, 4096, n_active=100, include_conversion=True)
        assert dynamic.bytes_read >= 4096 * 4096 * 2.0

    def test_static_csr_carries_index_overhead(self):
        static = csr_work(4096, 4096, n_active=2048, include_conversion=False)
        from repro.operators.neuron_aware import neuron_gemv_work

        na = neuron_gemv_work(2048, 4096)
        assert static.bytes_read > na.bytes_read  # indices + gather penalty

    def test_pit_close_to_neuron_aware(self):
        from repro.operators.neuron_aware import neuron_gemv_work

        pit = pit_work(512, 4096)
        na = neuron_gemv_work(512, 4096)
        assert pit.bytes_total == pytest.approx(na.bytes_total, rel=0.05)

    def test_csr_crossover_near_87_percent(self):
        # Figure 16: pre-converted CSR beats dense only past ~87% sparsity
        # on CPU (bandwidth-bound regime -> compare bytes).
        from repro.operators.dense import dense_gemv_work

        n = 4096
        dense_bytes = dense_gemv_work(n, n).bytes_total

        def csr_bytes(sparsity):
            active = int((1 - sparsity) * n)
            return csr_work(n, n, active, include_conversion=False).bytes_total

        assert csr_bytes(0.80) > dense_bytes
        assert csr_bytes(0.95) < dense_bytes
