#!/usr/bin/env python
"""Serving under load: how many requests/minute can one PC sustain?

Plays Poisson request streams (ChatGPT-prompts lengths, the paper's 8/128/512
output mix) through a PowerInfer deployment of OPT-13B INT4 on PC-Low, and
through llama.cpp on the same hardware, sweeping the arrival rate.  Reports
user-visible latency percentiles and server utilization — the numbers that
decide whether a local deployment feels interactive.

Usage::

    python examples/serving_load.py
"""

import numpy as np

from repro import PC_LOW
from repro.bench.runner import make_engine
from repro.serving import poisson_arrivals, simulate_serving
from repro.workloads import CHATGPT_PROMPTS

MODEL = "opt-30b"
N_REQUESTS = 40


def report_for(engine, rate: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=rate,
        n_requests=N_REQUESTS,
        rng=rng,
        output_lengths=(8, 128, 512),
        output_weights=(0.2, 0.6, 0.2),
    )
    return simulate_serving(engine, requests)


def main() -> None:
    print(f"Serving {MODEL} (INT4) on {PC_LOW.name}; "
          f"{N_REQUESTS} requests per trial\n")
    engines = {
        "powerinfer": make_engine("powerinfer", MODEL, PC_LOW.name, "int4"),
        "llama.cpp": make_engine("llama.cpp", MODEL, PC_LOW.name, "int4"),
    }
    print(f"{'engine':>10} | {'rate/min':>8} | {'util':>5} | "
          f"{'p50 lat':>8} | {'p95 lat':>8} | {'tok/s':>6}")
    print("-" * 62)
    for name, engine in engines.items():
        for per_minute in (1, 2, 6, 15):
            report = report_for(engine, rate=per_minute / 60.0)
            print(f"{name:>10} | {per_minute:>8} | "
                  f"{report.utilization:>4.0%} | "
                  f"{report.latency_percentile(50):>6.1f} s | "
                  f"{report.latency_percentile(95):>6.1f} s | "
                  f"{report.tokens_per_second:>6.1f}")
        print("-" * 62)
    print("\nReading: at equal arrival rates llama.cpp saturates far earlier;")
    print("once utilization nears 1 its queueing delay dominates the user-")
    print("visible latency, while PowerInfer still serves interactively.")


if __name__ == "__main__":
    main()
