"""Tests for the roofline analysis module."""

import pytest

from repro.analysis.roofline import throughput_bounds
from repro.hardware.spec import A100_SERVER, PC_HIGH, PC_LOW
from repro.models.config import OPT_30B, OPT_66B
from repro.quant.formats import FP16, INT4


class TestBoundsStructure:
    def test_ordering_of_bounds(self):
        b = throughput_bounds(OPT_30B, PC_HIGH)
        # Dense hybrid is the worst; oracle sparse is the ceiling.
        assert b.dense_hybrid < b.dense_gpu_only
        assert b.sparse_hybrid <= b.oracle_gpu_sparse
        assert b.sparse_hybrid > b.dense_hybrid

    def test_matches_des_llamacpp(self):
        # The dense-hybrid bound should land near the simulated llama.cpp
        # decode rate (1/678 ms ~ 1.5 tokens/s for OPT-30B on PC-High).
        b = throughput_bounds(OPT_30B, PC_HIGH)
        assert b.dense_hybrid == pytest.approx(1.5, rel=0.3)

    def test_matches_des_powerinfer(self):
        # Sparse-hybrid should land near the simulated ~20 tokens/s.
        b = throughput_bounds(OPT_30B, PC_HIGH, hot_capture=0.88)
        assert 10 < b.sparse_hybrid < 40

    def test_bigger_model_is_slower(self):
        small = throughput_bounds(OPT_30B, PC_HIGH)
        big = throughput_bounds(OPT_66B, PC_HIGH)
        for field in ("dense_gpu_only", "dense_hybrid", "sparse_hybrid"):
            assert getattr(big, field) < getattr(small, field)

    def test_better_machine_is_faster(self):
        low = throughput_bounds(OPT_30B, PC_LOW)
        high = throughput_bounds(OPT_30B, PC_HIGH)
        assert high.sparse_hybrid > low.sparse_hybrid
        a100 = throughput_bounds(OPT_30B, A100_SERVER, gpu_weight_fraction=1.0)
        assert a100.dense_gpu_only > high.dense_gpu_only

    def test_int4_faster_than_fp16(self):
        fp16 = throughput_bounds(OPT_30B, PC_HIGH, dtype=FP16)
        int4 = throughput_bounds(OPT_30B, PC_HIGH, dtype=INT4)
        assert int4.sparse_hybrid > fp16.sparse_hybrid


class TestKnobs:
    def test_hot_capture_limited_by_gpu_fraction(self):
        # A GPU too small to hold the active set caps the capture.
        b = throughput_bounds(
            OPT_30B, PC_HIGH, hot_capture=1.0, gpu_weight_fraction=0.01
        )
        assert b.sparse_hybrid < throughput_bounds(
            OPT_30B, PC_HIGH, hot_capture=1.0, gpu_weight_fraction=0.5
        ).sparse_hybrid

    def test_denser_activation_is_slower(self):
        sparse = throughput_bounds(OPT_30B, PC_HIGH, mlp_active_rate=0.05)
        dense = throughput_bounds(OPT_30B, PC_HIGH, mlp_active_rate=0.5)
        assert dense.sparse_hybrid < sparse.sparse_hybrid
        assert dense.active_fraction > sparse.active_fraction

    def test_as_rows(self):
        rows = throughput_bounds(OPT_30B, PC_HIGH).as_rows()
        assert len(rows) == 4
        assert {r["bound"] for r in rows} == {
            "dense_gpu_only",
            "dense_hybrid",
            "sparse_hybrid",
            "oracle_gpu_sparse",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_bounds(OPT_30B, PC_HIGH, mlp_active_rate=0.0)
        with pytest.raises(ValueError):
            throughput_bounds(OPT_30B, PC_HIGH, hot_capture=1.5)
        with pytest.raises(ValueError):
            throughput_bounds(OPT_30B, PC_HIGH, gpu_weight_fraction=2.0)
