"""Tests for the numpy MLP predictor."""

import numpy as np
import pytest

from repro.predictor.mlp import MlpPredictor
from repro.predictor.training import synthesize_training_data


@pytest.fixture
def data(rng):
    return synthesize_training_data(
        d_in=32, n_neurons=64, n_samples=600, rng=rng, target_sparsity=0.85
    )


class TestArchitecture:
    def test_param_count(self, rng):
        pred = MlpPredictor(d_in=10, hidden=5, n_neurons=20, rng=rng)
        assert pred.param_count == 10 * 5 + 5 + 5 * 20 + 20

    def test_nbytes_fp16(self, rng):
        pred = MlpPredictor(d_in=10, hidden=5, n_neurons=20, rng=rng)
        assert pred.nbytes() == pred.param_count * 2.0

    def test_invalid_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            MlpPredictor(d_in=0, hidden=5, n_neurons=20, rng=rng)

    def test_invalid_threshold_rejected(self, rng):
        with pytest.raises(ValueError):
            MlpPredictor(d_in=4, hidden=4, n_neurons=4, rng=rng, threshold=1.0)


class TestForward:
    def test_outputs_are_probabilities(self, rng):
        pred = MlpPredictor(8, 4, 16, rng=rng)
        probs = pred.forward(rng.standard_normal((5, 8)).astype(np.float32))
        assert probs.shape == (5, 16)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_predict_thresholds(self, rng):
        pred = MlpPredictor(8, 4, 16, rng=rng, threshold=0.5)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        assert np.array_equal(pred.predict(x), pred.forward(x) >= 0.5)

    def test_single_vector_input(self, rng):
        pred = MlpPredictor(8, 4, 16, rng=rng)
        assert pred.forward(np.zeros(8, dtype=np.float32)).shape == (16,)


class TestTraining:
    def test_loss_decreases(self, data, rng):
        x, y = data
        pred = MlpPredictor(32, 24, 64, rng=rng)
        losses = pred.fit(x, y, rng=rng, epochs=10, lr=0.5)
        assert losses[-1] < losses[0]

    def test_learns_above_trivial_baseline(self, data, rng):
        x, y = data
        # Trivial baseline: predict all-inactive -> accuracy == sparsity.
        trivial = 1.0 - y.mean()
        pred = MlpPredictor(32, 32, 64, rng=rng)
        pred.fit(x[:500], y[:500], rng=rng, epochs=40, lr=1.0)
        metrics = pred.evaluate(x[500:], y[500:])
        assert metrics.accuracy > trivial + 0.02
        assert metrics.recall > 0.3

    def test_mismatched_shapes_rejected(self, rng):
        pred = MlpPredictor(8, 4, 16, rng=rng)
        with pytest.raises(ValueError):
            pred.fit(np.zeros((5, 8)), np.zeros((4, 16)), rng=rng)

    def test_train_batch_returns_finite_loss(self, rng):
        pred = MlpPredictor(8, 4, 16, rng=rng)
        loss = pred.train_batch(
            rng.standard_normal((4, 8)).astype(np.float32),
            rng.random((4, 16)) < 0.2,
            lr=0.1,
        )
        assert np.isfinite(loss) and loss > 0


class TestEvaluation:
    def test_perfect_prediction_metrics(self, rng):
        pred = MlpPredictor(4, 4, 8, rng=rng)
        x = rng.standard_normal((10, 4)).astype(np.float32)
        truth = pred.predict(x)
        metrics = pred.evaluate(x, truth)
        assert metrics.accuracy == 1.0
        assert metrics.recall == 1.0
        assert metrics.precision == 1.0

    def test_all_inactive_edge_case(self, rng):
        pred = MlpPredictor(4, 4, 8, rng=rng)
        # Force predictions to all-off by a huge negative output bias.
        pred.b2[:] = -100.0
        x = rng.standard_normal((5, 4)).astype(np.float32)
        metrics = pred.evaluate(x, np.zeros((5, 8), dtype=bool))
        assert metrics.accuracy == 1.0
        assert metrics.recall == 1.0  # vacuous: no actives to find
        assert metrics.precision == 1.0  # vacuous: nothing predicted
