"""Serving-loop simulation: request arrivals, FCFS queueing, latency stats."""

from repro.serving.arrival import Request, poisson_arrivals
from repro.serving.batched import simulate_batched_serving
from repro.serving.simulator import CompletedRequest, ServingReport, simulate_serving

__all__ = [
    "CompletedRequest",
    "Request",
    "ServingReport",
    "poisson_arrivals",
    "simulate_batched_serving",
    "simulate_serving",
]
