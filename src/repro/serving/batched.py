"""Dynamic request batching on top of the serving loop.

Section 8.2 ("Batching Inference") shows PowerInfer keeps a >4x advantage
up to batch 32 even though joint activations densify.  This module turns
that observation into a serving policy: when the server frees up, it takes
up to ``max_batch`` queued requests and serves them as one padded batch
(service cost follows the engine's union-activation batch model, sized by
the batch's longest prompt and output).

Batching trades per-request latency for throughput; the simulation exposes
exactly that trade against the FCFS baseline in
:mod:`repro.serving.simulator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.base import PerfEngine
from repro.serving.arrival import Request
from repro.serving.simulator import CompletedRequest, ServingReport

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.tracer import Tracer

__all__ = ["simulate_batched_serving"]


def simulate_batched_serving(
    engine: PerfEngine,
    requests: list[Request],
    max_batch: int = 8,
    cache_service_times: bool = True,
    tracer: "Tracer | None" = None,
) -> ServingReport:
    """Serve ``requests`` with greedy dynamic batching.

    When the server becomes free it dequeues every waiting request (up to
    ``max_batch``, FCFS) and serves them together; if none are waiting it
    idles until the next arrival.  All members of a batch complete when the
    batch completes (the padded-batch semantics of static batching).

    A ``tracer`` records each batch's sampled engine timeline at its
    service start plus one ``batch`` region per service window; because
    cached service times would skip the engine entirely, traced runs
    re-simulate cache hits to keep the span record complete — the report
    itself stays bit-identical.

    Returns:
        A :class:`~repro.serving.simulator.ServingReport`.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    tracing = tracer is not None and tracer.enabled
    pending = sorted(requests, key=lambda r: r.arrival_time)
    report = ServingReport()
    service_cache: dict[tuple[int, int, int], float] = {}
    now = 0.0
    i = 0
    n = len(pending)
    while i < n:
        # Idle until the next arrival if nothing is queued.
        now = max(now, pending[i].arrival_time)
        batch = [pending[i]]
        i += 1
        while i < n and len(batch) < max_batch and pending[i].arrival_time <= now:
            batch.append(pending[i])
            i += 1
        # Padded batch dimensions.
        input_len = max(r.input_len for r in batch)
        output_len = max(r.output_len for r in batch)
        shape = (input_len, output_len, len(batch))
        if not cache_service_times or shape not in service_cache:
            result = engine.simulate_request(
                input_len, output_len, batch=len(batch), tracer=tracer, trace_t0=now
            )
            service_cache[shape] = result.total_time
        elif tracing:
            # Cache hit, but the spans still need recording for this window.
            engine.simulate_request(
                input_len, output_len, batch=len(batch), tracer=tracer, trace_t0=now
            )
        finish = now + service_cache[shape]
        if tracing:
            tracer.add_region("server", "batch", now, finish, args={"n": len(batch)})
        for request in batch:
            report.completed.append(
                CompletedRequest(
                    request=request, start_time=now, finish_time=finish
                )
            )
        now = finish
    return report
