"""Analytic sizing, attribution, and sensitivity layers over the engines."""

from repro.analysis.attribution import (
    CriticalPath,
    CriticalSegment,
    IterationAnalysis,
    TimeDecomposition,
    analyze_iteration,
    critical_path,
    decompose,
    decompose_spans,
)
from repro.analysis.roofline import ThroughputBounds, throughput_bounds
from repro.analysis.whatif import (
    STANDARD_KNOBS,
    PowerWhatIfResult,
    WhatIfResult,
    cross_validate,
    reprice_schedule,
    reprice_tasks,
    whatif_power_sensitivity,
    whatif_sensitivity,
)

__all__ = [
    "ThroughputBounds",
    "throughput_bounds",
    "TimeDecomposition",
    "CriticalPath",
    "CriticalSegment",
    "IterationAnalysis",
    "decompose",
    "decompose_spans",
    "critical_path",
    "analyze_iteration",
    "STANDARD_KNOBS",
    "PowerWhatIfResult",
    "WhatIfResult",
    "whatif_sensitivity",
    "whatif_power_sensitivity",
    "cross_validate",
    "reprice_schedule",
    "reprice_tasks",
]
