"""The PowerInfer online engine over the performance simulator.

Builds, for each inference iteration, the operator DAG of paper Sections
5.2-5.3: per layer, an attention block and an MLP block, each preceded by a
GPU-resident activation predictor; activated neurons split between GPU and
CPU executors per the placement policy; CPU partial results are shipped
across PCIe and merged on the GPU (merging lives on the GPU because GPU
neurons activate more often).  Selective synchronization: when the CPU side
has no activated neurons, the transfer + sync steps are elided and the GPU
proceeds directly.

The same class implements the "+Engine" ablation (pass a plan whose masks
came from the greedy policy) and, with ``hybrid=False``-style subclasses in
:mod:`repro.engine.baselines`, the "+PO" layer-wise variant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.engine.base import PerfEngine, op_task, transfer_task
from repro.hardware.costmodel import OpWork

if TYPE_CHECKING:  # pragma: no cover - type-only import; tasks are built
    # exclusively through the op_task/transfer_task pricing constructors.
    from repro.hardware.events import SimTask

__all__ = ["PowerInferEngine"]


class PowerInferEngine(PerfEngine):
    """Neuron-granularity GPU-CPU hybrid execution.

    Args:
        plan: Offline-phase output (placement, predictors, profiles).
        selective_sync: Elide the CPU->GPU transfer and synchronization
            when the CPU side has no activated neurons (Section 5.3's
            selective synchronization).  Disabled only for ablations.
    """

    name = "powerinfer"

    def __init__(self, plan, selective_sync: bool = True) -> None:
        super().__init__(plan)
        self.selective_sync = selective_sync

    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        model, machine, dtype = self.model, self.machine, self.dtype
        gpu, cpu, link = machine.gpu, machine.cpu, machine.link
        rows = n_tokens * batch  # token rows flowing through the layer
        act = self._activation_bytes(rows)
        mlp_nb = model.mlp_neuron_bytes(dtype)
        attn_nb = model.attn_neuron_bytes(dtype)
        mlp_np_ = model.mlp_neuron_params
        attn_np_ = model.attn_neuron_params

        tasks: list[SimTask] = []
        prev_out = ""  # name of the task producing the previous layer output

        for li in range(model.n_layers):
            # Weight BYTES are governed by the union of activations across
            # all token rows (weights read once per iteration); FLOPs scale
            # with per-row activations times the row count.
            if rng is None:
                ag, ac = self.plan.attn_active_split(li, rows)
                mg, mc = self.plan.mlp_active_split(li, rows)
            else:
                ag, ac = self.plan.sampled_attn_split(li, rng, rows)
                mg, mc = self.plan.sampled_mlp_split(li, rng, rows)
            ag1, ac1 = self.plan.attn_active_split(li, 1)
            mg1, mc1 = self.plan.mlp_active_split(li, 1)
            deps_in = (prev_out,) if prev_out else ()

            # -- activation predictors (GPU-resident, Section 5.1) --------
            pred_bytes = self.plan.predictor_bytes[li]
            pred_work = OpWork(
                flops=pred_bytes * rows,  # ~2 flops per fp16 parameter-row
                bytes_read=pred_bytes + act,
                bytes_written=(model.d_ffn + model.n_heads) * batch * 1.0,
            )
            pred_attn = f"L{li}.pred_attn"
            tasks.append(
                op_task(pred_attn, "gpu", gpu, pred_work.scaled(0.5),
                        deps=deps_in, tag="predictor")
            )

            # -- attention block ------------------------------------------
            attn_gpu = f"L{li}.attn_gpu"
            tasks.append(
                op_task(
                    attn_gpu,
                    "gpu",
                    gpu,
                    OpWork(
                        flops=2.0 * ag1 * attn_np_ * rows,
                        bytes_read=ag * attn_nb + act,
                        bytes_written=act,
                    ),
                    deps=(pred_attn,),
                    tag="gpu-neuron",
                )
            )
            attn_deps = [attn_gpu]
            if ac > 0:
                attn_cpu = f"L{li}.attn_cpu"
                tasks.append(
                    op_task(
                        attn_cpu,
                        "cpu",
                        cpu,
                        OpWork(
                            flops=2.0 * ac1 * attn_np_ * rows,
                            bytes_read=ac * attn_nb + act,
                            bytes_written=act,
                        ),
                        deps=(pred_attn,),
                        tag="cpu-neuron",
                    )
                )
                attn_deps.append(attn_cpu)
            # QKV of GPU-computed heads ship to the CPU, where the KV cache
            # lives (Section 7) and attention-over-context runs.
            qkv_xfer = f"L{li}.qkv_xfer"
            tasks.append(transfer_task(qkv_xfer, link, act, deps=(attn_gpu,)))
            active_head_frac = min((ag + ac) / model.n_heads, 1.0)
            attn_ctx = f"L{li}.attn_ctx"
            tasks.append(
                op_task(
                    attn_ctx,
                    "cpu",
                    cpu,
                    OpWork(
                        flops=self._kv_flops(ctx_len, n_tokens, batch)
                        * active_head_frac,
                        bytes_read=self._kv_read_bytes(ctx_len, n_tokens, batch)
                        * active_head_frac,
                        bytes_written=act,
                    ),
                    deps=tuple(attn_deps[1:]) + (qkv_xfer,),
                    tag="kv",
                )
            )
            ctx_xfer = f"L{li}.ctx_xfer"
            tasks.append(transfer_task(ctx_xfer, link, act, deps=(attn_ctx,)))
            attn_merge = f"L{li}.attn_merge"
            merge_work = OpWork(bytes_read=2 * act, bytes_written=act)
            tasks.append(
                op_task(
                    attn_merge,
                    "gpu",
                    gpu,
                    merge_work,
                    deps=(attn_gpu, ctx_xfer),
                    tag="merge",
                    sync=machine.sync_overhead,
                )
            )

            # -- MLP block ---------------------------------------------------
            pred_mlp = f"L{li}.pred_mlp"
            tasks.append(
                op_task(pred_mlp, "gpu", gpu, pred_work.scaled(0.5),
                        deps=(attn_merge,), tag="predictor")
            )
            mlp_gpu = f"L{li}.mlp_gpu"
            tasks.append(
                op_task(
                    mlp_gpu,
                    "gpu",
                    gpu,
                    OpWork(
                        flops=2.0 * mg1 * mlp_np_ * rows,
                        bytes_read=mg * mlp_nb + act,
                        bytes_written=act,
                    ),
                    deps=(pred_mlp,),
                    tag="gpu-neuron",
                )
            )
            merge_deps = [mlp_gpu]
            sync_cost = 0.0 if self.selective_sync else machine.sync_overhead
            if mc > 0 or not self.selective_sync:
                mlp_cpu = f"L{li}.mlp_cpu"
                tasks.append(
                    op_task(
                        mlp_cpu,
                        "cpu",
                        cpu,
                        OpWork(
                            flops=2.0 * mc1 * mlp_np_ * rows,
                            bytes_read=mc * mlp_nb + act,
                            bytes_written=act,
                        ),
                        deps=(pred_mlp, attn_merge),
                        tag="cpu-neuron",
                    )
                )
                mlp_xfer = f"L{li}.mlp_xfer"
                tasks.append(transfer_task(mlp_xfer, link, act, deps=(mlp_cpu,)))
                merge_deps.append(mlp_xfer)
                sync_cost = machine.sync_overhead  # selective sync: only
                # paid when the CPU actually produced partial results.
            mlp_merge = f"L{li}.mlp_merge"
            tasks.append(
                op_task(
                    mlp_merge,
                    "gpu",
                    gpu,
                    merge_work,
                    deps=tuple(merge_deps),
                    tag="merge",
                    sync=sync_cost,
                )
            )
            prev_out = mlp_merge

        # -- LM head (embeddings are GPU-resident) -------------------------
        lm_work = OpWork(
            flops=2.0 * model.embedding_params * batch,
            bytes_read=dtype.nbytes(model.embedding_params) + self._activation_bytes(batch),
            bytes_written=batch * model.vocab_size * 4.0,
        )
        tasks.append(
            op_task(
                "lm_head",
                "gpu",
                gpu,
                lm_work,
                deps=(prev_out,) if prev_out else (),
                tag="lmhead",
            )
        )
        return tasks
