"""Serving workloads and synthetic accuracy tasks."""

from repro.workloads.prompts import (
    ALPACA,
    CHATGPT_PROMPTS,
    PAPER_OUTPUT_LENGTHS,
    PromptWorkload,
    sample_requests,
)
from repro.workloads.sessions import SessionTurn, sample_session, simulate_session
from repro.workloads.tasks import (
    TASK_FAMILIES,
    TaskInstance,
    TaskSpec,
    evaluate_agreement,
    make_task,
    score_choices,
)

__all__ = [
    "ALPACA",
    "CHATGPT_PROMPTS",
    "PAPER_OUTPUT_LENGTHS",
    "PromptWorkload",
    "SessionTurn",
    "TASK_FAMILIES",
    "TaskInstance",
    "TaskSpec",
    "evaluate_agreement",
    "make_task",
    "sample_requests",
    "sample_session",
    "simulate_session",
    "score_choices",
]
