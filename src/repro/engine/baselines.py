"""Baseline serving engines reimplemented as scheduling policies.

Each comparator in the paper's evaluation is, for simulation purposes, a
policy for where weights live and when they move (paper Section 2.2,
Figure 3):

* :class:`LlamaCppEngine` — hybrid offloading at Transformer-layer
  granularity: the CPU computes its (dense) layers first, ships the hidden
  state over PCIe once, and the GPU finishes.  The paper's primary baseline.
* :class:`FlexGenEngine` — GPU-centric offloading: as many layers as fit
  stay GPU-resident; the rest are streamed from CPU memory every iteration
  (computation overlaps the stream, but at batch 1 the PCIe link dominates:
  Figure 4's >99.5% transfer share).
* :class:`DejaVuUmEngine` — sparsity-aware GPU inference with weights
  fetched through CUDA Unified Memory when the model exceeds GPU memory
  (footnote 2).  Only predicted-active neurons are touched, but each touch
  faults pages across PCIe at UM efficiency.
* :class:`VllmEngine` — the A100 reference: the whole model is GPU-resident
  and dense (PagedAttention keeps the KV cache on the GPU too).
* :class:`LayerwiseSparseEngine` — the "+PO" ablation step (Figure 15):
  llama.cpp's layer split plus PowerInfer's predictors and neuron-aware
  operators, but each layer still computed entirely by one device.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import PerfEngine, op_task, transfer_task
from repro.engine.plan import DeploymentPlan
from repro.hardware.costmodel import OpWork
from repro.hardware.events import SimTask
from repro.hardware.memory import OutOfMemoryError

__all__ = [
    "LlamaCppEngine",
    "FlexGenEngine",
    "DejaVuUmEngine",
    "VllmEngine",
    "LayerwiseSparseEngine",
]


class _LayerSplitMixin:
    """Shared logic for engines that place whole layers on one device."""

    plan: DeploymentPlan

    def gpu_layer_count(self) -> int:
        """Layers that fit on the GPU next to embeddings and KV cache."""
        plan = self.plan
        budget = plan.machine.gpu.memory_capacity * (1.0 - plan.gpu_memory_reserve)
        budget -= plan.embedding_bytes
        layer_bytes = plan.model.layer_bytes(plan.dtype)
        kv_per_layer = (
            2.0 * plan.model.kv_dim * plan.dtype.bytes_per_param * plan.expected_context
        )
        if budget <= 0:
            return 0
        n = int(budget // (layer_bytes + kv_per_layer))
        return max(0, min(n, plan.model.n_layers))


class LlamaCppEngine(_LayerSplitMixin, PerfEngine):
    """Dense layer-level hybrid offloading (paper Figure 3b)."""

    name = "llama.cpp"

    def _layer_work(self, device_kind: str, ctx: int, n_tok: int, batch: int) -> OpWork:
        model, dtype = self.model, self.dtype
        rows = n_tok * batch
        act = self._activation_bytes(rows)
        return OpWork(
            flops=2.0 * model.params_per_layer * rows
            + self._kv_flops(ctx, n_tok, batch),
            bytes_read=dtype.nbytes(model.params_per_layer)
            + self._kv_read_bytes(ctx, n_tok, batch)
            + act,
            bytes_written=act,
        )

    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        machine = self.machine
        n_gpu = self.gpu_layer_count()
        n_cpu = self.model.n_layers - n_gpu
        rows = n_tokens * batch
        tasks: list[SimTask] = []
        prev = ""
        # CPU processes its layers first (Figure 3b) ...
        for li in range(n_cpu):
            name = f"L{li}.cpu"
            tasks.append(
                op_task(
                    name,
                    "cpu",
                    machine.cpu,
                    self._layer_work("cpu", ctx_len, n_tokens, batch),
                    deps=(prev,) if prev else (),
                    tag="cpu-dense",
                )
            )
            prev = name
        # ... then one hidden-state hop to the GPU ...
        if n_cpu and n_gpu:
            tasks.append(
                transfer_task(
                    "hidden_xfer", machine.link, self._activation_bytes(rows), deps=(prev,)
                )
            )
            prev = "hidden_xfer"
        # ... and the GPU finishes.
        for li in range(n_cpu, self.model.n_layers):
            name = f"L{li}.gpu"
            tasks.append(
                op_task(
                    name,
                    "gpu",
                    machine.gpu,
                    self._layer_work("gpu", ctx_len, n_tokens, batch),
                    deps=(prev,) if prev else (),
                    tag="gpu-dense",
                )
            )
            prev = name
        tasks.append(self._lm_head_task(prev, batch))
        return tasks

    def _lm_head_task(self, dep: str, batch: int) -> SimTask:
        work = OpWork(
            flops=2.0 * self.model.embedding_params * batch,
            bytes_read=self.dtype.nbytes(self.model.embedding_params)
            + self._activation_bytes(batch),
            bytes_written=batch * self.model.vocab_size * 4.0,
        )
        return op_task(
            "lm_head",
            "gpu",
            self.machine.gpu,
            work,
            deps=(dep,) if dep else (),
            tag="lmhead",
        )

    def gpu_load_share(self, batch: int = 1) -> float:
        """Dense engines: GPU share == share of layer weights on the GPU."""
        return self.gpu_layer_count() / self.model.n_layers


class FlexGenEngine(_LayerSplitMixin, PerfEngine):
    """GPU-centric offloading: stream non-resident layers every iteration."""

    name = "flexgen"

    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        machine, model, dtype = self.machine, self.model, self.dtype
        n_resident = self.gpu_layer_count()
        rows = n_tokens * batch
        act = self._activation_bytes(rows)
        layer_bytes = dtype.nbytes(model.params_per_layer)
        tasks: list[SimTask] = []
        prev = ""
        prev_xfer = ""
        for li in range(model.n_layers):
            deps = [prev] if prev else []
            if li >= n_resident:
                xfer = f"L{li}.stream"
                tasks.append(
                    transfer_task(
                        xfer,
                        machine.link,
                        layer_bytes,
                        deps=(prev_xfer,) if prev_xfer else (),
                    )
                )
                prev_xfer = xfer
                deps.append(xfer)
            name = f"L{li}.gpu"
            work = OpWork(
                flops=2.0 * model.params_per_layer * rows
                + self._kv_flops(ctx_len, n_tokens, batch),
                bytes_read=layer_bytes + self._kv_read_bytes(ctx_len, n_tokens, batch) + act,
                bytes_written=act,
            )
            tasks.append(
                op_task(
                    name,
                    "gpu",
                    machine.gpu,
                    work,
                    deps=tuple(deps),
                    tag="gpu-dense",
                )
            )
            prev = name
        tasks.append(LlamaCppEngine._lm_head_task(self, prev, batch))
        return tasks

    def gpu_load_share(self, batch: int = 1) -> float:
        return 1.0  # all computation on the GPU; weights stream to it


class DejaVuUmEngine(_LayerSplitMixin, PerfEngine):
    """Sparse GPU inference with Unified-Memory weight fetching."""

    name = "dejavu-um"

    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        machine, model, dtype = self.machine, self.model, self.dtype
        n_resident = self.gpu_layer_count()
        rows = n_tokens * batch
        act = self._activation_bytes(rows)
        mlp_nb = model.mlp_neuron_bytes(dtype)
        attn_nb = model.attn_neuron_bytes(dtype)
        tasks: list[SimTask] = []
        prev = ""
        prev_fetch = ""
        for li in range(model.n_layers):
            if rng is None:
                ag, ac = self.plan.attn_active_split(li, rows)
                mg, mc = self.plan.mlp_active_split(li, rows)
            else:
                ag, ac = self.plan.sampled_attn_split(li, rng, rows)
                mg, mc = self.plan.sampled_mlp_split(li, rng, rows)
            active_bytes = (ag + ac) * attn_nb + (mg + mc) * mlp_nb
            pred_bytes = self.plan.predictor_bytes[li]

            pred = f"L{li}.pred"
            tasks.append(
                op_task(
                    pred,
                    "gpu",
                    machine.gpu,
                    OpWork(flops=pred_bytes * rows, bytes_read=pred_bytes + act),
                    deps=(prev,) if prev else (),
                    tag="predictor",
                )
            )
            deps = [pred]
            if li >= n_resident:
                fetch = f"L{li}.um_fetch"
                fetch_deps = [pred]
                if prev_fetch:
                    fetch_deps.append(prev_fetch)
                tasks.append(
                    transfer_task(
                        fetch,
                        machine.link,
                        active_bytes,
                        deps=tuple(fetch_deps),
                        unified_memory=True,
                    )
                )
                prev_fetch = fetch
                deps.append(fetch)
            name = f"L{li}.gpu"
            ag1, ac1 = self.plan.attn_active_split(li, 1)
            mg1, mc1 = self.plan.mlp_active_split(li, 1)
            work = OpWork(
                flops=2.0
                * ((ag1 + ac1) * model.attn_neuron_params + (mg1 + mc1) * model.mlp_neuron_params)
                * rows
                + self._kv_flops(ctx_len, n_tokens, batch),
                bytes_read=active_bytes
                + self._kv_read_bytes(ctx_len, n_tokens, batch)
                + act,
                bytes_written=act,
            )
            tasks.append(
                op_task(
                    name,
                    "gpu",
                    machine.gpu,
                    work,
                    deps=tuple(deps),
                    tag="gpu-neuron",
                )
            )
            prev = name
        tasks.append(LlamaCppEngine._lm_head_task(self, prev, batch))
        return tasks

    def gpu_load_share(self, batch: int = 1) -> float:
        return 1.0


class VllmEngine(PerfEngine):
    """Full-GPU dense serving (the A100 reference of Figure 18)."""

    name = "vllm"

    def __init__(self, plan: DeploymentPlan) -> None:
        super().__init__(plan)
        # Section 8.3.4 picks OPT-30B and Falcon-40B because their memory
        # needs match the A100's 80 GB "precisely" — PagedAttention's
        # paging squeezes the KV cache into the slack, so nearly the whole
        # card counts as usable.
        needed = plan.dtype.nbytes(plan.model.total_params)
        capacity = plan.machine.gpu.memory_capacity * 0.97
        if needed > capacity:
            raise OutOfMemoryError(
                f"{plan.model.name} ({needed / 2**30:.1f} GiB) does not fit "
                f"{plan.machine.gpu.name} ({capacity / 2**30:.1f} GiB usable)"
            )

    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        machine, model, dtype = self.machine, self.model, self.dtype
        rows = n_tokens * batch
        act = self._activation_bytes(rows)
        tasks: list[SimTask] = []
        prev = ""
        for li in range(model.n_layers):
            work = OpWork(
                flops=2.0 * model.params_per_layer * rows
                + self._kv_flops(ctx_len, n_tokens, batch),
                bytes_read=dtype.nbytes(model.params_per_layer)
                + self._kv_read_bytes(ctx_len, n_tokens, batch)
                + act,
                bytes_written=act,
            )
            name = f"L{li}.gpu"
            tasks.append(
                op_task(
                    name,
                    "gpu",
                    machine.gpu,
                    work,
                    deps=(prev,) if prev else (),
                    tag="gpu-dense",
                )
            )
            prev = name
        tasks.append(LlamaCppEngine._lm_head_task(self, prev, batch))
        return tasks

    def gpu_load_share(self, batch: int = 1) -> float:
        return 1.0


class LayerwiseSparseEngine(_LayerSplitMixin, PerfEngine):
    """"+PO" ablation: predictors + sparse operators, layer-level split.

    Layers keep llama.cpp's placement; each device computes only its
    layers' predicted-active neurons, but there is no intra-layer
    GPU/CPU cooperation.
    """

    name = "+PO"

    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        machine, model, dtype = self.machine, self.model, self.dtype
        n_gpu = self.gpu_layer_count()
        n_cpu = model.n_layers - n_gpu
        rows = n_tokens * batch
        act = self._activation_bytes(rows)
        mlp_nb = model.mlp_neuron_bytes(dtype)
        attn_nb = model.attn_neuron_bytes(dtype)
        tasks: list[SimTask] = []
        prev = ""

        def layer_tasks(li: int, resource: str, device) -> None:
            nonlocal prev
            if rng is None:
                ag, ac = self.plan.attn_active_split(li, rows)
                mg, mc = self.plan.mlp_active_split(li, rows)
            else:
                ag, ac = self.plan.sampled_attn_split(li, rng, rows)
                mg, mc = self.plan.sampled_mlp_split(li, rng, rows)
            active_attn, active_mlp = ag + ac, mg + mc
            ag1, ac1 = self.plan.attn_active_split(li, 1)
            mg1, mc1 = self.plan.mlp_active_split(li, 1)
            pred_bytes = self.plan.predictor_bytes[li]
            pred = f"L{li}.pred"
            tasks.append(
                op_task(
                    pred,
                    resource,
                    device,
                    OpWork(flops=pred_bytes * rows, bytes_read=pred_bytes + act),
                    deps=(prev,) if prev else (),
                    tag="predictor",
                )
            )
            name = f"L{li}.{resource}"
            work = OpWork(
                flops=2.0
                * ((ag1 + ac1) * model.attn_neuron_params + (mg1 + mc1) * model.mlp_neuron_params)
                * rows
                + self._kv_flops(ctx_len, n_tokens, batch),
                bytes_read=active_attn * attn_nb
                + active_mlp * mlp_nb
                + self._kv_read_bytes(ctx_len, n_tokens, batch)
                + act,
                bytes_written=act,
            )
            tasks.append(
                op_task(
                    name,
                    resource,
                    device,
                    work,
                    deps=(pred,),
                    tag=f"{resource}-neuron",
                )
            )
            prev = name

        for li in range(n_cpu):
            layer_tasks(li, "cpu", machine.cpu)
        if n_cpu and n_gpu:
            tasks.append(transfer_task("hidden_xfer", machine.link, act, deps=(prev,)))
            prev = "hidden_xfer"
        for li in range(n_cpu, model.n_layers):
            layer_tasks(li, "gpu", machine.gpu)
        tasks.append(LlamaCppEngine._lm_head_task(self, prev, batch))
        return tasks

    def gpu_load_share(self, batch: int = 1) -> float:
        return self.gpu_layer_count() / self.model.n_layers
