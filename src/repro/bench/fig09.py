"""Figure 9 — predictor parameter size vs layer sparsity at >=95% accuracy.

Two reproductions of the correlation:

* :func:`run_fig09_trained` runs the *real* adaptive sizing loop
  (train / evaluate / shrink-or-grow) on synthetic ReLU layers at laptop
  scale, sweeping layer sparsity — higher sparsity should yield smaller
  predictors meeting the target.
* :func:`run_fig09_modeled` evaluates the closed-form sizing used for
  paper-scale models on OPT-175B's dimensions, reporting parameter size per
  sparsity bucket with skewness spread (the figure's error bars).
"""

from __future__ import annotations

import numpy as np

from repro.models.config import OPT_175B
from repro.predictor.adaptive import adaptive_train, modeled_predictor_params
from repro.predictor.training import synthesize_training_data
from repro.sparsity.stats import skewness

__all__ = ["run_fig09_trained", "run_fig09_modeled", "SPARSITY_LEVELS"]

SPARSITY_LEVELS = (0.80, 0.90, 0.95, 0.99)


def run_fig09_trained(
    sparsity_levels: tuple[float, ...] = SPARSITY_LEVELS,
    d_in: int = 64,
    n_neurons: int = 512,
    n_samples: int = 1536,
    accuracy_target: float = 0.95,
    seed: int = 0,
) -> list[dict]:
    """Adaptive-sizing outcomes per sparsity level (small real layers)."""
    rows = []
    for sp in sparsity_levels:
        rng = np.random.default_rng(seed)
        x, y = synthesize_training_data(
            d_in, n_neurons, n_samples, rng, target_sparsity=sp
        )
        split = int(0.8 * n_samples)
        layer_skew = skewness(y.mean(axis=0))
        result = adaptive_train(
            x[:split],
            y[:split],
            x[split:],
            y[split:],
            layer_sparsity=sp,
            layer_skewness=layer_skew,
            rng=rng,
            accuracy_target=accuracy_target,
        )
        rows.append(
            {
                "sparsity": sp,
                "skewness": layer_skew,
                "hidden": result.hidden,
                "params": result.predictor.param_count,
                "accuracy": result.metrics.accuracy,
                "recall": result.metrics.recall,
                "rounds": len(result.history),
            }
        )
    return rows


def run_fig09_modeled(
    sparsity_levels: tuple[float, ...] = SPARSITY_LEVELS,
    skew_levels: tuple[float, ...] = (0.5, 0.7, 0.9),
) -> list[dict]:
    """Closed-form predictor sizes on OPT-175B dimensions (paper's model)."""
    rows = []
    for sp in sparsity_levels:
        sizes = [
            modeled_predictor_params(OPT_175B, sp, skew) * 2.0 / 2**20  # MB fp16
            for skew in skew_levels
        ]
        rows.append(
            {
                "sparsity": sp,
                "mean_size_mb": float(np.mean(sizes)),
                "min_size_mb": float(np.min(sizes)),
                "max_size_mb": float(np.max(sizes)),
            }
        )
    return rows
