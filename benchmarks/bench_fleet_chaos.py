"""Fleet goodput under replica chaos: failover vs a blind router.

Chaos benchmark for the multi-replica fleet.  The same Poisson stream
runs through the canonical heterogeneous 3-replica fleet while the
``pc-high`` replica crashes for 18 s mid-stream; the failover-enabled
router must strictly beat the blind (no-failover) ablation on both SLO
goodput and deadline-miss rate, and the whole study must be bit-for-bit
deterministic.

Also runnable directly for the CI smoke job::

    PYTHONPATH=src python benchmarks/bench_fleet_chaos.py --quick
"""

from repro.bench.fleet_chaos import run_fleet_chaos


def _check(rows: list[dict]) -> None:
    by_key = {(r["policy"], r["faults"], r["failover"]): r for r in rows}
    healed = by_key[("round-robin", "chaos", True)]
    blind = by_key[("round-robin", "chaos", False)]

    # The headline claim (also asserted inside the driver): reacting to
    # the crash strictly beats blindly dispatching into it.
    assert healed["goodput_rps"] > blind["goodput_rps"]
    assert healed["deadline_miss_rate"] < blind["deadline_miss_rate"]
    assert healed["availability"] > blind["availability"]

    # The failover machinery actually engaged, and the crash did real
    # damage to the blind router.
    assert healed["failovers"] > 0
    assert healed["redispatches"] > 0
    assert blind["failovers"] == 0
    assert blind["timed_out"] + blind["failed"] > 0

    # Accounting: the healed fleet lost nothing outright.
    assert healed["failed"] == 0


def test_fleet_chaos(benchmark, record_rows):
    from conftest import run_once

    rows = run_once(benchmark, run_fleet_chaos)
    record_rows(
        "fleet_chaos",
        rows,
        "Fleet failover vs blind router under a replica crash — "
        "OPT-6.7B INT4, 3 heterogeneous replicas",
    )
    _check(rows)

    # Determinism contract: replaying the identical crash schedule and
    # request stream reproduces every row exactly.
    assert run_fleet_chaos() == rows


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="round-robin chaos pair only (CI smoke configuration)",
    )
    cli_args = parser.parse_args()

    rows = run_fleet_chaos(quick=cli_args.quick)
    _check(rows)
    assert run_fleet_chaos(quick=cli_args.quick) == rows, "non-deterministic"
    for row in rows:
        print(row)
    print("fleet-chaos smoke: OK")
