"""Orca-style continuous batching over a performance engine.

The static simulators (:mod:`repro.serving.simulator`,
:mod:`repro.serving.batched`) treat a request as one opaque service time, so
a batch is frozen at dispatch and every member finishes together.  This
module schedules at *token* granularity instead: the server advances one
model iteration at a time via :meth:`PerfEngine.simulate_iteration`,
requests join the running batch the moment a slot and KV memory are
available, and leave the instant their last token is emitted — the
iteration-level scheduling loop of Orca/vLLM-class serving systems.

Pieces that cooperate:

* **Admission control** — each admitted request reserves its worst-case KV
  footprint (prompt + full response) in a :class:`MemoryPool` sized by the
  GPU KV budget.  Requests queue FCFS when the pool is full
  (head-of-line blocking preserves arrival order) and the reservation is
  released on completion, so the budget is never exceeded mid-flight.
* **Scheduler policy** (:mod:`repro.serving.policies`) — decides, per
  iteration, which members prefill (and how many prompt tokens) and which
  decode.
* **Iteration cost cache** — iteration latency is deterministic in
  ``(ctx_len, n_tokens, batch)`` *within one fault epoch*; context lengths
  are bucketed so streams of thousands of requests hit a few hundred
  engine simulations.
* **Fault tolerance** — with a :class:`~repro.hardware.faults.FaultSchedule`
  attached, iteration costs become time-varying (PCIe/GPU/CPU degradation
  windows), device stalls abort in-flight work (bounded retry with
  exponential backoff), per-request deadlines cancel hopeless requests and
  free their KV reservations, arrivals beyond a queue bound are shed, and
  — with ``degradation=True`` — the server adapts: it caps the batch while
  a throughput fault is active and re-plans a smaller GPU hot-neuron set
  when the KV budget shrinks mid-run (trading hot-neuron residency for KV
  space).  All fault handling is deterministic: the same schedule and
  request stream always produce the same report.

Timing convention: completing the prompt emits the request's first output
token (the prefill step produces logits for token one), so TTFT is the end
of the iteration that finishes the prompt, and ``output_len - 1`` decode
steps follow.  Deadlines are enforced at iteration boundaries — a request
that would finish mid-iteration past its deadline still completes; one
that is unfinished at a boundary past its deadline is cancelled.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.check.schedule import KVEvent, require_valid, validate_server_run
from repro.engine.base import PerfEngine
from repro.hardware.events import ScheduleResult
from repro.hardware.faults import FaultKind, FaultSchedule
from repro.hardware.memory import MemoryPool, OutOfMemoryError
from repro.serving.arrival import Request
from repro.serving.metrics import ContinuousReport, RequestMetrics
from repro.serving.policies import SchedulerPolicy, make_policy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.tracer import Tracer

__all__ = [
    "RequestState",
    "IterationCostCache",
    "ContinuousServer",
    "simulate_continuous_serving",
]


@dataclass
class RequestState:
    """Progress of one admitted request through prefill and decode."""

    request: Request
    admit_time: float
    kv_bytes: float
    prefilled: int = 0
    emitted: int = 0
    token_times: list[float] = field(default_factory=list)

    @property
    def remaining_prompt(self) -> int:
        return self.request.input_len - self.prefilled

    @property
    def is_prefilling(self) -> bool:
        return self.remaining_prompt > 0

    @property
    def is_decoding(self) -> bool:
        return not self.is_prefilling and self.emitted < self.request.output_len

    @property
    def done(self) -> bool:
        return self.emitted >= self.request.output_len

    @property
    def context(self) -> int:
        """Tokens currently in this request's KV cache."""
        return self.prefilled + self.emitted


class IterationCostCache:
    """Memoized iteration latencies with context-length bucketing.

    Iteration cost varies slowly with context (only the KV terms are
    ctx-dependent), so contexts are rounded to the nearest multiple of
    ``ctx_bucket`` before keying the engine simulation.  This keeps the
    number of distinct simulations bounded for long streams.

    With a fault schedule attached, cache keys additionally carry the
    *fault epoch* of the query time — within one epoch the perturbed
    machine is constant, so memoization stays sound while the simulation
    becomes time-varying.  (Distinct epochs with identical perturbations
    are cached separately; correctness over maximal sharing.)
    """

    def __init__(
        self,
        engine: PerfEngine,
        ctx_bucket: int = 32,
        faults: FaultSchedule | None = None,
    ) -> None:
        if ctx_bucket < 1:
            raise ValueError("ctx_bucket must be >= 1")
        self.engine = engine
        self.ctx_bucket = ctx_bucket
        self.faults = faults
        self._cache: dict[tuple[int, int, int, int], float] = {}
        self._schedules: dict[tuple[int, int, int, int], ScheduleResult] = {}

    def _bucket(self, ctx_len: int) -> int:
        return self.ctx_bucket * round(ctx_len / self.ctx_bucket)

    def _key(
        self, ctx_len: int, n_tokens: int, batch: int, now: float
    ) -> tuple[int, int, int, int]:
        """Validated, bucketed, epoch-stamped memoization key.

        Raises:
            ValueError: On negative ``ctx_len`` or non-positive
                ``n_tokens``/``batch`` — garbage keys must fail loudly
                instead of being cached.
        """
        if ctx_len < 0:
            raise ValueError("ctx_len must be non-negative")
        if n_tokens < 1:
            raise ValueError("n_tokens must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        epoch = self.faults.epoch(now) if self.faults is not None else 0
        return (self._bucket(ctx_len), n_tokens, batch, epoch)

    def cost(self, ctx_len: int, n_tokens: int, batch: int, now: float = 0.0) -> float:
        """Latency of one iteration at ``(ctx_len, n_tokens, batch)``.

        ``now`` selects the fault epoch when a schedule is attached (and
        is ignored otherwise).
        """
        key = self._key(ctx_len, n_tokens, batch, now)
        if key not in self._cache:
            self._cache[key] = self.engine.simulate_iteration_at(
                now, self.faults, *key[:3]
            ).makespan
        return self._cache[key]

    def schedule(
        self, ctx_len: int, n_tokens: int, batch: int, now: float = 0.0
    ) -> ScheduleResult:
        """The full per-task schedule behind :meth:`cost` (memoized).

        Tracing uses this to replay the scheduled DAG onto the global
        timeline.  The simulation is deterministic, so
        ``schedule(...).makespan == cost(...)`` for the same arguments —
        the invariant that keeps emitted task spans consistent with the
        iteration windows the server books.
        """
        key = self._key(ctx_len, n_tokens, batch, now)
        sched = self._schedules.get(key)
        if sched is None:
            sched = self.engine.simulate_iteration_at(now, self.faults, *key[:3])
            self._schedules[key] = sched
            self._cache.setdefault(key, sched.makespan)
        return sched

    def __len__(self) -> int:
        return len(self._cache)


class ContinuousServer:
    """Event-driven continuous-batching server with graceful degradation.

    Attributes:
        engine: Performance engine pricing each iteration.
        policy: Scheduler policy shaping iterations (name or instance).
        max_batch: Maximum concurrently running requests.
        kv_budget_bytes: KV-cache memory budget for admission control;
            defaults to the engine's free GPU memory after plan-resident
            weights (:meth:`PerfEngine.kv_budget_bytes`).
        ctx_bucket: Context-length bucket for the iteration cost cache.
        faults: Optional fault schedule perturbing the machine over
            simulated time (see :mod:`repro.hardware.faults`).
        deadline: Default per-request completion deadline (seconds after
            arrival) applied when a request carries none.  ``None``
            disables deadline enforcement for such requests.
        max_retries: How many times a stall-aborted request is re-queued
            before being recorded as failed.
        retry_backoff: Base of the exponential backoff between an abort
            and the retry's earliest re-admission (doubles per attempt).
        max_queue: Bound on the admission queue; arrivals beyond it are
            shed (``None`` disables load shedding).
        degradation: Enables graceful degradation — the fault-adaptive
            batch cap and the KV-shrink hot-neuron re-plan.  With
            ``False`` the server still *suffers* every fault (perturbed
            costs, stalls, shrunken budget) but does not adapt; the chaos
            benchmark compares the two.
        degraded_max_batch: Batch cap while a throughput fault is active
            (defaults to ``max(1, max_batch // 4)``).
        tracer: Optional :class:`~repro.telemetry.tracer.Tracer` recording
            device task spans, request lifecycle spans/events, iteration
            and degraded-mode regions, fault annotations, and counter
            samples over the run.  ``None`` (default) disables tracing;
            the run's results are bit-identical either way.
        validate: When ``True``, :meth:`run` keeps a KV-allocation ledger
            and, before returning, replays the report against the server
            invariants (:func:`repro.check.schedule.validate_server_run` —
            non-overlapping iteration windows, nothing executing inside a
            device stall, KV-memory conservation under the nominal budget,
            trace/report reconciliation), raising
            :class:`~repro.check.schedule.ScheduleValidationError` on any
            violation.  Off by default; a diagnostic/CI hook.
    """

    def __init__(
        self,
        engine: PerfEngine,
        policy: SchedulerPolicy | str = "fcfs",
        max_batch: int = 8,
        kv_budget_bytes: float | None = None,
        ctx_bucket: int = 32,
        faults: FaultSchedule | None = None,
        deadline: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        max_queue: int | None = None,
        degradation: bool = True,
        degraded_max_batch: int | None = None,
        tracer: "Tracer | None" = None,
        validate: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None)")
        if degraded_max_batch is not None and degraded_max_batch < 1:
            raise ValueError("degraded_max_batch must be >= 1 (or None)")
        self.engine = engine
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.max_batch = max_batch
        budget = kv_budget_bytes if kv_budget_bytes is not None else engine.kv_budget_bytes()
        if budget <= 0:
            raise ValueError(
                "kv_budget_bytes must be positive (the plan leaves no GPU "
                "memory for KV; pass an explicit budget)"
            )
        self.kv_budget_bytes = budget
        self.faults = faults
        self.deadline = deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_queue = max_queue
        self.degradation = degradation
        self.degraded_max_batch = (
            degraded_max_batch if degraded_max_batch is not None else max(1, max_batch // 4)
        )
        self.tracer = tracer
        self.validate = validate
        self.costs = IterationCostCache(engine, ctx_bucket, faults=faults)
        # Lazily-built degraded runtime: (engine, cost cache, bytes freed).
        self._degraded: tuple[PerfEngine, IterationCostCache, float] | None = None
        # Run-scoped tracing state (set by run(); False/empty when untraced).
        self._tracing = False
        self._enqueued_at: dict[int, float] = {}
        # KV-pool ledger of the last run (only populated with validate=True).
        self.last_kv_ledger: list[KVEvent] = []

    # ---- degraded mode -------------------------------------------------------

    def _degraded_runtime(self) -> tuple[PerfEngine, IterationCostCache, float]:
        """Engine + cache for KV-shrink windows: hot neurons demoted to CPU.

        The re-plan frees enough GPU weight bytes to cover the worst KV
        shrinkage in the schedule, so admissions keep flowing while the
        squeeze lasts — at the price of slower iterations (more CPU-side
        neuron work).  Built once, deterministically.
        """
        if self._degraded is None:
            worst = min(
                (
                    e.magnitude
                    for e in self.faults.events
                    if e.kind == FaultKind.KV_SHRINK
                ),
                default=1.0,
            )
            target = self.kv_budget_bytes * (1.0 - worst)
            pristine_plan = self.engine.plan
            plan = pristine_plan.with_gpu_bytes_freed(target)
            freed = pristine_plan.gpu_weight_bytes - plan.gpu_weight_bytes
            engine = type(self.engine)(plan)
            cache = IterationCostCache(engine, self.costs.ctx_bucket, faults=self.faults)
            self._degraded = (engine, cache, float(freed))
        return self._degraded

    def _deadline_of(self, request: Request) -> float | None:
        return request.deadline if request.deadline is not None else self.deadline

    def _ledger_add(self, time: float, op: str, name: str, nbytes: float) -> None:
        """Record one KV-pool operation for post-run validation.

        The ledger mirrors every ``allocate``/``release`` on the pool with
        its simulated timestamp; :func:`validate_kv_ledger` replays it to
        prove conservation.  Only kept with ``validate=True``.
        """
        if self.validate:
            self.last_kv_ledger.append(
                KVEvent(time=time, op=op, name=name, nbytes=nbytes)
            )

    # ---- tracing helpers -----------------------------------------------------

    def _trace_batch_phases(self, state: RequestState, end: float) -> None:
        """Record the phase spans of a request leaving the batch at ``end``.

        Phase boundaries are reconstructed from the token timeline: the
        prefill span runs from admission to the first token (which the
        final prefill step emits); everything after is decode.  A request
        evicted before its first token gets only a (partial) prefill span.
        """
        rid = state.request.request_id
        if state.token_times:
            first = state.token_times[0]
            self.tracer.add_request_span(rid, "prefill", state.admit_time, first)
            if end > first:
                self.tracer.add_request_span(rid, "decode", first, end)
        else:
            self.tracer.add_request_span(rid, "prefill", state.admit_time, end)

    # ---- admission -----------------------------------------------------------

    def _admit(
        self,
        waiting: deque[Request],
        running: list[RequestState],
        pool: MemoryPool,
        now: float,
        batch_cap: int,
        effective_budget: float,
    ) -> None:
        """FCFS admission under batch slots and the (possibly shrunken) KV budget.

        Head-of-line blocking: if the oldest waiting request does not fit,
        nothing behind it is admitted (preserves arrival order, the
        "queue-on-full" discipline).  A request that cannot fit even an
        *empty* pristine pool can never be served and raises immediately.
        """
        while waiting and len(running) < batch_cap:
            request = waiting[0]
            kv_bytes = self.engine.request_kv_bytes(
                request.input_len, request.output_len
            )
            if kv_bytes > pool.usable_capacity:
                raise OutOfMemoryError(
                    f"request {request.request_id} needs "
                    f"{kv_bytes / 2**20:.1f} MiB of KV cache but the "
                    f"budget is {pool.usable_capacity / 2**20:.1f} MiB"
                )
            if pool.used + kv_bytes > effective_budget:
                return
            pool.allocate(f"req-{request.request_id}", kv_bytes)
            self._ledger_add(now, "alloc", f"req-{request.request_id}", kv_bytes)
            waiting.popleft()
            running.append(
                RequestState(request=request, admit_time=now, kv_bytes=kv_bytes)
            )
            if self._tracing:
                rid = request.request_id
                queued_from = self._enqueued_at.get(rid, request.arrival_time)
                self.tracer.add_request_span(rid, "queued", queued_from, now)
                self.tracer.add_request_event(rid, "admit", now)

    # ---- fault handling ------------------------------------------------------

    def _abort_running(
        self,
        running: list[RequestState],
        pool: MemoryPool,
        report: ContinuousReport,
        retry_heap: list[tuple[float, int, Request]],
        attempts: dict[int, int],
        resume_at: float,
        at: float | None = None,
    ) -> None:
        """Abort all in-flight requests (device stall): release KV, retry.

        A retried request restarts from scratch (its partial stream is
        lost) and becomes eligible for re-admission after an exponential
        backoff; a request out of retries is recorded as failed.  ``at``
        is the abort instant on the traced timeline (defaults to
        ``resume_at`` — the stall end — when not given).
        """
        abort_time = at if at is not None else resume_at
        for state in running:
            pool.release(f"req-{state.request.request_id}")
            self._ledger_add(
                abort_time, "free", f"req-{state.request.request_id}", state.kv_bytes
            )
            report.n_aborts += 1
            rid = state.request.request_id
            attempt = attempts.get(rid, 0) + 1
            attempts[rid] = attempt
            if self._tracing:
                self._trace_batch_phases(state, abort_time)
                self.tracer.add_request_event(rid, "abort", abort_time)
                self.tracer.metrics.counter("aborts").inc()
            if attempt > self.max_retries:
                report.failed.append(state.request)
                if self._tracing:
                    self.tracer.add_request_event(rid, "fail", abort_time)
                    self.tracer.metrics.counter("failed").inc()
            else:
                report.n_retries += 1
                ready = resume_at + self.retry_backoff * 2 ** (attempt - 1)
                heapq.heappush(retry_heap, (ready, rid, state.request))
                if self._tracing:
                    self.tracer.metrics.counter("retries").inc()
        running.clear()

    def _cancel_expired(
        self,
        waiting: deque[Request],
        running: list[RequestState],
        pool: MemoryPool,
        report: ContinuousReport,
        now: float,
    ) -> list[RequestState]:
        """Deadline enforcement at an iteration boundary.

        Expired waiting requests are dropped; expired running requests
        release their KV reservation.  Either way they are recorded as
        timed out and never reach the completed set.
        """
        kept: deque[Request] = deque()
        for request in waiting:
            d = self._deadline_of(request)
            if d is not None and now >= request.arrival_time + d:
                report.timed_out.append(request)
                if self._tracing:
                    rid = request.request_id
                    queued_from = self._enqueued_at.get(rid, request.arrival_time)
                    self.tracer.add_request_span(rid, "queued", queued_from, now)
                    self.tracer.add_request_event(rid, "timeout", now)
                    self.tracer.metrics.counter("timeouts").inc()
            else:
                kept.append(request)
        waiting.clear()
        waiting.extend(kept)
        still: list[RequestState] = []
        for state in running:
            d = self._deadline_of(state.request)
            if d is not None and now >= state.request.arrival_time + d:
                pool.release(f"req-{state.request.request_id}")
                self._ledger_add(
                    now, "free", f"req-{state.request.request_id}", state.kv_bytes
                )
                report.timed_out.append(state.request)
                if self._tracing:
                    self._trace_batch_phases(state, now)
                    self.tracer.add_request_event(state.request.request_id, "timeout", now)
                    self.tracer.metrics.counter("timeouts").inc()
            else:
                still.append(state)
        return still

    # ---- main loop -----------------------------------------------------------

    def run(self, requests: list[Request]) -> ContinuousReport:
        """Serve ``requests``; returns token-level metrics."""
        pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        waiting: deque[Request] = deque()
        running: list[RequestState] = []
        pool = MemoryPool(name="kv-cache", capacity=self.kv_budget_bytes)
        report = ContinuousReport(kv_budget_bytes=pool.usable_capacity)
        self.last_kv_ledger = []
        retry_heap: list[tuple[float, int, Request]] = []  # (ready, id, request)
        attempts: dict[int, int] = {}

        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        self._tracing = tracing
        self._enqueued_at = enqueued_at = {}
        if tracing and self.faults is not None:
            from repro.telemetry.tracer import record_fault_schedule

            record_fault_schedule(tracer, self.faults)

        def enqueue(request: Request) -> None:
            if self.max_queue is not None and len(waiting) >= self.max_queue:
                report.shed.append(request)
                if tracing:
                    tracer.add_request_event(request.request_id, "shed", now)
                    tracer.metrics.counter("shed").inc()
            else:
                waiting.append(request)

        now = 0.0
        next_arrival = 0
        while next_arrival < len(pending) or waiting or running or retry_heap:
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_time <= now
            ):
                request = pending[next_arrival]
                if tracing:
                    tracer.add_request_event(
                        request.request_id, "arrive", request.arrival_time
                    )
                    enqueued_at[request.request_id] = request.arrival_time
                enqueue(request)
                next_arrival += 1
            while retry_heap and retry_heap[0][0] <= now:
                _, _, request = heapq.heappop(retry_heap)
                if tracing:
                    tracer.add_request_event(request.request_id, "requeue", now)
                    enqueued_at[request.request_id] = now
                enqueue(request)

            if not running and not waiting:
                horizon = []
                if next_arrival < len(pending):
                    horizon.append(pending[next_arrival].arrival_time)
                if retry_heap:
                    horizon.append(retry_heap[0][0])
                if not horizon:
                    break  # everything remaining was shed or failed
                now = max(now, min(horizon))
                continue

            running = self._cancel_expired(waiting, running, pool, report, now)
            if not running and not waiting:
                continue

            if self.faults is not None:
                stall_end = self.faults.stall_end_at(now)
                if stall_end is not None and stall_end > now:
                    # The device is stalled: nothing can run until the
                    # window closes; in-flight work is lost.
                    self._abort_running(
                        running, pool, report, retry_heap, attempts, stall_end, at=now
                    )
                    now = stall_end
                    continue

            kv_factor = (
                self.faults.kv_budget_factor(now) if self.faults is not None else 1.0
            )
            throughput_fault = (
                self.faults is not None and self.faults.is_degraded(now)
            )
            costs = self.costs
            effective_budget = pool.usable_capacity * kv_factor
            batch_cap = self.max_batch
            degraded_now = False
            if self.degradation and kv_factor < 1.0:
                # KV squeeze: swap in the re-planned engine whose demoted
                # hot neurons buy the budget back.
                engine_, costs, freed = self._degraded_runtime()
                effective_budget = min(
                    pool.usable_capacity, effective_budget + freed
                )
                degraded_now = True
            if self.degradation and throughput_fault:
                # Brownout: keep the batch small while the machine is slow
                # so in-flight streams keep their token cadence.
                batch_cap = min(batch_cap, self.degraded_max_batch)
                degraded_now = True

            self._admit(waiting, running, pool, now, batch_cap, effective_budget)
            report.peak_kv_bytes = max(report.peak_kv_bytes, pool.used)

            if not running:
                # Admission blocked (shrunken budget or stalled retries):
                # advance to whatever happens next.
                horizon = []
                if next_arrival < len(pending):
                    horizon.append(pending[next_arrival].arrival_time)
                if retry_heap:
                    horizon.append(retry_heap[0][0])
                if self.faults is not None:
                    boundary = self.faults.next_boundary_after(now)
                    if boundary is not None:
                        horizon.append(boundary)
                future = [t for t in horizon if t > now]
                if not future:
                    raise OutOfMemoryError(
                        "admission deadlocked: waiting requests can never "
                        "fit the remaining KV budget"
                    )
                now = min(future)
                continue

            plan = self.policy.plan_iteration(running)
            if plan.is_empty:
                raise RuntimeError(
                    f"policy {self.policy.name!r} stalled a non-empty batch"
                )

            if tracing:
                tracer.add_counter("queue_depth", now, float(len(waiting)))
                tracer.add_counter("running_batch", now, float(len(running)))
                tracer.add_counter("kv_used_bytes", now, pool.used)

            # Components: (offset within the iteration, ctx, n_tokens, batch).
            # The offsets accumulate with the same float additions as the
            # cost, so replayed schedules land exactly on the booked window.
            cost = 0.0
            components: list[tuple[float, int, int, int]] = []
            for state, chunk in plan.prefill:
                components.append((cost, state.context, chunk, 1))
                cost += costs.cost(state.context, chunk, 1, now)
            if plan.decode:
                ctx = max(state.context for state in plan.decode)
                components.append((cost, ctx, 1, len(plan.decode)))
                cost += costs.cost(ctx, 1, len(plan.decode), now)
            end = now + cost

            if self.faults is not None:
                stall = self.faults.next_stall_start(now, end)
                if stall is not None:
                    # A device stall preempts the in-flight iteration: the
                    # partial work is lost and the batch aborts.
                    if stall.start > now:
                        report.busy_intervals.append((now, stall.start))
                        if tracing:
                            tracer.add_region(
                                "server",
                                "iteration-aborted",
                                now,
                                stall.start,
                                args={"batch": float(len(running))},
                            )
                            # The devices really did run until the stall —
                            # replay the component schedules clipped at the
                            # preemption point (lost work, no iteration id).
                            for offset, ctx_c, n_tok, bsz in components:
                                t0c = now + offset
                                if t0c >= stall.start:
                                    break
                                sched = costs.schedule(ctx_c, n_tok, bsz, now)
                                for task in sched.tasks.values():
                                    t_start = t0c + task.start
                                    t_end = min(t0c + task.end, stall.start)
                                    if t_end > t_start:
                                        tracer.add_task(
                                            task.name,
                                            task.resource,
                                            t_start,
                                            t_end,
                                            tag=task.tag,
                                        )
                    if degraded_now:
                        report.degraded_intervals.append((now, stall.start))
                        if tracing and stall.start > now:
                            tracer.add_region("server", "degraded", now, stall.start)
                    self._abort_running(
                        running, pool, report, retry_heap, attempts, stall.end,
                        at=stall.start,
                    )
                    now = stall.end
                    continue

            report.busy_intervals.append((now, end))
            report.n_iterations += 1
            if degraded_now:
                report.degraded_intervals.append((now, end))

            if tracing:
                iteration = report.n_iterations - 1
                tracer.add_region(
                    "server",
                    "iteration",
                    now,
                    end,
                    args={
                        "batch": float(len(running)),
                        "prefill_tokens": float(plan.prefill_tokens),
                        "decode": float(len(plan.decode)),
                    },
                )
                if degraded_now:
                    tracer.add_region("server", "degraded", now, end)
                busy_by_lane: dict[str, float] = {}
                for offset, ctx_c, n_tok, bsz in components:
                    sched = costs.schedule(ctx_c, n_tok, bsz, now)
                    tracer.add_schedule(sched, t0=now + offset, iteration=iteration)
                    for lane, busy in sched.busy_time.items():
                        busy_by_lane[lane] = busy_by_lane.get(lane, 0.0) + busy
                if cost > 0:
                    for lane in sorted(busy_by_lane):
                        tracer.add_counter(
                            f"busy_frac_{lane}", now, busy_by_lane[lane] / cost
                        )
                tracer.metrics.counter("iterations").inc()
                tracer.metrics.gauge("kv_used_bytes").set(pool.used)

            for state, chunk in plan.prefill:
                state.prefilled += chunk
                if not state.is_prefilling:
                    # Prompt done: the prefill step yields the first token.
                    state.emitted += 1
                    state.token_times.append(end)
                    if tracing:
                        tracer.add_request_event(
                            state.request.request_id, "first_token", end
                        )
            for state in plan.decode:
                state.emitted += 1
                state.token_times.append(end)

            still_running: list[RequestState] = []
            for state in running:
                if state.done:
                    pool.release(f"req-{state.request.request_id}")
                    self._ledger_add(
                        state.token_times[-1],
                        "free",
                        f"req-{state.request.request_id}",
                        state.kv_bytes,
                    )
                    metrics = RequestMetrics(
                        request=state.request,
                        admit_time=state.admit_time,
                        token_times=tuple(state.token_times),
                    )
                    report.completed.append(metrics)
                    if tracing:
                        self._trace_batch_phases(state, state.token_times[-1])
                        tracer.add_request_event(
                            state.request.request_id, "finish", state.token_times[-1]
                        )
                        tracer.metrics.counter("completed").inc()
                        tracer.metrics.histogram("ttft_s").record(metrics.ttft)
                        tracer.metrics.histogram("latency_s").record(metrics.latency)
                else:
                    still_running.append(state)
            running = still_running
            now = end

        report.completed.sort(key=lambda m: m.request.request_id)
        report.timed_out.sort(key=lambda r: r.request_id)
        report.shed.sort(key=lambda r: r.request_id)
        report.failed.sort(key=lambda r: r.request_id)
        if tracing:
            tracer.metrics.gauge("peak_kv_bytes").set(report.peak_kv_bytes)
            tracer.metrics.gauge("time_in_degraded_mode_s").set(
                report.time_in_degraded_mode
            )
        self._tracing = False
        if self.validate:
            # Over-budget is checked against the *nominal* pool capacity:
            # KV-shrink windows shrink the admission threshold, but
            # reservations made before the squeeze legitimately persist.
            require_valid(
                validate_server_run(
                    report,
                    ledger=self.last_kv_ledger,
                    budget=pool.usable_capacity,
                    faults=self.faults,
                    tracer=tracer if tracing else None,
                )
            )
        return report


def simulate_continuous_serving(
    engine: PerfEngine,
    requests: list[Request],
    policy: SchedulerPolicy | str = "fcfs",
    max_batch: int = 8,
    kv_budget_bytes: float | None = None,
    max_prefill_tokens: int = 64,
    ctx_bucket: int = 32,
    **robustness,
) -> ContinuousReport:
    """Serve ``requests`` with continuous batching; returns the report.

    Convenience wrapper over :class:`ContinuousServer`.  ``policy`` is a
    preset name (``"fcfs"``, ``"prefill-first"``, ``"chunked"``) or a
    :class:`SchedulerPolicy` instance; ``max_prefill_tokens`` only applies
    to the chunked policy.  Extra keyword arguments (``faults``,
    ``deadline``, ``max_retries``, ``retry_backoff``, ``max_queue``,
    ``degradation``, ``degraded_max_batch``, ``tracer``, ``validate``)
    pass through to the server.
    """
    if isinstance(policy, str):
        kwargs = {"max_prefill_tokens": max_prefill_tokens} if policy == "chunked" else {}
        policy = make_policy(policy, **kwargs)
    server = ContinuousServer(
        engine,
        policy=policy,
        max_batch=max_batch,
        kv_budget_bytes=kv_budget_bytes,
        ctx_bucket=ctx_bucket,
        **robustness,
    )
    return server.run(requests)
