"""Router dispatch policies for the simulated fleet.

A :class:`RouterPolicy` picks which live replica receives a request.  The
contract mirrors the single-server scheduler policies
(:mod:`repro.serving.policies`): a policy is pure routing logic, fully
deterministic, and holds only its own bookkeeping — the router owns
health state and hands a policy the currently-eligible candidates.

Policies:

* ``round-robin`` — cycle through candidates in replica order; blind to
  load, maximally fair, the baseline every paper compares against.
* ``least-loaded`` — pick the candidate with the fewest requests on its
  plate (queued + running + backing off + in flight to it); ties go to
  the lowest replica index so the choice is deterministic.
* ``session-affinity`` — pin each conversation (``Request.session``) to
  a home replica by stable modular hash over the *full* fleet, falling
  back to least-loaded when the home replica is down or the request has
  no session.  Affinity models KV/prefix-cache locality: a conversation
  keeps hitting the replica that holds its warm state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.units import Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.serving.arrival import Request
    from repro.serving.fleet.replica import Replica

__all__ = [
    "RouterPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "SessionAffinityPolicy",
    "ROUTER_POLICIES",
    "make_router_policy",
]


class RouterPolicy(ABC):
    """Chooses the replica that receives a dispatched request."""

    name = "base"

    @abstractmethod
    def choose(
        self,
        candidates: Sequence[tuple[int, "Replica"]],
        request: "Request",
        now: Seconds,
        n_replicas: int,
    ) -> int:
        """Return the replica *index* (first tuple element) to dispatch to.

        Args:
            candidates: Eligible ``(index, replica)`` pairs, in fleet
                order, never empty — the router filters health and role
                before calling.
            request: The request (segment) being dispatched.
            now: Simulated dispatch time.
            n_replicas: Total fleet size (for stable hashing — the
                candidate list shrinks when replicas are down).
        """


class RoundRobinPolicy(RouterPolicy):
    """Cycle through live candidates in fleet order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, candidates, request, now, n_replicas):
        idx = candidates[self._next % len(candidates)][0]
        self._next += 1
        return idx


class LeastLoadedPolicy(RouterPolicy):
    """Send to the candidate with the fewest requests on its plate."""

    name = "least-loaded"

    @staticmethod
    def load_of(replica: "Replica") -> int:
        """Requests a replica is responsible for right now."""
        session = replica.session
        return (
            len(session.waiting)
            + len(session.running)
            + len(session.retry_heap)
            + len(session.dispatch_heap)
        )

    def choose(self, candidates, request, now, n_replicas):
        # min() keeps the first (lowest-index) replica on ties.
        return min(candidates, key=lambda pair: (self.load_of(pair[1]), pair[0]))[0]


class SessionAffinityPolicy(RouterPolicy):
    """Pin conversations to a stable home replica; fail over by load.

    The home slot hashes ``request.session`` over the *full* fleet size,
    so affinity survives other replicas' failures (a conversation does
    not migrate just because an unrelated replica died).  Requests with
    no session id — and conversations whose home replica is currently
    ineligible — fall back to least-loaded.
    """

    name = "session-affinity"

    def __init__(self) -> None:
        self._fallback = LeastLoadedPolicy()

    def choose(self, candidates, request, now, n_replicas):
        if request.session is not None:
            home = request.session % n_replicas
            for idx, _ in candidates:
                if idx == home:
                    return idx
        return self._fallback.choose(candidates, request, now, n_replicas)


ROUTER_POLICIES: dict[str, type[RouterPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    SessionAffinityPolicy.name: SessionAffinityPolicy,
}


def make_router_policy(name: str) -> RouterPolicy:
    """Instantiate a router policy by preset name.

    Raises:
        KeyError: Unknown policy name.
    """
    try:
        return ROUTER_POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown router policy {name!r}; choose from {sorted(ROUTER_POLICIES)}"
        ) from None
