"""Tests for synthetic accuracy tasks (Table 2 machinery)."""

import numpy as np
import pytest

from repro.engine.numerical import NumericalHybridEngine
from repro.workloads.tasks import (
    TASK_FAMILIES,
    TaskSpec,
    evaluate_agreement,
    make_task,
    score_choices,
)


class TestTaskGeneration:
    def test_four_paper_families(self):
        assert len(TASK_FAMILIES) == 4
        names = {spec.name for spec in TASK_FAMILIES}
        assert "copa-like" in names and "rte-like" in names

    def test_instances_shaped_by_spec(self, rng):
        spec = TaskSpec(name="t", n_choices=3, prompt_len=7)
        instances = make_task(spec, 5, vocab_size=100, rng=rng)
        assert len(instances) == 5
        for inst in instances:
            assert inst.prompt.shape == (7,)
            assert inst.choices.shape == (3,)
            assert len(set(inst.choices.tolist())) == 3  # distinct

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            make_task(TASK_FAMILIES[0], 0, 100, rng)


class TestScoring:
    def test_picks_highest_logit(self):
        logits = np.array([0.1, 5.0, -2.0, 3.0])
        assert score_choices(logits, np.array([0, 2])) == 0
        assert score_choices(logits, np.array([1, 3])) == 0
        assert score_choices(logits, np.array([3, 1])) == 1


class TestAgreement:
    def test_oracle_sparse_agrees_fully(self, tiny_model, tiny_cfg, rng):
        engine = NumericalHybridEngine(tiny_model, [None] * tiny_cfg.n_layers)
        instances = make_task(TASK_FAMILIES[0], 8, tiny_cfg.vocab_size, rng)
        assert evaluate_agreement(tiny_model, engine, instances) == 1.0

    def test_broken_engine_disagrees(self, tiny_model, tiny_cfg, rng):
        from repro.predictor.mlp import MlpPredictor

        class NothingOn(MlpPredictor):
            def predict(self, x):
                return np.zeros(x.shape[:-1] + (tiny_cfg.d_ffn,), dtype=bool)

        preds = [
            NothingOn(tiny_cfg.d_model, 4, tiny_cfg.d_ffn, rng=rng)
            for _ in range(tiny_cfg.n_layers)
        ]
        engine = NumericalHybridEngine(tiny_model, preds)
        instances = make_task(TASK_FAMILIES[1], 16, tiny_cfg.vocab_size, rng)
        # Killing every MLP neuron is a gross perturbation: agreement
        # should be visibly below perfect.
        assert evaluate_agreement(tiny_model, engine, instances) < 1.0

    def test_empty_instances_rejected(self, tiny_model, tiny_cfg):
        engine = NumericalHybridEngine(tiny_model, [None] * tiny_cfg.n_layers)
        with pytest.raises(ValueError):
            evaluate_agreement(tiny_model, engine, [])
