"""Figure 18 — RTX 4090 + PowerInfer vs A100 + vLLM / llama.cpp.

Paper: llama.cpp on the 4090 lags vLLM on the A100 by 92-93%;
PowerInfer narrows the gap to 18-23% (input 1) and 28-29% (input 64).
"""

from conftest import run_once

from repro.bench.fig18 import run_fig18


def test_fig18_a100_gap(benchmark, record_rows):
    rows = run_once(benchmark, run_fig18)
    record_rows("fig18_a100", rows, "Figure 18 — consumer GPU vs A100")

    for model in {r["model"] for r in rows}:
        for inp in (1, 64):
            pi = next(
                r
                for r in rows
                if r["model"] == model
                and r["input"] == inp
                and r["system"] == "powerinfer@4090"
            )
            lc = next(
                r
                for r in rows
                if r["model"] == model
                and r["input"] == inp
                and r["system"] == "llama.cpp@4090"
            )
            # llama.cpp's gap to the A100 is catastrophic (paper: ~92-93%).
            assert lc["slowdown_vs_a100"] > 0.85, lc
            # PowerInfer shrinks it dramatically (paper: 18-29%).
            assert pi["slowdown_vs_a100"] < 0.55, pi
            assert pi["slowdown_vs_a100"] < lc["slowdown_vs_a100"] - 0.3
