"""Render a recorded trace as Chrome ``trace_event`` JSON or JSONL.

The Chrome trace-event format (consumed by Perfetto and chrome://tracing)
models a trace as processes and threads of timed events.  We map:

* ``pid 0`` (**devices**) — one thread per device lane (``gpu``, ``cpu``,
  ``pcie``); every :class:`~repro.telemetry.tracer.TaskSpan` becomes a
  complete (``"X"``) event whose category is the operator tag.  Counter
  (``"C"``) events also live here, one track per series.
* ``pid 1`` (**server**) — one thread per annotation lane (``server``
  iterations, ``degraded`` windows, ``faults``); regions become ``"X"``
  events, instants become ``"i"`` markers.
* ``pid 2`` (**requests**) — one thread per request, carrying its
  ``queued`` / ``prefill`` / ``decode`` phase spans and instant lifecycle
  events — the per-request swim lanes of the timeline.

Timestamps are microseconds (the unit the format expects); the recorded
seconds are multiplied by 1e6 on the way out.  The JSONL exporter instead
emits one self-describing JSON object per event, in seconds, for ad-hoc
analysis with ``jq``/pandas.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.tracer import Tracer

__all__ = [
    "to_chrome_trace",
    "save_chrome_trace",
    "to_jsonl_records",
    "save_jsonl",
]

DEVICE_PID = 0
SERVER_PID = 1
REQUEST_PID = 2

_US = 1e6  # seconds -> microseconds


def _meta(metadata: str, pid: int, tid: int = 0, *, label: str) -> dict:
    """A Chrome metadata ("M") event naming a process or thread."""
    return {
        "name": metadata,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    }


def to_chrome_trace(tracer: "Tracer") -> list[dict]:
    """The recorded events as a Chrome ``trace_event`` object list."""
    events: list[dict] = [
        _meta("process_name", DEVICE_PID, label="devices"),
        _meta("process_name", SERVER_PID, label="server"),
        _meta("process_name", REQUEST_PID, label="requests"),
    ]

    # -- device lanes ----------------------------------------------------------
    device_tids = {lane: i for i, lane in enumerate(tracer.lanes)}
    for lane, tid in device_tids.items():
        events.append(_meta("thread_name", DEVICE_PID, tid, label=lane))
    for span in tracer.task_spans:
        event = {
            "name": span.name,
            "cat": span.tag or "op",
            "ph": "X",
            "pid": DEVICE_PID,
            "tid": device_tids[span.lane],
            "ts": span.start * _US,
            "dur": span.duration * _US,
        }
        if span.iteration is not None:
            event["args"] = {"iteration": span.iteration}
        events.append(event)

    # -- annotation lanes (server iterations, degraded windows, faults) -------
    annotation_lanes = sorted(
        {r.lane for r in tracer.regions} | {i.lane for i in tracer.instants}
    )
    annotation_tids = {lane: i for i, lane in enumerate(annotation_lanes)}
    for lane, tid in annotation_tids.items():
        events.append(_meta("thread_name", SERVER_PID, tid, label=lane))
    for region in tracer.regions:
        event = {
            "name": region.name,
            "cat": region.lane,
            "ph": "X",
            "pid": SERVER_PID,
            "tid": annotation_tids[region.lane],
            "ts": region.start * _US,
            "dur": (region.end - region.start) * _US,
        }
        if region.args:
            event["args"] = dict(region.args)
        events.append(event)
    for instant in tracer.instants:
        event = {
            "name": instant.name,
            "cat": instant.lane,
            "ph": "i",
            "s": "t",  # thread-scoped marker
            "pid": SERVER_PID,
            "tid": annotation_tids[instant.lane],
            "ts": instant.time * _US,
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)

    # -- request swim lanes ----------------------------------------------------
    request_ids = sorted(
        {s.request_id for s in tracer.request_spans}
        | {e.request_id for e in tracer.request_events}
    )
    request_tids = {rid: i for i, rid in enumerate(request_ids)}
    for rid, tid in request_tids.items():
        events.append(_meta("thread_name", REQUEST_PID, tid, label=f"req-{rid}"))
    for span in tracer.request_spans:
        events.append(
            {
                "name": span.phase,
                "cat": "request",
                "ph": "X",
                "pid": REQUEST_PID,
                "tid": request_tids[span.request_id],
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
            }
        )
    for ev in tracer.request_events:
        events.append(
            {
                "name": ev.kind,
                "cat": "request",
                "ph": "i",
                "s": "t",
                "pid": REQUEST_PID,
                "tid": request_tids[ev.request_id],
                "ts": ev.time * _US,
            }
        )

    # -- counter tracks --------------------------------------------------------
    for sample in tracer.counters:
        events.append(
            {
                "name": sample.series,
                "ph": "C",
                "pid": DEVICE_PID,
                "ts": sample.time * _US,
                "args": {"value": sample.value},
            }
        )
    return events


def save_chrome_trace(tracer: "Tracer", path) -> None:
    """Write :func:`to_chrome_trace` output as a ``.trace.json`` file."""
    payload = {"traceEvents": to_chrome_trace(tracer), "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def to_jsonl_records(tracer: "Tracer") -> list[dict]:
    """One self-describing dict per event (times in seconds)."""
    records: list[dict] = []
    for t in tracer.task_spans:
        record = {
            "type": "task",
            "name": t.name,
            "lane": t.lane,
            "start": t.start,
            "end": t.end,
            "tag": t.tag,
            "iteration": t.iteration,
        }
        if t.cost is not None:
            record["cost"] = {"bound": t.cost.bound, **t.cost.components()}
        records.append(record)
    for s in tracer.request_spans:
        records.append(
            {
                "type": "request_span",
                "request_id": s.request_id,
                "phase": s.phase,
                "start": s.start,
                "end": s.end,
            }
        )
    for e in tracer.request_events:
        records.append(
            {
                "type": "request_event",
                "request_id": e.request_id,
                "kind": e.kind,
                "time": e.time,
            }
        )
    for r in tracer.regions:
        records.append(
            {
                "type": "region",
                "lane": r.lane,
                "name": r.name,
                "start": r.start,
                "end": r.end,
                "args": dict(r.args) if r.args else None,
            }
        )
    for i in tracer.instants:
        records.append(
            {
                "type": "instant",
                "lane": i.lane,
                "name": i.name,
                "time": i.time,
                "args": dict(i.args) if i.args else None,
            }
        )
    for c in tracer.counters:
        records.append(
            {
                "type": "counter",
                "series": c.series,
                "time": c.time,
                "value": c.value,
            }
        )
    return records


def save_jsonl(tracer: "Tracer", path) -> None:
    """Write :func:`to_jsonl_records` output, one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for record in to_jsonl_records(tracer):
            fh.write(json.dumps(record) + "\n")
