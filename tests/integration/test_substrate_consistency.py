"""Consistency checks between the two substrates and the analytic model.

DESIGN.md's central argument is that the performance substrate (roofline
DES) and the numerical substrate (numpy models) describe the same system.
These tests pin the places where they must agree.
"""

import numpy as np
import pytest

from repro.analysis.roofline import throughput_bounds
from repro.engine.baselines import LlamaCppEngine
from repro.engine.numerical import NumericalHybridEngine
from repro.engine.powerinfer import PowerInferEngine
from repro.profiler.bridge import profiles_from_trace
from repro.profiler.profiler import layer_statistics, profile_numerical
from repro.quant.formats import FP16


class TestNumericalStatsMatchPlanExpectations:
    def test_gpu_load_share_agrees_between_substrates(
        self, tiny_model, tiny_cfg, rng
    ):
        # Build identical placement masks for both substrates; the GPU
        # share of predicted-active neurons measured numerically must match
        # the expectation the plan computes from the same probabilities.
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=24) for _ in range(4)]
        trace = profile_numerical(tiny_model, requests)
        profiles = profiles_from_trace(trace)

        from repro.solver.placement import NeuronGroup, PlacementPolicy

        groups, masks = [], []
        for li in range(tiny_cfg.n_layers):
            groups.append(
                NeuronGroup(
                    name=f"layer{li}.mlp",
                    impacts=profiles[li].probs,
                    neuron_bytes=1.0,
                )
            )
            mask = np.zeros(tiny_cfg.d_ffn, dtype=bool)
            order = np.argsort(profiles[li].probs)[::-1]
            mask[order[: tiny_cfg.d_ffn // 3]] = True  # hottest third on GPU
            masks.append(mask)
        policy = PlacementPolicy(groups=groups, gpu_masks=masks)

        engine = NumericalHybridEngine(
            tiny_model, [None] * tiny_cfg.n_layers, policy=policy
        )
        eval_tokens = rng.integers(0, tiny_cfg.vocab_size, size=64)
        engine.forward_logits(eval_tokens)
        measured_share = engine.stats.gpu_load_share

        expected_on = sum(float(p.probs[m].sum()) for p, m in zip(profiles, masks))
        expected_total = sum(float(p.probs.sum()) for p in profiles)
        expected_share = expected_on / expected_total
        assert measured_share == pytest.approx(expected_share, abs=0.06)

    def test_measured_sparsity_matches_construction(self, tiny_model, tiny_cfg, rng):
        # The tiny fixture was built with ~15% mean activation; the
        # profiler must recover it.
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=32) for _ in range(4)]
        stats = layer_statistics(profile_numerical(tiny_model, requests))
        for s in stats:
            assert s.mean_rate == pytest.approx(0.15, abs=0.07)


class TestAnalyticVsSimulated:
    def test_dense_hybrid_bound_matches_llamacpp_des(self, mini_model, mini_machine, mini_plan_none):
        engine = LlamaCppEngine(mini_plan_none)
        des_rate = 1.0 / engine.simulate_iteration(8, 1).makespan
        gpu_frac = (
            engine.gpu_layer_count()
            * mini_model.layer_bytes(FP16)
            / FP16.nbytes(mini_model.n_layers * mini_model.params_per_layer)
        )
        bound = throughput_bounds(
            mini_model, mini_machine, FP16, gpu_weight_fraction=gpu_frac
        )
        # The closed form ignores KV/LM-head/launch overheads -> it is an
        # upper bound, but within 2x at this scale.
        assert bound.dense_hybrid >= des_rate * 0.9
        assert bound.dense_hybrid < des_rate * 2.5

    def test_sparse_hybrid_bound_brackets_powerinfer_des(
        self, mini_model, mini_machine, mini_plan
    ):
        engine = PowerInferEngine(mini_plan)
        des_rate = 1.0 / engine.simulate_iteration(8, 1).makespan
        mlp_rate = float(np.mean([p.mean() for p in mini_plan.mlp_probs]))
        attn_rate = float(np.mean([p.mean() for p in mini_plan.attn_probs]))
        bound = throughput_bounds(
            mini_model,
            mini_machine,
            FP16,
            mlp_active_rate=mlp_rate,
            attn_active_rate=attn_rate,
            hot_capture=mini_plan.gpu_neuron_load_share(),
        )
        # The closed form omits every fixed overhead (sync, launches,
        # predictors, transfers, LM head), which dominate at this small
        # scale: it must upper-bound the DES, but within a small factor.
        assert bound.sparse_hybrid >= des_rate * 0.9
        assert bound.sparse_hybrid < des_rate * 4.0
