"""Shared helpers for the benchmark suite.

Every bench runs its experiment exactly once through pytest-benchmark
(``pedantic(rounds=1)`` — the experiments are deterministic simulations,
not microbenchmarks) and records the resulting table under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.

Each result is persisted twice via the shared writer in
:mod:`repro.bench.report`: the human-readable ``<name>.txt`` table (what
EXPERIMENTS.md quotes) and a structured ``<name>.json`` document (title +
rows) so ``repro bench-check`` and other tooling consume the exact same
numbers.  NaN cells — legal in floats, illegal in strict JSON — are
serialized as ``null``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.report import save_rows

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_rows():
    """Fixture: ``record_rows(name, rows, title)`` writes and prints a table.

    Writes ``results/<name>.txt`` (formatted table) and
    ``results/<name>.json`` (structured ``{"title", "rows"}``) through
    :func:`repro.bench.report.save_rows`.
    """

    def _record(name: str, rows: list[dict], title: str = "") -> None:
        text = save_rows(RESULTS_DIR, name, rows, title=title)
        print(f"\n{text}")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
