"""Failure-injection and boundary-condition tests across the engine stack."""

import dataclasses

import numpy as np
import pytest

from repro.engine.plan import DeploymentPlan
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.spec import PC_HIGH
from repro.models.config import ModelConfig
from repro.quant.formats import FP16


def plan_with(model, mlp_probs_value, gpu_frac, machine=PC_HIGH, attn_probs_value=0.5):
    n = model.n_layers
    mlp_probs = [np.full(model.d_ffn, mlp_probs_value) for _ in range(n)]
    attn_probs = [np.full(model.n_heads, attn_probs_value) for _ in range(n)]
    mlp_masks = []
    attn_masks = []
    for _ in range(n):
        m = np.zeros(model.d_ffn, dtype=bool)
        m[: int(gpu_frac * model.d_ffn)] = True
        mlp_masks.append(m)
        a = np.zeros(model.n_heads, dtype=bool)
        a[: int(gpu_frac * model.n_heads)] = True
        attn_masks.append(a)
    return DeploymentPlan(
        model=model,
        machine=machine,
        dtype=FP16,
        mlp_probs=mlp_probs,
        attn_probs=attn_probs,
        mlp_gpu_masks=mlp_masks,
        attn_gpu_masks=attn_masks,
        predictor_bytes=[1000.0] * n,
    )


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(
        name="edge", n_layers=2, d_model=128, d_ffn=512, n_heads=4, vocab_size=256
    )


class TestDegenerateActivations:
    def test_zero_activation_probability(self, small_model):
        # A (hypothetical) fully inactive model still produces a schedule:
        # predictors, merges, and the LM head run; neuron ops are empty.
        plan = plan_with(small_model, 0.0, gpu_frac=0.5, attn_probs_value=0.0)
        result = PowerInferEngine(plan).simulate_request(4, 4)
        assert result.tokens_per_second > 0

    def test_fully_dense_activation(self, small_model):
        plan = plan_with(small_model, 1.0, gpu_frac=0.5)
        sparse_plan = plan_with(small_model, 0.05, gpu_frac=0.5)
        dense_t = PowerInferEngine(plan).simulate_request(4, 8)
        sparse_t = PowerInferEngine(sparse_plan).simulate_request(4, 8)
        assert sparse_t.tokens_per_second > dense_t.tokens_per_second

    def test_single_layer_model(self):
        model = ModelConfig(
            name="one", n_layers=1, d_model=128, d_ffn=512, n_heads=4, vocab_size=128
        )
        plan = plan_with(model, 0.1, gpu_frac=0.5)
        result = PowerInferEngine(plan).simulate_request(4, 4)
        assert result.total_time > 0

    def test_sampled_mode_with_extreme_probs(self, small_model, rng):
        plan = plan_with(small_model, 1.0, gpu_frac=0.0)
        result = PowerInferEngine(plan).simulate_request(4, 4, rng=rng)
        assert result.total_time > 0


class TestExtremeShapes:
    def test_batch_1024(self, small_model):
        plan = plan_with(small_model, 0.1, gpu_frac=0.5)
        engine = PowerInferEngine(plan)
        r = engine.simulate_request(4, 4, batch=1024)
        assert np.isfinite(r.tokens_per_second)

    def test_very_long_context(self, small_model):
        plan = plan_with(small_model, 0.1, gpu_frac=0.5)
        engine = PowerInferEngine(plan)
        short = engine.simulate_iteration(1, 1).makespan
        long = engine.simulate_iteration(100_000, 1).makespan
        assert long > short

    def test_single_token_output(self, small_model):
        plan = plan_with(small_model, 0.1, gpu_frac=0.5)
        r = PowerInferEngine(plan).simulate_request(1, 1)
        assert r.decode_time > 0

    def test_decode_samples_capped_by_output(self, small_model):
        plan = plan_with(small_model, 0.1, gpu_frac=0.5)
        r = PowerInferEngine(plan).simulate_request(4, 2, decode_samples=10)
        assert r.total_time > 0


class TestDegenerateMachines:
    def test_equal_cpu_gpu_bandwidth_disables_gpu_advantage(self, small_model):
        from repro.solver.ilp import communication_threshold
        from repro.solver.placement import NeuronGroup

        slow_gpu = dataclasses.replace(
            PC_HIGH,
            gpu=dataclasses.replace(
                PC_HIGH.gpu, memory_bandwidth=PC_HIGH.cpu.memory_bandwidth,
                memory_efficiency=PC_HIGH.cpu.memory_efficiency,
            ),
        )
        group = NeuronGroup(
            name="g", impacts=np.ones(16), neuron_bytes=1e6
        )
        # No bandwidth advantage -> syncing is never worth it -> C_l == 0
        # sentinel (placement on "GPU" pointless but harmless).
        assert communication_threshold(group, slow_gpu) == 0

    def test_zero_latency_link(self, small_model):
        instant = dataclasses.replace(
            PC_HIGH, link=dataclasses.replace(PC_HIGH.link, latency=0.0)
        )
        plan = plan_with(small_model, 0.1, gpu_frac=0.5, machine=instant)
        base_plan = plan_with(small_model, 0.1, gpu_frac=0.5)
        fast = PowerInferEngine(plan).simulate_request(4, 8)
        slow = PowerInferEngine(base_plan).simulate_request(4, 8)
        assert fast.total_time <= slow.total_time
