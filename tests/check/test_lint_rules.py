"""Positive-detection tests: every lint rule fires on a minimal snippet.

Each rule gets (at least) one snippet that fires it and one near-identical
clean snippet that must not — the clean side pins down the rule's edges
(literal-zero comparisons, seeded RNG calls, sorted() wrappers, ...).
"""

from pathlib import Path

import pytest

from repro.check.lint import RULES, lint_paths, lint_source, report_as_dict

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_fired(source: str) -> list[str]:
    return [v.rule for v in lint_source(source)]


class TestWallClock:
    def test_time_time_fires(self):
        assert rules_fired("import time\nt = time.time()\n") == ["wall-clock"]

    def test_perf_counter_fires(self):
        assert "wall-clock" in rules_fired("import time\nt = time.perf_counter()\n")

    def test_datetime_now_fires(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert "wall-clock" in rules_fired(src)

    def test_from_import_datetime_now_fires(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert "wall-clock" in rules_fired(src)

    def test_simulated_clock_arithmetic_clean(self):
        assert rules_fired("now = 0.0\nnow = now + cost\n") == []


class TestStdlibRandom:
    def test_import_fires(self):
        assert "stdlib-random" in rules_fired("import random\n")

    def test_from_import_fires(self):
        assert "stdlib-random" in rules_fired("from random import choice\n")

    def test_call_fires(self):
        src = "import random\nx = random.random()\n"
        assert rules_fired(src).count("stdlib-random") == 2  # import + call

    def test_numpy_generator_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\nx = rng.random()\n"
        assert rules_fired(src) == []


class TestNpLegacyRandom:
    def test_module_level_call_fires(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert "np-legacy-random" in rules_fired(src)

    def test_seed_call_fires(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert "np-legacy-random" in rules_fired(src)

    def test_generator_api_clean(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.Generator(np.random.PCG64(1))\n"
            "ss = np.random.SeedSequence(2)\n"
        )
        assert rules_fired(src) == []


class TestUnseededRng:
    def test_argless_default_rng_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_fired(src) == ["unseeded-rng"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert rules_fired(src) == []


class TestFloatTimeEq:
    def test_time_name_eq_fires(self):
        assert rules_fired("ok = start_time == end_time\n") == ["float-time-eq"]

    def test_attribute_eq_fires(self):
        assert "float-time-eq" in rules_fired("ok = result.makespan == other.makespan\n")

    def test_not_eq_fires(self):
        assert "float-time-eq" in rules_fired("ok = deadline != arrival\n")

    def test_zero_literal_exempt(self):
        # `makespan == 0` guards division; exact zero is a meaningful
        # sentinel, not float arithmetic.
        assert rules_fired("if makespan == 0:\n    pass\n") == []

    def test_non_numeric_literal_exempt(self):
        assert rules_fired("if end is not None and end == 'never':\n    pass\n") == []

    def test_non_time_names_clean(self):
        assert rules_fired("ok = count == total\n") == []

    def test_inequalities_clean(self):
        assert rules_fired("ok = start_time <= end_time\n") == []


class TestInlineSimTask:
    def test_bare_call_fires(self):
        src = "t = SimTask('a', 'gpu', 1.0)\n"
        assert rules_fired(src) == ["inline-sim-task"]

    def test_attribute_call_fires(self):
        src = "import repro.hardware.events as ev\nt = ev.SimTask('a', 'gpu', 1.0)\n"
        assert "inline-sim-task" in rules_fired(src)

    def test_blessed_constructors_clean(self):
        src = "t = op_task('a', 'gpu', device, work)\nu = transfer_task('b', link, 4.0)\n"
        assert rules_fired(src) == []


class TestTracerDefault:
    def test_required_tracer_fires(self):
        assert rules_fired("def f(tracer):\n    pass\n") == ["tracer-default"]

    def test_recording_default_fires(self):
        assert rules_fired("def f(tracer=Tracer()):\n    pass\n") == ["tracer-default"]

    def test_none_default_clean(self):
        assert rules_fired("def f(tracer=None):\n    pass\n") == []

    def test_null_tracer_default_clean(self):
        assert rules_fired("def f(tracer=NullTracer()):\n    pass\n") == []

    def test_kwonly_tracer_checked(self):
        assert "tracer-default" in rules_fired("def f(*, tracer):\n    pass\n")


class TestMutableDefault:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "list()", "dict()", "bytearray()", "[x for x in y]"]
    )
    def test_mutable_defaults_fire(self, default):
        src = f"def f(x={default}):\n    pass\n"
        assert rules_fired(src) == ["mutable-default"]

    def test_kwonly_mutable_default_fires(self):
        assert "mutable-default" in rules_fired("def f(*, x=[]):\n    pass\n")

    def test_immutable_defaults_clean(self):
        src = "def f(a=None, b=0, c=(), d='x', e=frozenset()):\n    pass\n"
        assert rules_fired(src) == []


class TestUnstableIteration:
    def test_set_display_fires(self):
        assert rules_fired("for x in {1, 2}:\n    pass\n") == ["unstable-iteration"]

    def test_set_call_fires(self):
        assert "unstable-iteration" in rules_fired("for x in set(names):\n    pass\n")

    def test_comprehension_over_set_fires(self):
        assert "unstable-iteration" in rules_fired("out = [x for x in set(names)]\n")

    def test_sorted_wrapper_clean(self):
        assert rules_fired("for x in sorted(set(names)):\n    pass\n") == []

    def test_dict_fromkeys_clean(self):
        assert rules_fired("for x in dict.fromkeys(names):\n    pass\n") == []


class TestParseError:
    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def (:\n")
        assert [v.rule for v in violations] == ["parse-error"]
        assert violations[0].line == 1


class TestRuleSelection:
    def test_subset_runs_only_selected(self):
        src = "import random\nt = time.time()\n"
        only = lint_source(src, rules=["wall-clock"])
        assert [v.rule for v in only] == ["wall-clock"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            lint_source("x = 1\n", rules=["no-such-rule"])

    def test_every_documented_rule_has_description(self):
        for rule, description in RULES.items():
            assert rule == rule.lower()
            assert description


class TestViolationMetadata:
    def test_location_and_serialization(self):
        violations = lint_source("import time\nt = time.time()\n", path="mod.py")
        (v,) = violations
        assert (v.path, v.rule, v.line) == ("mod.py", "wall-clock", 2)
        assert v.to_dict() == {
            "rule": "wall-clock",
            "path": "mod.py",
            "line": 2,
            "col": v.col,
            "message": v.message,
        }
        assert "mod.py:2:" in v.format()

    def test_report_dict_counts(self):
        violations = lint_source("import random\nimport time\nt = time.time()\n")
        doc = report_as_dict(violations, n_files=1)
        assert doc["ok"] is False
        assert doc["n_violations"] == len(violations)
        assert doc["by_rule"]["wall-clock"] == 1


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        """Satellite: `repro lint src/repro` exits 0 on this branch."""
        violations, n_files = lint_paths([REPO_ROOT / "src" / "repro"])
        assert n_files > 50
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_missing_path_rejected(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([REPO_ROOT / "no-such-dir"])
