"""Abstract base for performance-simulated inference engines.

Every engine — PowerInfer and the baselines — implements one method:
:meth:`PerfEngine.iteration_tasks`, producing the operator DAG for a single
inference iteration (one token block) at a given context length.  The base
class schedules that DAG on the machine's GPU/CPU/PCIe resources via the
discrete-event simulator and assembles end-to-end request results
(prompt phase + generation phase, paper Section 2.1).

Generation-phase cost varies (slowly, via the KV cache) with context
length, so :meth:`simulate_request` samples the per-token DAG at a few
context points across the decode window and integrates, rather than
simulating all ``output_len`` DAGs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.plan import DeploymentPlan
from repro.engine.results import RequestResult
from repro.hardware.costmodel import CostModel, OpWork
from repro.hardware.events import EventSimulator, ScheduleResult, SimTask
from repro.units import Bytes, Flops, Ratio, Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.faults import FaultSchedule
    from repro.hardware.spec import DeviceSpec, LinkSpec, MachineSpec
    from repro.telemetry.tracer import Tracer

__all__ = ["PerfEngine", "RESOURCES", "op_task", "transfer_task"]

RESOURCES = ("gpu", "cpu", "pcie")


def op_task(
    name: str,
    resource: str,
    device: "DeviceSpec",
    work: OpWork,
    deps: tuple[str, ...] = (),
    tag: str = "",
    sync: Seconds = 0.0,
    include_launch: bool = True,
    priority: int = 0,
) -> SimTask:
    """A :class:`SimTask` priced by the roofline model, cost terms attached.

    The attached :class:`~repro.hardware.costmodel.TaskCost` is what lets
    the attribution layer decompose the span into memory/compute/launch/
    sync components and re-price it under perturbed hardware; its
    ``duration`` is bit-identical to ``sync + CostModel.op_time(...)``.
    """
    cost = CostModel.op_cost(work, device, include_launch=include_launch, sync=sync)
    return SimTask(  # repro-lint: disable=inline-sim-task -- the blessed constructor itself
        name, resource, cost.duration, deps=deps, priority=priority, tag=tag, cost=cost
    )


def transfer_task(
    name: str,
    link: "LinkSpec",
    nbytes: Bytes,
    deps: tuple[str, ...] = (),
    tag: str = "transfer",
    unified_memory: bool = False,
    priority: int = 0,
) -> SimTask:
    """A PCIe :class:`SimTask` priced by the link model, cost attached."""
    cost = CostModel.transfer_cost(nbytes, link, unified_memory=unified_memory)
    return SimTask(  # repro-lint: disable=inline-sim-task -- the blessed constructor itself
        name, "pcie", cost.duration, deps=deps, priority=priority, tag=tag, cost=cost
    )


class PerfEngine(ABC):
    """An inference engine whose execution is costed on the simulator."""

    name = "base"

    def __init__(self, plan: DeploymentPlan) -> None:
        self.plan = plan
        self.machine = plan.machine
        self.model = plan.model
        self.dtype = plan.dtype

    # ---- to implement --------------------------------------------------------

    @abstractmethod
    def iteration_tasks(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int,
        rng: np.random.Generator | None = None,
    ) -> list[SimTask]:
        """Operator DAG for one inference iteration.

        Args:
            ctx_len: Tokens already in the KV cache.
            n_tokens: Tokens processed in this iteration (prompt phase:
                the prompt length; generation phase: 1).
            batch: Number of concurrent requests.
            rng: When given, activation counts are sampled; otherwise
                expected values are used (deterministic).
        """

    def gpu_load_share(self, batch: int = 1) -> Ratio:
        """Fraction of neuron computation served by the GPU (Figure 12)."""
        return self.plan.gpu_neuron_load_share(batch)

    # ---- simulation -----------------------------------------------------------

    def simulate_iteration(
        self,
        ctx_len: int,
        n_tokens: int,
        batch: int = 1,
        rng: np.random.Generator | None = None,
        machine: "MachineSpec | None" = None,
        tracer: "Tracer | None" = None,
        trace_t0: Seconds = 0.0,
        trace_iteration: int | None = None,
        validate: bool = False,
    ) -> ScheduleResult:
        """Schedule one iteration's DAG; returns the timing result.

        ``machine`` overrides the plan's machine for this one iteration —
        the hook fault injection uses to make iteration cost time-varying
        (a :class:`~repro.hardware.faults.FaultSchedule` perturbs the spec
        per epoch; see :meth:`simulate_iteration_at`).  The override is
        visible to :meth:`iteration_tasks` via ``self.machine`` and is
        restored before returning.

        With a ``tracer`` attached, every scheduled task is recorded as a
        device-lane span shifted to global time ``trace_t0`` (and labelled
        ``trace_iteration``).  With ``tracer=None`` — the default — the
        telemetry layer costs one ``is None`` check and the result is
        bit-identical to an untraced run.

        ``validate=True`` replays the realized schedule against the
        simulator invariants (:func:`repro.check.schedule.validate_schedule`
        — exclusive devices, dependency order, cost accounting) and raises
        :class:`~repro.check.schedule.ScheduleValidationError` on any
        violation.  Off by default: validation is a debugging/CI hook, not
        a per-iteration cost.
        """
        sim = EventSimulator(list(RESOURCES))
        if machine is None or machine is self.machine:
            tasks = self.iteration_tasks(ctx_len, n_tokens, batch, rng)
        else:
            pristine = self.machine
            self.machine = machine
            try:
                tasks = self.iteration_tasks(ctx_len, n_tokens, batch, rng)
            finally:
                self.machine = pristine
        result = sim.run(tasks)
        if validate:
            # Imported lazily: repro.check is diagnostic tooling, and the
            # default (validate=False) path must not pay for it.
            from repro.check.schedule import require_valid, validate_schedule

            require_valid(validate_schedule(result, tasks))
        if tracer is not None and tracer.enabled:
            tracer.add_schedule(result, t0=trace_t0, iteration=trace_iteration)
        return result

    def simulate_iteration_at(
        self,
        now: Seconds,
        faults: "FaultSchedule | None",
        ctx_len: int,
        n_tokens: int,
        batch: int = 1,
        rng: np.random.Generator | None = None,
        tracer: "Tracer | None" = None,
        trace_iteration: int | None = None,
        validate: bool = False,
    ) -> ScheduleResult:
        """One iteration at simulated time ``now`` under a fault schedule.

        With ``faults`` given, the machine spec is perturbed by whatever
        fault windows are active at ``now`` before costing the DAG, making
        the simulation time-varying; with ``faults=None`` this is exactly
        :meth:`simulate_iteration`.  A ``tracer`` records the scheduled
        tasks as device spans anchored at ``now`` on the global timeline.
        """
        machine = None
        if faults is not None:
            machine = faults.perturbed_machine(self.machine, now)
        return self.simulate_iteration(
            ctx_len,
            n_tokens,
            batch,
            rng,
            machine=machine,
            tracer=tracer,
            trace_t0=now,
            trace_iteration=trace_iteration,
            validate=validate,
        )

    def simulate_request(
        self,
        input_len: int,
        output_len: int,
        batch: int = 1,
        decode_samples: int = 4,
        rng: np.random.Generator | None = None,
        tracer: "Tracer | None" = None,
        trace_t0: Seconds = 0.0,
    ) -> RequestResult:
        """Simulate a full request: prompt phase + ``output_len`` decode steps.

        Decode cost is evaluated at ``decode_samples`` context lengths
        spread over the generation window and averaged (KV growth is linear
        in context, so the mean over evenly spaced samples integrates it).

        A ``tracer`` records the *sampled* timeline starting at
        ``trace_t0`` — the prompt iteration followed by each sampled decode
        iteration back to back (iteration 0 is the prompt).  The integrated
        result itself is bit-identical with or without a tracer.
        """
        if input_len <= 0 or output_len <= 0 or batch <= 0:
            raise ValueError("input_len, output_len, batch must be positive")
        prompt = self.simulate_iteration(
            0, input_len, batch, rng, tracer=tracer, trace_t0=trace_t0, trace_iteration=0
        )

        samples = min(decode_samples, output_len)
        ctx_points = np.linspace(input_len, input_len + output_len - 1, samples)
        decode_time = 0.0
        decode_tags: dict[str, float] = {}
        trace_now = trace_t0 + prompt.makespan
        for i, ctx in enumerate(ctx_points):
            result = self.simulate_iteration(
                int(ctx),
                1,
                batch,
                rng,
                tracer=tracer,
                trace_t0=trace_now,
                trace_iteration=i + 1,
            )
            trace_now += result.makespan
            decode_time += result.makespan
            for tag, t in result.time_by_tag().items():
                decode_tags[tag] = decode_tags.get(tag, 0.0) + t
        scale = output_len / samples
        decode_time *= scale

        breakdown = dict(prompt.time_by_tag())
        for tag, t in decode_tags.items():
            breakdown[tag] = breakdown.get(tag, 0.0) + t * scale

        return RequestResult(
            engine=self.name,
            model=self.model.name,
            input_len=input_len,
            output_len=output_len,
            batch=batch,
            prompt_time=prompt.makespan,
            decode_time=decode_time,
            breakdown=breakdown,
            gpu_load_share=self.gpu_load_share(batch),
        )

    # ---- KV-cache footprint (serving admission control) -------------------------

    def kv_bytes_per_token(self) -> Bytes:
        """KV-cache bytes appended per token across all layers."""
        return self.model.kv_cache_bytes_per_token(self.dtype)

    def request_kv_bytes(self, input_len: int, output_len: int) -> Bytes:
        """Worst-case KV footprint of one request (prompt + full response).

        This is what a continuous-batching server must reserve at admission
        so the request can always run to completion without eviction.
        """
        if input_len <= 0 or output_len <= 0:
            raise ValueError("input_len and output_len must be positive")
        return (input_len + output_len) * self.kv_bytes_per_token()

    def kv_budget_bytes(self) -> Bytes:
        """GPU memory left for KV cache after plan-resident allocations.

        Usable GPU capacity (after the activation/scratch reserve) minus
        hot neuron weights, predictors, and embeddings.  Clamped at zero —
        a fully weight-packed GPU leaves no KV budget, and serving callers
        must then supply an explicit budget.
        """
        usable = self.machine.gpu.memory_capacity * (1.0 - self.plan.gpu_memory_reserve)
        resident = (
            self.plan.gpu_weight_bytes
            + self.plan.total_predictor_bytes
            + self.plan.embedding_bytes
        )
        return max(usable - resident, 0.0)

    # ---- shared cost helpers ---------------------------------------------------

    def _activation_bytes(self, rows: int) -> Bytes:
        """Bytes of one hidden-state tensor (FP32 activations)."""
        return rows * self.model.d_model * 4.0

    def _kv_read_bytes(self, ctx_len: int, n_tokens: int, batch: int) -> Bytes:
        """KV-cache bytes read by one layer's attention in this iteration.

        Each of the ``n_tokens`` new positions reads all prior K and V; for
        a prompt block the average prior length is ``ctx + n/2``.
        """
        avg_context = ctx_len + n_tokens / 2.0
        kv_bytes_per_pos = 2.0 * self.model.kv_dim * self.dtype.bytes_per_param
        return batch * n_tokens * avg_context * kv_bytes_per_pos

    def _kv_flops(self, ctx_len: int, n_tokens: int, batch: int) -> Flops:
        avg_context = ctx_len + n_tokens / 2.0
        return batch * n_tokens * avg_context * 4.0 * self.model.kv_dim
