"""Tests for the trace -> activation-model bridge."""

import numpy as np
import pytest

from repro.profiler.bridge import activation_model_from_trace, profiles_from_trace
from repro.profiler.profiler import profile_numerical, profile_statistical
from repro.profiler.trace import ActivationTrace
from repro.sparsity.activation import ActivationModel, LayerActivationProfile


class TestProfilesFromTrace:
    def test_rates_become_probabilities(self, rng):
        trace = ActivationTrace.empty(2, 8)
        trace.record_mlp(0, np.ones((4, 8), dtype=bool))
        trace.record_mlp(1, np.zeros((4, 8), dtype=bool))
        trace.advance_tokens(4)
        profiles = profiles_from_trace(trace)
        assert profiles[0].mean_rate == pytest.approx(1.0)
        assert profiles[1].mean_rate == pytest.approx(0.0)

    def test_round_trip_statistical(self, rng):
        # Synthesize -> sample -> re-profile recovers the rates.
        probs = rng.random(128) * 0.4
        am = ActivationModel([LayerActivationProfile(probs)], rng)
        trace = profile_statistical(am, n_tokens=3000)
        recovered = profiles_from_trace(trace)[0].probs
        assert np.abs(recovered - probs).mean() < 0.02


class TestMeasuredProfilesDriveSimulator:
    def test_numerical_trace_feeds_perf_engine(self, tiny_model, tiny_cfg, rng):
        # Close the loop: profile the real numpy model, then sample a
        # performance-engine activation model from the measurement.
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=16) for _ in range(4)]
        trace = profile_numerical(tiny_model, requests)
        am = activation_model_from_trace(trace, rng)
        assert am.n_layers == tiny_cfg.n_layers
        mask = am.sample_mlp_mask(0)
        assert mask.shape == (tiny_cfg.d_ffn,)
        # The sampled rate reflects the measured ~15% activation rate.
        rate = np.mean([am.sample_mlp_mask(0).mean() for _ in range(50)])
        assert 0.05 < rate < 0.35

    def test_attn_profiles_included_when_traced(self, rng):
        trace = ActivationTrace.empty(1, 8, attn_neurons=4)
        trace.record_mlp(0, np.ones((2, 8), dtype=bool))
        trace.record_attn(0, np.ones((2, 4), dtype=bool))
        trace.advance_tokens(2)
        am = activation_model_from_trace(trace, rng)
        assert am.sample_attn_mask(0).shape == (4,)

    def test_attn_profiles_absent_when_untraced(self, rng):
        trace = ActivationTrace.empty(1, 8)
        trace.record_mlp(0, np.ones((2, 8), dtype=bool))
        trace.advance_tokens(2)
        am = activation_model_from_trace(trace, rng)
        with pytest.raises(ValueError):
            am.sample_attn_mask(0)
