"""Figure 14 — batched inference: Falcon-40B on PC-High.

PowerInfer's advantage shrinks as batch size grows because the *union* of
activations across a batch is denser than any single token's activations
(joint activations reduce effective sparsity).  Paper: ~6x average speedup
below batch 32, still ~4.4x at batch 32.
"""

from __future__ import annotations

from repro.bench.runner import make_engine

__all__ = ["run_fig14", "BATCH_SIZES"]

BATCH_SIZES = (1, 2, 4, 8, 16, 32)


def run_fig14(
    model_name: str = "falcon-40b",
    machine_name: str = "pc-high",
    dtype_name: str = "fp16",
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    input_len: int = 64,
    output_len: int = 128,
) -> list[dict]:
    """Per-batch tokens/s and speedup over llama.cpp."""
    powerinfer = make_engine("powerinfer", model_name, machine_name, dtype_name)
    llama = make_engine("llama.cpp", model_name, machine_name, dtype_name)
    rows = []
    for batch in batch_sizes:
        pi = powerinfer.simulate_request(input_len, output_len, batch=batch)
        lc = llama.simulate_request(input_len, output_len, batch=batch)
        rows.append(
            {
                "batch": batch,
                "powerinfer_tps": pi.tokens_per_second,
                "llamacpp_tps": lc.tokens_per_second,
                "speedup": pi.tokens_per_second / lc.tokens_per_second,
            }
        )
    return rows
