"""Memory pools with capacity accounting.

The placement solver and engine need to know, for each device, how much
memory is committed to model weights, predictors, KV cache, and scratch
buffers.  :class:`MemoryPool` is a simple named-allocation accountant: it
does not simulate addresses, only capacity, which is the constraint that
matters for neuron placement (paper Inequality 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OutOfMemoryError", "Allocation", "MemoryPool"]


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation does not fit in the pool."""


@dataclass(frozen=True)
class Allocation:
    """A named reservation inside a :class:`MemoryPool`."""

    name: str
    nbytes: float


@dataclass
class MemoryPool:
    """Tracks named allocations against a fixed capacity.

    Attributes:
        name: Pool identifier (usually the device name).
        capacity: Total bytes available.
        reserve_fraction: Fraction of capacity held back for runtime
            scratch (activation buffers, fragmentation headroom).
    """

    name: str
    capacity: float
    reserve_fraction: float = 0.0
    _allocations: dict[str, Allocation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")

    @property
    def usable_capacity(self) -> float:
        """Capacity minus the scratch reserve."""
        return self.capacity * (1.0 - self.reserve_fraction)

    @property
    def used(self) -> float:
        """Bytes currently allocated."""
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free(self) -> float:
        """Bytes still available for allocation."""
        return self.usable_capacity - self.used

    def allocate(self, name: str, nbytes: float) -> Allocation:
        """Reserve ``nbytes`` under ``name``.

        Raises:
            OutOfMemoryError: If the allocation exceeds remaining capacity.
            ValueError: If ``name`` is already allocated or size is negative.
        """
        alloc = self.try_allocate(name, nbytes)
        if alloc is None:
            raise OutOfMemoryError(
                f"pool {self.name}: cannot allocate {nbytes / 2**30:.2f} GiB "
                f"({self.free / 2**30:.2f} GiB free of "
                f"{self.usable_capacity / 2**30:.2f} GiB usable)"
            )
        return alloc

    def try_allocate(self, name: str, nbytes: float) -> Allocation | None:
        """Reserve ``nbytes`` under ``name``, or return ``None`` if full.

        The non-raising variant admission controllers use to probe-and-admit
        in one step.  Invalid arguments (negative size, duplicate name)
        still raise ``ValueError``.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists in {self.name}")
        if nbytes > self.free:
            return None
        alloc = Allocation(name=name, nbytes=nbytes)
        self._allocations[name] = alloc
        return alloc

    def release(self, name: str) -> None:
        """Free the allocation named ``name``."""
        try:
            del self._allocations[name]
        except KeyError:
            raise KeyError(f"no allocation named {name!r} in pool {self.name}") from None

    def fits(self, nbytes: float) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        return 0 <= nbytes <= self.free

    def allocations(self) -> dict[str, float]:
        """Snapshot of current allocations as ``{name: nbytes}``."""
        return {name: a.nbytes for name, a in self._allocations.items()}

    def reset(self) -> None:
        """Drop all allocations."""
        self._allocations.clear()
