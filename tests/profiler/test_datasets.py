"""Tests for the synthetic profiling corpora."""

import numpy as np
import pytest

from repro.profiler.datasets import ProfilingCorpus, c4_corpus, wikipedia_corpus


class TestRequests:
    def test_request_count_and_bounds(self, rng):
        corpus = c4_corpus()
        reqs = list(corpus.requests(20, vocab_size=100, rng=rng))
        assert len(reqs) == 20
        for req in reqs:
            assert corpus.min_length <= req.size <= corpus.max_length
            assert req.min() >= 0 and req.max() < 100

    def test_length_distributions_differ(self, rng):
        c4_lens = [r.size for r in c4_corpus().requests(200, 100, rng)]
        wiki_lens = [r.size for r in wikipedia_corpus().requests(200, 100, rng)]
        assert np.mean(wiki_lens) > np.mean(c4_lens)

    def test_deterministic_with_seed(self):
        a = [r.tolist() for r in c4_corpus().requests(5, 50, np.random.default_rng(1))]
        b = [r.tolist() for r in c4_corpus().requests(5, 50, np.random.default_rng(1))]
        assert a == b

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            list(c4_corpus().requests(0, 100, rng))
        with pytest.raises(ValueError):
            list(c4_corpus().requests(5, 0, rng))

    def test_custom_corpus(self, rng):
        corpus = ProfilingCorpus(name="short", mean_length=8, min_length=2, max_length=12)
        lens = [r.size for r in corpus.requests(50, 10, rng)]
        assert max(lens) <= 12
        assert min(lens) >= 2
