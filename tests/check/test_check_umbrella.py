"""The `repro check` umbrella: merged lint + flow report, CLI exit codes.

One command, one schema: every tool's findings land in the shared
``CheckViolation`` shape with a ``tool`` field, the merged JSON document
aggregates by rule, and the process exit code is the disjunction of the
tools' verdicts.  The dynamic verify-schedule sweep is exercised by its
own suite (``test_verify_suite``); here it is skipped so the umbrella
tests stay static-analysis fast.
"""

import json
from pathlib import Path

from repro.check.report import check_to_json, format_check_text, run_check
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

# One lint violation (wall-clock) and one flow violation (dim-add-mix).
DIRTY = (
    "import time\n"
    "\n"
    "from repro.units import Bytes, Seconds\n"
    "\n"
    "\n"
    "def mix(a: Seconds, b: Bytes) -> Seconds:\n"
    "    t = time.time()\n"
    "    return a + b\n"
)

CLEAN = (
    "from repro.units import Seconds\n"
    "\n"
    "\n"
    "def total(a: Seconds, b: Seconds) -> Seconds:\n"
    "    return a + b\n"
)


class TestRunCheck:
    def test_merges_lint_and_flow_findings(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        report = run_check([tmp_path], with_schedule=False)
        assert not report.ok
        assert [t.tool for t in report.tools] == ["lint", "flow"]
        fired = {(v.tool, v.rule) for v in report.violations}
        assert ("lint", "wall-clock") in fired
        assert ("flow", "dim-add-mix") in fired

    def test_clean_tree_is_ok(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        report = run_check([tmp_path], with_schedule=False)
        assert report.ok
        assert report.violations == []

    def test_json_document_shape(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        report = run_check([tmp_path], with_schedule=False)
        doc = json.loads(check_to_json(report))
        assert doc["ok"] is False
        assert doc["n_violations"] == len(report.violations)
        assert set(doc["tools"]) == {"lint", "flow"}
        assert doc["by_rule"]["dim-add-mix"] == 1
        assert doc["by_rule"]["wall-clock"] == 1
        # Every violation entry carries its origin tool and location.
        for entry in doc["violations"]:
            assert entry["tool"] in {"lint", "flow"}
            assert entry["path"].endswith("dirty.py")
            assert isinstance(entry["line"], int)

    def test_flow_stats_surface_in_tool_report(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        report = run_check([tmp_path], with_schedule=False)
        flow_tool = next(t for t in report.tools if t.tool == "flow")
        assert flow_tool.stats["n_files"] == 1
        assert flow_tool.stats["n_functions"] == 1

    def test_text_report_names_each_tool(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        text = format_check_text(run_check([tmp_path], with_schedule=False))
        assert "[lint]" in text
        assert "[flow]" in text
        assert text.splitlines()[-1].startswith("FAIL:")


class TestCli:
    def test_check_flow_exit_codes(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(DIRTY)
        assert main(["check-flow", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "dim-add-mix" in out

        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text(CLEAN)
        assert main(["check-flow", str(clean)]) == 0

    def test_check_umbrella_exit_and_json_out(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(DIRTY)
        out_path = tmp_path / "report.json"
        code = main(
            [
                "check",
                str(tmp_path),
                "--skip-verify",
                "--json-out",
                str(out_path),
            ]
        )
        assert code == 1
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        assert doc["ok"] is False
        assert set(doc["tools"]) == {"lint", "flow"}

    def test_check_flow_rules_filter(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(DIRTY)
        code = main(["check-flow", str(tmp_path), "--rules", "rng-unseeded"])
        assert code == 0  # the only finding is dim-add-mix; filtered out
        capsys.readouterr()

    def test_src_repro_passes_check_flow_cli(self, capsys):
        assert main(["check-flow", str(REPO_ROOT / "src" / "repro")]) == 0
        assert "OK: 0 violation(s)" in capsys.readouterr().out
