#!/usr/bin/env python
"""Inspect one inference iteration: breakdown, utilization, Chrome trace.

Deploys OPT-30B on PC-High, simulates a single decode iteration, prints
where the time goes (per device and per operator class), compares against
the closed-form roofline ceilings, and exports the schedule as a
chrome://tracing / Perfetto JSON for visual inspection.

Usage::

    python examples/inspect_schedule.py [trace.json]
"""

import sys

from repro import FP16, OPT_30B, PC_HIGH
from repro.analysis import throughput_bounds
from repro.bench.runner import cached_plan
from repro.engine import PowerInferEngine


def main() -> None:
    plan = cached_plan(OPT_30B.name, PC_HIGH.name, "fp16", "ilp")
    engine = PowerInferEngine(plan)
    result = engine.simulate_iteration(ctx_len=128, n_tokens=1)

    print(f"One decode iteration of {OPT_30B.name} on {PC_HIGH.name}:")
    print(f"  makespan: {result.makespan * 1e3:.2f} ms "
          f"({1.0 / result.makespan:.1f} tokens/s steady-state)")
    print("\n  device utilization:")
    for resource in ("gpu", "cpu", "pcie"):
        print(f"    {resource:>4}: {result.resource_utilization(resource):6.1%} "
              f"busy ({result.busy_time[resource] * 1e3:6.2f} ms)")

    print("\n  time by operator class:")
    total = sum(result.time_by_tag().values())
    for tag, seconds in sorted(result.time_by_tag().items(), key=lambda kv: -kv[1]):
        print(f"    {tag:>10}: {seconds * 1e3:7.2f} ms ({seconds / total:5.1%})")

    bounds = throughput_bounds(OPT_30B, PC_HIGH, FP16,
                               hot_capture=plan.gpu_neuron_load_share())
    print("\n  roofline context (tokens/s):")
    for row in bounds.as_rows():
        print(f"    {row['bound']:>18}: {row['tokens_per_s']:8.2f}")
    print(f"    {'this schedule':>18}: {1.0 / result.makespan:8.2f}")

    out = sys.argv[1] if len(sys.argv) > 1 else "powerinfer_iteration.json"
    result.save_chrome_trace(out)
    print(f"\n  schedule written to {out} — open in chrome://tracing or "
          f"https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
