"""Deployment plans: everything the online engine needs to run a model.

A :class:`DeploymentPlan` bundles the outputs of PowerInfer's offline phase
(paper Figure 7, steps 1-3): the model architecture, the target machine, the
storage dtype, per-layer activation statistics from the profiler, the
solver's GPU/CPU neuron masks, and the adaptive predictor sizes.  It also
owns the memory accounting — verifying that hot neurons + predictors +
embeddings fit the GPU and that the spill fits host memory (Inequality 6's
real-world counterpart).

Baselines reuse the same plan (they ignore the fields their design lacks,
e.g. llama.cpp ignores masks and predictors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.memory import MemoryPool
from repro.hardware.spec import MachineSpec
from repro.models.config import ModelConfig
from repro.quant.formats import DType

__all__ = ["MemoryReport", "DeploymentPlan"]


@dataclass(frozen=True)
class MemoryReport:
    """Bytes committed on each device under a plan."""

    gpu_used: float
    gpu_capacity: float
    cpu_used: float
    cpu_capacity: float

    @property
    def gpu_fraction(self) -> float:
        return self.gpu_used / self.gpu_capacity

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_used / self.cpu_capacity


def _union_rate(probs: np.ndarray, batch: int) -> np.ndarray:
    if batch == 1:
        return probs
    return 1.0 - (1.0 - probs) ** batch


@dataclass
class DeploymentPlan:
    """Offline-phase output consumed by the online engines.

    Attributes:
        model: Architecture being served.
        machine: Target hardware.
        dtype: Weight storage format.
        mlp_probs: Per-layer per-neuron activation probabilities (profiled).
        attn_probs: Per-layer per-head activation probabilities.
        mlp_gpu_masks: Solver output — True where the MLP neuron is
            GPU-resident.
        attn_gpu_masks: Same for attention heads.
        predictor_bytes: Per-layer predictor memory (resident on GPU).
        gpu_memory_reserve: Fraction of GPU memory held for activations
            and working buffers.
        expected_context: Context length used when a single representative
            KV-cache size is needed.
    """

    model: ModelConfig
    machine: MachineSpec
    dtype: DType
    mlp_probs: list[np.ndarray]
    attn_probs: list[np.ndarray]
    mlp_gpu_masks: list[np.ndarray]
    attn_gpu_masks: list[np.ndarray]
    predictor_bytes: list[float] = field(default_factory=list)
    gpu_memory_reserve: float = 0.08
    expected_context: int = 256

    def __post_init__(self) -> None:
        n = self.model.n_layers
        for name, seq in (
            ("mlp_probs", self.mlp_probs),
            ("attn_probs", self.attn_probs),
            ("mlp_gpu_masks", self.mlp_gpu_masks),
            ("attn_gpu_masks", self.attn_gpu_masks),
        ):
            if len(seq) != n:
                raise ValueError(f"{name} must have one entry per layer ({n})")
        for li in range(n):
            if self.mlp_probs[li].shape != (self.model.d_ffn,):
                raise ValueError(f"mlp_probs[{li}] must have shape (d_ffn,)")
            if self.attn_probs[li].shape != (self.model.n_heads,):
                raise ValueError(f"attn_probs[{li}] must have shape (n_heads,)")
            if self.mlp_gpu_masks[li].shape != (self.model.d_ffn,):
                raise ValueError(f"mlp_gpu_masks[{li}] must have shape (d_ffn,)")
            if self.attn_gpu_masks[li].shape != (self.model.n_heads,):
                raise ValueError(f"attn_gpu_masks[{li}] must have shape (n_heads,)")
        if not self.predictor_bytes:
            self.predictor_bytes = [0.0] * n
        if len(self.predictor_bytes) != n:
            raise ValueError("predictor_bytes must have one entry per layer")

    # ---- memory accounting -------------------------------------------------

    @property
    def embedding_bytes(self) -> float:
        return self.dtype.nbytes(self.model.embedding_params)

    @property
    def gpu_weight_bytes(self) -> float:
        """Neuron weights resident on GPU under the masks."""
        total = 0.0
        for li in range(self.model.n_layers):
            total += float(self.mlp_gpu_masks[li].sum()) * self.model.mlp_neuron_bytes(self.dtype)
            total += float(self.attn_gpu_masks[li].sum()) * self.model.attn_neuron_bytes(self.dtype)
        return total

    @property
    def cpu_weight_bytes(self) -> float:
        return self.dtype.nbytes(
            self.model.n_layers * self.model.params_per_layer
        ) - self.gpu_weight_bytes

    @property
    def total_predictor_bytes(self) -> float:
        return float(sum(self.predictor_bytes))

    def memory_report(self, context: int | None = None) -> MemoryReport:
        """Account all allocations; raises ``OutOfMemoryError`` on overflow.

        GPU holds: hot neuron weights, predictors, embeddings (LM head).
        CPU holds: cold neuron weights and the KV cache (paper Section 7).
        """
        ctx = context if context is not None else self.expected_context
        gpu = MemoryPool(
            name=self.machine.gpu.name,
            capacity=self.machine.gpu.memory_capacity,
            reserve_fraction=self.gpu_memory_reserve,
        )
        cpu = MemoryPool(
            name=self.machine.cpu.name,
            capacity=self.machine.cpu.memory_capacity,
            reserve_fraction=0.05,
        )
        gpu.allocate("hot-neurons", self.gpu_weight_bytes)
        gpu.allocate("predictors", self.total_predictor_bytes)
        gpu.allocate("embeddings", self.embedding_bytes)
        cpu.allocate("cold-neurons", self.cpu_weight_bytes)
        cpu.allocate("kv-cache", self.model.kv_cache_bytes_per_token(self.dtype) * ctx)
        return MemoryReport(
            gpu_used=gpu.used,
            gpu_capacity=gpu.usable_capacity,
            cpu_used=cpu.used,
            cpu_capacity=cpu.usable_capacity,
        )

    # ---- degraded-mode re-planning -------------------------------------------

    def with_gpu_bytes_freed(self, nbytes: float) -> "DeploymentPlan":
        """A copy with the coldest GPU-resident neurons demoted to the CPU.

        Graceful-degradation hook: when GPU memory is squeezed mid-run
        (e.g. a KV-budget shrink fault), the server trades hot-neuron
        residency for KV space.  MLP neurons are demoted globally in
        ascending activation-probability order — the least valuable GPU
        bytes go first, the mirror image of the solver's hot-first
        packing — until at least ``nbytes`` are freed or no GPU-resident
        MLP neurons remain.  Attention heads are kept (their masks also
        shape the CPU attention path) and deterministic order is guaranteed
        by a stable sort.  Returns ``self`` when ``nbytes <= 0``.
        """
        if nbytes <= 0:
            return self
        neuron_bytes = self.model.mlp_neuron_bytes(self.dtype)
        candidates: list[tuple[float, int, int]] = []  # (prob, layer, neuron)
        for li in range(self.model.n_layers):
            mask = self.mlp_gpu_masks[li]
            probs = self.mlp_probs[li]
            for ni in np.flatnonzero(mask):
                candidates.append((float(probs[ni]), li, int(ni)))
        candidates.sort(key=lambda c: (c[0], c[1], c[2]))
        n_demote = min(
            len(candidates), int(np.ceil(nbytes / neuron_bytes)) if neuron_bytes else 0
        )
        new_masks = [mask.copy() for mask in self.mlp_gpu_masks]
        for _, li, ni in candidates[:n_demote]:
            new_masks[li][ni] = False
        return DeploymentPlan(
            model=self.model,
            machine=self.machine,
            dtype=self.dtype,
            mlp_probs=self.mlp_probs,
            attn_probs=self.attn_probs,
            mlp_gpu_masks=new_masks,
            attn_gpu_masks=self.attn_gpu_masks,
            predictor_bytes=list(self.predictor_bytes),
            gpu_memory_reserve=self.gpu_memory_reserve,
            expected_context=self.expected_context,
        )

    # ---- expected activation splits -----------------------------------------

    def mlp_active_split(self, layer: int, batch: int = 1) -> tuple[float, float]:
        """Expected (GPU, CPU) counts of active MLP neurons for one token
        block of ``batch`` independent tokens."""
        probs = _union_rate(self.mlp_probs[layer], batch)
        mask = self.mlp_gpu_masks[layer]
        return float(probs[mask].sum()), float(probs[~mask].sum())

    def attn_active_split(self, layer: int, batch: int = 1) -> tuple[float, float]:
        probs = _union_rate(self.attn_probs[layer], batch)
        mask = self.attn_gpu_masks[layer]
        return float(probs[mask].sum()), float(probs[~mask].sum())

    def sampled_mlp_split(
        self, layer: int, rng: np.random.Generator, batch: int = 1
    ) -> tuple[int, int]:
        """Sampled (GPU, CPU) active MLP neuron counts for one token block."""
        probs = _union_rate(self.mlp_probs[layer], batch)
        active = rng.random(probs.size) < probs
        mask = self.mlp_gpu_masks[layer]
        return int(np.logical_and(active, mask).sum()), int(
            np.logical_and(active, ~mask).sum()
        )

    def sampled_attn_split(
        self, layer: int, rng: np.random.Generator, batch: int = 1
    ) -> tuple[int, int]:
        probs = _union_rate(self.attn_probs[layer], batch)
        active = rng.random(probs.size) < probs
        mask = self.attn_gpu_masks[layer]
        return int(np.logical_and(active, mask).sum()), int(
            np.logical_and(active, ~mask).sum()
        )

    def gpu_neuron_load_share(self, batch: int = 1) -> float:
        """Expected fraction of activated-neuron computation on the GPU,
        weighted by per-neuron weight bytes (paper Figure 12)."""
        gpu_work = 0.0
        total_work = 0.0
        mlp_nb = self.model.mlp_neuron_bytes(self.dtype)
        attn_nb = self.model.attn_neuron_bytes(self.dtype)
        for li in range(self.model.n_layers):
            mg, mc = self.mlp_active_split(li, batch)
            ag, ac = self.attn_active_split(li, batch)
            gpu_work += mg * mlp_nb + ag * attn_nb
            total_work += (mg + mc) * mlp_nb + (ag + ac) * attn_nb
        return gpu_work / total_work if total_work else 0.0
