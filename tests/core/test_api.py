"""Tests for the PowerInfer facade."""

import pytest

from repro.core.api import PowerInfer
from repro.quant.formats import FP16


@pytest.fixture(scope="module")
def system(mini_plan):
    return PowerInfer(mini_plan)


class TestDeploy:
    def test_deploy_builds_plan_and_engine(self, mini_model, mini_machine):
        system = PowerInfer.deploy(mini_model, mini_machine, dtype=FP16)
        assert system.plan.model is mini_model
        assert system.engine.name == "powerinfer"

    def test_generate_returns_result(self, system):
        result = system.generate(input_len=8, output_len=16)
        assert result.tokens_per_second > 0
        assert result.model == "mini-opt"

    def test_memory_report(self, system):
        report = system.memory_report()
        assert report.gpu_used > 0
        assert report.cpu_used > 0

    def test_gpu_load_share_in_unit_interval(self, system):
        assert 0.0 < system.gpu_load_share() <= 1.0

    def test_batch_load_share_grows(self, system):
        # Batching unions activations: GPU-resident hot neurons saturate
        # while the cold tail grows, so the GPU share falls.
        assert system.gpu_load_share(batch=32) < system.gpu_load_share(batch=1)

    def test_custom_engine_injection(self, mini_plan_none):
        from repro.engine.baselines import LlamaCppEngine

        system = PowerInfer(mini_plan_none, engine=LlamaCppEngine(mini_plan_none))
        assert system.generate(4, 4).engine == "llama.cpp"


class TestPublicApi:
    def test_top_level_imports(self):
        import repro

        assert repro.PowerInfer is PowerInfer
        assert repro.OPT_30B.name == "opt-30b"
        assert repro.PC_HIGH.name == "pc-high"
        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
