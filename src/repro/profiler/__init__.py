"""Offline profiler: activation counting, traces, profiling corpora."""

from repro.profiler.datasets import ProfilingCorpus, c4_corpus, wikipedia_corpus
from repro.profiler.profiler import (
    LayerStats,
    layer_statistics,
    profile_numerical,
    profile_statistical,
)
from repro.profiler.trace import ActivationTrace

__all__ = [
    "ActivationTrace",
    "LayerStats",
    "ProfilingCorpus",
    "c4_corpus",
    "layer_statistics",
    "profile_numerical",
    "profile_statistical",
    "wikipedia_corpus",
]
