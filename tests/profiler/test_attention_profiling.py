"""Tests for attention-head profiling on the numerical substrate."""

import numpy as np
import pytest

from repro.profiler.profiler import profile_numerical


class TestAttentionProfiling:
    def test_head_counts_recorded(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=12) for _ in range(3)]
        trace = profile_numerical(tiny_model, requests, record_attention=True)
        assert len(trace.attn_counts) == tiny_cfg.n_layers
        for counts in trace.attn_counts:
            assert counts.shape == (tiny_cfg.n_heads,)
            assert counts.max() <= trace.n_tokens

    def test_head_rates_reflect_coverage(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=16) for _ in range(3)]
        strict = profile_numerical(
            tiny_model, requests, record_attention=True, head_coverage=0.5
        )
        loose = profile_numerical(
            tiny_model, requests, record_attention=True, head_coverage=0.99
        )
        # Lower coverage -> fewer heads count as active.
        assert strict.attn_rates(0).mean() < loose.attn_rates(0).mean()

    def test_off_by_default(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=8)]
        trace = profile_numerical(tiny_model, requests)
        assert trace.attn_counts == []

    def test_some_heads_hotter_than_others(self, tiny_model, tiny_cfg, rng):
        # Section 2.1: head contributions are uneven; profiled rates
        # should spread.
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=24) for _ in range(4)]
        trace = profile_numerical(
            tiny_model, requests, record_attention=True, head_coverage=0.7
        )
        rates = np.concatenate([trace.attn_rates(li) for li in range(tiny_cfg.n_layers)])
        assert rates.max() - rates.min() > 0.1
