"""Persistence for trained activation predictors.

Predictor training is the slowest part of the offline phase ("often taking
several hours" for real models, paper Section 7, though one-time); the
trained predictors are an artifact that ships with the deployment.  This
module saves/loads a whole per-layer predictor set as one ``.npz`` archive.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.predictor.mlp import MlpPredictor

__all__ = ["save_predictors", "load_predictors"]

_FORMAT_VERSION = 1


def save_predictors(
    predictors: list[MlpPredictor | None], path: str | Path
) -> None:
    """Write a per-layer predictor set to ``path``.

    ``None`` entries (oracle layers) are preserved as gaps.
    """
    header = {
        "version": _FORMAT_VERSION,
        "n_layers": len(predictors),
        "present": [p is not None for p in predictors],
        "thresholds": [p.threshold if p is not None else 0.5 for p in predictors],
    }
    arrays: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    }
    for li, pred in enumerate(predictors):
        if pred is None:
            continue
        arrays[f"l{li}.w1"] = pred.w1
        arrays[f"l{li}.b1"] = pred.b1
        arrays[f"l{li}.w2"] = pred.w2
        arrays[f"l{li}.b2"] = pred.b2
    np.savez_compressed(path, **arrays)


def load_predictors(path: str | Path) -> list[MlpPredictor | None]:
    """Restore a predictor set written by :func:`save_predictors`.

    Raises:
        ValueError: On an unsupported format version.
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported predictor-set version: {header.get('version')!r}"
            )
        predictors: list[MlpPredictor | None] = []
        for li in range(header["n_layers"]):
            if not header["present"][li]:
                predictors.append(None)
                continue
            w1 = data[f"l{li}.w1"]
            w2 = data[f"l{li}.w2"]
            pred = MlpPredictor(
                d_in=w1.shape[1],
                hidden=w1.shape[0],
                n_neurons=w2.shape[0],
                rng=np.random.default_rng(0),
                threshold=header["thresholds"][li],
            )
            pred.w1 = w1
            pred.b1 = data[f"l{li}.b1"]
            pred.w2 = w2
            pred.b2 = data[f"l{li}.b2"]
            predictors.append(pred)
        return predictors
