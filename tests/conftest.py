"""Shared fixtures for the test suite.

Heavy artifacts (numpy models, deployment plans) are session-scoped; tests
must not mutate them.  ``mini_*`` fixtures are scaled-down paper-style
configurations sized so the full offline pipeline (profile -> predictors ->
ILP -> plan) runs in well under a second.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.pipeline import build_plan
from repro.hardware.spec import GIB, PC_HIGH, MachineSpec
from repro.models.config import ModelConfig, tiny_config
from repro.models.transformer import Transformer
from repro.models.weights import init_weights
from repro.quant.formats import FP16
from repro.sparsity.powerlaw import synthesize_activation_probs


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


# ---- numerical substrate -----------------------------------------------------


@pytest.fixture(scope="session")
def tiny_cfg() -> ModelConfig:
    return tiny_config(n_layers=2, d_model=64, d_ffn=256, vocab_size=256)


@pytest.fixture(scope="session")
def tiny_model(tiny_cfg) -> Transformer:
    """A small ReLU transformer with power-law activation biases."""
    gen = np.random.default_rng(1234)
    probs = [
        synthesize_activation_probs(tiny_cfg.d_ffn, gen, mean_activation_rate=0.15)
        for _ in range(tiny_cfg.n_layers)
    ]
    return Transformer(init_weights(tiny_cfg, gen, activation_probs=probs))


# ---- performance substrate ---------------------------------------------------


@pytest.fixture(scope="session")
def mini_model() -> ModelConfig:
    """A paper-style (but small) dense model for fast plan building.

    Sized so that per-layer sparse compute time (~100 us on the mini
    machine's CPU) exceeds the synchronization overhead — the regime the
    paper's machines operate in, where intra-layer hybrid execution pays
    off.  A much smaller model would (correctly) make layer-level
    offloading the better design.
    """
    return ModelConfig(
        name="mini-opt",
        n_layers=8,
        d_model=2048,
        d_ffn=8192,
        n_heads=16,
        vocab_size=4096,
    )


@pytest.fixture(scope="session")
def mini_machine() -> MachineSpec:
    """PC-High scaled down so mini_model (~800 MB) spans GPU + CPU."""
    gpu = dataclasses.replace(PC_HIGH.gpu, memory_capacity=0.25 * GIB)
    cpu = dataclasses.replace(PC_HIGH.cpu, memory_capacity=2.0 * GIB)
    return dataclasses.replace(PC_HIGH, gpu=gpu, cpu=cpu, name="mini-pc")


@pytest.fixture(scope="session")
def mini_plan(mini_model, mini_machine):
    """A solved ILP deployment plan for the mini model."""
    return build_plan(mini_model, mini_machine, FP16, policy="ilp", seed=0)


@pytest.fixture(scope="session")
def mini_plan_none(mini_model, mini_machine):
    """A no-placement plan (baselines)."""
    return build_plan(mini_model, mini_machine, FP16, policy="none", seed=0)
