"""Per-device compact neuron stores (paper Section 5.2).

PowerInfer's model loader splits each layer's weight matrices by neuron and
stores each device's neurons *contiguously* in that device's memory; neuron
tables map compact positions back to original matrix rows/columns so
segmented neurons multiply against the right tensor entries.

:class:`PartitionedMlp` is that structure for one MLP block: two
:class:`DeviceSlice` objects (GPU/CPU) each holding compact FC1 rows, FC1
biases, FC2 columns (and ReGLU gate rows), plus the index mapping.  Its
:meth:`forward` reproduces dense MLP output exactly for oracle masks — the
numerical proof that the split-storage bookkeeping is correct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import Activation
from repro.models.weights import LayerWeights

__all__ = ["DeviceSlice", "PartitionedMlp"]


@dataclass
class DeviceSlice:
    """One device's compact share of an MLP block's neurons.

    Attributes:
        name: Device label (``"gpu"`` / ``"cpu"``).
        indices: Original neuron positions, shape ``(k,)`` — the neuron
            table of Section 5.2.
        fc1: Compact FC1 rows, shape ``(k, d_model)``.
        fc1_bias: Compact biases, shape ``(k,)``.
        fc2: Compact FC2 columns, shape ``(d_model, k)``.
        gate: Compact ReGLU gate rows or ``None``.
    """

    name: str
    indices: np.ndarray
    fc1: np.ndarray
    fc1_bias: np.ndarray
    fc2: np.ndarray
    gate: np.ndarray | None = None

    def __post_init__(self) -> None:
        k = self.indices.size
        if self.fc1.shape[0] != k or self.fc1_bias.shape != (k,):
            raise ValueError(f"slice {self.name}: fc1/bias shape mismatch")
        if self.fc2.shape[1] != k:
            raise ValueError(f"slice {self.name}: fc2 must have {k} columns")
        if self.gate is not None and self.gate.shape[0] != k:
            raise ValueError(f"slice {self.name}: gate shape mismatch")
        # Inverse map: original neuron index -> compact position.
        inverse = np.full(0, -1, dtype=np.int64)
        if k:
            inverse = np.full(int(self.indices.max()) + 1, -1, dtype=np.int64)
            inverse[self.indices] = np.arange(k)
        object.__setattr__(self, "_inverse", inverse)

    @property
    def n_neurons(self) -> int:
        return int(self.indices.size)

    def nbytes(self) -> int:
        total = self.fc1.nbytes + self.fc1_bias.nbytes + self.fc2.nbytes
        total += self.indices.nbytes
        if self.gate is not None:
            total += self.gate.nbytes
        return total

    def local_positions(self, original: np.ndarray) -> np.ndarray:
        """Compact positions of the given original neuron indices.

        Indices not resident in this slice are dropped (they belong to the
        other device).
        """
        if self.n_neurons == 0 or original.size == 0:
            return np.zeros(0, dtype=np.int64)
        in_range = original < self._inverse.size
        candidates = original[in_range]
        local = self._inverse[candidates]
        return local[local >= 0]


class PartitionedMlp:
    """An MLP block split into GPU/CPU neuron stores."""

    def __init__(
        self, layer: LayerWeights, gpu_mask: np.ndarray, activation: str = Activation.RELU
    ) -> None:
        n = layer.fc1.shape[0]
        if gpu_mask.shape != (n,) or gpu_mask.dtype != bool:
            raise ValueError("gpu_mask must be a boolean array over the neurons")
        if activation not in Activation.ALL:
            raise ValueError(f"unknown activation: {activation!r}")
        if activation == Activation.REGLU and layer.gate is None:
            raise ValueError("ReGLU layer requires gate weights")
        self.activation = activation
        self.d_model = layer.fc1.shape[1]
        self.slices = {
            name: self._make_slice(layer, np.nonzero(mask)[0], name)
            for name, mask in (("gpu", gpu_mask), ("cpu", ~gpu_mask))
        }

    @staticmethod
    def _make_slice(layer: LayerWeights, idx: np.ndarray, name: str) -> DeviceSlice:
        return DeviceSlice(
            name=name,
            indices=idx.astype(np.int64),
            fc1=layer.fc1[idx].copy(),
            fc1_bias=layer.fc1_bias[idx].copy(),
            fc2=layer.fc2[:, idx].copy(),
            gate=layer.gate[idx].copy() if layer.gate is not None else None,
        )

    def device_bytes(self) -> dict[str, int]:
        """Compact storage per device (weights + neuron table)."""
        return {name: s.nbytes() for name, s in self.slices.items()}

    def forward(self, x: np.ndarray, pred_mask: np.ndarray) -> np.ndarray:
        """Sparse MLP output from the compact stores.

        Args:
            x: Input of shape ``(t, d_model)`` (or ``(d_model,)``).
            pred_mask: Predicted-active mask, ``(t, n_neurons)`` or
                ``(n_neurons,)`` — rows are masked individually.

        Returns:
            Output matching the dense MLP restricted to predicted-active
            neurons, shape like ``x``.
        """
        x2 = np.atleast_2d(x)
        mask2 = np.atleast_2d(pred_mask)
        if mask2.shape[0] == 1 and x2.shape[0] > 1:
            mask2 = np.broadcast_to(mask2, (x2.shape[0], mask2.shape[1]))
        union = np.any(mask2, axis=0)
        union_idx = np.nonzero(union)[0]
        out = np.zeros_like(x2)
        for device_slice in self.slices.values():
            local = device_slice.local_positions(union_idx)
            if local.size == 0:
                continue
            pre = x2 @ device_slice.fc1[local].T + device_slice.fc1_bias[local]
            hidden = np.maximum(pre, 0.0)
            originals = device_slice.indices[local]
            hidden = hidden * mask2[:, originals]
            if self.activation == Activation.REGLU:
                hidden = hidden * (x2 @ device_slice.gate[local].T)
            out += hidden @ device_slice.fc2[:, local].T
        return out.reshape(np.shape(x))
