"""Table 2 — model accuracy with vs without sparse-predicted execution.

Paper: negligible accuracy differences across OPT/Falcon/LLaMA families and
four downstream tasks.  Reproduced on the numerical substrate as answer
agreement between dense and sparse-predicted execution of real (small)
numpy transformers (see DESIGN.md's substitution table).
"""

from conftest import run_once

from repro.bench.table2 import run_table2


def test_table2_accuracy(benchmark, record_rows):
    rows = run_once(benchmark, run_table2)
    record_rows("table2_accuracy", rows, "Table 2 — dense vs sparse-predicted agreement")

    assert len(rows) == 8  # 2 model families x 4 task families
    mean_agreement = sum(r["sparse_agreement"] for r in rows) / len(rows)
    assert mean_agreement > 0.85, f"mean agreement {mean_agreement:.3f}"
    for row in rows:
        assert row["sparse_agreement"] > 0.6, row
