"""Numpy reference transformer — the numerical substrate.

A small but complete decoder-only transformer (pre-norm, multi-head
attention with GQA support, ReLU or ReGLU MLPs, KV cache, tied LM head)
implementing the architecture of paper Figure 2.  It is the ground truth the
sparse/hybrid engines are validated against, and the source of *real*
activation traces for the profiler and predictor training.

Two extension points support the reproduction:

* ``mlp_override`` lets the hybrid numerical engine replace the dense MLP
  with sparse-predicted neuron-aware execution (paper Sections 5.2-5.4).
* ``activation_hook`` observes the boolean MLP activation mask of every
  layer, which is how the offline profiler (Section 6.1) counts activations.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.models.config import Activation, ModelConfig
from repro.models.kvcache import KVCache
from repro.models.weights import LayerWeights, ModelWeights

__all__ = [
    "MlpOverride",
    "Transformer",
    "head_mask_from_norms",
    "mlp_activation_mask",
    "softmax",
]

ActivationHook = Callable[[int, np.ndarray], None]
HeadHook = Callable[[int, np.ndarray], None]
HeadMaskOverride = Callable[[int, np.ndarray], np.ndarray]


class MlpOverride(Protocol):
    """Replacement MLP executor: ``(layer_index, x_normed) -> output``.

    ``x_normed`` has shape ``(t, d_model)``; the return value must match.
    """

    def __call__(self, layer_index: int, x: np.ndarray) -> np.ndarray: ...


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=axis, keepdims=True)


def _rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    scale = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / scale * weight


def head_mask_from_norms(norms: np.ndarray, coverage: float = 0.95) -> np.ndarray:
    """Ground-truth attention-head activity from per-head output norms.

    The paper observes that "nearly half of the attention heads (neurons)
    make minimal contributions" (Section 2.1).  A head counts as *active*
    for a token if it belongs to the smallest head set covering
    ``coverage`` of that token's total squared head-output norm.

    Args:
        norms: Per-token per-head output L2 norms, shape ``(t, n_heads)``.
        coverage: Fraction of squared-norm mass the active set must carry.

    Returns:
        Boolean mask of shape ``(t, n_heads)``.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    energy = np.atleast_2d(norms).astype(np.float64) ** 2
    order = np.argsort(energy, axis=1)[:, ::-1]
    sorted_energy = np.take_along_axis(energy, order, axis=1)
    totals = sorted_energy.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    cum = np.cumsum(sorted_energy, axis=1) / totals
    # Head k (in sorted order) is active if the mass BEFORE it is < coverage.
    before = np.concatenate([np.zeros((cum.shape[0], 1)), cum[:, :-1]], axis=1)
    active_sorted = before < coverage
    mask = np.zeros_like(active_sorted)
    np.put_along_axis(mask, order, active_sorted, axis=1)
    return mask


def mlp_activation_mask(layer: LayerWeights, x: np.ndarray) -> np.ndarray:
    """Boolean mask of MLP neurons the ReLU gate opens for input ``x``.

    Shape ``(t, d_ffn)``.  For ReGLU models the gate is ``relu(up) > 0``,
    matching the SparseLLM ReGLU formulation the paper evaluates.
    """
    pre = x @ layer.fc1.T + layer.fc1_bias
    return pre > 0


class Transformer:
    """Dense numpy decoder with pluggable MLP execution."""

    def __init__(self, weights: ModelWeights) -> None:
        self.weights = weights
        self.config: ModelConfig = weights.config

    # ---- blocks ----------------------------------------------------------

    def _attention(
        self,
        layer: LayerWeights,
        x: np.ndarray,
        cache: KVCache,
        layer_index: int,
        head_mask_override: "HeadMaskOverride | None" = None,
        head_hook: "HeadHook | None" = None,
    ) -> np.ndarray:
        cfg = self.config
        t = x.shape[0]
        past = len(cache)

        q = x @ layer.wq.T  # (t, d)
        k = x @ layer.wk.T  # (t, kv_dim)
        v = x @ layer.wv.T
        cache.append(layer_index, k, v)
        # keys() sees the rows just appended only once the cursor advances;
        # request the in-flight rows explicitly for non-final layers.
        extra = t if layer_index < cfg.n_layers - 1 else 0
        keys = cache.keys(layer_index, extra=extra)  # (past + t, kv_dim)
        values = cache.values(layer_index, extra=extra)

        hd = cfg.head_dim
        group = cfg.n_heads // cfg.n_kv_heads
        qh = q.reshape(t, cfg.n_heads, hd)
        kh = keys.reshape(past + t, cfg.n_kv_heads, hd)
        vh = values.reshape(past + t, cfg.n_kv_heads, hd)

        out = np.empty((t, cfg.n_heads, hd), dtype=x.dtype)
        scale = 1.0 / np.sqrt(hd)
        # Causal positions: query i attends to cache rows 0 .. past+i.
        for h in range(cfg.n_heads):
            kv_h = h // group
            scores = (qh[:, h, :] @ kh[:, kv_h, :].T) * scale  # (t, past+t)
            if t > 1:
                q_pos = past + np.arange(t)[:, None]
                k_pos = np.arange(past + t)[None, :]
                scores = np.where(k_pos <= q_pos, scores, -np.inf)
            out[:, h, :] = softmax(scores, axis=-1) @ vh[:, kv_h, :]
        if head_hook is not None or head_mask_override is not None:
            norms = np.linalg.norm(out, axis=-1)  # (t, n_heads)
            if head_hook is not None:
                head_hook(layer_index, norms)
            if head_mask_override is not None:
                mask = head_mask_override(layer_index, x)
                mask = np.broadcast_to(
                    np.atleast_2d(mask), (t, cfg.n_heads)
                )
                out = np.where(mask[:, :, None], out, 0.0)
        return out.reshape(t, cfg.d_model) @ layer.wo.T

    def _mlp(self, layer: LayerWeights, x: np.ndarray) -> np.ndarray:
        pre = x @ layer.fc1.T + layer.fc1_bias
        if self.config.activation == Activation.REGLU:
            hidden = np.maximum(pre, 0.0) * (x @ layer.gate.T)
        else:
            hidden = np.maximum(pre, 0.0)
        return hidden @ layer.fc2.T

    # ---- forward ----------------------------------------------------------

    def forward(
        self,
        token_ids: np.ndarray,
        cache: KVCache,
        mlp_override: MlpOverride | None = None,
        activation_hook: ActivationHook | None = None,
        head_mask_override: "HeadMaskOverride | None" = None,
        head_hook: "HeadHook | None" = None,
    ) -> np.ndarray:
        """Run ``token_ids`` (shape ``(t,)``) through the model.

        Returns logits of shape ``(t, vocab_size)``.  The KV cache is
        advanced by ``t`` positions.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1:
            raise ValueError("token_ids must be 1-D (a single sequence)")
        w = self.weights
        x = w.embedding[token_ids]  # (t, d)
        for li, layer in enumerate(w.layers):
            attn_in = _rms_norm(x, layer.attn_norm)
            x = x + self._attention(
                layer, attn_in, cache, li, head_mask_override, head_hook
            )
            mlp_in = _rms_norm(x, layer.mlp_norm)
            if activation_hook is not None:
                activation_hook(li, mlp_activation_mask(layer, mlp_in))
            if mlp_override is not None:
                x = x + mlp_override(li, mlp_in)
            else:
                x = x + self._mlp(layer, mlp_in)
        x = _rms_norm(x, w.final_norm)
        return x @ w.lm_head.T

    def generate(
        self,
        prompt_ids: list[int],
        max_new_tokens: int,
        mlp_override: MlpOverride | None = None,
        activation_hook: ActivationHook | None = None,
    ) -> list[int]:
        """Greedy decoding: prompt phase then token-by-token generation."""
        if not prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        cache = KVCache(self.config)
        logits = self.forward(
            np.asarray(prompt_ids), cache, mlp_override, activation_hook
        )
        out: list[int] = []
        token = int(np.argmax(logits[-1]))
        for _ in range(max_new_tokens):
            out.append(token)
            if len(cache) >= self.config.max_seq_len:
                break
            logits = self.forward(
                np.asarray([token]), cache, mlp_override, activation_hook
            )
            token = int(np.argmax(logits[-1]))
        return out
