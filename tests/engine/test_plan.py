"""Tests for deployment plans: accounting and expected activation splits."""

import numpy as np
import pytest

from repro.engine.plan import DeploymentPlan
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.spec import PC_HIGH
from repro.models.config import ModelConfig
from repro.quant.formats import FP16


@pytest.fixture(scope="module")
def model():
    return ModelConfig(
        name="plan-test", n_layers=2, d_model=128, d_ffn=512, n_heads=4, vocab_size=512
    )


def make_plan(model, gpu_frac=0.5, predictor_bytes=None, machine=PC_HIGH):
    n = model.n_layers
    rng = np.random.default_rng(0)
    mlp_probs = [rng.random(model.d_ffn) * 0.3 for _ in range(n)]
    attn_probs = [rng.random(model.n_heads) for _ in range(n)]
    mlp_masks = []
    attn_masks = []
    for li in range(n):
        m = np.zeros(model.d_ffn, dtype=bool)
        m[: int(gpu_frac * model.d_ffn)] = True
        mlp_masks.append(m)
        a = np.zeros(model.n_heads, dtype=bool)
        a[: int(gpu_frac * model.n_heads)] = True
        attn_masks.append(a)
    return DeploymentPlan(
        model=model,
        machine=machine,
        dtype=FP16,
        mlp_probs=mlp_probs,
        attn_probs=attn_probs,
        mlp_gpu_masks=mlp_masks,
        attn_gpu_masks=attn_masks,
        predictor_bytes=predictor_bytes or [1000.0] * n,
    )


class TestValidation:
    def test_shape_checks(self, model):
        plan_kwargs = dict(
            model=model,
            machine=PC_HIGH,
            dtype=FP16,
            mlp_probs=[np.zeros(model.d_ffn)] * 2,
            attn_probs=[np.zeros(model.n_heads)] * 2,
            mlp_gpu_masks=[np.zeros(model.d_ffn, dtype=bool)] * 2,
            attn_gpu_masks=[np.zeros(model.n_heads, dtype=bool)] * 2,
        )
        DeploymentPlan(**plan_kwargs)  # baseline ok
        bad = dict(plan_kwargs)
        bad["mlp_probs"] = [np.zeros(model.d_ffn)]
        with pytest.raises(ValueError, match="per layer"):
            DeploymentPlan(**bad)
        bad = dict(plan_kwargs)
        bad["attn_probs"] = [np.zeros(3)] * 2
        with pytest.raises(ValueError, match="n_heads"):
            DeploymentPlan(**bad)

    def test_default_predictor_bytes(self, model):
        plan = make_plan(model)
        plan_no_pred = DeploymentPlan(
            model=model,
            machine=PC_HIGH,
            dtype=FP16,
            mlp_probs=plan.mlp_probs,
            attn_probs=plan.attn_probs,
            mlp_gpu_masks=plan.mlp_gpu_masks,
            attn_gpu_masks=plan.attn_gpu_masks,
        )
        assert plan_no_pred.predictor_bytes == [0.0, 0.0]


class TestMemoryAccounting:
    def test_gpu_cpu_weight_split(self, model):
        plan = make_plan(model, gpu_frac=0.5)
        total = FP16.nbytes(model.n_layers * model.params_per_layer)
        assert plan.gpu_weight_bytes + plan.cpu_weight_bytes == pytest.approx(total)
        assert plan.gpu_weight_bytes == pytest.approx(total / 2, rel=0.01)

    def test_memory_report_fits_pc_high(self, model):
        report = make_plan(model).memory_report()
        assert 0 < report.gpu_fraction < 1
        assert 0 < report.cpu_fraction < 1

    def test_report_raises_when_gpu_overflows(self, model):
        import dataclasses

        from repro.hardware.spec import PC_HIGH as base

        tiny_gpu = dataclasses.replace(
            base, gpu=base.gpu.with_memory_capacity(1000.0)
        )
        plan = make_plan(model, machine=tiny_gpu)
        with pytest.raises(OutOfMemoryError):
            plan.memory_report()


class TestActivationSplits:
    def test_expected_split_sums_to_total_expectation(self, model):
        plan = make_plan(model)
        g, c = plan.mlp_active_split(0, batch=1)
        assert g + c == pytest.approx(plan.mlp_probs[0].sum())

    def test_union_split_grows_with_batch(self, model):
        plan = make_plan(model)
        g1, c1 = plan.mlp_active_split(0, batch=1)
        g8, c8 = plan.mlp_active_split(0, batch=8)
        assert g8 > g1 and c8 > c1

    def test_sampled_split_near_expectation(self, model, rng):
        plan = make_plan(model)
        samples = [plan.sampled_mlp_split(0, rng) for _ in range(200)]
        mean_gpu = np.mean([s[0] for s in samples])
        expected_gpu, _ = plan.mlp_active_split(0)
        assert mean_gpu == pytest.approx(expected_gpu, rel=0.1)

    def test_attn_split(self, model, rng):
        plan = make_plan(model)
        g, c = plan.attn_active_split(0)
        assert g + c == pytest.approx(plan.attn_probs[0].sum())
        sg, sc = plan.sampled_attn_split(0, rng)
        assert 0 <= sg <= model.n_heads and 0 <= sc <= model.n_heads


class TestGpuLoadShare:
    def test_all_gpu_gives_one(self, model):
        plan = make_plan(model, gpu_frac=1.0)
        assert plan.gpu_neuron_load_share() == pytest.approx(1.0)

    def test_no_gpu_gives_zero(self, model):
        plan = make_plan(model, gpu_frac=0.0)
        assert plan.gpu_neuron_load_share() == 0.0

    def test_share_bounded(self, model):
        plan = make_plan(model, gpu_frac=0.5)
        assert 0.0 < plan.gpu_neuron_load_share() < 1.0
