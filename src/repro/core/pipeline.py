"""The offline phase: profile -> size predictors -> solve placement -> plan.

This is PowerInfer's offline component (paper Figure 7, steps 1-2) for
paper-scale models: activation statistics come from the synthesized
profiles (calibrated to the paper's published distributions), predictor
sizes from the adaptive sizing model, and neuron placement from the ILP (or
greedy) solver.  The result is a :class:`~repro.engine.plan.DeploymentPlan`
that the online engines consume.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.profiles import synthesize_model_probs
from repro.engine.plan import DeploymentPlan
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.spec import MachineSpec
from repro.models.config import ModelConfig
from repro.predictor.adaptive import modeled_predictor_params
from repro.quant.formats import FP16, DType
from repro.solver.greedy import greedy_placement
from repro.solver.ilp import SolverOptions, solve_ilp
from repro.solver.placement import NeuronGroup
from repro.sparsity.stats import skewness

__all__ = ["POLICIES", "build_plan"]

POLICIES = ("ilp", "greedy", "none")

_GPU_RESERVE = 0.08
_CPU_RESERVE = 0.05


def _solver_batch_size(model: ModelConfig, target_batches: int = 5000) -> int:
    """Pick the neuron-batch size keeping the MILP around ``target_batches``
    variables (paper Section 6.3.3 uses 64; huge models need coarser)."""
    total_neurons = model.n_layers * (model.d_ffn + model.n_heads)
    size = max(64, math.ceil(total_neurons / target_batches))
    return int(64 * math.ceil(size / 64))


def build_plan(
    model: ModelConfig,
    machine: MachineSpec,
    dtype: DType = FP16,
    policy: str = "ilp",
    seed: int = 0,
    mlp_probs: list[np.ndarray] | None = None,
    attn_probs: list[np.ndarray] | None = None,
    expected_context: int = 256,
    accuracy_target: float = 0.95,
    kv_gpu_budget_bytes: float = 0.0,
) -> DeploymentPlan:
    """Run the offline phase and return a deployment plan.

    Args:
        model: Architecture to deploy.
        machine: Target hardware.
        dtype: Weight storage format (FP16 or INT4 in the paper).
        policy: ``"ilp"`` (full PowerInfer), ``"greedy"`` (the naive
            "+Engine" ablation policy), or ``"none"`` (no neurons on GPU —
            used by baselines that ignore placement).
        seed: Seed for profile synthesis.
        mlp_probs / attn_probs: Pre-profiled activation probabilities;
            synthesized from the model family's published distribution
            when omitted.
        expected_context: Context length for KV-cache memory accounting.
        accuracy_target: Predictor accuracy target (drives predictor size).
        kv_gpu_budget_bytes: GPU memory withheld from neuron placement and
            earmarked for serving-time KV cache.  The default of zero
            packs the GPU with weights (single-request deployments); a
            continuous-batching deployment carves out its admission budget
            here so :meth:`PerfEngine.kv_budget_bytes` has headroom.

    Raises:
        OutOfMemoryError: If the model + predictors cannot fit in combined
            GPU + CPU memory.
        ValueError: On an unknown policy.
    """
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
    if kv_gpu_budget_bytes < 0:
        raise ValueError("kv_gpu_budget_bytes must be non-negative")
    rng = np.random.default_rng(seed)
    if mlp_probs is None or attn_probs is None:
        synth_mlp, synth_attn = synthesize_model_probs(model, rng)
        mlp_probs = mlp_probs or synth_mlp
        attn_probs = attn_probs or synth_attn

    # -- adaptive predictor sizing (Section 5.1) ---------------------------
    predictor_bytes = []
    for li in range(model.n_layers):
        layer_sparsity = 1.0 - float(mlp_probs[li].mean())
        layer_skew = skewness(mlp_probs[li])
        params = modeled_predictor_params(
            model, layer_sparsity, layer_skew, accuracy_target
        )
        predictor_bytes.append(dtype.nbytes(params))

    # -- memory budgets ------------------------------------------------------
    embedding_bytes = dtype.nbytes(model.embedding_params)
    gpu_usable = machine.gpu.memory_capacity * (1.0 - _GPU_RESERVE)
    gpu_budget = (
        gpu_usable - embedding_bytes - sum(predictor_bytes) - kv_gpu_budget_bytes
    )
    gpu_budget = max(gpu_budget, 0.0)
    kv_bytes = model.kv_cache_bytes_per_token(dtype) * expected_context
    cpu_usable = machine.cpu.memory_capacity * (1.0 - _CPU_RESERVE)
    cpu_budget = cpu_usable - kv_bytes

    # Feasibility: weights + embeddings must fit combined memory.  The
    # predictor footprint only shrinks the ILP's GPU budget (predictors can
    # spill to host memory in the worst case), so it is excluded here.
    layer_weight_bytes = dtype.nbytes(model.n_layers * model.params_per_layer)
    combined = (gpu_usable - embedding_bytes - kv_gpu_budget_bytes) + cpu_budget
    if layer_weight_bytes > combined:
        raise OutOfMemoryError(
            f"{model.name} ({layer_weight_bytes / 2**30:.1f} GiB {dtype.name}) "
            f"exceeds combined budget of {machine.name} "
            f"({combined / 2**30:.1f} GiB after embeddings and KV cache)"
        )

    # -- placement -------------------------------------------------------------
    groups: list[NeuronGroup] = []
    for li in range(model.n_layers):
        groups.append(
            NeuronGroup(
                name=f"layer{li}.attn",
                impacts=attn_probs[li],
                neuron_bytes=model.attn_neuron_bytes(dtype),
            )
        )
        groups.append(
            NeuronGroup(
                name=f"layer{li}.mlp",
                impacts=mlp_probs[li],
                neuron_bytes=model.mlp_neuron_bytes(dtype),
            )
        )

    if policy == "ilp":
        options = SolverOptions(batch_size=_solver_batch_size(model))
        solved = solve_ilp(
            groups, machine, gpu_budget, cpu_budget_bytes=cpu_budget, options=options
        )
        masks = solved.gpu_masks
    elif policy == "greedy":
        solved = greedy_placement(groups, gpu_budget, _solver_batch_size(model))
        masks = solved.gpu_masks
    else:  # "none"
        masks = [np.zeros(g.n_neurons, dtype=bool) for g in groups]

    attn_masks = [masks[2 * li] for li in range(model.n_layers)]
    mlp_masks = [masks[2 * li + 1] for li in range(model.n_layers)]

    return DeploymentPlan(
        model=model,
        machine=machine,
        dtype=dtype,
        mlp_probs=list(mlp_probs),
        attn_probs=list(attn_probs),
        mlp_gpu_masks=mlp_masks,
        attn_gpu_masks=attn_masks,
        predictor_bytes=predictor_bytes,
        gpu_memory_reserve=_GPU_RESERVE,
        expected_context=expected_context,
    )
