"""Tests for power-law activation synthesis and CDF utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.powerlaw import (
    activation_cdf,
    fit_zipf_alpha,
    neuron_fraction_for_mass,
    synthesize_activation_probs,
    top_share,
    zipf_weights,
)


class TestZipf:
    def test_alpha_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 1.0)

    def test_weights_decrease(self):
        w = zipf_weights(100, 1.0)
        assert (np.diff(w) < 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)


class TestTopShare:
    def test_uniform_share_equals_fraction(self):
        assert top_share(np.ones(100), 0.3) == pytest.approx(0.3)

    def test_point_mass(self):
        w = np.zeros(100)
        w[0] = 1.0
        assert top_share(w, 0.01) == pytest.approx(1.0)

    def test_monotone_in_alpha(self):
        shares = [top_share(zipf_weights(1000, a), 0.2) for a in (0.0, 0.5, 1.0, 2.0)]
        assert shares == sorted(shares)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_share(np.ones(10), 0.0)


class TestFitAlpha:
    def test_recovers_target_share(self):
        alpha = fit_zipf_alpha(2000, hot_fraction=0.26, hot_mass=0.80)
        assert top_share(zipf_weights(2000, alpha), 0.26) == pytest.approx(0.80, abs=0.01)

    def test_rejects_impossible_target(self):
        with pytest.raises(ValueError, match="proportional"):
            fit_zipf_alpha(100, hot_fraction=0.5, hot_mass=0.3)

    @given(
        hot_fraction=st.floats(0.05, 0.6),
        extra=st.floats(0.05, 0.35),
    )
    @settings(max_examples=25, deadline=None)
    def test_fit_is_accurate_across_targets(self, hot_fraction, extra):
        hot_mass = min(hot_fraction + extra, 0.95)
        alpha = fit_zipf_alpha(1000, hot_fraction, hot_mass)
        share = top_share(zipf_weights(1000, alpha), hot_fraction)
        assert share == pytest.approx(hot_mass, abs=0.03)


class TestSynthesize:
    def test_paper_calibration_points(self, rng):
        # Figure 5a anchors: (26%, 80%) for OPT and (43%, 80%) for LLaMA.
        for hf, rate in ((0.26, 0.10), (0.43, 0.25)):
            probs = synthesize_activation_probs(
                4096, rng, hot_fraction=hf, hot_mass=0.80, mean_activation_rate=rate
            )
            assert probs.mean() == pytest.approx(rate, abs=0.005)
            assert neuron_fraction_for_mass(probs, 0.80) == pytest.approx(hf, abs=0.02)

    def test_probs_are_valid_probabilities(self, rng):
        probs = synthesize_activation_probs(1000, rng)
        assert (probs > 0).all() and (probs <= 1).all()

    def test_shuffle_randomizes_order(self, rng):
        probs = synthesize_activation_probs(1000, rng, shuffle=True)
        # A sorted array would have monotone diffs; shuffled must not.
        assert not (np.diff(probs) <= 0).all()

    def test_no_shuffle_sorted_descending(self, rng):
        probs = synthesize_activation_probs(1000, rng, shuffle=False, jitter=0.0)
        assert (np.diff(probs) <= 1e-12).all()

    def test_infeasible_rate_rejected(self, rng):
        with pytest.raises(ValueError, match="infeasible"):
            synthesize_activation_probs(
                1000, rng, hot_fraction=0.26, hot_mass=0.80, mean_activation_rate=0.5
            )

    def test_deterministic_given_seed(self):
        a = synthesize_activation_probs(500, np.random.default_rng(3))
        b = synthesize_activation_probs(500, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestCdf:
    def test_cdf_monotone_and_bounded(self, rng):
        freqs = rng.random(500)
        proportion, cum = activation_cdf(freqs)
        assert (np.diff(cum) >= -1e-12).all()
        assert cum[-1] == pytest.approx(1.0)
        assert proportion[-1] == pytest.approx(1.0)

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            activation_cdf(np.zeros(10))

    def test_neuron_fraction_for_full_mass(self, rng):
        freqs = rng.random(100)
        assert neuron_fraction_for_mass(freqs, 1.0) == pytest.approx(1.0)

    def test_neuron_fraction_point_mass(self):
        freqs = np.zeros(100)
        freqs[42] = 1.0
        assert neuron_fraction_for_mass(freqs, 0.9) == pytest.approx(0.01)

    @given(mass=st.floats(0.1, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_fraction_never_exceeds_mass_requirement_inverse(self, mass):
        rng = np.random.default_rng(0)
        freqs = rng.random(200)
        frac = neuron_fraction_for_mass(freqs, mass)
        # Verify the smallest-set property: the chosen fraction does cover
        # the requested mass.
        _, cum = activation_cdf(freqs)
        k = int(round(frac * 200))
        assert cum[k - 1] >= mass - 1e-9
