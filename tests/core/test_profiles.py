"""Tests for per-model sparsity profiles."""

import numpy as np
import pytest

from repro.core.profiles import profile_for_model, synthesize_model_probs
from repro.models.config import LLAMA_70B, OPT_30B, tiny_config
from repro.sparsity.powerlaw import neuron_fraction_for_mass


class TestProfileSelection:
    def test_relu_models_share_profile(self):
        from repro.models.config import FALCON_40B

        assert profile_for_model(OPT_30B) is profile_for_model(FALCON_40B)

    def test_reglu_gets_denser_profile(self):
        relu = profile_for_model(OPT_30B)
        reglu = profile_for_model(LLAMA_70B)
        assert reglu.mlp_rate > relu.mlp_rate
        assert reglu.mlp_hot_fraction > relu.mlp_hot_fraction


class TestSynthesis:
    @pytest.fixture(scope="class")
    def small(self):
        return tiny_config(n_layers=6, d_ffn=2048, n_heads=8, d_model=512)

    def test_shapes(self, small, rng):
        mlp, attn = synthesize_model_probs(small, rng)
        assert len(mlp) == len(attn) == small.n_layers
        assert all(p.shape == (small.d_ffn,) for p in mlp)
        assert all(p.shape == (small.n_heads,) for p in attn)

    def test_depth_ramp_makes_late_layers_sparser(self, small, rng):
        mlp, _ = synthesize_model_probs(small, rng)
        assert mlp[0].mean() > mlp[-1].mean() * 2

    def test_layer_hot_fraction_calibrated(self, small, rng):
        mlp, _ = synthesize_model_probs(small, rng)
        prof = profile_for_model(small)
        for probs in mlp:
            frac = neuron_fraction_for_mass(probs, prof.mlp_hot_mass)
            assert frac == pytest.approx(prof.mlp_hot_fraction, abs=0.03)

    def test_whole_model_more_concentrated_than_layer(self, small, rng):
        mlp, _ = synthesize_model_probs(small, rng)
        layer_frac = neuron_fraction_for_mass(mlp[small.n_layers // 2], 0.8)
        whole_frac = neuron_fraction_for_mass(np.concatenate(mlp), 0.8)
        assert whole_frac < layer_frac

    def test_all_probabilities_valid(self, small, rng):
        mlp, attn = synthesize_model_probs(small, rng)
        for probs in mlp + attn:
            assert (probs > 0).all() and (probs <= 1).all()

    def test_deterministic(self, small):
        a_mlp, _ = synthesize_model_probs(small, np.random.default_rng(2))
        b_mlp, _ = synthesize_model_probs(small, np.random.default_rng(2))
        assert all(np.array_equal(a, b) for a, b in zip(a_mlp, b_mlp))
