"""Ring-buffer time-series engine: windows, aggregates, JSONL export."""

import json

import pytest

from repro.telemetry import Series, TimeSeriesBank


class TestSeries:
    def test_append_and_window(self):
        s = Series("queue_depth")
        for i in range(10):
            s.append(i * 0.25, float(i))
        assert s.latest() == (2.25, 9.0)
        window = s.window(0.5, 1.0)
        assert [v for _, v in window] == [2.0, 3.0, 4.0]

    def test_window_aggregates(self):
        s = Series("x")
        for i in range(5):
            s.append(float(i), float(i * 2))
        assert s.window_mean(1.0, 3.0) == pytest.approx(4.0)
        assert s.window_max(0.0, 4.0) == 8.0
        assert s.window_delta(1.0, 3.0) == pytest.approx(4.0)

    def test_empty_window_is_none(self):
        s = Series("x")
        s.append(0.0, 1.0)
        assert s.window_mean(5.0, 6.0) is None
        assert s.window_max(5.0, 6.0) is None
        assert s.window_delta(5.0, 6.0) is None

    def test_time_must_be_monotone(self):
        s = Series("x")
        s.append(1.0, 0.0)
        with pytest.raises(ValueError, match="precedes"):
            s.append(0.5, 0.0)

    def test_ring_capacity_drops_oldest(self):
        s = Series("x", capacity=4)
        for i in range(10):
            s.append(float(i), float(i))
        samples = s.samples()
        assert len(samples) == 4
        assert samples[0] == (6.0, 6.0)
        assert samples[-1] == (9.0, 9.0)


class TestTimeSeriesBank:
    def test_sample_creates_series(self):
        bank = TimeSeriesBank()
        bank.sample("a/x", 0.0, 1.0)
        bank.sample("b/y", 0.0, 2.0)
        bank.sample("a/x", 1.0, 3.0)
        assert list(bank.names()) == ["a/x", "b/y"]
        assert "a/x" in bank
        assert len(bank) == 3  # total retained samples across series
        assert bank.series("a/x").latest() == (1.0, 3.0)

    def test_jsonl_roundtrip(self, tmp_path):
        bank = TimeSeriesBank()
        bank.sample("fleet/up", 0.0, 3.0)
        bank.sample("fleet/up", 0.5, 2.0)
        path = tmp_path / "ts.jsonl"
        bank.save_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(r["type"] == "sample" for r in records)
        assert [(r["time"], r["value"]) for r in records] == [(0.0, 3.0), (0.5, 2.0)]
        assert records == bank.to_jsonl_records()
