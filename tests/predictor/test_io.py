"""Tests for predictor-set persistence."""

import numpy as np
import pytest

from repro.predictor.io import load_predictors, save_predictors
from repro.predictor.mlp import MlpPredictor


@pytest.fixture
def predictor_set(rng):
    return [
        MlpPredictor(16, 8, 32, rng=rng, threshold=0.4),
        None,  # oracle layer
        MlpPredictor(16, 4, 32, rng=rng),
    ]


class TestRoundTrip:
    def test_weights_and_gaps_preserved(self, predictor_set, tmp_path):
        path = tmp_path / "preds.npz"
        save_predictors(predictor_set, path)
        loaded = load_predictors(path)
        assert len(loaded) == 3
        assert loaded[1] is None
        assert np.array_equal(loaded[0].w1, predictor_set[0].w1)
        assert loaded[0].threshold == 0.4
        assert loaded[2].hidden == 4

    def test_predictions_identical(self, predictor_set, tmp_path, rng):
        path = tmp_path / "preds.npz"
        save_predictors(predictor_set, path)
        loaded = load_predictors(path)
        x = rng.standard_normal((6, 16)).astype(np.float32)
        assert np.array_equal(loaded[0].predict(x), predictor_set[0].predict(x))
        assert np.allclose(loaded[2].forward(x), predictor_set[2].forward(x))

    def test_trained_then_restored_keeps_accuracy(self, tmp_path, rng):
        from repro.predictor.training import synthesize_training_data

        x, y = synthesize_training_data(16, 32, 400, rng, target_sparsity=0.85)
        pred = MlpPredictor(16, 16, 32, rng=rng)
        pred.fit(x, y, rng=rng, epochs=20, lr=1.0)
        before = pred.evaluate(x, y)
        path = tmp_path / "trained.npz"
        save_predictors([pred], path)
        (restored,) = load_predictors(path)
        after = restored.evaluate(x, y)
        assert after.accuracy == pytest.approx(before.accuracy)

    def test_bad_version_rejected(self, predictor_set, tmp_path):
        import json

        path = tmp_path / "preds.npz"
        save_predictors(predictor_set, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"]).decode())
        header["version"] = 42
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_predictors(path)

    def test_empty_set(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_predictors([], path)
        assert load_predictors(path) == []
