"""Telemetry: event tracing, counter time-series, and trace exporters.

The observability layer of the reproduction (see docs/observability.md).
A :class:`Tracer` attached to the engine / continuous server records typed
span events (operator tasks on their device lanes, request lifecycles,
fault epochs, degraded-mode windows) plus sampled counters, aggregates
summaries in a :class:`MetricsRegistry`, and exports Chrome ``trace_event``
JSON (Perfetto / chrome://tracing), JSONL event logs, and a matplotlib
timeline figure.  With no tracer attached the instrumented code paths cost
one ``is None`` check and produce bit-identical results.
"""

from repro.telemetry.exporters import (
    save_chrome_trace,
    save_jsonl,
    to_chrome_trace,
    to_jsonl_records,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.timeline import MissingDependencyError, plot_timeline
from repro.telemetry.tracer import (
    CounterSample,
    Instant,
    NullTracer,
    Region,
    RequestEvent,
    RequestPhase,
    RequestSpan,
    TaskSpan,
    Tracer,
    record_fault_schedule,
)

__all__ = [
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "MissingDependencyError",
    "NullTracer",
    "Region",
    "RequestEvent",
    "RequestPhase",
    "RequestSpan",
    "TaskSpan",
    "Tracer",
    "plot_timeline",
    "record_fault_schedule",
    "save_chrome_trace",
    "save_jsonl",
    "to_chrome_trace",
    "to_jsonl_records",
]
