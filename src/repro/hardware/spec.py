"""Hardware specifications for the performance substrate.

The paper evaluates PowerInfer on two PCs (PC-High with an RTX 4090, PC-Low
with an RTX 2080Ti) and compares against a server-grade A100.  This module
captures those machines as declarative specs: memory capacities and
bandwidths, compute throughput, interconnect bandwidth/latency, and per-op
dispatch overheads.  The roofline cost model (:mod:`repro.hardware.costmodel`)
turns these numbers into operator latencies.

All bandwidths are bytes/second, capacities bytes, times seconds, compute
throughput FLOP/s — declared with the :mod:`repro.units` dimension
aliases so ``repro check-flow`` can verify the arithmetic end to end.
Presets use the figures published in the paper (Section 8.1)
supplemented with public datasheet numbers where the paper is silent
(e.g. GPU FLOP rates).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.units import (
    Bytes,
    BytesPerSecond,
    FlopsPerSecond,
    Ratio,
    Seconds,
    Watts,
)

GIB = 1024**3
GB = 10**9

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "LinkSpec",
    "MachineSpec",
    "PC_HIGH",
    "PC_LOW",
    "A100_SERVER",
    "MACHINE_PRESETS",
]


class DeviceKind:
    """Symbolic names for the two processing-unit classes in the paper."""

    GPU = "gpu"
    CPU = "cpu"

    ALL = (GPU, CPU)


@dataclass(frozen=True)
class DeviceSpec:
    """One processing unit (a GPU or a CPU socket).

    Attributes:
        name: Human-readable identifier (e.g. ``"rtx4090"``).
        kind: ``DeviceKind.GPU`` or ``DeviceKind.CPU``.
        memory_capacity: Usable memory in bytes.
        memory_bandwidth: Peak DRAM/HBM bandwidth in bytes/s.
        compute_flops: Peak dense FP16/FP32 throughput in FLOP/s.
        launch_overhead: Fixed cost of dispatching one operator (kernel
            launch on GPU, thread-pool wakeup on CPU), seconds.
        memory_efficiency: Achievable fraction of peak bandwidth for
            streaming GEMV-style access (0 < x <= 1).
        idle_watts: Board/package power when no task is running.
        busy_watts: Sustained power under a memory-bound streaming
            workload (bandwidth saturated, ALUs mostly waiting).
        peak_watts: Power limit hit by compute-bound dense work (the
            datasheet TDP/TGP).

    The three watt figures feed :mod:`repro.telemetry.power` only; they
    are never read by the cost model, so two specs differing solely in
    power produce bit-identical schedules.
    """

    name: str
    kind: str
    memory_capacity: Bytes
    memory_bandwidth: BytesPerSecond
    compute_flops: FlopsPerSecond
    launch_overhead: Seconds = 0.0
    memory_efficiency: Ratio = 1.0
    idle_watts: Watts = 15.0
    busy_watts: Watts = 120.0
    peak_watts: Watts = 150.0

    def __post_init__(self) -> None:
        if self.kind not in DeviceKind.ALL:
            raise ValueError(f"unknown device kind: {self.kind!r}")
        if self.memory_capacity <= 0:
            raise ValueError("memory_capacity must be positive")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")
        if self.compute_flops <= 0:
            raise ValueError("compute_flops must be positive")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ValueError("memory_efficiency must be in (0, 1]")
        if self.launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")
        if not 0.0 <= self.idle_watts <= self.busy_watts <= self.peak_watts:
            raise ValueError(
                "power envelope must satisfy 0 <= idle_watts <= busy_watts "
                f"<= peak_watts (got {self.idle_watts}/{self.busy_watts}"
                f"/{self.peak_watts})"
            )

    @property
    def effective_bandwidth(self) -> BytesPerSecond:
        """Sustained streaming bandwidth in bytes/s."""
        return self.memory_bandwidth * self.memory_efficiency

    def with_memory_capacity(self, capacity: Bytes) -> "DeviceSpec":
        """Return a copy with a different memory capacity."""
        return dataclasses.replace(self, memory_capacity=capacity)


@dataclass(frozen=True)
class LinkSpec:
    """An interconnect between two devices (PCIe in the paper).

    Attributes:
        name: Identifier, e.g. ``"pcie4"``.
        bandwidth: Unidirectional peak bandwidth in bytes/s.
        latency: Per-message latency in seconds (DMA setup + propagation).
        efficiency: Achievable fraction of peak for bulk DMA streaming.
        um_efficiency: Achievable fraction of peak under CUDA Unified
            Memory page-fault-driven access (far lower than DMA — the
            penalty behind the DejaVu-UM baseline of paper Figure 4).
        idle_watts: PHY/switch power with no transfer in flight.
        busy_watts: Power while a DMA stream saturates the link.  Like
            the device watt fields, read only by the energy meter —
            never by the cost model.
    """

    name: str
    bandwidth: BytesPerSecond
    latency: Seconds
    efficiency: Ratio = 0.8
    um_efficiency: Ratio = 0.15
    idle_watts: Watts = 2.0
    busy_watts: Watts = 8.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0.0 < self.um_efficiency <= 1.0:
            raise ValueError("um_efficiency must be in (0, 1]")
        if not 0.0 <= self.idle_watts <= self.busy_watts:
            raise ValueError(
                "power envelope must satisfy 0 <= idle_watts <= busy_watts "
                f"(got {self.idle_watts}/{self.busy_watts})"
            )

    @property
    def effective_bandwidth(self) -> BytesPerSecond:
        """Sustained DMA bandwidth in bytes/s."""
        return self.bandwidth * self.efficiency

    def transfer_time(self, nbytes: Bytes, unified_memory: bool = False) -> Seconds:
        """Time to move ``nbytes`` across the link, seconds."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        eff = self.um_efficiency if unified_memory else self.efficiency
        return self.latency + nbytes / (self.bandwidth * eff)


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: one GPU, one CPU, and the link between them.

    ``sync_overhead`` is the paper's :math:`T_{sync}` — the fixed cost of one
    intra-layer synchronization between CPU and GPU executors (Section 6.3.1).
    """

    name: str
    gpu: DeviceSpec
    cpu: DeviceSpec
    link: LinkSpec
    sync_overhead: Seconds = 20e-6

    def __post_init__(self) -> None:
        if self.gpu.kind != DeviceKind.GPU:
            raise ValueError("gpu field must have kind DeviceKind.GPU")
        if self.cpu.kind != DeviceKind.CPU:
            raise ValueError("cpu field must have kind DeviceKind.CPU")
        if self.sync_overhead < 0:
            raise ValueError("sync_overhead must be non-negative")

    def device(self, kind: str) -> DeviceSpec:
        """Look up the device of the given :class:`DeviceKind`."""
        if kind == DeviceKind.GPU:
            return self.gpu
        if kind == DeviceKind.CPU:
            return self.cpu
        raise KeyError(f"unknown device kind: {kind!r}")

    @property
    def total_memory(self) -> Bytes:
        """Combined GPU + CPU memory capacity in bytes."""
        return self.gpu.memory_capacity + self.cpu.memory_capacity


def _cpu_avx2_flops(cores: int, ghz: float) -> FlopsPerSecond:
    """Peak FP32 AVX2 throughput: 2 FMA ports x 8 lanes x 2 flops/FMA."""
    return cores * ghz * 1e9 * 2 * 8 * 2


# PC-High (paper Section 8.1): i9-13900K (8 P-cores @ 5.4 GHz, 67.2 GB/s
# DRAM, 192 GB) + RTX 4090 (24 GB, 1 TB/s, PCIe 4.0 x16 = 64 GB/s).
# Watt figures are datasheet numbers: 4090 TGP 450 W (memory-bound GEMV
# draws ~350 W), 13900K PL1/PL2 125/253 W.
PC_HIGH = MachineSpec(
    name="pc-high",
    gpu=DeviceSpec(
        name="rtx4090",
        kind=DeviceKind.GPU,
        memory_capacity=24 * GIB,
        memory_bandwidth=1008 * GB,
        compute_flops=82.6e12,
        launch_overhead=8e-6,
        memory_efficiency=0.8,
        idle_watts=22.0,
        busy_watts=350.0,
        peak_watts=450.0,
    ),
    cpu=DeviceSpec(
        name="i9-13900k",
        kind=DeviceKind.CPU,
        memory_capacity=192 * GIB,
        memory_bandwidth=67.2 * GB,
        compute_flops=_cpu_avx2_flops(cores=8, ghz=5.4),
        launch_overhead=2e-6,
        memory_efficiency=0.85,
        idle_watts=15.0,
        busy_watts=160.0,
        peak_watts=253.0,
    ),
    link=LinkSpec(
        name="pcie4-x16",
        bandwidth=64 * GB,
        latency=10e-6,
        idle_watts=3.0,
        busy_watts=12.0,
    ),
    sync_overhead=25e-6,
)

# PC-Low (paper Section 8.1): i7-12700K (8 P-cores @ 4.9 GHz, 38.4 GB/s
# DRAM, 64 GB) + RTX 2080Ti (11 GB, 616 GB/s, PCIe 3.0 x16 = 32 GB/s).
# Watts: 2080Ti TGP 250 W, 12700K PL1/PL2 125/190 W.
PC_LOW = MachineSpec(
    name="pc-low",
    gpu=DeviceSpec(
        name="rtx2080ti",
        kind=DeviceKind.GPU,
        memory_capacity=11 * GIB,
        memory_bandwidth=616 * GB,
        compute_flops=26.9e12,
        launch_overhead=8e-6,
        memory_efficiency=0.8,
        idle_watts=16.0,
        busy_watts=190.0,
        peak_watts=250.0,
    ),
    cpu=DeviceSpec(
        name="i7-12700k",
        kind=DeviceKind.CPU,
        memory_capacity=64 * GIB,
        memory_bandwidth=38.4 * GB,
        compute_flops=_cpu_avx2_flops(cores=8, ghz=4.9),
        launch_overhead=2e-6,
        memory_efficiency=0.85,
        idle_watts=12.0,
        busy_watts=125.0,
        peak_watts=190.0,
    ),
    link=LinkSpec(
        name="pcie3-x16",
        bandwidth=32 * GB,
        latency=12e-6,
        idle_watts=2.0,
        busy_watts=8.0,
    ),
    sync_overhead=35e-6,
)

# Server with a single 80 GB A100 (Section 8.3.4).  The host CPU barely
# matters for vLLM-style full-GPU inference but is modelled for completeness.
# Watts: A100 SXM TDP 400 W, EPYC 7742 TDP 225 W.
A100_SERVER = MachineSpec(
    name="a100-server",
    gpu=DeviceSpec(
        name="a100-80gb",
        kind=DeviceKind.GPU,
        memory_capacity=80 * GIB,
        memory_bandwidth=2039 * GB,
        compute_flops=312e12,
        launch_overhead=8e-6,
        memory_efficiency=0.8,
        idle_watts=50.0,
        busy_watts=310.0,
        peak_watts=400.0,
    ),
    cpu=DeviceSpec(
        name="epyc-7742",
        kind=DeviceKind.CPU,
        memory_capacity=512 * GIB,
        memory_bandwidth=190 * GB,
        compute_flops=_cpu_avx2_flops(cores=32, ghz=2.25),
        launch_overhead=2e-6,
        memory_efficiency=0.85,
        idle_watts=65.0,
        busy_watts=180.0,
        peak_watts=225.0,
    ),
    link=LinkSpec(
        name="pcie4-x16",
        bandwidth=64 * GB,
        latency=10e-6,
        idle_watts=3.0,
        busy_watts=12.0,
    ),
    sync_overhead=25e-6,
)

MACHINE_PRESETS = {
    PC_HIGH.name: PC_HIGH,
    PC_LOW.name: PC_LOW,
    A100_SERVER.name: A100_SERVER,
}
