"""repro — a Python reproduction of PowerInfer (SOSP 2024).

PowerInfer: Fast Large Language Model Serving with a Consumer-grade GPU
(Song, Mi, Xie, Chen — SJTU IPADS).

Quickstart::

    from repro import PowerInfer, OPT_30B, PC_HIGH

    system = PowerInfer.deploy(OPT_30B, PC_HIGH)
    result = system.generate(input_len=64, output_len=128)
    print(result.tokens_per_second)

See DESIGN.md for the architecture, the substitution table (simulated GPU
hardware, synthesized activation traces), and the per-experiment index.
"""

from repro.core.api import PowerInfer
from repro.core.pipeline import build_plan
from repro.engine.numerical import NumericalHybridEngine
from repro.engine.powerinfer import PowerInferEngine
from repro.engine.results import RequestResult
from repro.hardware.spec import A100_SERVER, MACHINE_PRESETS, PC_HIGH, PC_LOW, MachineSpec
from repro.models.config import (
    FALCON_40B,
    LLAMA_70B,
    MODEL_PRESETS,
    OPT_6_7B,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    OPT_175B,
    ModelConfig,
    tiny_config,
)
from repro.quant.formats import FP16, FP32, INT4, DType

__version__ = "1.0.0"

__all__ = [
    "A100_SERVER",
    "DType",
    "FALCON_40B",
    "FP16",
    "FP32",
    "INT4",
    "LLAMA_70B",
    "MACHINE_PRESETS",
    "MODEL_PRESETS",
    "MachineSpec",
    "ModelConfig",
    "NumericalHybridEngine",
    "OPT_13B",
    "OPT_175B",
    "OPT_30B",
    "OPT_66B",
    "OPT_6_7B",
    "PC_HIGH",
    "PC_LOW",
    "PowerInfer",
    "PowerInferEngine",
    "RequestResult",
    "build_plan",
    "tiny_config",
    "__version__",
]
