"""Seconds-vs-milliseconds regression tests for the serving SLO metrics.

Every timing quantity in :mod:`repro.serving.metrics` is in **seconds**:
SLO targets, TTFT/TBT/latency, and every ``*_s`` key of
``ContinuousReport.to_dict``.  Milliseconds exist only at the CLI display
layer (an explicit ``* 1e3`` at format time).  These tests pin that
convention — an SLO target accidentally interpreted as milliseconds, or a
report field exported in ms under an ``_s`` key, is off by 1000x while
remaining dimensionally self-consistent, so the flow analyzer cannot
catch it.
"""

import math

from repro.serving.arrival import Request
from repro.serving.metrics import SLO, ContinuousReport, RequestMetrics


def _request(arrival=0.0, rid=0):
    return Request(request_id=rid, arrival_time=arrival, input_len=16, output_len=3)


def _metrics():
    # Arrival at t=0; tokens at 0.10 s, 0.15 s, 0.25 s.
    return RequestMetrics(
        request=_request(),
        admit_time=0.05,
        token_times=(0.10, 0.15, 0.25),
    )


def test_token_metrics_are_in_seconds():
    m = _metrics()
    assert math.isclose(m.ttft, 0.10)
    assert math.isclose(m.latency, 0.25)
    assert math.isclose(m.queue_delay, 0.05)
    assert m.tbts == (0.15 - 0.10, 0.25 - 0.15)
    assert math.isclose(m.max_tbt, 0.10)


def test_slo_targets_are_seconds_not_milliseconds():
    m = _metrics()  # TTFT 0.10 s, worst TBT 0.10 s
    # A 200 ms / 150 ms SLO written in seconds: met.
    assert m.meets_slo(SLO(ttft_target=0.2, tbt_target=0.15))
    # The same SLO mistakenly written in milliseconds (200/150) would
    # pass everything; the seconds-scale tight SLO below must *fail*,
    # proving targets are compared on the seconds scale.
    assert not m.meets_slo(SLO(ttft_target=0.05, tbt_target=0.15))
    assert not m.meets_slo(SLO(ttft_target=0.2, tbt_target=0.05))


def test_report_dict_seconds_keys_hold_seconds():
    report = ContinuousReport(completed=[_metrics()])
    d = report.to_dict(slo=SLO(ttft_target=0.2, tbt_target=0.15))
    assert math.isclose(d["mean_ttft_s"], 0.10)
    assert math.isclose(d["mean_latency_s"], 0.25)
    assert math.isclose(d["makespan_s"], 0.25)
    assert math.isclose(d["slo"]["ttft_target_s"], 0.2)
    assert math.isclose(d["slo"]["tbt_target_s"], 0.15)
    # Percentile tables carry the _s suffix and seconds values too.
    assert math.isclose(d["ttft_percentiles_s"]["p50"], 0.10)


def test_every_time_valued_key_is_suffixed_s():
    report = ContinuousReport(completed=[_metrics()])
    d = report.to_dict()
    # Keys that carry a duration must say so; this inventories them so a
    # new unsuffixed (or ms-suffixed) time field fails review here.
    time_keys = {k for k in d if k.endswith("_s")}
    assert time_keys == {
        "makespan_s",
        "mean_latency_s",
        "mean_ttft_s",
        "mean_queue_delay_s",
        "time_in_degraded_mode_s",
        "latency_percentiles_s",
        "ttft_percentiles_s",
        "tbt_percentiles_s",
    }
    assert not any(k.endswith("_ms") for k in d)
