"""Tests for the baseline engines (llama.cpp / FlexGen / DejaVu-UM / vLLM / +PO)."""

import dataclasses

import pytest

from repro.engine.baselines import (
    DejaVuUmEngine,
    FlexGenEngine,
    LayerwiseSparseEngine,
    LlamaCppEngine,
    VllmEngine,
)
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.spec import GIB


class TestLayerSplit:
    def test_gpu_layer_count_bounded(self, mini_plan_none):
        engine = LlamaCppEngine(mini_plan_none)
        n = engine.gpu_layer_count()
        assert 0 <= n <= mini_plan_none.model.n_layers

    def test_bigger_gpu_hosts_more_layers(self, mini_model, mini_machine):
        from repro.core.pipeline import build_plan
        from repro.quant.formats import FP16

        small = LlamaCppEngine(
            build_plan(mini_model, mini_machine, FP16, policy="none")
        )
        big_machine = dataclasses.replace(
            mini_machine,
            gpu=mini_machine.gpu.with_memory_capacity(0.75 * GIB),
        )
        big = LlamaCppEngine(build_plan(mini_model, big_machine, FP16, policy="none"))
        assert big.gpu_layer_count() >= small.gpu_layer_count()

    def test_gpu_load_share_equals_layer_fraction(self, mini_plan_none):
        engine = LlamaCppEngine(mini_plan_none)
        assert engine.gpu_load_share() == pytest.approx(
            engine.gpu_layer_count() / mini_plan_none.model.n_layers
        )


class TestLlamaCpp:
    def test_dense_dag_has_one_op_per_layer(self, mini_plan_none):
        engine = LlamaCppEngine(mini_plan_none)
        tasks = engine.iteration_tasks(0, 1, 1)
        layer_ops = [t for t in tasks if t.name.startswith("L")]
        assert len(layer_ops) == mini_plan_none.model.n_layers

    def test_single_hidden_transfer(self, mini_plan_none):
        engine = LlamaCppEngine(mini_plan_none)
        if 0 < engine.gpu_layer_count() < mini_plan_none.model.n_layers:
            tasks = engine.iteration_tasks(0, 1, 1)
            transfers = [t for t in tasks if t.tag == "transfer"]
            assert len(transfers) == 1

    def test_request_runs(self, mini_plan_none):
        result = LlamaCppEngine(mini_plan_none).simulate_request(8, 16)
        assert result.tokens_per_second > 0


class TestFlexGen:
    def test_streams_nonresident_layers(self, mini_plan_none):
        engine = FlexGenEngine(mini_plan_none)
        tasks = engine.iteration_tasks(0, 1, 1)
        streams = [t for t in tasks if t.tag == "transfer"]
        expected = mini_plan_none.model.n_layers - engine.gpu_layer_count()
        assert len(streams) == expected

    def test_transfer_dominated_at_batch_1(self, mini_plan_none):
        result = FlexGenEngine(mini_plan_none).simulate_iteration(0, 1, 1)
        tags = result.time_by_tag()
        assert tags.get("transfer", 0) > 0.5 * sum(tags.values())

    def test_all_compute_on_gpu(self, mini_plan_none):
        assert FlexGenEngine(mini_plan_none).gpu_load_share() == 1.0


class TestDejaVuUm:
    def test_um_fetches_only_active_bytes(self, mini_plan_none):
        engine = DejaVuUmEngine(mini_plan_none)
        tasks = engine.iteration_tasks(0, 1, 1)
        fetches = [t for t in tasks if "um_fetch" in t.name]
        assert fetches, "non-resident layers must fetch via UM"
        # A UM fetch of active neurons must be far cheaper in bytes than a
        # FlexGen full-layer stream, yet slower per byte: compare durations
        # indirectly by checking it is nonzero but less than streaming the
        # full layer over DMA at UM's penalty would be.
        assert all(t.duration > 0 for t in fetches)

    def test_slower_than_llamacpp_at_batch1(self, mini_plan_none):
        # Figure 4: DejaVu-UM suffers UM transfer latency.
        dv = DejaVuUmEngine(mini_plan_none).simulate_request(8, 16)
        lc = LlamaCppEngine(mini_plan_none).simulate_request(8, 16)
        assert dv.tokens_per_second < lc.tokens_per_second


class TestVllm:
    def test_requires_model_to_fit(self, mini_plan_none, mini_machine, mini_model):
        # The mini machine GPU (0.25 GiB) cannot hold the ~800 MB mini model.
        with pytest.raises(OutOfMemoryError):
            VllmEngine(mini_plan_none)

    def test_runs_on_big_gpu(self, mini_model):
        from repro.core.pipeline import build_plan
        from repro.hardware.spec import A100_SERVER
        from repro.quant.formats import FP16

        plan = build_plan(mini_model, A100_SERVER, FP16, policy="none")
        result = VllmEngine(plan).simulate_request(8, 16)
        assert result.tokens_per_second > 0
        assert VllmEngine(plan).gpu_load_share() == 1.0


class TestLayerwiseSparse:
    def test_po_faster_than_llamacpp(self, mini_plan_none):
        # "+PO" skips inactive neurons: must beat dense llama.cpp.
        po = LayerwiseSparseEngine(mini_plan_none).simulate_request(8, 16)
        lc = LlamaCppEngine(mini_plan_none).simulate_request(8, 16)
        assert po.tokens_per_second > lc.tokens_per_second

    def test_po_slower_than_full_powerinfer(self, mini_plan, mini_plan_none):
        po = LayerwiseSparseEngine(mini_plan_none).simulate_request(8, 16)
        pi = PowerInferEngine(mini_plan).simulate_request(8, 16)
        assert pi.tokens_per_second > po.tokens_per_second

    def test_predictors_run_on_each_layers_device(self, mini_plan_none):
        engine = LayerwiseSparseEngine(mini_plan_none)
        tasks = {t.name: t for t in engine.iteration_tasks(0, 1, 1)}
        n_gpu = engine.gpu_layer_count()
        n_cpu = mini_plan_none.model.n_layers - n_gpu
        if n_cpu:
            assert tasks["L0.pred"].resource == "cpu"
        if n_gpu:
            last = mini_plan_none.model.n_layers - 1
            assert tasks[f"L{last}.pred"].resource == "gpu"
