"""Bridge measured activation traces into the performance substrate.

The offline profiler produces :class:`~repro.profiler.trace.ActivationTrace`
objects (counts per neuron).  The performance engines consume
:class:`~repro.sparsity.activation.ActivationModel` probability profiles.
This module converts one into the other, so a *measured* numerical profile
can drive the performance simulator in place of a synthesized one —
closing the loop between the two substrates.
"""

from __future__ import annotations

import numpy as np

from repro.profiler.trace import ActivationTrace
from repro.sparsity.activation import ActivationModel, LayerActivationProfile

__all__ = ["profiles_from_trace", "activation_model_from_trace"]


def profiles_from_trace(trace: ActivationTrace) -> list[LayerActivationProfile]:
    """Per-layer MLP activation profiles from measured counts."""
    return [
        LayerActivationProfile(probs=np.clip(trace.mlp_rates(li), 0.0, 1.0))
        for li in range(trace.n_layers)
    ]


def activation_model_from_trace(
    trace: ActivationTrace, rng: np.random.Generator
) -> ActivationModel:
    """An :class:`ActivationModel` sampling from measured activation rates.

    Attention profiles are included when the trace recorded them.
    """
    attn_profiles = None
    if trace.attn_counts:
        attn_profiles = [
            LayerActivationProfile(probs=np.clip(trace.attn_rates(li), 0.0, 1.0))
            for li in range(trace.n_layers)
        ]
    return ActivationModel(
        mlp_profiles=profiles_from_trace(trace),
        rng=rng,
        attn_profiles=attn_profiles,
    )
