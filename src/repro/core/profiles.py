"""Per-model activation sparsity profiles.

For paper-scale models (whose checkpoints are unavailable) the offline
profiler's output is synthesized from the distribution parameters the paper
itself publishes:

* OPT family (ReLU MLPs): ~90% MLP sparsity per token; 26% of a layer's
  neurons carry 80% of activations (Figure 5a); ~17% carry 80% model-wide.
* LLaMA (ReGLU): ~75% MLP sparsity; 43% of neurons carry 80% (Figure 5a).
* Falcon (ReLU): OPT-like MLP behaviour.
* Attention: "nearly half of the attention heads make minimal
  contributions" (Section 2.1) — heads activate at ~55% with mild skew.

Layer-to-layer variation follows the known pattern that early layers are
denser: per-layer mean rates ramp down across depth around the model mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import Activation, ModelConfig
from repro.sparsity.powerlaw import synthesize_activation_probs

__all__ = ["SparsityProfile", "profile_for_model", "synthesize_model_probs"]


@dataclass(frozen=True)
class SparsityProfile:
    """Distribution parameters for one model family."""

    mlp_rate: float  # mean per-token MLP activation probability
    mlp_hot_fraction: float  # neurons carrying mlp_hot_mass (Figure 5a)
    mlp_hot_mass: float
    attn_rate: float  # mean per-token head activation probability
    attn_hot_fraction: float
    attn_hot_mass: float
    # Cross-layer heterogeneity: per-layer mean rates follow a geometric
    # ramp rate_l = mlp_rate * depth_spread**(depth_pivot - depth), so late
    # layers are far sparser than early ones — the cross-layer skew that
    # makes the whole-model CDF (Figure 5b) more concentrated than any
    # single layer's.
    depth_spread: float = 30.0
    depth_pivot: float = 0.35


_RELU_PROFILE = SparsityProfile(
    mlp_rate=0.10,
    mlp_hot_fraction=0.26,
    mlp_hot_mass=0.80,
    attn_rate=0.55,
    attn_hot_fraction=0.45,
    attn_hot_mass=0.70,
)

_REGLU_PROFILE = SparsityProfile(
    mlp_rate=0.25,
    mlp_hot_fraction=0.43,
    mlp_hot_mass=0.80,
    attn_rate=0.55,
    attn_hot_fraction=0.45,
    attn_hot_mass=0.70,
)


def profile_for_model(model: ModelConfig) -> SparsityProfile:
    """The sparsity profile matching a model's activation family."""
    if model.activation == Activation.REGLU:
        return _REGLU_PROFILE
    return _RELU_PROFILE


def synthesize_model_probs(
    model: ModelConfig,
    rng: np.random.Generator,
    profile: SparsityProfile | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Synthesize per-layer (MLP, attention) activation probabilities.

    Returns:
        ``(mlp_probs, attn_probs)`` — one array per layer each, shaped
        ``(d_ffn,)`` and ``(n_heads,)``.
    """
    prof = profile or profile_for_model(model)
    mlp_probs: list[np.ndarray] = []
    attn_probs: list[np.ndarray] = []
    n = model.n_layers
    mlp_cap = 0.9 * prof.mlp_hot_fraction / prof.mlp_hot_mass
    attn_cap = 0.9 * prof.attn_hot_fraction / prof.attn_hot_mass
    for li in range(n):
        depth = li / max(n - 1, 1)
        scale = float(np.exp(np.log(prof.depth_spread) * (prof.depth_pivot - depth)))
        mlp_rate = float(np.clip(prof.mlp_rate * scale, 1e-3, mlp_cap))
        # Attention head sparsity varies far less with depth than MLP
        # sparsity; damp the ramp.
        attn_rate = float(np.clip(prof.attn_rate * scale**0.25, 1e-3, attn_cap))
        mlp_probs.append(
            synthesize_activation_probs(
                model.d_ffn,
                rng,
                hot_fraction=prof.mlp_hot_fraction,
                hot_mass=prof.mlp_hot_mass,
                mean_activation_rate=mlp_rate,
            )
        )
        attn_probs.append(
            synthesize_activation_probs(
                model.n_heads,
                rng,
                hot_fraction=prof.attn_hot_fraction,
                hot_mass=prof.attn_hot_mass,
                mean_activation_rate=attn_rate,
            )
        )
    return mlp_probs, attn_probs
