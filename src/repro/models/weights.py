"""Synthetic weight generation for the numpy reference transformer.

The paper runs released OPT/Falcon/LLaMA checkpoints; those are unavailable
here, so numerical experiments use randomly initialized weights with a bias
scheme chosen to make ReLU activation sparsity realistic.  Plain zero-bias
random init yields ~50% ReLU sparsity; real ReLU LLMs show 80-95% (Section
2.1).  We therefore draw per-neuron biases from a shifted distribution so
that each FC1 neuron has a controllable prior activation probability, and we
skew those probabilities with a power law so a small "hot" subset activates
for most inputs (Insight-1, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as _scipy_stats

from repro.models.config import Activation, ModelConfig

__all__ = ["LayerWeights", "ModelWeights", "init_weights"]


@dataclass
class LayerWeights:
    """Weights of one transformer layer (numpy, FP32).

    MLP matrices are stored neuron-major: ``fc1`` has shape
    ``(d_ffn, d_model)`` (row i = neuron i's input weights) and ``fc2`` has
    shape ``(d_model, d_ffn)`` (column i = neuron i's output weights), so
    neuron-aware operators gather contiguous rows/columns.
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    fc1: np.ndarray
    fc1_bias: np.ndarray
    fc2: np.ndarray
    gate: np.ndarray | None = None
    attn_norm: np.ndarray = field(default_factory=lambda: np.empty(0))
    mlp_norm: np.ndarray = field(default_factory=lambda: np.empty(0))


@dataclass
class ModelWeights:
    """All weights of a numpy model."""

    config: ModelConfig
    embedding: np.ndarray
    layers: list[LayerWeights]
    final_norm: np.ndarray

    @property
    def lm_head(self) -> np.ndarray:
        """Output projection, tied to the input embedding."""
        return self.embedding


def _neuron_bias_for_probability(p: np.ndarray, input_scale: float) -> np.ndarray:
    """Bias making a zero-mean-Gaussian pre-activation positive w.p. ``p``.

    If the pre-activation (before bias) is N(0, s^2), adding bias b makes
    P(x + b > 0) = Phi(b / s); invert to get b = s * Phi^-1(p).
    """
    p = np.clip(p, 1e-4, 1 - 1e-4)
    return input_scale * _scipy_stats.norm.ppf(p)


def init_weights(
    config: ModelConfig,
    rng: np.random.Generator,
    activation_probs: list[np.ndarray] | None = None,
    dtype: np.dtype = np.float32,
) -> ModelWeights:
    """Create synthetic weights for ``config``.

    Args:
        config: Architecture to instantiate.
        rng: Seeded generator; all randomness flows from here.
        activation_probs: Optional per-layer arrays of shape ``(d_ffn,)``
            giving each MLP neuron's target activation probability.  When
            provided, FC1 biases are set so ReLU gates open with roughly
            these probabilities, producing the paper's power-law sparsity
            on random inputs.  When omitted, biases are zero (~50% sparse).
        dtype: numpy dtype for the weights.

    Returns:
        A fully populated :class:`ModelWeights`.
    """
    if activation_probs is not None and len(activation_probs) != config.n_layers:
        raise ValueError("activation_probs must have one entry per layer")

    d, f = config.d_model, config.d_ffn
    std = 1.0 / np.sqrt(d)
    # Pre-activation scale for a unit-variance input through fc1 rows.
    input_scale = 1.0

    def mat(rows: int, cols: int) -> np.ndarray:
        return (rng.standard_normal((rows, cols)) * std).astype(dtype)

    layers: list[LayerWeights] = []
    for li in range(config.n_layers):
        if activation_probs is not None:
            bias = _neuron_bias_for_probability(
                np.asarray(activation_probs[li], dtype=np.float64), input_scale
            ).astype(dtype)
        else:
            bias = np.zeros(f, dtype=dtype)
        layers.append(
            LayerWeights(
                wq=mat(d, d),
                wk=mat(config.kv_dim, d),
                wv=mat(config.kv_dim, d),
                wo=mat(d, d),
                fc1=mat(f, d),
                fc1_bias=bias,
                fc2=mat(d, f),
                gate=mat(f, d) if config.activation == Activation.REGLU else None,
                attn_norm=np.ones(d, dtype=dtype),
                mlp_norm=np.ones(d, dtype=dtype),
            )
        )
    embedding = (rng.standard_normal((config.vocab_size, d)) * std).astype(dtype)
    return ModelWeights(
        config=config,
        embedding=embedding,
        layers=layers,
        final_norm=np.ones(d, dtype=dtype),
    )
