"""Offline neuron placement: impact metric, batching, ILP and greedy solvers."""

from repro.solver.batching import NeuronBatch, batch_neurons
from repro.solver.greedy import greedy_placement, greedy_with_repair
from repro.solver.ilp import SolverOptions, communication_threshold, solve_ilp
from repro.solver.impact import neuron_impact
from repro.solver.placement import NeuronGroup, NeuronTable, PlacementPolicy

__all__ = [
    "NeuronBatch",
    "NeuronGroup",
    "NeuronTable",
    "PlacementPolicy",
    "SolverOptions",
    "batch_neurons",
    "communication_threshold",
    "greedy_placement",
    "greedy_with_repair",
    "neuron_impact",
    "solve_ilp",
]
