"""Multi-window burn-rate SLO alerting: firing, hysteresis, annotations."""

import pytest

from repro.telemetry import Alert, BurnRateRule, SLOMonitor, SLOObjective


def monitor(budget=0.1, long_s=4.0, short_s=1.0, threshold=2.0):
    return SLOMonitor(
        objectives=[SLOObjective("ttft", budget=budget)],
        rules=[BurnRateRule(long_window_s=long_s, short_window_s=short_s,
                            threshold=threshold)],
    )


class TestValidation:
    def test_budget_must_be_fraction(self):
        with pytest.raises(ValueError, match="budget"):
            SLOObjective("x", budget=1.5)

    def test_short_window_bounded_by_long(self):
        with pytest.raises(ValueError, match="short window"):
            BurnRateRule(long_window_s=1.0, short_window_s=2.0, threshold=1.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(KeyError, match="unknown objective"):
            monitor().observe("nope", 0.0, bad=True)

    def test_time_regression_rejected(self):
        m = monitor()
        m.observe("ttft", 1.0, bad=False)
        with pytest.raises(ValueError, match="precedes"):
            m.observe("ttft", 0.5, bad=True)

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SLOMonitor(
                objectives=[SLOObjective("a", 0.1), SLOObjective("a", 0.2)],
                rules=[BurnRateRule(1.0, 1.0, 1.0)],
            )


class TestBurnRate:
    def test_bad_fraction_and_burn(self):
        m = monitor(budget=0.1)
        for i in range(10):
            m.observe("ttft", i * 0.1, bad=i < 4)
        assert m.bad_fraction("ttft", 0.0, 0.9) == pytest.approx(0.4)
        # 40% bad over a 10% budget = burning 4x.
        assert m.burn_rate("ttft", 1.0, 0.9) == pytest.approx(4.0)

    def test_no_observations_is_none_and_never_fires(self):
        m = monitor()
        assert m.burn_rate("ttft", 4.0, 10.0) is None
        assert m.check(10.0) == []


class TestAlerting:
    def test_fires_only_when_both_windows_hot(self):
        m = monitor(budget=0.1, long_s=4.0, short_s=1.0, threshold=2.0)
        # Old badness only: hot long window, recovered short window.
        for i in range(8):
            m.observe("ttft", i * 0.25, bad=True)
        for i in range(8):
            m.observe("ttft", 3.0 + i * 0.125, bad=False)
        assert m.check(4.0) == []

    def test_incident_fires_once_then_rearms_after_recovery(self):
        m = monitor(budget=0.1, long_s=4.0, short_s=1.0, threshold=2.0)
        for i in range(8):
            m.observe("ttft", i * 0.125, bad=True)
        first = m.check(1.0, context=("crash:r0",))
        assert len(first) == 1
        assert first[0].context == ("crash:r0",)
        assert first[0].burn_rate_short == pytest.approx(10.0)
        # Still burning: hysteresis keeps the pair silent.
        m.observe("ttft", 1.5, bad=True)
        assert m.check(1.5) == []
        # Short window recovers -> re-arm, then a fresh incident refires.
        for i in range(10):
            m.observe("ttft", 2.0 + i * 0.1, bad=False)
        assert m.check(3.0) == []
        for i in range(10):
            m.observe("ttft", 3.1 + i * 0.05, bad=True)
        assert len(m.check(3.6)) == 1
        assert len(m.alerts) == 2

    def test_alert_serialization(self):
        m = monitor()
        for i in range(6):
            m.observe("ttft", i * 0.1, bad=True)
        (alert,) = m.check(0.5, context=("degraded:r1",))
        assert isinstance(alert, Alert)
        doc = alert.to_dict()
        assert doc["objective"] == "ttft"
        assert doc["context"] == ["degraded:r1"]
        assert m.to_dicts() == [doc]
        assert "ttft" in alert.format() and "degraded:r1" in alert.format()
