"""Command-line interface.

Subcommands::

    repro models                         list model presets
    repro machines                       list machine presets
    repro simulate  --model opt-30b --machine pc-high [--engine powerinfer]
                                         simulate one request end to end
    repro compare   --model opt-30b --machine pc-high
                                         tokens/s of every engine that fits
    repro plan      --model opt-30b --machine pc-high --out plan.npz
                                         run the offline phase, save the plan
    repro figure    fig05 [...]          regenerate one paper figure/table
    repro chaos     --model opt-6.7b --machine pc-low [--fault-seed 7]
                                         serve under injected faults, naive
                                         vs degradation-aware side by side
    repro fleet     [--policy least-loaded] [--no-failover] [--disaggregate]
                                         run the canonical 3-replica fleet
                                         chaos scenario, validate it, and
                                         optionally export trace/summary
                                         (--deep-trace/--alerts/--timeseries
                                         turn on fleet-wide observability)
    repro explain-request 9 [--format json] [--json out.json]
                                         replay the fleet scenario and
                                         reconstruct one request's causal
                                         timeline across replicas, with
                                         cumulative fleet joules per entry
    repro energy    [--model opt-6.7b --machine pc-low] [--whatif]
                                         J/token, watts, and gCO2 per
                                         engine for one request shape;
                                         --fleet meters the chaos fleet
                                         scenario and reconciles the
                                         ledger against the power meter
    repro trace     --model opt-6.7b --machine pc-low --out run.trace.json
                                         serve one traced stream and export a
                                         Chrome trace / JSONL / timeline PNG
    repro attribution --model opt-6.7b --machine pc-low
                                         decompose one iteration: roofline
                                         components, critical path, what-if
                                         knob sensitivity
    repro bench-baseline [--quick] [--out BENCH_baseline.json]
                                         record the canonical benchmark suite
    repro bench-check [--tolerance 0.05] [--report diff.json]
                                         re-run the suite, diff against the
                                         committed baseline, exit non-zero on
                                         regression
    repro lint [paths ...] [--format json] [--out report.json]
                                         static simulation-discipline lint
                                         (custom AST rules over src/repro)
    repro check-flow [paths ...] [--rules ...] [--format json] [--out report.json]
                                         interprocedural units/dimension and
                                         seed-provenance analysis
    repro verify-schedule [--quick] [--format json] [--out report.json]
                                         replay bench-suite schedules against
                                         the simulator invariants
    repro check [paths ...] [--json-out report.json] [--skip-verify] [--full]
                                         umbrella: lint + check-flow +
                                         verify-schedule, one merged report

Also runnable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench import (
    run_ablation_impact_weighting,
    run_ablation_predictor_budget,
    run_ablation_selective_sync,
    run_ablation_solver_batching,
    run_ablation_sync_overhead,
    run_continuous_batching,
    run_fig04,
    run_fig05,
    run_fig06,
    run_fig09_modeled,
    run_fig09_trained,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16_measured,
    run_fig16_modeled,
    run_fig17,
    run_fault_tolerance,
    run_fig18,
    run_prompt_heavy,
    run_table2,
)
from repro.bench.report import format_table
from repro.bench.runner import ENGINE_CLASSES, make_engine
from repro.core.pipeline import POLICIES, build_plan
from repro.engine.plan_io import save_plan
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.spec import MACHINE_PRESETS
from repro.models.config import MODEL_PRESETS
from repro.quant.formats import DTYPE_PRESETS
from repro.serving.fleet.policies import ROUTER_POLICIES

__all__ = ["main", "FIGURES"]

FIGURES: dict[str, Callable[[], list[dict]]] = {
    "fig04": run_fig04,
    "fig05": run_fig05,
    "fig06": run_fig06,
    "fig09-trained": run_fig09_trained,
    "fig09-modeled": run_fig09_modeled,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16-modeled": run_fig16_modeled,
    "fig16-measured": run_fig16_measured,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "table2": run_table2,
    "ablation-sync": run_ablation_sync_overhead,
    "ablation-selective-sync": run_ablation_selective_sync,
    "ablation-predictor-budget": run_ablation_predictor_budget,
    "ablation-solver-batching": run_ablation_solver_batching,
    "ablation-impact-weighting": run_ablation_impact_weighting,
    "ablation-prompt-heavy": run_prompt_heavy,
    "continuous-batching": run_continuous_batching,
    "fault-tolerance": run_fault_tolerance,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PowerInfer (SOSP 2024) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list model presets")
    sub.add_parser("machines", help="list machine presets")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", required=True, choices=sorted(MODEL_PRESETS))
        p.add_argument("--machine", required=True, choices=sorted(MACHINE_PRESETS))
        p.add_argument("--dtype", default="fp16", choices=sorted(DTYPE_PRESETS))
        p.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("simulate", help="simulate one request")
    add_common(sim)
    sim.add_argument("--engine", default="powerinfer", choices=sorted(ENGINE_CLASSES))
    sim.add_argument("--input", type=int, default=64, dest="input_len")
    sim.add_argument("--output", type=int, default=128, dest="output_len")
    sim.add_argument("--batch", type=int, default=1)

    cmp_ = sub.add_parser("compare", help="compare all engines on one request")
    add_common(cmp_)
    cmp_.add_argument("--input", type=int, default=64, dest="input_len")
    cmp_.add_argument("--output", type=int, default=128, dest="output_len")

    plan = sub.add_parser("plan", help="run the offline phase and save the plan")
    add_common(plan)
    plan.add_argument("--policy", default="ilp", choices=POLICIES)
    plan.add_argument("--out", required=True, help="output .npz path")

    fig = sub.add_parser("figure", help="regenerate one paper figure/table")
    fig.add_argument("name", choices=sorted(FIGURES))

    serve = sub.add_parser("serve", help="simulate a Poisson request stream")
    add_common(serve)
    serve.add_argument("--engine", default="powerinfer", choices=sorted(ENGINE_CLASSES))
    serve.add_argument("--rate", type=float, default=0.1, help="requests/second")
    serve.add_argument("--requests", type=int, default=30)
    serve.add_argument(
        "--mode",
        default="fcfs",
        choices=("fcfs", "batched", "continuous"),
        help="scheduling granularity: whole-request FCFS, static padded "
        "batches, or iteration-level continuous batching",
    )
    serve.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    serve.add_argument(
        "--scheduler",
        default="fcfs",
        choices=("fcfs", "prefill-first", "chunked"),
        help="continuous-batching iteration policy",
    )
    serve.add_argument(
        "--chunk-tokens",
        type=int,
        default=64,
        dest="chunk_tokens",
        help="per-iteration prompt-token cap for --scheduler chunked",
    )
    serve.add_argument(
        "--kv-gib",
        type=float,
        default=0.5,
        dest="kv_gib",
        help="GPU memory carved out for KV cache (continuous mode)",
    )
    serve.add_argument("--slo-ttft", type=float, default=2.0, dest="slo_ttft")
    serve.add_argument("--slo-tbt", type=float, default=1.0, dest="slo_tbt")

    chaos = sub.add_parser(
        "chaos",
        help="serve a stream under injected faults, naive vs degradation-aware",
    )
    add_common(chaos)
    chaos.add_argument("--engine", default="powerinfer", choices=sorted(ENGINE_CLASSES))
    chaos.add_argument("--rate", type=float, default=0.9, help="requests/second")
    chaos.add_argument("--requests", type=int, default=48)
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        dest="fault_seed",
        help="generate a random fault schedule from this seed "
        "(default: the canonical degrade/squeeze/stall timeline)",
    )
    chaos.add_argument(
        "--faults",
        default=None,
        help="JSON file with a fault-event list (see docs/serving.md)",
    )
    chaos.add_argument(
        "--deadline",
        type=float,
        default=12.0,
        help="per-request completion deadline, seconds after arrival",
    )
    chaos.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    chaos.add_argument(
        "--kv-gib",
        type=float,
        default=0.35,
        dest="kv_gib",
        help="GPU memory carved out for the KV-cache admission budget",
    )
    chaos.add_argument("--max-queue", type=int, default=16, dest="max_queue")
    chaos.add_argument("--max-retries", type=int, default=2, dest="max_retries")
    chaos.add_argument("--slo-ttft", type=float, default=6.0, dest="slo_ttft")
    chaos.add_argument("--slo-tbt", type=float, default=0.020, dest="slo_tbt")

    def add_fleet_scenario_flags(p: argparse.ArgumentParser) -> None:
        """Canonical fleet-chaos scenario knobs, shared by every subcommand
        that replays it (``fleet``, ``explain-request``, ``energy --fleet``)."""
        p.add_argument(
            "--policy", default="round-robin", choices=sorted(ROUTER_POLICIES)
        )
        p.add_argument("--requests", type=int, default=48)
        p.add_argument(
            "--sessions",
            type=int,
            default=None,
            help="tag conversation ids 0..N-1 onto the stream (session-affinity)",
        )
        p.add_argument(
            "--no-chaos",
            action="store_true",
            dest="no_chaos",
            help="skip the replica crash (fault-free reference fleet)",
        )
        p.add_argument(
            "--no-failover",
            action="store_true",
            dest="no_failover",
            help="blind-router ablation: keep dispatching to dead replicas",
        )
        p.add_argument(
            "--disaggregate",
            action="store_true",
            help="prefill on the A100 replica, decode on the PCs, KV streamed over",
        )
        p.add_argument(
            "--hedge", action="store_true", help="hedge deadline-critical dispatches"
        )
        p.add_argument(
            "--brownout",
            action="store_true",
            help="shed low-priority arrivals while a replica is detected down",
        )

    fleet = sub.add_parser(
        "fleet",
        help="run the canonical 3-replica fleet chaos scenario and validate it",
    )
    add_fleet_scenario_flags(fleet)
    fleet.add_argument(
        "--trace", default=None, help="write a Chrome trace of the fleet run"
    )
    fleet.add_argument(
        "--summary", default=None, help="write the fleet report JSON"
    )
    fleet.add_argument(
        "--verify-out",
        default=None,
        dest="verify_out",
        help="write the fleet validator verdict as JSON",
    )
    fleet.add_argument(
        "--deep-trace",
        default=None,
        dest="deep_trace",
        help=(
            "write the merged cross-replica Chrome trace (one process lane "
            "per replica plus the router); turns on deep fleet tracing"
        ),
    )
    fleet.add_argument(
        "--alerts",
        default=None,
        help="write the SLO burn-rate alert log as JSON (deep tracing)",
    )
    fleet.add_argument(
        "--timeseries",
        default=None,
        help="write the sampled fleet time-series as JSONL (deep tracing)",
    )

    explain = sub.add_parser(
        "explain-request",
        help=(
            "replay the canonical fleet scenario with deep tracing and "
            "reconstruct one request's cross-replica causal timeline"
        ),
    )
    explain.add_argument("request_id", type=int)
    add_fleet_scenario_flags(explain)
    explain.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="print the timeline as a log (text) or as the raw JSON document",
    )
    explain.add_argument(
        "--json",
        default=None,
        dest="json_out",
        help="also write the timeline as JSON",
    )

    energy = sub.add_parser(
        "energy",
        help="J/token, average watts, and carbon accounting",
    )
    energy.add_argument("--model", default="opt-6.7b", choices=sorted(MODEL_PRESETS))
    energy.add_argument("--machine", default="pc-low", choices=sorted(MACHINE_PRESETS))
    energy.add_argument("--dtype", default="int4", choices=sorted(DTYPE_PRESETS))
    energy.add_argument("--seed", type=int, default=0)
    energy.add_argument("--input", type=int, default=64, dest="input_len")
    energy.add_argument("--output", type=int, default=128, dest="output_len")
    energy.add_argument("--batch", type=int, default=1)
    energy.add_argument(
        "--carbon-intensity",
        type=float,
        default=None,
        dest="carbon_intensity",
        help="grid carbon intensity in gCO2/kWh (default: 400, the global mean)",
    )
    energy.add_argument(
        "--whatif",
        action="store_true",
        help="also print the perf-per-watt knob sensitivity of a decode iteration",
    )
    energy.add_argument(
        "--fleet",
        action="store_true",
        dest="fleet_mode",
        help="meter the canonical fleet chaos scenario instead of one request",
    )
    add_fleet_scenario_flags(energy)
    energy.add_argument(
        "--json",
        default=None,
        dest="json_out",
        help="also write the energy report as JSON",
    )
    energy.add_argument(
        "--timeseries",
        default=None,
        help="write the sampled watt lanes as JSONL (--fleet only)",
    )

    trace = sub.add_parser(
        "trace",
        help="serve one traced request stream and export the telemetry",
    )
    add_common(trace)
    trace.add_argument("--engine", default="powerinfer", choices=sorted(ENGINE_CLASSES))
    trace.add_argument("--rate", type=float, default=0.9, help="requests/second")
    trace.add_argument("--requests", type=int, default=48)
    trace.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        dest="fault_seed",
        help="generate a random fault schedule from this seed "
        "(default: the canonical degrade/squeeze/stall timeline)",
    )
    trace.add_argument(
        "--faults",
        default=None,
        help="JSON file with a fault-event list (see docs/serving.md); "
        "'none' disables fault injection",
    )
    trace.add_argument(
        "--deadline",
        type=float,
        default=12.0,
        help="per-request completion deadline, seconds after arrival",
    )
    trace.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    trace.add_argument(
        "--kv-gib",
        type=float,
        default=0.35,
        dest="kv_gib",
        help="GPU memory carved out for the KV-cache admission budget",
    )
    trace.add_argument("--max-queue", type=int, default=16, dest="max_queue")
    trace.add_argument("--max-retries", type=int, default=2, dest="max_retries")
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace_event JSON output path (open in Perfetto)",
    )
    trace.add_argument(
        "--jsonl",
        default=None,
        help="also write the event log as JSONL (one object per line)",
    )
    trace.add_argument(
        "--png",
        default=None,
        help="also render a timeline/Gantt figure (requires matplotlib)",
    )
    trace.add_argument(
        "--summary",
        default=None,
        help="also write the serving report + telemetry summary as JSON",
    )

    bounds = sub.add_parser("bounds", help="analytic roofline throughput bounds")
    add_common(bounds)

    attr = sub.add_parser(
        "attribution",
        help="attribute one iteration's time: decomposition, critical path, what-if",
    )
    add_common(attr)
    attr.add_argument("--engine", default="powerinfer", choices=sorted(ENGINE_CLASSES))
    attr.add_argument(
        "--ctx", type=int, default=128, help="context length of the decode iteration"
    )
    attr.add_argument("--batch", type=int, default=1)
    attr.add_argument(
        "--group",
        default="device",
        choices=("device", "tag", "layer"),
        help="grouping for the decomposition table",
    )

    bench_base = sub.add_parser(
        "bench-baseline", help="run the canonical suite and write the baseline"
    )
    bench_base.add_argument(
        "--out", default="BENCH_baseline.json", help="baseline JSON output path"
    )
    bench_base.add_argument(
        "--quick", action="store_true", help="small suite (tests / local iteration)"
    )

    bench_check = sub.add_parser(
        "bench-check", help="re-run the suite and diff against the baseline"
    )
    bench_check.add_argument(
        "--baseline", default="BENCH_baseline.json", help="baseline JSON to compare to"
    )
    bench_check.add_argument(
        "--tolerance", type=float, default=0.05, help="per-metric relative tolerance"
    )
    bench_check.add_argument(
        "--report", default=None, help="also write the structured diff as JSON"
    )

    lint = sub.add_parser(
        "lint", help="static simulation-discipline lint (custom AST rules)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument("--format", default="text", choices=("text", "json"))
    lint.add_argument("--out", default=None, help="also write the JSON report here")
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )

    verify = sub.add_parser(
        "verify-schedule",
        help="replay bench-suite schedules against the simulator invariants",
    )
    verify.add_argument(
        "--quick", action="store_true", help="small grid (tests / local iteration)"
    )
    verify.add_argument("--format", default="text", choices=("text", "json"))
    verify.add_argument("--out", default=None, help="also write the JSON report here")

    flow = sub.add_parser(
        "check-flow",
        help="interprocedural units/dimension + seed-provenance analysis",
    )
    flow.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze as one project (default: src/repro)",
    )
    flow.add_argument("--format", default="text", choices=("text", "json"))
    flow.add_argument("--out", default=None, help="also write the JSON report here")
    flow.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of flow rules to run (default: all)",
    )

    check = sub.add_parser(
        "check",
        help="umbrella: lint + check-flow + verify-schedule, one merged report",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories for the static passes (default: src/repro)",
    )
    check.add_argument("--format", default="text", choices=("text", "json"))
    check.add_argument(
        "--json-out", default=None, help="write the merged JSON report here"
    )
    check.add_argument(
        "--skip-verify",
        action="store_true",
        help="static passes only (skip the bench-grid schedule replay)",
    )
    check.add_argument(
        "--full",
        action="store_true",
        help="full verification grid (default: quick)",
    )
    return parser


def _cmd_models() -> int:
    rows = [
        {
            "name": m.name,
            "params_b": m.total_params / 1e9,
            "layers": m.n_layers,
            "d_model": m.d_model,
            "activation": m.activation,
            "fp16_gib": m.weight_bytes(DTYPE_PRESETS["fp16"]) / 2**30,
        }
        for m in MODEL_PRESETS.values()
    ]
    print(format_table(rows, "Model presets"))
    return 0


def _cmd_machines() -> int:
    rows = [
        {
            "name": m.name,
            "gpu": m.gpu.name,
            "gpu_gib": m.gpu.memory_capacity / 2**30,
            "gpu_bw_gbs": m.gpu.memory_bandwidth / 1e9,
            "cpu_gib": m.cpu.memory_capacity / 2**30,
            "link": m.link.name,
        }
        for m in MACHINE_PRESETS.values()
    ]
    print(format_table(rows, "Machine presets"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    engine = make_engine(args.engine, args.model, args.machine, args.dtype, seed=args.seed)
    result = engine.simulate_request(args.input_len, args.output_len, args.batch)
    print(
        f"{args.engine} / {args.model} / {args.machine} ({args.dtype}): "
        f"{result.tokens_per_second:.2f} tokens/s "
        f"(prompt {result.prompt_time * 1e3:.1f} ms, "
        f"decode {result.decode_latency * 1e3:.1f} ms/token, "
        f"GPU load share {result.gpu_load_share:.0%})"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for name in ENGINE_CLASSES:
        try:
            engine = make_engine(name, args.model, args.machine, args.dtype, seed=args.seed)
            result = engine.simulate_request(args.input_len, args.output_len)
            rows.append(
                {
                    "engine": name,
                    "tokens_per_s": result.tokens_per_second,
                    "decode_ms": result.decode_latency * 1e3,
                    "gpu_load": result.gpu_load_share,
                }
            )
        except OutOfMemoryError as exc:
            rows.append(
                {"engine": name, "tokens_per_s": 0.0, "decode_ms": 0.0, "gpu_load": 0.0,
                 "note": str(exc)[:60]}
            )
    rows.sort(key=lambda r: -r["tokens_per_s"])
    print(format_table(rows, f"{args.model} on {args.machine} ({args.dtype})"))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = build_plan(
        MODEL_PRESETS[args.model],
        MACHINE_PRESETS[args.machine],
        dtype=DTYPE_PRESETS[args.dtype],
        policy=args.policy,
        seed=args.seed,
    )
    save_plan(plan, args.out)
    report = plan.memory_report()
    print(
        f"saved {args.out}: GPU {report.gpu_used / 2**30:.1f}/"
        f"{report.gpu_capacity / 2**30:.1f} GiB, "
        f"GPU neuron-load share {plan.gpu_neuron_load_share():.0%}"
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    rows = FIGURES[args.name]()
    print(format_table(rows, args.name))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serving import (
        SLO,
        poisson_arrivals,
        simulate_batched_serving,
        simulate_continuous_serving,
        simulate_serving,
    )
    from repro.workloads import CHATGPT_PROMPTS

    kv_carve = args.kv_gib * 2**30 if args.mode == "continuous" else 0.0
    engine = make_engine(
        args.engine,
        args.model,
        args.machine,
        args.dtype,
        seed=args.seed,
        kv_gpu_budget_bytes=kv_carve,
    )
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=args.rate,
        n_requests=args.requests,
        rng=np.random.default_rng(args.seed),
    )
    header = f"{args.engine} / {args.model} / {args.machine} [{args.mode}]"
    if args.mode == "continuous":
        report = simulate_continuous_serving(
            engine,
            requests,
            policy=args.scheduler,
            max_batch=args.max_batch,
            max_prefill_tokens=args.chunk_tokens,
        )
        slo = SLO(ttft_target=args.slo_ttft, tbt_target=args.slo_tbt)
        print(
            f"{header}: served {report.n_requests} requests at "
            f"{args.rate:.3g}/s with {args.scheduler} scheduling — "
            f"utilization {report.utilization:.0%}, "
            f"p50 latency {report.latency_percentile(50):.1f} s, "
            f"p95 {report.latency_percentile(95):.1f} s, "
            f"{report.tokens_per_second:.1f} tokens/s aggregate"
        )
        print(
            f"  TTFT p50 {report.ttft_percentile(50):.2f} s, "
            f"TBT p99 {report.tbt_percentile(99) * 1e3:.0f} ms, "
            f"peak KV {report.peak_kv_bytes / 2**30:.2f}/"
            f"{report.kv_budget_bytes / 2**30:.2f} GiB, "
            f"SLO (ttft<={args.slo_ttft:.3g}s, tbt<={args.slo_tbt:.3g}s) "
            f"attainment {report.slo_attainment(slo):.0%}, "
            f"goodput {report.goodput(slo):.2f} req/s"
        )
        return 0
    if args.mode == "batched":
        report = simulate_batched_serving(engine, requests, max_batch=args.max_batch)
    else:
        report = simulate_serving(engine, requests)
    print(
        f"{header}: served "
        f"{report.n_requests} requests at {args.rate:.3g}/s — "
        f"utilization {report.utilization:.0%}, "
        f"p50 latency {report.latency_percentile(50):.1f} s, "
        f"p95 {report.latency_percentile(95):.1f} s, "
        f"{report.tokens_per_second:.1f} tokens/s aggregate"
    )
    return 0


def _load_faults(args: argparse.Namespace):
    """Resolve --faults / --fault-seed into a FaultSchedule (or None).

    Shared by ``chaos`` and ``trace``.  Raises ValueError on conflicting
    or unreadable inputs; the literal ``--faults none`` disables
    injection entirely.
    """
    import json

    from repro.bench.fault_tolerance import default_fault_schedule
    from repro.hardware.faults import FaultSchedule

    if args.faults is not None and args.fault_seed is not None:
        raise ValueError("--faults and --fault-seed are mutually exclusive")
    if args.faults is not None:
        if args.faults == "none":
            return None
        try:
            with open(args.faults) as fh:
                return FaultSchedule.from_dicts(json.load(fh))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise ValueError(f"{args.faults}: {exc}") from None
    if args.fault_seed is not None:
        horizon = args.requests / args.rate
        return FaultSchedule.from_seed(args.fault_seed, horizon=horizon)
    return default_fault_schedule()


def _cmd_chaos(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serving import SLO, poisson_arrivals, simulate_continuous_serving
    from repro.workloads import CHATGPT_PROMPTS

    try:
        faults = _load_faults(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    engine = make_engine(args.engine, args.model, args.machine, args.dtype, seed=args.seed)
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=args.rate,
        n_requests=args.requests,
        rng=np.random.default_rng(args.seed),
        deadline=args.deadline,
    )
    slo = SLO(ttft_target=args.slo_ttft, tbt_target=args.slo_tbt)
    rows = []
    for label, degradation in (("naive", False), ("degraded", True)):
        report = simulate_continuous_serving(
            engine,
            requests,
            policy="chunked",
            max_batch=args.max_batch,
            kv_budget_bytes=args.kv_gib * 2**30,
            max_prefill_tokens=32,
            faults=faults,
            deadline=args.deadline,
            max_retries=args.max_retries,
            max_queue=args.max_queue,
            degradation=degradation,
        )
        rows.append(
            {
                "server": label,
                "slo_attainment": report.slo_attainment_overall(slo),
                "completed": len(report.completed),
                "timed_out": len(report.timed_out),
                "shed": len(report.shed),
                "failed": len(report.failed),
                "aborts": report.n_aborts,
                "retries": report.n_retries,
                "degraded_s": report.time_in_degraded_mode,
            }
        )
    events = ", ".join(
        f"{e.kind}@{e.start:.1f}s x{e.duration:.1f}s (mag {e.magnitude:.2g})"
        for e in (faults.events if faults is not None else ())
    )
    print(f"fault schedule: {events or 'empty'}")
    print(
        format_table(
            rows,
            f"{args.engine} / {args.model} / {args.machine} ({args.dtype}) under "
            f"faults — SLO ttft<={args.slo_ttft:.3g}s tbt<={args.slo_tbt:.3g}s, "
            f"deadline {args.deadline:.3g}s",
        )
    )
    return 0


def _deep_fleet_tracer():
    """The deep-observability tracer every fleet-replay subcommand shares."""
    from repro.bench.fleet_chaos import DEFAULT_SLO, default_fleet_monitor
    from repro.telemetry import FleetTracer

    return FleetTracer(monitor=default_fleet_monitor(), slo=DEFAULT_SLO)


def _run_fleet_scenario(args: argparse.Namespace, tracer=None):  # repro-lint: disable=tracer-default -- CLI plumbing; callers pass their tracer explicitly
    """One loader path for the canonical fleet scenario.

    ``fleet``, ``explain-request``, and ``energy --fleet`` all replay the
    same 3-replica chaos scenario; this is the single place its knobs
    (``add_fleet_scenario_flags``) turn into a router run.
    """
    from repro.bench.fleet_chaos import build_fleet, fleet_requests

    router = build_fleet(
        router_policy=args.policy,
        chaos=not args.no_chaos,
        failover=not args.no_failover,
        disaggregate=args.disaggregate,
        hedge=args.hedge,
        brownout=args.brownout,
        tracer=tracer,
    )
    return router.run(fleet_requests(args.requests, sessions=args.sessions))


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.bench.fleet_chaos import DEFAULT_SLO
    from repro.check.schedule import validate_fleet_run
    from repro.telemetry import Tracer, save_chrome_trace

    deep = (
        args.deep_trace is not None
        or args.alerts is not None
        or args.timeseries is not None
    )
    if deep:
        from repro.telemetry import save_fleet_chrome_trace

        tracer = _deep_fleet_tracer()
    else:
        tracer = Tracer() if args.trace is not None else None
    result = _run_fleet_scenario(args, tracer)
    violations = validate_fleet_run(result, tracer=tracer if deep else None)

    fleet_joules = None
    if deep:
        from repro.telemetry.power import fleet_energy

        fleet_joules = fleet_energy(result, tracer)

    report = result.report
    rows = [
        {
            "replica": rep.name,
            "role": rep.role,
            "iterations": rep.report.n_iterations,
            "segments": len(rep.report.completed),
            "crashes": len(rep.crash_windows),
            "detected": len(rep.detected_windows),
        }
        for rep in result.replicas
    ]
    if fleet_joules is not None:
        for row in rows:
            part = fleet_joules.replica(row["replica"])
            row["joules"] = round(part.total_joules, 1)
            row["avg_w"] = round(part.avg_watts, 1)
    print(
        format_table(
            rows,
            f"fleet [{args.policy}] — {report.n_submitted} requests, "
            f"{'chaos' if not args.no_chaos else 'no faults'}, "
            f"failover {'off' if args.no_failover else 'on'}",
        )
    )
    print(
        f"goodput {report.goodput(DEFAULT_SLO):.3f} req/s, "
        f"TTFT p99 {report.ttft_percentile(99):.3f} s, "
        f"deadline-miss {report.deadline_miss_rate:.1%}, "
        f"availability {result.availability:.1%} "
        f"(capacity {result.capacity_availability:.1%})"
    )
    counters = ", ".join(f"{k}={v}" for k, v in sorted(result.counters.items()) if v)
    print(f"router counters: {counters or 'none'}")
    verdict = "OK" if not violations else f"{len(violations)} violation(s)"
    print(f"fleet validation: {verdict}")
    for v in violations:
        print(f"  - {v.check}: {v.message}")
    if deep:
        alerts = tracer.alerts
        print(f"burn-rate alerts: {len(alerts)}")
        for alert in alerts:
            print(f"  {alert.format()}")
    if fleet_joules is not None:
        from repro.telemetry.power import fleet_generated_tokens

        tokens = fleet_generated_tokens(result)
        print(
            f"energy: {fleet_joules.total_joules:.0f} J over "
            f"{fleet_joules.horizon:.1f} s ({fleet_joules.avg_watts:.0f} W avg), "
            f"{fleet_joules.j_per_token(tokens):.2f} J/token, "
            f"{fleet_joules.grams_co2():.2f} gCO2"
        )

    outputs = []
    if args.trace is not None:
        # In deep mode the router lane is still a plain Tracer.
        save_chrome_trace(tracer.router if deep else tracer, args.trace)
        outputs.append(args.trace)
    if args.deep_trace is not None:
        save_fleet_chrome_trace(tracer, args.deep_trace)
        outputs.append(args.deep_trace)
    if args.alerts is not None:
        with open(args.alerts, "w", encoding="utf-8") as fh:
            json.dump(tracer.monitor.to_dicts(), fh, indent=2)
            fh.write("\n")
        outputs.append(args.alerts)
    if args.timeseries is not None:
        tracer.timeseries.save_jsonl(args.timeseries)
        outputs.append(args.timeseries)
    if args.summary is not None:
        with open(args.summary, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(slo=DEFAULT_SLO), fh, indent=2)
            fh.write("\n")
        outputs.append(args.summary)
    if args.verify_out is not None:
        document = {
            "ok": not violations,
            "n_violations": len(violations),
            "violations": [v.to_dict() for v in violations],
        }
        with open(args.verify_out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        outputs.append(args.verify_out)
    if outputs:
        print("wrote " + ", ".join(outputs))
    return 0 if not violations else 1


def _cmd_explain_request(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import explain_request, format_explanation
    from repro.telemetry.power import fleet_energy

    tracer = _deep_fleet_tracer()
    result = _run_fleet_scenario(args, tracer)
    explanation = explain_request(
        tracer, result, args.request_id, energy=fleet_energy(result, tracer)
    )
    if not explanation["timeline"]:
        print(
            f"error: request {args.request_id} not found in this scenario "
            f"(ids run 0..{args.requests - 1})",
            file=sys.stderr,
        )
        return 1
    if args.format == "json":
        print(json.dumps(explanation, indent=2))
    else:
        print(format_explanation(explanation))
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(explanation, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry.power import (
        DEFAULT_CARBON_INTENSITY,
        PowerModel,
        fleet_energy,
        fleet_generated_tokens,
        request_energy,
    )

    model = (
        PowerModel(carbon_intensity=args.carbon_intensity)
        if args.carbon_intensity is not None
        else None
    )
    intensity = (
        args.carbon_intensity
        if args.carbon_intensity is not None
        else DEFAULT_CARBON_INTENSITY
    )

    if args.fleet_mode:
        from repro.check.schedule import validate_fleet_energy

        tracer = _deep_fleet_tracer()
        result = _run_fleet_scenario(args, tracer)
        fenergy = fleet_energy(result, tracer, model=model)
        violations = validate_fleet_energy(fenergy)
        parts = list(fenergy.replicas)
        if fenergy.interconnect is not None:
            parts.append(fenergy.interconnect)
        rows = [
            {
                "part": part.label,
                "dynamic_j": round(part.dynamic_joules, 1),
                "static_j": round(part.static_joules, 1),
                "total_j": round(part.total_joules, 1),
                "avg_w": round(part.avg_watts, 1),
                "gco2": round(part.grams_co2(), 3),
            }
            for part in parts
        ]
        print(
            format_table(
                rows,
                f"fleet energy [{args.policy}] — {args.requests} requests, "
                f"{'chaos' if not args.no_chaos else 'no faults'}, "
                f"carbon intensity {intensity:.0f} gCO2/kWh",
            )
        )
        tokens = fleet_generated_tokens(result)
        drift = abs(
            fenergy.metered_joules - (fenergy.dynamic_joules + fenergy.static_joules)
        )
        print(
            f"fleet total: {fenergy.total_joules:.0f} J over "
            f"{fenergy.horizon:.1f} s ({fenergy.avg_watts:.0f} W avg), "
            f"{fenergy.j_per_token(tokens):.2f} J/token "
            f"({tokens} tokens), {fenergy.grams_co2():.2f} gCO2"
        )
        verdict = "OK" if not violations else f"{len(violations)} violation(s)"
        print(
            f"ledger vs meter: drift {drift:.2e} J — reconciliation {verdict}"
        )
        for v in violations:
            print(f"  - {v.check}: {v.message}")
        outputs = []
        if args.timeseries is not None:
            tracer.timeseries.save_jsonl(args.timeseries)
            outputs.append(args.timeseries)
        if args.json_out is not None:
            document = fenergy.to_dict()
            document["j_per_token"] = fenergy.j_per_token(tokens)
            document["generated_tokens"] = tokens
            document["reconciliation_ok"] = not violations
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2)
                fh.write("\n")
            outputs.append(args.json_out)
        if outputs:
            print("wrote " + ", ".join(outputs))
        return 0 if not violations else 1

    rows = []
    reports: dict[str, dict] = {}
    for name in ENGINE_CLASSES:
        try:
            engine = make_engine(
                name, args.model, args.machine, args.dtype, seed=args.seed
            )
        except OutOfMemoryError as exc:
            rows.append({"engine": name, "note": str(exc)[:60]})
            continue
        e = request_energy(
            engine, args.input_len, args.output_len, args.batch, model=model
        )
        rows.append(
            {
                "engine": name,
                "j_per_token": e.j_per_token,
                "total_j": e.total_joules,
                "avg_w": e.avg_watts,
                "gco2_per_req": e.grams_co2(),
            }
        )
        reports[name] = e.to_dict()
    rows.sort(key=lambda r: r.get("j_per_token", float("inf")))
    print(
        format_table(
            rows,
            f"{args.model} on {args.machine} ({args.dtype}) — "
            f"{args.input_len}+{args.output_len} tokens, batch {args.batch}, "
            f"carbon intensity {intensity:.0f} gCO2/kWh",
        )
    )
    if args.whatif:
        from repro.analysis import whatif_power_sensitivity

        engine = make_engine(
            "powerinfer", args.model, args.machine, args.dtype, seed=args.seed
        )
        ctx = args.input_len + args.output_len // 2
        tasks = engine.iteration_tasks(ctx, 1, args.batch)
        wrows = [r.as_row() for r in whatif_power_sensitivity(tasks, engine.machine)]
        print()
        print(
            format_table(
                wrows,
                f"perf-per-watt what-if (powerinfer decode at ctx={ctx})",
            )
        )
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(reports, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.serving import poisson_arrivals, simulate_continuous_serving
    from repro.serving.metrics import merge_busy_intervals
    from repro.telemetry import Tracer, save_chrome_trace, save_jsonl
    from repro.workloads import CHATGPT_PROMPTS

    try:
        faults = _load_faults(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    engine = make_engine(args.engine, args.model, args.machine, args.dtype, seed=args.seed)
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=args.rate,
        n_requests=args.requests,
        rng=np.random.default_rng(args.seed),
        deadline=args.deadline,
    )
    tracer = Tracer()
    report = simulate_continuous_serving(
        engine,
        requests,
        policy="chunked",
        max_batch=args.max_batch,
        kv_budget_bytes=args.kv_gib * 2**30,
        max_prefill_tokens=32,
        faults=faults,
        deadline=args.deadline,
        max_retries=args.max_retries,
        max_queue=args.max_queue,
        tracer=tracer,
    )

    save_chrome_trace(tracer, args.out)
    outputs = [args.out]
    if args.jsonl is not None:
        save_jsonl(tracer, args.jsonl)
        outputs.append(args.jsonl)
    if args.summary is not None:
        summary = tracer.metrics.merge_into(report.to_dict())
        with open(args.summary, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        outputs.append(args.summary)
    if args.png is not None:
        from repro.telemetry.timeline import MissingDependencyError, plot_timeline

        try:
            plot_timeline(
                tracer,
                args.png,
                title=f"{args.engine} / {args.model} / {args.machine} ({args.dtype})",
            )
            outputs.append(args.png)
        except MissingDependencyError as exc:
            print(f"warning: skipped {args.png}: {exc}", file=sys.stderr)

    busy = merge_busy_intervals(report.busy_intervals)
    drift = abs(tracer.busy_union() - busy)
    print(
        f"traced {report.n_iterations} iterations / {report.n_requests} "
        f"completed requests over {report.makespan:.1f} s — "
        f"{len(tracer.task_spans)} task spans, "
        f"{len(tracer.request_spans)} request spans, "
        f"{len(tracer.counters)} counter samples "
        f"(busy-time drift vs report: {drift:.2e} s)"
    )
    print("wrote " + ", ".join(outputs))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis import throughput_bounds

    bounds = throughput_bounds(
        MODEL_PRESETS[args.model],
        MACHINE_PRESETS[args.machine],
        dtype=DTYPE_PRESETS[args.dtype],
    )
    print(
        format_table(
            bounds.as_rows(),
            f"Roofline bounds — {args.model} on {args.machine} ({args.dtype}); "
            f"GPU holds {bounds.gpu_weight_fraction:.0%} of weights, "
            f"{bounds.active_fraction:.0%} of bytes touched per token",
        )
    )
    return 0


def _cmd_attribution(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_iteration, whatif_sensitivity

    engine = make_engine(args.engine, args.model, args.machine, args.dtype, seed=args.seed)
    analysis = analyze_iteration(engine, args.ctx, 1, args.batch)
    deco, cp = analysis.decomposition, analysis.critical_path

    header = f"{args.engine} / {args.model} / {args.machine} ({args.dtype})"
    print(
        format_table(
            deco.as_rows(args.group),
            f"{header}: decode iteration at ctx={args.ctx} — seconds by {args.group}",
        )
    )
    shares = deco.shares()
    share_text = ", ".join(f"{k} {v:.0%}" for k, v in shares.items() if v > 0.005)
    print(f"\nshares: {share_text}")
    print(
        f"critical path: {len(cp.segments)} tasks, gating resource "
        f"{cp.gating_resource()} ({cp.time_by_resource()})"
    )
    gates = {}
    for seg in cp.segments:
        gates[seg.gate] = gates.get(seg.gate, 0) + 1
    print(f"gates along path: {gates}")

    tasks = engine.iteration_tasks(args.ctx, 1, args.batch)
    rows = [r.as_row() for r in whatif_sensitivity(tasks, engine.machine)]
    print()
    print(format_table(rows, "what-if sensitivity (analytic re-pricing)"))
    return 0


def _cmd_bench_baseline(args: argparse.Namespace) -> int:
    from repro.bench.baseline import write_baseline

    document = write_baseline(args.out, quick=args.quick)
    print(
        f"wrote {args.out}: {len(document['metrics'])} metrics "
        f"({document['suite']} suite)"
    )
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json

    from repro.bench.baseline import (
        check_against_baseline,
        format_diff,
        load_baseline,
        run_suite,
    )

    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {args.baseline}: {exc}", file=sys.stderr)
        return 2
    current = run_suite(quick=baseline.get("suite") == "quick")
    diff = check_against_baseline(baseline, current, tolerance=args.tolerance)
    print(format_diff(diff))
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(diff.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.report}")
    return 0 if diff.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.check.lint import format_text, lint_paths, report_as_dict

    rules = None
    if args.rules is not None:
        rules = [name.strip() for name in args.rules.split(",") if name.strip()]
    try:
        violations, n_files = lint_paths(args.paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = report_as_dict(violations, n_files)
    if args.format == "json":
        import json

        print(json.dumps(document, indent=2))
    else:
        print(format_text(violations, n_files))
    if args.out is not None:
        import json

        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
    return 0 if document["ok"] else 1


def _cmd_verify_schedule(args: argparse.Namespace) -> int:
    from repro.check.verify import format_verification, run_verification

    document = run_verification(quick=args.quick)
    if args.format == "json":
        import json

        print(json.dumps(document, indent=2))
    else:
        print(format_verification(document))
    if args.out is not None:
        import json

        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
    return 0 if document["ok"] else 1


def _cmd_check_flow(args: argparse.Namespace) -> int:
    from repro.check.flow import flow_to_json, format_flow_text, run_flow

    rules = None
    if args.rules is not None:
        rules = [name.strip() for name in args.rules.split(",") if name.strip()]
    try:
        report = run_flow(args.paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(flow_to_json(report), end="")
    else:
        print(format_flow_text(report))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(flow_to_json(report))
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.report import check_to_json, format_check_text, run_check

    try:
        report = run_check(
            args.paths,
            with_schedule=not args.skip_verify,
            quick=not args.full,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(check_to_json(report), end="")
    else:
        print(format_check_text(report))
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(check_to_json(report))
        print(f"wrote {args.json_out}")
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "models":
            return _cmd_models()
        if args.command == "machines":
            return _cmd_machines()
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "explain-request":
            return _cmd_explain_request(args)
        if args.command == "energy":
            return _cmd_energy(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bounds":
            return _cmd_bounds(args)
        if args.command == "attribution":
            return _cmd_attribution(args)
        if args.command == "bench-baseline":
            return _cmd_bench_baseline(args)
        if args.command == "bench-check":
            return _cmd_bench_check(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "verify-schedule":
            return _cmd_verify_schedule(args)
        if args.command == "check-flow":
            return _cmd_check_flow(args)
        if args.command == "check":
            return _cmd_check(args)
    except OutOfMemoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
