"""Figure 5 — CDF of neuron activation (power-law locality).

Paper anchors: a single MLP layer needs 26% (OPT) / 43% (LLaMA-ReGLU) of
its neurons for 80% of activations; whole-model, 17% / 26%.
"""

from conftest import run_once

from repro.bench.fig05 import run_fig05


def test_fig05_activation_cdf(benchmark, record_rows):
    rows = run_once(benchmark, run_fig05)
    record_rows("fig05_cdf", rows, "Figure 5 — neuron activation CDF anchors")

    for row in rows:
        # Single-layer anchor calibrated to the paper within 2 points.
        assert abs(row["layer_frac_for_80pct"] - row["paper_layer_frac"]) < 0.02
        # Whole-model concentration is stronger than single-layer and lands
        # within 4 points of the paper's value.
        assert row["model_frac_for_80pct"] < row["layer_frac_for_80pct"]
        assert abs(row["model_frac_for_80pct"] - row["paper_model_frac"]) < 0.04
