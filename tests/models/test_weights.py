"""Tests for synthetic weight initialization."""

import numpy as np
import pytest

from repro.models.config import Activation, tiny_config
from repro.models.weights import init_weights


class TestShapes:
    def test_all_matrices_shaped_for_config(self, rng):
        cfg = tiny_config(n_layers=3, d_model=64, d_ffn=256)
        w = init_weights(cfg, rng)
        assert len(w.layers) == 3
        layer = w.layers[0]
        assert layer.wq.shape == (64, 64)
        assert layer.wk.shape == (cfg.kv_dim, 64)
        assert layer.fc1.shape == (256, 64)
        assert layer.fc2.shape == (64, 256)
        assert layer.fc1_bias.shape == (256,)
        assert w.embedding.shape == (cfg.vocab_size, 64)

    def test_lm_head_tied_to_embedding(self, rng):
        w = init_weights(tiny_config(), rng)
        assert w.lm_head is w.embedding

    def test_reglu_gets_gate_matrix(self, rng):
        cfg = tiny_config(activation=Activation.REGLU)
        w = init_weights(cfg, rng)
        assert w.layers[0].gate.shape == (cfg.d_ffn, cfg.d_model)


class TestActivationCalibration:
    def test_biases_hit_target_rates(self, rng):
        cfg = tiny_config(d_ffn=512)
        target = np.full(cfg.d_ffn, 0.2)
        w = init_weights(cfg, rng, activation_probs=[target] * cfg.n_layers)
        # With ~unit-variance inputs, empirical activation rate ~= target.
        x = rng.standard_normal((500, cfg.d_model)).astype(np.float32)
        rate = ((x @ w.layers[0].fc1.T + w.layers[0].fc1_bias) > 0).mean()
        assert 0.15 < rate < 0.26

    def test_heterogeneous_probs_order_preserved(self, rng):
        cfg = tiny_config(d_ffn=256)
        probs = np.linspace(0.02, 0.9, cfg.d_ffn)
        w = init_weights(cfg, rng, activation_probs=[probs] * cfg.n_layers)
        x = rng.standard_normal((800, cfg.d_model)).astype(np.float32)
        rates = ((x @ w.layers[0].fc1.T + w.layers[0].fc1_bias) > 0).mean(axis=0)
        # Hot-designated neurons fire much more often than cold ones.
        assert rates[-32:].mean() > rates[:32].mean() + 0.3

    def test_no_probs_means_zero_bias(self, rng):
        w = init_weights(tiny_config(), rng)
        assert (w.layers[0].fc1_bias == 0).all()

    def test_wrong_probs_length_rejected(self, rng):
        cfg = tiny_config(n_layers=2)
        with pytest.raises(ValueError, match="per layer"):
            init_weights(cfg, rng, activation_probs=[np.full(cfg.d_ffn, 0.1)])


class TestDeterminism:
    def test_same_seed_same_weights(self):
        cfg = tiny_config()
        w1 = init_weights(cfg, np.random.default_rng(7))
        w2 = init_weights(cfg, np.random.default_rng(7))
        assert np.array_equal(w1.layers[0].fc1, w2.layers[0].fc1)
        assert np.array_equal(w1.embedding, w2.embedding)

    def test_dtype_respected(self, rng):
        w = init_weights(tiny_config(), rng, dtype=np.float64)
        assert w.layers[0].fc1.dtype == np.float64
