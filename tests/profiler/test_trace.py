"""Tests for activation traces."""

import numpy as np
import pytest

from repro.profiler.trace import ActivationTrace


@pytest.fixture
def trace():
    return ActivationTrace.empty(n_layers=2, mlp_neurons=8, attn_neurons=4)


class TestRecording:
    def test_record_accumulates_counts(self, trace):
        mask = np.zeros((3, 8), dtype=bool)
        mask[:, 0] = True
        mask[0, 1] = True
        trace.record_mlp(0, mask)
        assert trace.mlp_counts[0][0] == 3
        assert trace.mlp_counts[0][1] == 1

    def test_record_1d_mask(self, trace):
        trace.record_mlp(1, np.array([True] * 8))
        assert (trace.mlp_counts[1] == 1).all()

    def test_rates_require_tokens(self, trace):
        with pytest.raises(ValueError, match="token"):
            trace.mlp_rates(0)

    def test_rates_normalize_by_tokens(self, trace):
        trace.record_mlp(0, np.ones((4, 8), dtype=bool))
        trace.advance_tokens(4)
        assert np.allclose(trace.mlp_rates(0), 1.0)

    def test_attn_counts(self, trace):
        trace.record_attn(0, np.array([True, False, True, False]))
        trace.advance_tokens(1)
        assert np.allclose(trace.attn_rates(0), [1, 0, 1, 0])

    def test_negative_tokens_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.advance_tokens(-1)


class TestMerge:
    def test_merge_sums_counts_and_tokens(self, trace):
        other = ActivationTrace.empty(2, 8, 4)
        trace.record_mlp(0, np.ones((2, 8), dtype=bool))
        trace.advance_tokens(2)
        other.record_mlp(0, np.ones((3, 8), dtype=bool))
        other.advance_tokens(3)
        merged = trace.merge(other)
        assert merged.n_tokens == 5
        assert (merged.mlp_counts[0] == 5).all()
        # Originals untouched.
        assert trace.n_tokens == 2

    def test_merge_layer_mismatch_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.merge(ActivationTrace.empty(3, 8, 4))

    def test_merge_attn_presence_mismatch_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.merge(ActivationTrace.empty(2, 8, 0))


class TestPersistence:
    def test_save_load_round_trip(self, trace, tmp_path):
        trace.record_mlp(0, np.ones((2, 8), dtype=bool))
        trace.record_attn(1, np.ones((2, 4), dtype=bool))
        trace.advance_tokens(2)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ActivationTrace.load(path)
        assert loaded.n_tokens == 2
        assert np.array_equal(loaded.mlp_counts[0], trace.mlp_counts[0])
        assert np.array_equal(loaded.attn_counts[1], trace.attn_counts[1])
        assert loaded.n_layers == 2

    def test_load_preserves_layer_order_beyond_ten(self, tmp_path):
        # Lexicographic filename sorting would scramble layers 10+.
        big = ActivationTrace.empty(12, 4)
        big.mlp_counts[11][:] = 99
        big.advance_tokens(1)
        path = tmp_path / "big.npz"
        big.save(path)
        loaded = ActivationTrace.load(path)
        assert (loaded.mlp_counts[11] == 99).all()
        assert (loaded.mlp_counts[1] == 0).all()


class TestValidation:
    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            ActivationTrace(mlp_counts=[])

    def test_all_rates_helper(self, trace):
        trace.record_mlp(0, np.ones((1, 8), dtype=bool))
        trace.advance_tokens(1)
        rates = trace.all_mlp_rates()
        assert len(rates) == 2
        assert rates[0].sum() == 8
