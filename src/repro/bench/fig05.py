"""Figure 5 — CDF of neuron activation (Insight-1: power-law locality).

(a) within a single MLP layer and (b) across the whole model, for OPT-30B
and LLaMA(ReGLU)-70B.  Paper anchor points: 26% (OPT) / 43% (LLaMA) of a
layer's neurons account for 80% of its activations; 17% / 26% model-wide.
"""

from __future__ import annotations

import numpy as np

from repro.core.profiles import profile_for_model, synthesize_model_probs
from repro.models.config import MODEL_PRESETS
from repro.sparsity.powerlaw import activation_cdf, neuron_fraction_for_mass

__all__ = ["run_fig05", "cdf_series"]

_MODELS = ("opt-30b", "llama-70b")


def cdf_series(
    model_name: str, seed: int = 0, points: int = 20
) -> dict[str, np.ndarray]:
    """CDF curves (neuron proportion -> activation share) for one model."""
    model = MODEL_PRESETS[model_name]
    rng = np.random.default_rng(seed)
    mlp_probs, _ = synthesize_model_probs(model, rng)
    single = mlp_probs[model.n_layers // 2]
    whole = np.concatenate(mlp_probs)
    out = {}
    for label, freqs in (("single_layer", single), ("whole_model", whole)):
        proportion, cum = activation_cdf(freqs)
        idx = np.linspace(0, proportion.size - 1, points).astype(int)
        out[f"{label}_x"] = proportion[idx]
        out[f"{label}_y"] = cum[idx]
    return out


def run_fig05(seed: int = 0) -> list[dict]:
    """Summary rows: neuron fraction needed for 80% of activations."""
    rows = []
    for model_name in _MODELS:
        model = MODEL_PRESETS[model_name]
        prof = profile_for_model(model)
        rng = np.random.default_rng(seed)
        mlp_probs, _ = synthesize_model_probs(model, rng)
        single = mlp_probs[model.n_layers // 2]
        whole = np.concatenate(mlp_probs)
        rows.append(
            {
                "model": model_name,
                "layer_frac_for_80pct": neuron_fraction_for_mass(single, 0.80),
                "paper_layer_frac": prof.mlp_hot_fraction,
                "model_frac_for_80pct": neuron_fraction_for_mass(whole, 0.80),
                "paper_model_frac": 0.17 if model_name == "opt-30b" else 0.26,
            }
        )
    return rows
