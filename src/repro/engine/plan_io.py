"""Persistence for deployment plans.

The offline phase (profiling + predictor sizing + ILP placement) takes
seconds to minutes; in the real PowerInfer it is a one-time step whose
output ships with the model.  This module serializes a
:class:`~repro.engine.plan.DeploymentPlan` to a single ``.npz`` file —
arrays for the per-layer probabilities and masks, a JSON header for the
model/machine/dtype — and restores it exactly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.engine.plan import DeploymentPlan
from repro.hardware.spec import DeviceSpec, LinkSpec, MachineSpec
from repro.models.config import ModelConfig
from repro.quant.formats import DTYPE_PRESETS, DType

__all__ = ["save_plan", "load_plan"]

_FORMAT_VERSION = 1


def _machine_to_dict(machine: MachineSpec) -> dict:
    return {
        "name": machine.name,
        "gpu": dataclasses.asdict(machine.gpu),
        "cpu": dataclasses.asdict(machine.cpu),
        "link": dataclasses.asdict(machine.link),
        "sync_overhead": machine.sync_overhead,
    }


def _machine_from_dict(data: dict) -> MachineSpec:
    return MachineSpec(
        name=data["name"],
        gpu=DeviceSpec(**data["gpu"]),
        cpu=DeviceSpec(**data["cpu"]),
        link=LinkSpec(**data["link"]),
        sync_overhead=data["sync_overhead"],
    )


def save_plan(plan: DeploymentPlan, path: str | Path) -> None:
    """Write ``plan`` to ``path`` as an ``.npz`` archive."""
    header = {
        "version": _FORMAT_VERSION,
        "model": dataclasses.asdict(plan.model),
        "machine": _machine_to_dict(plan.machine),
        "dtype": dataclasses.asdict(plan.dtype),
        "gpu_memory_reserve": plan.gpu_memory_reserve,
        "expected_context": plan.expected_context,
    }
    arrays: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "predictor_bytes": np.asarray(plan.predictor_bytes, dtype=np.float64),
    }
    for li in range(plan.model.n_layers):
        arrays[f"mlp_probs_{li}"] = plan.mlp_probs[li]
        arrays[f"attn_probs_{li}"] = plan.attn_probs[li]
        arrays[f"mlp_mask_{li}"] = plan.mlp_gpu_masks[li]
        arrays[f"attn_mask_{li}"] = plan.attn_gpu_masks[li]
    np.savez_compressed(path, **arrays)


def load_plan(path: str | Path) -> DeploymentPlan:
    """Restore a plan written by :func:`save_plan`.

    Raises:
        ValueError: On an unsupported format version or corrupt header.
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported plan format version: {header.get('version')!r}"
            )
        model = ModelConfig(**header["model"])
        machine = _machine_from_dict(header["machine"])
        dtype_dict = header["dtype"]
        dtype = DTYPE_PRESETS.get(dtype_dict["name"]) or DType(**dtype_dict)
        n = model.n_layers
        return DeploymentPlan(
            model=model,
            machine=machine,
            dtype=dtype,
            mlp_probs=[data[f"mlp_probs_{li}"] for li in range(n)],
            attn_probs=[data[f"attn_probs_{li}"] for li in range(n)],
            mlp_gpu_masks=[data[f"mlp_mask_{li}"] for li in range(n)],
            attn_gpu_masks=[data[f"attn_mask_{li}"] for li in range(n)],
            predictor_bytes=list(data["predictor_bytes"]),
            gpu_memory_reserve=header["gpu_memory_reserve"],
            expected_context=header["expected_context"],
        )
