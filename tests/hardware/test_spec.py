"""Tests for device/machine specifications."""

import dataclasses

import pytest

from repro.hardware.spec import (
    A100_SERVER,
    GB,
    GIB,
    MACHINE_PRESETS,
    PC_HIGH,
    PC_LOW,
    DeviceKind,
    DeviceSpec,
    LinkSpec,
    MachineSpec,
)


def _gpu(**overrides) -> DeviceSpec:
    base = dict(
        name="g",
        kind=DeviceKind.GPU,
        memory_capacity=GIB,
        memory_bandwidth=GB,
        compute_flops=1e12,
    )
    base.update(overrides)
    return DeviceSpec(**base)


class TestDeviceSpec:
    def test_effective_bandwidth_applies_efficiency(self):
        dev = _gpu(memory_bandwidth=100.0, memory_efficiency=0.8)
        assert dev.effective_bandwidth == pytest.approx(80.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            _gpu(kind="tpu")

    @pytest.mark.parametrize(
        "field", ["memory_capacity", "memory_bandwidth", "compute_flops"]
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            _gpu(**{field: 0})

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            _gpu(memory_efficiency=1.5)

    def test_rejects_negative_launch_overhead(self):
        with pytest.raises(ValueError, match="launch"):
            _gpu(launch_overhead=-1e-6)

    def test_with_memory_capacity_copies(self):
        dev = _gpu()
        bigger = dev.with_memory_capacity(2 * GIB)
        assert bigger.memory_capacity == 2 * GIB
        assert dev.memory_capacity == GIB  # original untouched


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        link = LinkSpec(name="l", bandwidth=100.0, latency=1.0, efficiency=1.0)
        assert link.transfer_time(50.0) == pytest.approx(1.5)

    def test_zero_bytes_is_free(self):
        link = LinkSpec(name="l", bandwidth=100.0, latency=1.0)
        assert link.transfer_time(0.0) == 0.0

    def test_unified_memory_is_slower_than_dma(self):
        link = LinkSpec(name="l", bandwidth=100.0, latency=0.0)
        assert link.transfer_time(100.0, unified_memory=True) > link.transfer_time(
            100.0
        )

    def test_rejects_negative_bytes(self):
        link = LinkSpec(name="l", bandwidth=100.0, latency=0.0)
        with pytest.raises(ValueError):
            link.transfer_time(-1.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            LinkSpec(name="l", bandwidth=100.0, latency=0.0, efficiency=0.0)


class TestMachineSpec:
    def test_device_lookup(self):
        assert PC_HIGH.device(DeviceKind.GPU) is PC_HIGH.gpu
        assert PC_HIGH.device(DeviceKind.CPU) is PC_HIGH.cpu
        with pytest.raises(KeyError):
            PC_HIGH.device("tpu")

    def test_total_memory(self):
        assert PC_HIGH.total_memory == (
            PC_HIGH.gpu.memory_capacity + PC_HIGH.cpu.memory_capacity
        )

    def test_gpu_cpu_kind_enforced(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="bad", gpu=PC_HIGH.cpu, cpu=PC_HIGH.cpu, link=PC_HIGH.link
            )

    def test_swapped_cpu_field_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PC_HIGH, cpu=PC_HIGH.gpu)


class TestPresets:
    def test_paper_section_8_1_capacities(self):
        # Section 8.1: 4090 24 GB / 192 GB host; 2080Ti 11 GB / 64 GB host.
        assert PC_HIGH.gpu.memory_capacity == 24 * GIB
        assert PC_HIGH.cpu.memory_capacity == 192 * GIB
        assert PC_LOW.gpu.memory_capacity == 11 * GIB
        assert PC_LOW.cpu.memory_capacity == 64 * GIB
        assert A100_SERVER.gpu.memory_capacity == 80 * GIB

    def test_paper_bandwidth_hierarchy(self):
        # GPU bandwidth >> CPU bandwidth on every preset machine.
        for machine in MACHINE_PRESETS.values():
            assert machine.gpu.memory_bandwidth > 5 * machine.cpu.memory_bandwidth

    def test_pc_low_is_weaker_than_pc_high(self):
        assert PC_LOW.gpu.memory_bandwidth < PC_HIGH.gpu.memory_bandwidth
        assert PC_LOW.cpu.memory_bandwidth < PC_HIGH.cpu.memory_bandwidth
        assert PC_LOW.link.bandwidth < PC_HIGH.link.bandwidth

    def test_presets_registered_by_name(self):
        assert MACHINE_PRESETS["pc-high"] is PC_HIGH
        assert MACHINE_PRESETS["pc-low"] is PC_LOW
        assert MACHINE_PRESETS["a100-server"] is A100_SERVER
