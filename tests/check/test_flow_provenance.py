"""Seed-provenance doctored fixtures: every rng rule fires at its site.

The provenance pass chases each ``numpy.random`` Generator creation
backwards to an explicit seed; these fixtures plant one violation each
(ambient module-scope generator, unseeded creation, a seed laundered
through an opaque helper) and the clean twins prove the accepted
provenance shapes (literal, seed-named parameter, arithmetic over them,
deterministic helper, deterministic call-site arguments).
"""

from pathlib import Path

from repro.check.flow import run_flow


def flow(tmp_path: Path, source: str):
    (tmp_path / "fixture.py").write_text(source)
    report = run_flow([tmp_path])
    return [(v.rule, v.line) for v in report.violations]


class TestAmbient:
    def test_module_scope_generator_fires(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "RNG = np.random.default_rng()\n"
        )
        # Ambient *and* unseeded: both problems live on line 3.
        assert flow(tmp_path, src) == [
            ("rng-ambient", 3),
            ("rng-unseeded", 3),
        ]

    def test_module_scope_even_with_seed_fires_ambient(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "RNG = np.random.default_rng(1234)\n"
        )
        assert flow(tmp_path, src) == [("rng-ambient", 3)]


class TestUnseeded:
    def test_no_argument_fires(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def draw():\n"
            "    return np.random.default_rng()\n"
        )
        assert flow(tmp_path, src) == [("rng-unseeded", 5)]

    def test_literal_none_fires(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def draw():\n"
            "    return np.random.default_rng(None)\n"
        )
        assert flow(tmp_path, src) == [("rng-unseeded", 5)]

    def test_literal_seed_clean(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def draw():\n"
            "    return np.random.default_rng(1234)\n"
        )
        assert flow(tmp_path, src) == []


class TestUntrackedSeed:
    def test_laundered_entropy_fires(self, tmp_path):
        # os.getpid() smuggled through a helper the graph must chase.
        src = (
            "import os\n"
            "\n"
            "import numpy as np\n"
            "\n"
            "\n"
            "def launder():\n"
            "    return os.getpid()\n"
            "\n"
            "\n"
            "def make_rng():\n"
            "    return np.random.default_rng(launder())\n"
        )
        (tmp_path / "fixture.py").write_text(src)
        report = run_flow([tmp_path])
        assert [(v.rule, v.line) for v in report.violations] == [
            ("rng-untracked-seed", 11)
        ]
        # The diagnostic names the helper the trace died in.
        assert "launder" in report.violations[0].message

    def test_seed_parameter_clean(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def make_rng(seed: int):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert flow(tmp_path, src) == []

    def test_arithmetic_over_seed_clean(self, tmp_path):
        # Arithmetic over seed-ish identifiers and literals stays tracked;
        # `replica_seed` qualifies by name, `7` by being a literal.
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def make_rng(seed: int, replica_seed: int):\n"
            "    return np.random.default_rng(seed * 1000 + replica_seed + 7)\n"
        )
        assert flow(tmp_path, src) == []

    def test_seedish_attribute_clean(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def make_rng(config):\n"
            "    return np.random.default_rng(config.fault_seed)\n"
        )
        assert flow(tmp_path, src) == []

    def test_deterministic_helper_clean(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def base_seed():\n"
            "    return 1234\n"
            "\n"
            "\n"
            "def make_rng():\n"
            "    return np.random.default_rng(base_seed())\n"
        )
        assert flow(tmp_path, src) == []

    def test_plain_param_with_deterministic_call_sites_clean(self, tmp_path):
        # `x` is not seed-named, but every call site passes a literal, so
        # the interprocedural step vouches for it.
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def make_rng(x):\n"
            "    return np.random.default_rng(x)\n"
            "\n"
            "\n"
            "def caller():\n"
            "    return make_rng(42)\n"
        )
        assert flow(tmp_path, src) == []

    def test_suppression_with_rationale_honored(self, tmp_path):
        src = (
            "import numpy as np\n"
            "\n"
            "RNG = np.random.default_rng(7)  "
            "# repro-lint: disable=rng-ambient -- module-level test fixture\n"
        )
        assert flow(tmp_path, src) == []
