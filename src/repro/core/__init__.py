"""Core API: the PowerInfer facade and the offline pipeline."""

from repro.core.api import PowerInfer
from repro.core.pipeline import POLICIES, build_plan
from repro.core.profiles import SparsityProfile, profile_for_model, synthesize_model_probs

__all__ = [
    "POLICIES",
    "PowerInfer",
    "SparsityProfile",
    "build_plan",
    "profile_for_model",
    "synthesize_model_probs",
]
