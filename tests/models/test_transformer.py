"""Tests for the numpy reference transformer."""

import numpy as np
import pytest

from repro.models.config import Activation, tiny_config
from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer, mlp_activation_mask, softmax
from repro.models.weights import init_weights
from repro.sparsity.powerlaw import synthesize_activation_probs


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((5, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_stable_for_large_inputs(self):
        x = np.array([1000.0, 1001.0])
        out = softmax(x)
        assert np.isfinite(out).all()
        assert out[1] > out[0]

    def test_respects_minus_inf_mask(self):
        out = softmax(np.array([0.0, -np.inf]))
        assert out[1] == 0.0


class TestForward:
    def test_logit_shape(self, tiny_model, tiny_cfg, rng):
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=5)
        logits = tiny_model.forward(tokens, KVCache(tiny_cfg))
        assert logits.shape == (5, tiny_cfg.vocab_size)

    def test_incremental_decoding_matches_full_forward(self, tiny_model, tiny_cfg, rng):
        # Feeding tokens one at a time through the KV cache must give the
        # same final logits as one full forward pass.
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=6)
        full = tiny_model.forward(tokens, KVCache(tiny_cfg))
        cache = KVCache(tiny_cfg)
        step_logits = None
        for t in tokens:
            step_logits = tiny_model.forward(np.array([t]), cache)
        assert np.allclose(step_logits[-1], full[-1], atol=1e-4)

    def test_causality(self, tiny_model, tiny_cfg, rng):
        # Changing a later token must not change earlier logits.
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=6)
        base = tiny_model.forward(tokens, KVCache(tiny_cfg))
        changed = tokens.copy()
        changed[-1] = (changed[-1] + 1) % tiny_cfg.vocab_size
        other = tiny_model.forward(changed, KVCache(tiny_cfg))
        assert np.allclose(base[:-1], other[:-1], atol=1e-5)
        assert not np.allclose(base[-1], other[-1])

    def test_rejects_2d_input(self, tiny_model, tiny_cfg):
        with pytest.raises(ValueError, match="1-D"):
            tiny_model.forward(np.zeros((2, 3), dtype=int), KVCache(tiny_cfg))

    def test_deterministic(self, tiny_model, tiny_cfg):
        tokens = np.array([1, 2, 3])
        a = tiny_model.forward(tokens, KVCache(tiny_cfg))
        b = tiny_model.forward(tokens, KVCache(tiny_cfg))
        assert np.array_equal(a, b)


class TestHooks:
    def test_activation_hook_sees_every_layer(self, tiny_model, tiny_cfg, rng):
        seen = {}
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=4)
        tiny_model.forward(
            tokens, KVCache(tiny_cfg), activation_hook=lambda li, m: seen.setdefault(li, m)
        )
        assert sorted(seen) == list(range(tiny_cfg.n_layers))
        for mask in seen.values():
            assert mask.shape == (4, tiny_cfg.d_ffn)
            assert mask.dtype == bool

    def test_mlp_override_replaces_dense(self, tiny_model, tiny_cfg, rng):
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=3)
        zero_out = tiny_model.forward(
            tokens, KVCache(tiny_cfg), mlp_override=lambda li, x: np.zeros_like(x)
        )
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        assert not np.allclose(zero_out, dense)

    def test_identity_override_differs_only_via_mlp(self, tiny_model, tiny_cfg, rng):
        # Overriding with the true dense MLP must reproduce dense output.
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=3)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        via_override = tiny_model.forward(
            tokens,
            KVCache(tiny_cfg),
            mlp_override=lambda li, x: tiny_model._mlp(tiny_model.weights.layers[li], x),
        )
        assert np.allclose(dense, via_override)


class TestActivationMask:
    def test_mask_matches_relu_support(self, tiny_model, rng):
        layer = tiny_model.weights.layers[0]
        x = rng.standard_normal((3, tiny_model.config.d_model)).astype(np.float32)
        mask = mlp_activation_mask(layer, x)
        pre = x @ layer.fc1.T + layer.fc1_bias
        assert np.array_equal(mask, pre > 0)

    def test_power_law_biases_induce_target_sparsity(self, rng):
        cfg = tiny_config(d_ffn=512)
        probs = [
            synthesize_activation_probs(cfg.d_ffn, rng, mean_activation_rate=0.1)
            for _ in range(cfg.n_layers)
        ]
        model = Transformer(init_weights(cfg, rng, activation_probs=probs))
        x = rng.standard_normal((200, cfg.d_model)).astype(np.float32)
        mask = mlp_activation_mask(model.weights.layers[0], x)
        # Mean activation rate should be near the 10% target.
        assert 0.05 < mask.mean() < 0.2


class TestGenerate:
    def test_generates_requested_tokens(self, tiny_model):
        out = tiny_model.generate([1, 2, 3], max_new_tokens=5)
        assert len(out) == 5
        assert all(0 <= t < tiny_model.config.vocab_size for t in out)

    def test_greedy_is_deterministic(self, tiny_model):
        assert tiny_model.generate([4, 5], 6) == tiny_model.generate([4, 5], 6)

    def test_empty_prompt_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.generate([], 4)

    def test_stops_at_max_seq_len(self):
        cfg = tiny_config(max_seq_len=8)
        gen = np.random.default_rng(0)
        model = Transformer(init_weights(cfg, gen))
        out = model.generate([1, 2, 3, 4], max_new_tokens=100)
        assert len(out) <= cfg.max_seq_len - 4 + 1


class TestRegluModel:
    def test_reglu_forward_works(self, rng):
        cfg = tiny_config(activation=Activation.REGLU)
        model = Transformer(init_weights(cfg, rng))
        assert model.weights.layers[0].gate is not None
        logits = model.forward(np.array([1, 2]), KVCache(cfg))
        assert np.isfinite(logits).all()

    def test_relu_model_has_no_gate(self, tiny_model):
        assert tiny_model.weights.layers[0].gate is None
