"""High-level PowerInfer facade.

``PowerInfer.deploy(...)`` runs the offline phase (profile synthesis,
predictor sizing, placement solving) and wires up the online engine;
``.generate(...)`` simulates serving a request and reports the paper's
end-to-end generation-speed metric.

    >>> from repro import PowerInfer, OPT_30B, PC_HIGH
    >>> system = PowerInfer.deploy(OPT_30B, PC_HIGH)
    >>> result = system.generate(input_len=64, output_len=128)
    >>> result.tokens_per_second  # doctest: +SKIP
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import build_plan
from repro.engine.base import PerfEngine
from repro.engine.plan import DeploymentPlan, MemoryReport
from repro.engine.powerinfer import PowerInferEngine
from repro.engine.results import RequestResult
from repro.hardware.spec import MachineSpec
from repro.models.config import ModelConfig
from repro.quant.formats import FP16, DType

__all__ = ["PowerInfer"]


class PowerInfer:
    """A deployed PowerInfer system: offline plan + online engine."""

    def __init__(self, plan: DeploymentPlan, engine: PerfEngine | None = None) -> None:
        self.plan = plan
        self.engine = engine or PowerInferEngine(plan)

    @classmethod
    def deploy(
        cls,
        model: ModelConfig,
        machine: MachineSpec,
        dtype: DType = FP16,
        policy: str = "ilp",
        seed: int = 0,
        expected_context: int = 256,
    ) -> "PowerInfer":
        """Run the offline phase and return a ready-to-serve system.

        Raises:
            OutOfMemoryError: If the model cannot fit the machine's
                combined GPU + CPU memory in the requested dtype.
        """
        plan = build_plan(
            model,
            machine,
            dtype=dtype,
            policy=policy,
            seed=seed,
            expected_context=expected_context,
        )
        return cls(plan)

    def generate(
        self,
        input_len: int,
        output_len: int,
        batch: int = 1,
        rng: np.random.Generator | None = None,
    ) -> RequestResult:
        """Simulate one request; returns timing and the tokens/s metric."""
        return self.engine.simulate_request(input_len, output_len, batch, rng=rng)

    def memory_report(self) -> MemoryReport:
        """Device memory committed by the deployment."""
        return self.plan.memory_report()

    def gpu_load_share(self, batch: int = 1) -> float:
        """Fraction of neuron computation the GPU serves (Figure 12)."""
        return self.engine.gpu_load_share(batch)
