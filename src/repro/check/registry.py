"""Shared rule-name registry for the check tools.

The lint pass (:mod:`repro.check.lint`) and the interprocedural flow
passes (:mod:`repro.check.flow`) share one suppression syntax::

    expr  # repro-lint: disable=<rule>[, <rule>...] -- why

and one meta-rule (``bad-suppression``) that fires when a suppression
names a rule no tool knows.  That meta-rule needs a single rule-name
universe — otherwise suppressing a flow rule would trip the linter and
vice versa.  This module is that universe's neutral ground: it has no
imports, so both tools can depend on it without cycles.

``bad-suppression`` itself is emitted only by the linter (which always
runs alongside check-flow in ``repro check`` and CI), so a typo'd flow
suppression is still caught exactly once.
"""

from __future__ import annotations

__all__ = ["FLOW_RULES", "all_rule_names"]

# Flow rule id -> one-line description.  docs/static_analysis.md carries
# the full rationale and examples; repro.check.dimensions implements the
# dim-* rules, repro.check.provenance the rng-* rules.
FLOW_RULES: dict[str, str] = {
    "dim-add-mix": "addition/subtraction/min/max over mismatched physical dimensions",
    "dim-product": "product or quotient lands outside the recognized dimension table",
    "dim-return": "returned expression's dimension contradicts the declared return dimension",
    "dim-arg": "argument's dimension contradicts the parameter's declared dimension",
    "rng-ambient": "random Generator created at module scope (ambient global state)",
    "rng-unseeded": "random Generator created without a seed",
    "rng-untracked-seed": "Generator seed has no provable provenance from an explicit seed",
}


def all_rule_names() -> set[str]:
    """Every rule id any check tool can emit (lint + flow)."""
    from repro.check.lint import RULES

    return set(RULES) | set(FLOW_RULES)
