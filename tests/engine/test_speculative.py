"""Tests for the speculative-decoding extension."""

import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.engine.speculative import SpeculativeEngine, expected_accepted_tokens


@pytest.fixture(scope="module")
def draft_engine(mini_machine):
    """A small dense draft model fully GPU-resident on the mini machine."""
    from repro.core.pipeline import build_plan
    from repro.engine.baselines import LlamaCppEngine
    from repro.models.config import ModelConfig
    from repro.quant.formats import FP16

    draft_model = ModelConfig(
        name="mini-draft", n_layers=4, d_model=512, d_ffn=2048, n_heads=8,
        vocab_size=4096,
    )
    plan = build_plan(draft_model, mini_machine, FP16, policy="none")
    return LlamaCppEngine(plan)


@pytest.fixture(scope="module")
def spec_engine(mini_plan, draft_engine):
    return SpeculativeEngine(
        PowerInferEngine(mini_plan), draft_engine, draft_len=4, acceptance_rate=0.8
    )


class TestAcceptanceMath:
    def test_zero_acceptance_yields_one_token(self):
        assert expected_accepted_tokens(4, 0.0) == 1.0

    def test_geometric_series(self):
        # k=2, a=0.5 -> 1 + 0.5 + 0.25 = 1.75.
        assert expected_accepted_tokens(2, 0.5) == pytest.approx(1.75)

    def test_monotone_in_draft_len(self):
        vals = [expected_accepted_tokens(k, 0.8) for k in (1, 2, 4, 8)]
        assert vals == sorted(vals)

    def test_bounded_by_draft_len_plus_one(self):
        assert expected_accepted_tokens(4, 0.99) < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_accepted_tokens(0, 0.5)
        with pytest.raises(ValueError):
            expected_accepted_tokens(4, 1.0)


class TestSpeculativeEngine:
    def test_speedup_over_plain_decoding(self, mini_plan, spec_engine):
        plain = PowerInferEngine(mini_plan).simulate_request(16, 64)
        spec = spec_engine.simulate_request(16, 64)
        # Section 9: speculative inference should further boost PowerInfer.
        assert spec.tokens_per_second > plain.tokens_per_second

    def test_verify_block_cheaper_than_sequential(self, mini_plan):
        # The economics behind speculation: verifying k+1 tokens at once
        # costs much less than k+1 sequential decodes (weights read once).
        engine = PowerInferEngine(mini_plan)
        block = engine.simulate_iteration(16, n_tokens=5).makespan
        sequential = 5 * engine.simulate_iteration(16, n_tokens=1).makespan
        assert block < 0.7 * sequential

    def test_result_fields(self, spec_engine):
        result = spec_engine.simulate_request(8, 32)
        assert result.engine == "speculative"
        assert result.prompt_time > 0
        assert result.decode_time > 0

    def test_low_acceptance_hurts(self, mini_plan, draft_engine):
        good = SpeculativeEngine(
            PowerInferEngine(mini_plan), draft_engine, draft_len=4, acceptance_rate=0.9
        ).simulate_request(16, 64)
        bad = SpeculativeEngine(
            PowerInferEngine(mini_plan), draft_engine, draft_len=4, acceptance_rate=0.1
        ).simulate_request(16, 64)
        assert good.tokens_per_second > bad.tokens_per_second

    def test_invalid_request(self, spec_engine):
        with pytest.raises(ValueError):
            spec_engine.simulate_request(0, 8)
