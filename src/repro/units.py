"""Physical-dimension aliases for the simulator's quantitative core.

Every number the cost/power math passes around is a physical quantity:
the roofline terms are bytes and flops, the scheduler trades in seconds,
the power meter in watts and joules, the carbon ledger in grams of CO2.
The simulator keeps **one canonical unit per dimension** (seconds — never
milliseconds; bytes — never GiB; joules — never kWh) and converts only at
display or config boundaries.  This module gives those conventions names
that both humans and the static analyzer can read.

The aliases are ``typing.NewType`` wrappers: at runtime they are identity
functions (annotations cost nothing, and every annotated module uses
``from __future__ import annotations`` so nothing is even evaluated), but
they let ``repro check-flow`` run dimensional analysis over the project
call graph — adding ``Seconds`` to ``Bytes``, multiplying ``Watts`` by
``Watts``, or returning a ``Bytes`` expression from a function declared
``-> Seconds`` all become static diagnostics.  See
docs/static_analysis.md for the annotation guide.

:data:`DIMENSIONS` is the single source of truth the analyzer imports:
each alias maps to its exponent vector over the base dimensions in
:data:`BASE_DIMENSIONS`.  Derived aliases are exactly the products the
hot-path arithmetic produces — e.g. ``Bytes / Seconds`` lands on
``BytesPerSecond``, ``Watts * Seconds`` on ``Joules`` — so any product
that lands *outside* this table is, by construction, a quantity the
simulator has no business computing.
"""

from __future__ import annotations

from typing import NewType

__all__ = [
    "BASE_DIMENSIONS",
    "DIMENSIONS",
    "Seconds",
    "Hertz",
    "Bytes",
    "BytesPerSecond",
    "Flops",
    "FlopsPerSecond",
    "Joules",
    "Watts",
    "Tokens",
    "TokensPerSecond",
    "JoulesPerToken",
    "GramsCO2",
    "GramsCO2PerKilowattHour",
    "Ratio",
]

# Simulated-clock time.  The whole simulator runs on seconds; CLI tables
# multiply by 1e3 for millisecond display only.
Seconds = NewType("Seconds", float)

# Event rates (requests/s, iterations/s): 1 / Seconds.
Hertz = NewType("Hertz", float)

# Memory/traffic volume.  Always raw bytes; GIB/GB factors live at the
# spec-construction boundary.
Bytes = NewType("Bytes", float)

# Bandwidth: Bytes / Seconds.
BytesPerSecond = NewType("BytesPerSecond", float)

# Arithmetic work (floating-point operations).
Flops = NewType("Flops", float)

# Compute throughput: Flops / Seconds (peak or sustained FLOP/s).
FlopsPerSecond = NewType("FlopsPerSecond", float)

# Energy.  Always joules; kWh appears only inside the carbon-intensity
# conversion constant.
Joules = NewType("Joules", float)

# Power: Joules / Seconds.
Watts = NewType("Watts", float)

# Token counts (generated or prompted).
Tokens = NewType("Tokens", int)

# Generation throughput: Tokens / Seconds.
TokensPerSecond = NewType("TokensPerSecond", float)

# Energy efficiency: Joules / Tokens.
JoulesPerToken = NewType("JoulesPerToken", float)

# Operational carbon mass.
GramsCO2 = NewType("GramsCO2", float)

# Grid carbon intensity as configured (g/kWh).  Dimensionally this is
# mass per energy; the kWh scale factor is absorbed by _J_PER_KWH at the
# use site, so the exponent vector below is gCO2 * J^-1.
GramsCO2PerKilowattHour = NewType("GramsCO2PerKilowattHour", float)

# Dimensionless scale factors: efficiencies, utilizations, DVFS scales,
# speedups, shares.  Carrying the zero vector (rather than being opaque)
# lets products like ``bandwidth * efficiency`` keep their dimension.
Ratio = NewType("Ratio", float)

# Base dimensions, in canonical order.  Exponent vectors in DIMENSIONS
# (and inside the analyzer) are expressed over these axes.
BASE_DIMENSIONS = ("s", "byte", "flop", "joule", "token", "gco2")

# Alias name -> exponent over BASE_DIMENSIONS (axes omitted are zero).
# repro.check.dimensions treats this table as the universe of recognized
# dimensions: a product/quotient whose vector is absent here fires the
# dim-product rule.
DIMENSIONS: dict[str, dict[str, int]] = {
    "Seconds": {"s": 1},
    "Hertz": {"s": -1},
    "Bytes": {"byte": 1},
    "BytesPerSecond": {"byte": 1, "s": -1},
    "Flops": {"flop": 1},
    "FlopsPerSecond": {"flop": 1, "s": -1},
    "Joules": {"joule": 1},
    "Watts": {"joule": 1, "s": -1},
    "Tokens": {"token": 1},
    "TokensPerSecond": {"token": 1, "s": -1},
    "JoulesPerToken": {"joule": 1, "token": -1},
    "GramsCO2": {"gco2": 1},
    "GramsCO2PerKilowattHour": {"gco2": 1, "joule": -1},
    "Ratio": {},
}
