"""Tests for the optional matplotlib timeline rendering.

Matplotlib is not a dependency of this repository; when it is absent the
module must fail with an actionable MissingDependencyError, and when it is
present the figure must actually render.  Both branches are covered —
whichever matches the environment runs, the other is skipped.
"""

import importlib.util

import pytest

from repro.telemetry import MissingDependencyError, Tracer, plot_timeline

HAVE_MPL = importlib.util.find_spec("matplotlib") is not None


def populated_tracer():
    t = Tracer()
    t.add_task("mlp-0", "gpu", 0.0, 0.5, tag="mlp")
    t.add_task("xfer-0", "pcie", 0.5, 0.75, tag="transfer")
    t.add_request_span(0, "queued", 0.0, 0.25)
    t.add_request_span(0, "prefill", 0.25, 0.5)
    t.add_region("faults", "stall", 0.6, 0.7)
    t.add_counter("queue_depth", 0.0, 1.0)
    return t


@pytest.mark.skipif(HAVE_MPL, reason="matplotlib installed; gating moot")
def test_missing_matplotlib_raises_actionable_error(tmp_path):
    with pytest.raises(MissingDependencyError, match="matplotlib"):
        plot_timeline(populated_tracer(), tmp_path / "out.png")


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_renders_png(tmp_path):
    path = tmp_path / "out.png"
    plot_timeline(populated_tracer(), path)
    assert path.stat().st_size > 0


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_empty_tracer_is_an_error(tmp_path):
    with pytest.raises(ValueError):
        plot_timeline(Tracer(), tmp_path / "out.png")
