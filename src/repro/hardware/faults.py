"""Deterministic fault injection over the hardware specs.

The performance substrate assumes a quiet machine: every :class:`DeviceSpec`
and :class:`LinkSpec` parameter is a constant, so ``simulate_iteration`` is
time-invariant.  Real consumer deployments are not quiet — PCIe contention
from other processes, thermal throttling of the GPU or CPU, transient driver
stalls, and external memory pressure all perturb exactly the parameters the
placement ILP optimized against.  This module models those perturbations as
a *schedule* of timed events over simulated time:

* :class:`FaultEvent` — one perturbation window ``[start, start+duration)``
  with a ``kind`` and a ``magnitude`` (a bandwidth/compute divisor for
  degradations, a remaining-budget fraction for KV shrinkage).
* :class:`FaultSchedule` — an immutable, sorted collection of events.  It
  partitions the timeline into *epochs* at event boundaries; within one
  epoch the perturbed machine is constant, which is what lets the serving
  layer's iteration-cost cache stay effective (keys carry the epoch index).

Everything is deterministic: a schedule is either constructed explicitly or
generated from a seed (:meth:`FaultSchedule.from_seed`), and two simulations
over the same schedule produce identical results.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.hardware.spec import MachineSpec
from repro.units import Ratio, Seconds

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]


class FaultKind:
    """Symbolic names for the perturbation classes the schedule injects."""

    PCIE_DEGRADE = "pcie-degrade"  # link bandwidth / magnitude, latency * magnitude
    GPU_THROTTLE = "gpu-throttle"  # GPU flops and bandwidth / magnitude
    CPU_THROTTLE = "cpu-throttle"  # CPU flops and bandwidth / magnitude
    DEVICE_STALL = "stall"  # no iterations run; in-flight work aborts
    KV_SHRINK = "kv-shrink"  # KV budget * magnitude (fraction remaining)

    # Replica-granularity kinds, interpreted by the fleet layer
    # (:mod:`repro.serving.fleet`) rather than by the machine model:
    REPLICA_CRASH = "replica-crash"  # replica down; in-progress KV lost
    REPLICA_RECOVER = "replica-recover"  # warm-up window after a crash
    LINK_DEGRADE = "link-degrade"  # fleet interconnect slowed / magnitude

    # Machine-level kinds — what perturbs a single machine's spec.
    MACHINE = (PCIE_DEGRADE, GPU_THROTTLE, CPU_THROTTLE, DEVICE_STALL, KV_SHRINK)
    # Fleet-level kinds — replica lifecycle and interconnect health.
    FLEET = (REPLICA_CRASH, REPLICA_RECOVER, LINK_DEGRADE)

    ALL = MACHINE + FLEET

    # Kinds that slow the machine down (as opposed to stalling it or
    # squeezing memory) — what a degradation-aware server throttles under.
    THROUGHPUT = (PCIE_DEGRADE, GPU_THROTTLE, CPU_THROTTLE)


@dataclass(frozen=True)
class FaultEvent:
    """One perturbation window on the simulated-time axis.

    Attributes:
        kind: One of :class:`FaultKind`.
        start: Window start, seconds of simulated time.
        duration: Window length, seconds (the window is ``[start, end)``).
        magnitude: Interpretation depends on ``kind``:
            degradations/throttles — divisor applied to the affected
            bandwidth/compute parameters (``>= 1``; 4.0 means "a quarter of
            nominal"); KV shrinkage — fraction of the budget that *remains*
            (``0 < m <= 1``); stalls and replica crashes ignore it;
            ``replica-recover`` — slowdown divisor while the replica warms
            back up (``>= 1``); ``link-degrade`` — divisor on the fleet
            interconnect bandwidth (``>= 1``).
    """

    kind: str
    start: Seconds
    duration: Seconds
    magnitude: Ratio = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FaultKind.ALL}"
            )
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        divisor_kinds = FaultKind.THROUGHPUT + (
            FaultKind.REPLICA_RECOVER,
            FaultKind.LINK_DEGRADE,
        )
        if self.kind in divisor_kinds and self.magnitude < 1.0:
            raise ValueError(
                f"{self.kind} magnitude is a slowdown divisor and must be >= 1"
            )
        if self.kind == FaultKind.KV_SHRINK and not 0.0 < self.magnitude <= 1.0:
            raise ValueError(
                "kv-shrink magnitude is the remaining budget fraction in (0, 1]"
            )

    @property
    def end(self) -> Seconds:
        return self.start + self.duration

    def active_at(self, t: Seconds) -> bool:
        return self.start <= t < self.end

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }


class FaultSchedule:
    """An immutable timeline of :class:`FaultEvent` windows.

    Event boundaries partition simulated time into *epochs*; the perturbed
    machine is constant within one epoch, so callers may cache per-epoch
    results (:meth:`epoch` is the cache key).
    """

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start, e.end, e.kind, e.magnitude))
        )
        self._boundaries: list[float] = sorted(
            {b for e in self.events for b in (e.start, e.end)}
        )
        self._machine_cache: dict[tuple[MachineSpec, int], MachineSpec] = {}

    # ---- timeline queries ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> Seconds:
        """End of the last event (0 for an empty schedule)."""
        return max((e.end for e in self.events), default=0.0)

    @property
    def boundaries(self) -> tuple[Seconds, ...]:
        """Sorted epoch boundaries (every event start and end, deduplicated).

        These are the instants at which the perturbed machine changes;
        telemetry marks each one on the trace timeline.
        """
        return tuple(self._boundaries)

    def epoch(self, t: Seconds) -> int:
        """Index of the constant-perturbation interval containing ``t``."""
        return bisect_right(self._boundaries, t)

    def next_boundary_after(self, t: Seconds) -> Seconds | None:
        """First event start/end strictly after ``t`` (None when past all)."""
        idx = bisect_right(self._boundaries, t)
        return self._boundaries[idx] if idx < len(self._boundaries) else None

    def active(self, t: Seconds) -> tuple[FaultEvent, ...]:
        """Events whose window contains ``t``."""
        return tuple(e for e in self.events if e.active_at(t))

    def is_degraded(self, t: Seconds) -> bool:
        """Whether any throughput-affecting fault is active at ``t``."""
        return any(
            e.kind in FaultKind.THROUGHPUT for e in self.events if e.active_at(t)
        )

    # ---- perturbation application --------------------------------------------

    def perturbed_machine(self, machine: MachineSpec, t: Seconds) -> MachineSpec:
        """The machine as the active faults at ``t`` leave it.

        Concurrent events of the same kind compose multiplicatively.  The
        result is cached per (machine, epoch) — within one epoch the
        perturbation is constant by construction.
        """
        key = (machine, self.epoch(t))
        cached = self._machine_cache.get(key)
        if cached is not None:
            return cached
        link_div = gpu_div = cpu_div = 1.0
        for event in self.active(t):
            if event.kind == FaultKind.PCIE_DEGRADE:
                link_div *= event.magnitude
            elif event.kind == FaultKind.GPU_THROTTLE:
                gpu_div *= event.magnitude
            elif event.kind == FaultKind.CPU_THROTTLE:
                cpu_div *= event.magnitude
        perturbed = machine
        if link_div > 1.0:
            # Contention hurts both achievable bandwidth and per-message
            # latency (the DMA queue behind the congested link grows).
            perturbed = dataclasses.replace(
                perturbed,
                link=dataclasses.replace(
                    machine.link,
                    bandwidth=machine.link.bandwidth / link_div,
                    latency=machine.link.latency * link_div,
                ),
            )
        if gpu_div > 1.0:
            perturbed = dataclasses.replace(
                perturbed,
                gpu=dataclasses.replace(
                    machine.gpu,
                    compute_flops=machine.gpu.compute_flops / gpu_div,
                    memory_bandwidth=machine.gpu.memory_bandwidth / gpu_div,
                ),
            )
        if cpu_div > 1.0:
            perturbed = dataclasses.replace(
                perturbed,
                cpu=dataclasses.replace(
                    machine.cpu,
                    compute_flops=machine.cpu.compute_flops / cpu_div,
                    memory_bandwidth=machine.cpu.memory_bandwidth / cpu_div,
                ),
            )
        self._machine_cache[key] = perturbed
        return perturbed

    def kv_budget_factor(self, t: Seconds) -> Ratio:
        """Fraction of the KV budget remaining at ``t`` (1.0 = nominal)."""
        factor = 1.0
        for event in self.active(t):
            if event.kind == FaultKind.KV_SHRINK:
                factor *= event.magnitude
        return factor

    def stall_end_at(self, t: Seconds) -> Seconds | None:
        """End of the stall covering ``t``, or None when no stall is active.

        Overlapping stalls merge: the returned time is past *every* stall
        reachable from ``t`` without a gap.
        """
        end: Seconds | None = None
        cursor = t
        for event in self.events:  # sorted by start
            if event.kind != FaultKind.DEVICE_STALL:
                continue
            if event.start <= cursor < event.end:
                end = event.end
                cursor = event.end
        return end

    def next_stall_start(self, start: Seconds, end: Seconds) -> FaultEvent | None:
        """Earliest stall beginning strictly inside ``(start, end)``.

        This is what preempts an in-flight iteration: work scheduled at
        ``start`` that would finish at ``end`` is cut short if a device
        stall begins in between.
        """
        for event in self.events:  # sorted by start
            if event.kind == FaultKind.DEVICE_STALL and start < event.start < end:
                return event
        return None

    # ---- fleet-level queries ---------------------------------------------------

    def crash_windows(self) -> tuple[tuple[Seconds, Seconds], ...]:
        """``(start, end)`` of every ``replica-crash`` window, sorted."""
        return tuple(
            (e.start, e.end)
            for e in self.events
            if e.kind == FaultKind.REPLICA_CRASH
        )

    def is_crashed(self, t: Seconds) -> bool:
        """Whether a ``replica-crash`` window covers ``t``."""
        return any(
            e.kind == FaultKind.REPLICA_CRASH for e in self.events if e.active_at(t)
        )

    def link_degrade_factor(self, t: Seconds) -> Ratio:
        """Interconnect slowdown divisor at ``t`` (1.0 = nominal).

        Concurrent ``link-degrade`` windows compose multiplicatively, the
        same convention as :meth:`perturbed_machine`.  The fleet transfer
        model divides link bandwidth (and multiplies latency) by this.
        """
        factor = 1.0
        for event in self.active(t):
            if event.kind == FaultKind.LINK_DEGRADE:
                factor *= event.magnitude
        return factor

    def machine_view(self) -> "FaultSchedule":
        """This schedule as a single machine experiences it.

        The fleet kinds are translated into their machine-level effect so
        a :class:`~repro.serving.continuous.ContinuousServer` can run the
        replica without knowing about the fleet:

        * ``replica-crash`` becomes a ``stall`` over the same window — a
          crashed replica executes nothing and in-flight work is lost,
          which is exactly the stall semantics (and lets the server-run
          validator prove no iteration overlaps a crash);
        * ``replica-recover`` becomes a ``gpu-throttle`` of the same
          magnitude — a warming replica is slow (cold caches, weights
          reloading);
        * ``link-degrade`` is dropped — the fleet interconnect is not the
          machine's PCIe link; the fleet layer prices it on transfers.

        Machine-level events pass through unchanged.  An all-machine
        schedule returns ``self``.
        """
        if all(e.kind in FaultKind.MACHINE for e in self.events):
            return self
        translated = []
        for e in self.events:
            if e.kind == FaultKind.REPLICA_CRASH:
                translated.append(
                    dataclasses.replace(e, kind=FaultKind.DEVICE_STALL, magnitude=1.0)
                )
            elif e.kind == FaultKind.REPLICA_RECOVER:
                translated.append(
                    dataclasses.replace(e, kind=FaultKind.GPU_THROTTLE)
                )
            elif e.kind == FaultKind.LINK_DEGRADE:
                continue
            else:
                translated.append(e)
        return FaultSchedule(translated)

    # ---- construction helpers -------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """JSON-ready event list (see docs/serving.md for the schema)."""
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_dicts(cls, dicts: Sequence[dict]) -> "FaultSchedule":
        """Build a schedule from ``to_dicts`` output / a JSON event list."""
        events = []
        for i, d in enumerate(dicts):
            unknown = set(d) - {"kind", "start", "duration", "magnitude"}
            if unknown:
                raise ValueError(f"fault event {i}: unknown fields {sorted(unknown)}")
            try:
                events.append(FaultEvent(**d))
            except TypeError as exc:
                raise ValueError(f"fault event {i}: {exc}") from None
        return cls(events)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        horizon: Seconds,
        n_events: int = 4,
        kinds: Sequence[str] = FaultKind.MACHINE,
        max_magnitude: Ratio = 4.0,
    ) -> "FaultSchedule":
        """Generate a deterministic random schedule.

        The same ``(seed, horizon, n_events, kinds, max_magnitude)`` always
        yields the same schedule — the contract chaos tests rely on.

        Args:
            seed: RNG seed.
            horizon: Timeline length; events start within ``[0, horizon)``.
            n_events: Number of events to draw.  Defaults to the
                machine-level kinds; pass ``FaultKind.FLEET`` (or
                ``FaultKind.ALL``) to draw replica-lifecycle events too —
                though :meth:`from_seed_replica` is the better generator
                for crash/recover timelines (it pairs them and respects
                an MTBF/MTTR).
            kinds: Fault kinds to draw from (uniformly).
            max_magnitude: Worst slowdown divisor for degradations; KV
                shrink draws its remaining fraction from ``[1/max, 1)``.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if n_events < 0:
            raise ValueError("n_events must be non-negative")
        if max_magnitude < 1.0:
            raise ValueError("max_magnitude must be >= 1")
        for kind in kinds:
            if kind not in FaultKind.ALL:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(n_events):
            kind = str(rng.choice(list(kinds)))
            start = float(rng.uniform(0.0, horizon))
            if kind in (FaultKind.DEVICE_STALL, FaultKind.REPLICA_CRASH):
                duration = float(rng.uniform(0.005, 0.05) * horizon)
                magnitude = 1.0
            elif kind == FaultKind.KV_SHRINK:
                duration = float(rng.uniform(0.1, 0.3) * horizon)
                magnitude = float(rng.uniform(1.0 / max_magnitude, 1.0))
            else:
                duration = float(rng.uniform(0.05, 0.25) * horizon)
                magnitude = float(rng.uniform(1.5, max_magnitude))
            events.append(
                FaultEvent(kind=kind, start=start, duration=duration, magnitude=magnitude)
            )
        return cls(events)

    @classmethod
    def from_seed_replica(
        cls,
        seed: int,
        horizon: Seconds,
        mtbf: Seconds,
        mttr: Seconds,
        recover_fraction: Ratio = 0.5,
        recover_slowdown: Ratio = 2.0,
        first_crash_after: Seconds = 0.0,
    ) -> "FaultSchedule":
        """Generate a deterministic replica crash/recover lifecycle.

        Crash arrivals follow an exponential inter-failure distribution
        with mean ``mtbf`` (measured from the previous recovery) and each
        outage lasts an exponential draw with mean ``mttr``.  Every crash
        is followed by a ``replica-recover`` warm-up window of
        ``recover_fraction * outage`` at slowdown ``recover_slowdown``.
        Windows never overlap by construction and the timeline stops at
        ``horizon``.  The same arguments always yield the same schedule.

        Args:
            seed: RNG seed.
            horizon: Timeline length; no window starts at or past it.
            mtbf: Mean time between failures (uptime between outages), s.
            mttr: Mean time to recovery (outage length), s.
            recover_fraction: Warm-up length as a fraction of the outage
                it follows (``0`` disables recover windows).
            recover_slowdown: Throughput divisor during warm-up (``>= 1``).
            first_crash_after: Earliest instant the first crash may start
                (lets callers guarantee a healthy start-up phase).
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        if not 0.0 <= recover_fraction <= 1.0:
            raise ValueError("recover_fraction must be in [0, 1]")
        if recover_slowdown < 1.0:
            raise ValueError("recover_slowdown is a slowdown divisor (>= 1)")
        if first_crash_after < 0:
            raise ValueError("first_crash_after must be non-negative")
        rng = np.random.default_rng(seed)
        events = []
        t = first_crash_after
        while True:
            start = t + float(rng.exponential(mtbf))
            if start >= horizon:
                break
            outage = max(float(rng.exponential(mttr)), 1e-6)
            events.append(
                FaultEvent(
                    kind=FaultKind.REPLICA_CRASH,
                    start=start,
                    duration=outage,
                    magnitude=1.0,
                )
            )
            t = start + outage
            if recover_fraction > 0.0:
                warmup = recover_fraction * outage
                events.append(
                    FaultEvent(
                        kind=FaultKind.REPLICA_RECOVER,
                        start=t,
                        duration=warmup,
                        magnitude=recover_slowdown,
                    )
                )
                t += warmup
        return cls(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({list(self.events)!r})"
