"""Result containers for simulated inference requests."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RequestResult"]


@dataclass
class RequestResult:
    """Outcome of simulating one end-to-end request.

    The paper's key metric is *end-to-end generation speed*: generated
    tokens divided by the full response time (prompt + generation phases),
    Section 8.1.

    Attributes:
        engine: Name of the engine that produced the result.
        model: Model name.
        input_len: Prompt length in tokens.
        output_len: Generated tokens.
        batch: Request batch size.
        prompt_time: Seconds spent in the prompt phase.
        decode_time: Seconds spent generating tokens.
        breakdown: Busy seconds per task tag (compute/transfer/...).
        gpu_load_share: Fraction of activated-neuron computation served by
            the GPU (Figure 12's metric).
    """

    engine: str
    model: str
    input_len: int
    output_len: int
    batch: int
    prompt_time: float
    decode_time: float
    breakdown: dict[str, float] = field(default_factory=dict)
    gpu_load_share: float = 0.0

    @property
    def total_time(self) -> float:
        return self.prompt_time + self.decode_time

    @property
    def tokens_per_second(self) -> float:
        """End-to-end generation speed (tokens/s), batch-aggregated."""
        if self.total_time == 0:
            return 0.0
        return self.output_len * self.batch / self.total_time

    @property
    def decode_latency(self) -> float:
        """Average per-token latency during the generation phase."""
        if self.output_len == 0:
            return 0.0
        return self.decode_time / self.output_len

    def breakdown_shares(self) -> dict[str, float]:
        """Each tag's share of total busy time (Figure 4b-style)."""
        total = sum(self.breakdown.values())
        if total == 0:
            return {}
        return {tag: t / total for tag, t in self.breakdown.items()}
