"""Fleet serving under replica chaos: failover vs a blind router.

Chaos study for the multi-replica fleet (beyond-paper).  One Poisson
request stream is played through a heterogeneous 3-replica fleet —
``pc-high`` / ``pc-low`` / ``a100-server``, each an independent
continuous-batching server — while the ``pc-high`` replica crashes
mid-stream and stays dead for 18 s.  The contrast isolating the health
reaction:

* **failover** — heartbeat detection marks the replica down, its
  undelivered queue is drained and re-dispatched to survivors, each
  victim replaying from its last completed token (lost KV re-priced on
  the new replica), and new arrivals route around the hole.
* **no-failover** — the same detection runs (for availability
  accounting) but the router stays blind: it keeps dispatching to the
  dead replica and strands its queue on local retries that land inside
  the crash stall.

Scored on SLO goodput and deadline-miss rate over *submitted* requests,
so neither router can look better by losing work.  Everything is seeded;
two runs produce identical rows (asserted by the fleet chaos tests).
The scenario builders here are also the canonical fleet fixtures for
``repro verify-schedule`` (:mod:`repro.check.verify`) and CI's
``fleet-chaos-smoke`` job.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.bench.runner import make_engine
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.serving import (
    SLO,
    FleetConfig,
    FleetRouter,
    Replica,
    ReplicaRole,
    make_policy,
    poisson_arrivals,
)
from repro.workloads import CHATGPT_PROMPTS

__all__ = [
    "DEFAULT_SLO",
    "FLEET_MACHINES",
    "build_fleet",
    "default_crash_schedule",
    "default_fleet_monitor",
    "fleet_requests",
    "run_fleet_chaos",
]

MODEL = "opt-6.7b"
DTYPE = "int4"
# Heterogeneous capacity on purpose: the crash takes out a *fast* replica
# (pc-high), so survivors absorb real load, not a rounding error.
FLEET_MACHINES = ("pc-high", "pc-low", "a100-server")
CRASH_REPLICA = 0  # pc-high
N_REQUESTS = 48
# Hot enough that the dead replica's stranded queue actually misses
# deadlines in the no-failover ablation (~19 s stream vs an 18 s crash).
RATE_RPS = 2.5
MAX_BATCH = 8
KV_BUDGET_BYTES = 0.35 * 2**30
DEADLINE_S = 12.0
MAX_RETRIES = 2
MAX_QUEUE = 16
SEED = 42
CRASH_START_S = 6.0
CRASH_DURATION_S = 18.0
DEFAULT_SLO = SLO(ttft_target=6.0, tbt_target=0.020)
ROUTER_POLICY_NAMES = ("round-robin", "least-loaded", "session-affinity")
# Conversations for session-affinity: a few concurrent "users", coprime
# with the fleet size so home assignment is not just round-robin.
N_SESSIONS = 5


def default_crash_schedule() -> FaultSchedule:
    """The canonical fleet chaos timeline: one long mid-stream crash.

    The crash starts with work in flight on every replica and outlasts
    the detection window by far, so drains, re-dispatches, *and* the
    recovery transition all happen inside the run.
    """
    return FaultSchedule(
        [
            FaultEvent(
                FaultKind.REPLICA_CRASH,
                start=CRASH_START_S,
                duration=CRASH_DURATION_S,
            )
        ]
    )


def default_fleet_monitor():
    """The canonical burn-rate monitor for the fleet chaos scenario.

    The rule pair (4 s establishing window, 1 s confirming window, 2x
    threshold) is tuned with the budgets so the 18 s crash reliably
    fires alerts inside its window while the fault-free reference run
    stays silent.  The TBT budget is wider than the others because
    ~20% of requests graze the 20 ms target under normal load on this
    heterogeneous fleet — only the crash pushes the miss rate past it.
    """
    from repro.telemetry import BurnRateRule, SLOMonitor, SLOObjective

    return SLOMonitor(
        objectives=[
            SLOObjective("ttft", budget=0.1),
            SLOObjective("tbt", budget=0.25),
            SLOObjective("deadline", budget=0.1),
        ],
        rules=[BurnRateRule(long_window_s=4.0, short_window_s=1.0, threshold=2.0)],
    )


def fleet_requests(n_requests: int = N_REQUESTS, sessions: int | None = None):
    """The seeded request stream; ``sessions`` tags conversation ids."""
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=RATE_RPS,
        n_requests=n_requests,
        rng=np.random.default_rng(SEED),
        deadline=DEADLINE_S,
    )
    if sessions is not None:
        requests = [
            replace(r, session=i % sessions) for i, r in enumerate(requests)
        ]
    return requests


def build_fleet(
    router_policy: str = "round-robin",
    chaos: bool = True,
    failover: bool = True,
    disaggregate: bool = False,
    hedge: bool = False,
    brownout: bool = False,
    tracer=None,
) -> FleetRouter:
    """The canonical 3-replica fleet, optionally with the crash injected.

    Disaggregated variant: ``a100-server`` prefills, the two PCs decode —
    the crash then hits a *decode* replica, exercising failover of
    post-transfer segments.
    """
    replicas = []
    for i, machine in enumerate(FLEET_MACHINES):
        if disaggregate:
            role = ReplicaRole.PREFILL if machine == "a100-server" else ReplicaRole.DECODE
        else:
            role = ReplicaRole.BOTH
        faults = default_crash_schedule() if chaos and i == CRASH_REPLICA else None
        replicas.append(
            Replica(
                name=f"r{i}-{machine}",
                engine=make_engine("powerinfer", MODEL, machine, DTYPE),
                faults=faults,
                role=role,
                policy=make_policy("chunked", max_prefill_tokens=32),
                max_batch=MAX_BATCH,
                kv_budget_bytes=KV_BUDGET_BYTES,
                max_retries=MAX_RETRIES,
                max_queue=MAX_QUEUE,
            )
        )
    config = FleetConfig(
        policy=router_policy,
        failover=failover,
        disaggregate=disaggregate,
        hedge=hedge,
        hedge_deadline_s=DEADLINE_S if hedge else None,
        brownout=brownout,
    )
    return FleetRouter(replicas, config=config, tracer=tracer)


def _row(policy: str, faults_label: str, failover: bool, result) -> dict:
    report = result.report
    return {
        "policy": policy,
        "faults": faults_label,
        "failover": failover,
        "goodput_rps": report.goodput(DEFAULT_SLO),
        "deadline_miss_rate": report.deadline_miss_rate,
        "ttft_p99_s": report.ttft_percentile(99),
        "availability": result.availability,
        "capacity_availability": result.capacity_availability,
        "completed": len(report.completed),
        "timed_out": len(report.timed_out),
        "shed": len(report.shed),
        "failed": len(report.failed),
        "failovers": result.counters.get("failovers", 0),
        "redispatches": result.counters.get("redispatches", 0),
    }


def run_fleet_chaos(quick: bool = False) -> list[dict]:
    """Fleet chaos rows per router policy, plus the no-failover ablation.

    Returns one row per (policy, fault condition); ``quick`` keeps only
    the round-robin chaos pair (the CI smoke configuration).  Invariants
    checked here rather than trusted: every submitted request is
    accounted for, and under the crash the failover router strictly
    beats the blind one on goodput *and* deadline-miss rate.
    """
    policies = ("round-robin",) if quick else ROUTER_POLICY_NAMES

    rows: list[dict] = []
    results: dict[tuple[str, str], object] = {}
    for policy in policies:
        sessions = N_SESSIONS if policy == "session-affinity" else None
        requests = fleet_requests(sessions=sessions)
        conditions = ("chaos",) if quick else ("none", "chaos")
        for condition in conditions:
            router = build_fleet(router_policy=policy, chaos=condition == "chaos")
            result = router.run(requests)
            if result.report.n_submitted != len(requests):
                raise AssertionError(
                    f"request accounting broken: {result.report.n_submitted} of "
                    f"{len(requests)} submitted requests have a disposition"
                )
            results[(policy, condition)] = result
            rows.append(_row(policy, condition, True, result))

    blind = build_fleet(router_policy="round-robin", chaos=True, failover=False)
    blind_result = blind.run(fleet_requests())
    rows.append(_row("round-robin", "chaos", False, blind_result))

    healed = results[("round-robin", "chaos")].report
    blind_report = blind_result.report
    if not (
        healed.goodput(DEFAULT_SLO) > blind_report.goodput(DEFAULT_SLO)
        and healed.deadline_miss_rate < blind_report.deadline_miss_rate
    ):
        raise AssertionError(
            "failover failed to beat the blind router under chaos: "
            f"goodput {healed.goodput(DEFAULT_SLO):.4f} vs "
            f"{blind_report.goodput(DEFAULT_SLO):.4f}, miss rate "
            f"{healed.deadline_miss_rate:.4f} vs {blind_report.deadline_miss_rate:.4f}"
        )
    return rows
