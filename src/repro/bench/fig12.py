"""Figure 12 — neuron-load distribution between CPU and GPU.

Neuron load = proportion of activated-neuron computation each processing
unit serves.  Paper findings: on PC-High PowerInfer lifts the GPU's share
from llama.cpp's ~20% average to ~70%; on PC-Low, large models (e.g. a
60 GB model on the 11 GB RTX 2080Ti) drop the GPU share to ~42% because
not all hot neurons fit.
"""

from __future__ import annotations

from repro.bench.runner import make_engine
from repro.hardware.memory import OutOfMemoryError

__all__ = ["run_fig12"]

_MODELS = ("opt-30b", "opt-66b", "falcon-40b", "llama-70b")


def run_fig12(
    machine_names: tuple[str, ...] = ("pc-high", "pc-low"),
    model_names: tuple[str, ...] = _MODELS,
    dtype_name: str = "fp16",
) -> list[dict]:
    """GPU neuron-load share for PowerInfer vs llama.cpp per model."""
    rows = []
    for machine_name in machine_names:
        for model_name in model_names:
            try:
                pi = make_engine("powerinfer", model_name, machine_name, dtype_name)
                lc = make_engine("llama.cpp", model_name, machine_name, dtype_name)
            except OutOfMemoryError:
                continue
            rows.append(
                {
                    "machine": machine_name,
                    "model": model_name,
                    "powerinfer_gpu_load": pi.gpu_load_share(),
                    "llamacpp_gpu_load": lc.gpu_load_share(),
                }
            )
    return rows
