"""Tests for multi-turn session workloads."""

import numpy as np
import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.workloads.prompts import CHATGPT_PROMPTS
from repro.workloads.sessions import sample_session, simulate_session


class TestSampleSession:
    def test_context_accumulates(self, rng):
        turns = sample_session(CHATGPT_PROMPTS, n_turns=5, rng=rng)
        assert len(turns) == 5
        assert turns[0].context_len == 0
        for prev, cur in zip(turns, turns[1:]):
            assert cur.context_len >= prev.context_len
            assert cur.context_len <= prev.context_len + prev.prompt_len + prev.output_len

    def test_context_window_capped(self, rng):
        turns = sample_session(
            CHATGPT_PROMPTS, n_turns=50, rng=rng, mean_output=256, max_context=512
        )
        assert max(t.context_len for t in turns) <= 512

    def test_input_len_is_context_plus_prompt(self, rng):
        turns = sample_session(CHATGPT_PROMPTS, n_turns=3, rng=rng)
        for t in turns:
            assert t.input_len == t.context_len + t.prompt_len

    def test_outputs_bounded(self, rng):
        turns = sample_session(CHATGPT_PROMPTS, n_turns=30, rng=rng, mean_output=50)
        for t in turns:
            assert 4 <= t.output_len <= 200

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_session(CHATGPT_PROMPTS, n_turns=0, rng=rng)
        with pytest.raises(ValueError):
            sample_session(CHATGPT_PROMPTS, n_turns=2, rng=rng, mean_output=0)

    def test_deterministic(self):
        a = sample_session(CHATGPT_PROMPTS, 4, np.random.default_rng(5))
        b = sample_session(CHATGPT_PROMPTS, 4, np.random.default_rng(5))
        assert a == b


class TestSimulateSession:
    def test_per_turn_results(self, mini_plan, rng):
        engine = PowerInferEngine(mini_plan)
        turns = sample_session(CHATGPT_PROMPTS, n_turns=3, rng=rng)
        results = simulate_session(engine, turns)
        assert len(results) == 3
        for turn, result in zip(turns, results):
            assert result.input_len == turn.input_len
            assert result.output_len == turn.output_len
            assert result.total_time > 0

    def test_later_turns_cost_more_per_prompt(self, mini_plan, rng):
        # Growing context makes prompt phases longer across a session.
        engine = PowerInferEngine(mini_plan)
        turns = sample_session(
            CHATGPT_PROMPTS, n_turns=6, rng=rng, mean_output=128
        )
        results = simulate_session(engine, turns)
        assert results[-1].prompt_time > results[0].prompt_time

    def test_empty_session_rejected(self, mini_plan):
        with pytest.raises(ValueError):
            simulate_session(PowerInferEngine(mini_plan), [])
