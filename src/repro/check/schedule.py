"""Dynamic invariant checks over realized schedules and serving runs.

The static linter (:mod:`repro.check.lint`) keeps discipline in the
*source*; this module checks the *output*: a realized
:class:`~repro.hardware.events.ScheduleResult` or a full
:class:`~repro.serving.metrics.ContinuousReport` is replayed against the
invariants the simulator promises —

* exclusive devices never run two tasks at once (no busy-interval races);
* no task starts before every dependency has finished;
* durations are finite and non-negative;
* each task's :class:`~repro.hardware.costmodel.TaskCost` components sum
  to its scheduled duration (the attribution contract);
* per-resource busy time and per-tag time account exactly for the task
  intervals, and the makespan is the last task end;
* KV memory is conserved (every allocate matched by one free, the pool
  never exceeds its budget, nothing leaks past the end of the run);
* nothing executes inside a device-stall fault window; and
* an attached trace reconciles with the report (busy-union drift and the
  iteration counter).

All checks report, they do not repair: each problem becomes a
:class:`Violation` carrying the offending task id and simulated
timestamp.  ``require_valid`` turns a non-empty violation list into a
:class:`ScheduleValidationError`.  Engines and the serving loop expose
this as an opt-in ``validate=True`` hook; ``repro verify-schedule`` runs
it across the bench-suite engine × machine grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.events import ScheduleResult, SimTask
    from repro.hardware.faults import FaultSchedule
    from repro.serving.metrics import ContinuousReport
    from repro.telemetry.tracer import Tracer

__all__ = [
    "Violation",
    "ScheduleValidationError",
    "KVEvent",
    "validate_schedule",
    "validate_kv_ledger",
    "validate_server_run",
    "validate_fleet_run",
    "validate_energy_report",
    "validate_fleet_energy",
    "require_valid",
]


@dataclass(frozen=True)
class Violation:
    """One invariant broken at one point of the realized schedule."""

    check: str
    message: str
    task: str | None = None
    time: float | None = None

    def to_dict(self) -> dict:
        out: dict = {"check": self.check, "message": self.message}
        if self.task is not None:
            out["task"] = self.task
        if self.time is not None:
            out["time"] = self.time
        return out

    def format(self) -> str:
        where = ""
        if self.task is not None:
            where += f" task={self.task}"
        if self.time is not None:
            where += f" t={self.time:.6g}s"
        return f"{self.check}:{where} {self.message}"


class ScheduleValidationError(ValueError):
    """A realized schedule broke one or more simulator invariants."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = list(violations)
        lines = [v.format() for v in self.violations[:10]]
        extra = len(self.violations) - len(lines)
        if extra > 0:
            lines.append(f"... and {extra} more")
        super().__init__(
            f"{len(self.violations)} schedule invariant violation(s):\n  "
            + "\n  ".join(lines)
        )


def require_valid(violations: Sequence[Violation]) -> None:
    """Raise :class:`ScheduleValidationError` if any violations exist."""
    if violations:
        raise ScheduleValidationError(violations)


def _tol(scale: float, rel_tol: float) -> float:
    return rel_tol * max(abs(scale), 1.0)


# ---- single-iteration schedules -------------------------------------------------


def validate_schedule(
    result: "ScheduleResult",
    tasks: Iterable["SimTask"] | None = None,
    rel_tol: float = 1e-9,
) -> list[Violation]:
    """Check one realized DAG schedule against the simulator invariants.

    Dependency edges come from each :class:`TaskResult`'s recorded
    ``deps`` (the simulator stamps them); passing the original ``tasks``
    overrides that — which is also how tests replay a tampered DAG.
    ``rel_tol`` scales every float comparison by the magnitude compared.
    """
    violations: list[Violation] = []
    results = result.tasks

    deps_of: dict[str, tuple[str, ...]] = {
        name: tr.deps for name, tr in results.items()
    }
    if tasks is not None:
        deps_of = {t.name: tuple(t.deps) for t in tasks}

    # Finite, non-negative intervals.
    for name, tr in results.items():
        for label, value in (("start", tr.start), ("end", tr.end)):
            if not math.isfinite(value):
                violations.append(
                    Violation(
                        check="non-finite-time",
                        task=name,
                        time=None,
                        message=f"{label} is {value!r}",
                    )
                )
        if math.isfinite(tr.start) and math.isfinite(tr.end) and tr.end < tr.start:
            violations.append(
                Violation(
                    check="negative-duration",
                    task=name,
                    time=tr.start,
                    message=f"end {tr.end:.6g} precedes start {tr.start:.6g}",
                )
            )

    clean = {
        name: tr
        for name, tr in results.items()
        if math.isfinite(tr.start) and math.isfinite(tr.end) and tr.end >= tr.start
    }

    # Exclusive devices: intervals on one resource must not overlap.
    by_resource: dict[str, list] = {}
    for tr in clean.values():
        by_resource.setdefault(tr.resource, []).append(tr)
    for resource in sorted(by_resource):
        intervals = sorted(by_resource[resource], key=lambda t: (t.start, t.end, t.name))
        for prev, cur in zip(intervals, intervals[1:]):
            overlap = prev.end - cur.start
            if overlap > _tol(prev.end, rel_tol):
                violations.append(
                    Violation(
                        check="device-overlap",
                        task=cur.name,
                        time=cur.start,
                        message=(
                            f"{cur.name!r} starts at {cur.start:.6g} while "
                            f"{prev.name!r} still occupies {resource!r} until "
                            f"{prev.end:.6g} (overlap {overlap:.3g}s)"
                        ),
                    )
                )

    # Dependency order: a task may not start before its deps finish.
    for name, tr in clean.items():
        for dep in deps_of.get(name, ()):
            dep_tr = clean.get(dep)
            if dep_tr is None:
                if dep not in results:
                    violations.append(
                        Violation(
                            check="missing-dependency",
                            task=name,
                            time=tr.start,
                            message=f"depends on {dep!r} which was never scheduled",
                        )
                    )
                continue
            lag = dep_tr.end - tr.start
            if lag > _tol(dep_tr.end, rel_tol):
                violations.append(
                    Violation(
                        check="dependency-order",
                        task=name,
                        time=tr.start,
                        message=(
                            f"starts at {tr.start:.6g} but dependency "
                            f"{dep!r} finishes at {dep_tr.end:.6g} "
                            f"({lag:.3g}s too early)"
                        ),
                    )
                )

    # Attribution contract: cost duration and component sum match the
    # scheduled interval bit-tightly (both are built from the same floats).
    for name, tr in clean.items():
        if tr.cost is None:
            continue
        if abs(tr.cost.duration - tr.duration) > _tol(tr.duration, rel_tol):
            violations.append(
                Violation(
                    check="cost-duration-mismatch",
                    task=name,
                    time=tr.start,
                    message=(
                        f"scheduled duration {tr.duration:.6g}s but TaskCost "
                        f"prices it at {tr.cost.duration:.6g}s"
                    ),
                )
            )
        comp_sum = sum(tr.cost.components().values())
        if abs(comp_sum - tr.cost.duration) > _tol(tr.cost.duration, rel_tol):
            violations.append(
                Violation(
                    check="cost-sum-mismatch",
                    task=name,
                    time=tr.start,
                    message=(
                        f"TaskCost components sum to {comp_sum:.6g}s, not the "
                        f"cost duration {tr.cost.duration:.6g}s"
                    ),
                )
            )

    # Busy-time accounting per resource.
    for resource, recorded in sorted(result.busy_time.items()):
        actual = sum(tr.duration for tr in clean.values() if tr.resource == resource)
        if abs(actual - recorded) > _tol(actual, rel_tol):
            violations.append(
                Violation(
                    check="busy-accounting",
                    task=None,
                    time=None,
                    message=(
                        f"resource {resource!r} busy_time {recorded:.6g}s does "
                        f"not match summed task durations {actual:.6g}s"
                    ),
                )
            )

    # Tag accounting.
    tag_actual: dict[str, float] = {}
    for tr in clean.values():
        if tr.tag:
            tag_actual[tr.tag] = tag_actual.get(tr.tag, 0.0) + tr.duration
    for tag in sorted(set(tag_actual) | set(result.tag_time)):
        actual = tag_actual.get(tag, 0.0)
        recorded = result.tag_time.get(tag, 0.0)
        if abs(actual - recorded) > _tol(actual, rel_tol):
            violations.append(
                Violation(
                    check="tag-accounting",
                    task=None,
                    time=None,
                    message=(
                        f"tag {tag!r} time {recorded:.6g}s does not match "
                        f"summed task durations {actual:.6g}s"
                    ),
                )
            )

    # Makespan is the last task end.
    last_end = max((tr.end for tr in clean.values()), default=0.0)
    if abs(result.makespan - last_end) > _tol(last_end, rel_tol):
        violations.append(
            Violation(
                check="makespan-mismatch",
                task=None,
                time=last_end,
                message=(
                    f"makespan {result.makespan:.6g}s but the last task ends "
                    f"at {last_end:.6g}s"
                ),
            )
        )

    violations.sort(key=lambda v: (v.time if v.time is not None else -1.0, v.check))
    return violations


# ---- KV-memory conservation -----------------------------------------------------


@dataclass(frozen=True)
class KVEvent:
    """One KV-pool operation on the simulated timeline."""

    time: float
    op: str  # "alloc" | "free"
    name: str
    nbytes: float

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "op": self.op,
            "name": self.name,
            "nbytes": self.nbytes,
        }


def validate_kv_ledger(
    events: Sequence[KVEvent],
    budget: float,
    peak: float | None = None,
    rel_tol: float = 1e-9,
) -> list[Violation]:
    """Check KV-memory conservation over a run's allocation ledger.

    Invariants: events are time-ordered; every allocation names a new
    reservation with positive finite bytes; every free matches a live
    reservation and its recorded size; the pool never exceeds ``budget``;
    nothing is still live after the last event; and — when ``peak`` is
    given — the report's ``peak_kv_bytes`` equals the ledger's true peak.
    """
    violations: list[Violation] = []
    live: dict[str, float] = {}
    used = 0.0
    true_peak = 0.0
    prev_time = -math.inf
    for ev in events:
        if ev.time < prev_time:
            violations.append(
                Violation(
                    check="kv-time-order",
                    task=ev.name,
                    time=ev.time,
                    message=f"{ev.op} at {ev.time:.6g}s precedes an earlier "
                    f"event at {prev_time:.6g}s",
                )
            )
        prev_time = max(prev_time, ev.time)
        if ev.op == "alloc":
            if not math.isfinite(ev.nbytes) or ev.nbytes <= 0:
                violations.append(
                    Violation(
                        check="kv-bad-bytes",
                        task=ev.name,
                        time=ev.time,
                        message=f"allocation of {ev.nbytes!r} bytes",
                    )
                )
                continue
            if ev.name in live:
                violations.append(
                    Violation(
                        check="kv-double-alloc",
                        task=ev.name,
                        time=ev.time,
                        message=f"reservation {ev.name!r} allocated twice "
                        "without an intervening free",
                    )
                )
                continue
            live[ev.name] = ev.nbytes
            used += ev.nbytes
            true_peak = max(true_peak, used)
            over = used - budget
            if over > _tol(budget, rel_tol):
                violations.append(
                    Violation(
                        check="kv-over-budget",
                        task=ev.name,
                        time=ev.time,
                        message=(
                            f"pool holds {used:.6g} bytes after allocating "
                            f"{ev.name!r}, {over:.6g} over the "
                            f"{budget:.6g}-byte budget"
                        ),
                    )
                )
        elif ev.op == "free":
            if ev.name not in live:
                violations.append(
                    Violation(
                        check="kv-double-free",
                        task=ev.name,
                        time=ev.time,
                        message=f"free of {ev.name!r} which holds no live "
                        "reservation (double free or free-before-alloc)",
                    )
                )
                continue
            held = live.pop(ev.name)
            if abs(held - ev.nbytes) > _tol(held, rel_tol):
                violations.append(
                    Violation(
                        check="kv-size-mismatch",
                        task=ev.name,
                        time=ev.time,
                        message=(
                            f"free of {ev.nbytes:.6g} bytes but {ev.name!r} "
                            f"reserved {held:.6g}"
                        ),
                    )
                )
            used -= held
        else:
            violations.append(
                Violation(
                    check="kv-bad-op",
                    task=ev.name,
                    time=ev.time,
                    message=f"unknown ledger op {ev.op!r}",
                )
            )
    for name in sorted(live):
        violations.append(
            Violation(
                check="kv-leak",
                task=name,
                time=prev_time if events else None,
                message=f"reservation {name!r} ({live[name]:.6g} bytes) never freed",
            )
        )
    if peak is not None and abs(true_peak - peak) > _tol(true_peak, rel_tol):
        violations.append(
            Violation(
                check="kv-peak-mismatch",
                task=None,
                time=None,
                message=(
                    f"report peak_kv_bytes {peak:.6g} but the ledger peaks "
                    f"at {true_peak:.6g}"
                ),
            )
        )
    return violations


# ---- whole serving runs ---------------------------------------------------------


def validate_server_run(
    report: "ContinuousReport",
    ledger: Sequence[KVEvent] | None = None,
    budget: float | None = None,
    faults: "FaultSchedule | None" = None,
    tracer: "Tracer | None" = None,
    rel_tol: float = 1e-6,
) -> list[Violation]:
    """Check a continuous-serving run against the server's invariants.

    * ``busy_intervals`` must be non-degenerate and non-overlapping (the
      server books one iteration window at a time);
    * no busy interval may run inside a device-stall fault window (fault-
      epoch consistency: a stalled device cannot execute);
    * the KV ledger (when given) must conserve memory under ``budget``
      and reconcile with ``report.peak_kv_bytes``;
    * an attached tracer's device busy-union must match the report's
      merged busy intervals within ``rel_tol`` (relative), and its
      ``iterations`` counter must equal ``report.n_iterations``.
    """
    violations: list[Violation] = []

    intervals = sorted(report.busy_intervals)
    for start, end in intervals:
        if not (math.isfinite(start) and math.isfinite(end)) or end < start:
            violations.append(
                Violation(
                    check="bad-busy-interval",
                    task=None,
                    time=start,
                    message=f"busy interval ({start!r}, {end!r}) is degenerate",
                )
            )
    for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
        overlap = e0 - s1
        if overlap > _tol(e0, rel_tol):
            violations.append(
                Violation(
                    check="iteration-overlap",
                    task=None,
                    time=s1,
                    message=(
                        f"iteration window starting {s1:.6g}s overlaps the "
                        f"previous window ending {e0:.6g}s by {overlap:.3g}s"
                    ),
                )
            )

    if faults is not None:
        from repro.hardware.faults import FaultKind

        stalls = [e for e in faults.events if e.kind == FaultKind.DEVICE_STALL]
        for start, end in intervals:
            for stall in stalls:
                lo = max(start, stall.start)
                hi = min(end, stall.end)
                if hi - lo > _tol(hi, rel_tol):
                    violations.append(
                        Violation(
                            check="stall-overlap",
                            task=None,
                            time=lo,
                            message=(
                                f"busy interval ({start:.6g}, {end:.6g}) runs "
                                f"{hi - lo:.3g}s inside the device stall "
                                f"({stall.start:.6g}, {stall.end:.6g})"
                            ),
                        )
                    )

    if ledger is not None:
        if budget is None:
            raise ValueError("validating a KV ledger requires the pool budget")
        violations.extend(
            validate_kv_ledger(
                ledger, budget, peak=report.peak_kv_bytes, rel_tol=rel_tol
            )
        )

    if tracer is not None and tracer.enabled:
        # Imported lazily: repro.serving.__init__ pulls in the server,
        # which imports this module — a top-level import would cycle.
        from repro.serving.metrics import merge_busy_intervals

        report_busy = merge_busy_intervals(report.busy_intervals)
        trace_busy = tracer.busy_union()
        drift = abs(trace_busy - report_busy)
        if drift > _tol(report_busy, rel_tol):
            violations.append(
                Violation(
                    check="trace-drift",
                    task=None,
                    time=None,
                    message=(
                        f"tracer busy union {trace_busy:.6g}s vs report busy "
                        f"{report_busy:.6g}s (drift {drift:.3g}s beyond "
                        f"tolerance)"
                    ),
                )
            )
        counted = tracer.metrics.counter("iterations").value
        if counted != report.n_iterations:
            violations.append(
                Violation(
                    check="iteration-count-mismatch",
                    task=None,
                    time=None,
                    message=(
                        f"tracer counted {counted} iterations but the report "
                        f"says {report.n_iterations}"
                    ),
                )
            )

    violations.sort(key=lambda v: (v.time if v.time is not None else -1.0, v.check))
    return violations


# ---- fleet runs -----------------------------------------------------------------


def validate_fleet_run(
    result, rel_tol: float = 1e-6, tracer=None
) -> list[Violation]:
    """Check a fleet run (:class:`~repro.serving.fleet.report.FleetResult`)
    against the router's invariants.

    * every replica's own run passes :func:`validate_server_run` (its
      ledger, budget, and machine-view faults — whose stall windows cover
      the replica's crashes);
    * **no request is served by a crashed replica**: no replica busy
      interval overlaps one of its ground-truth crash windows;
    * **KV is conserved across migration**: merging every replica's
      ledger events for one request id, at most one replica holds the
      request's KV at any instant (loss-then-realloc, never two at once)
      — hedged requests are exempt, duplicate residency is their point;
    * **router/replica accounting reconciles**: the four fleet
      disposition lists partition the submitted request ids exactly, and
      every completed request's stitched timeline carries exactly
      ``output_len`` tokens;
    * the realized KV-transfer schedule (when present) passes
      :func:`validate_schedule`;
    * with a :class:`~repro.telemetry.fleet.FleetTracer` passed as
      ``tracer``, the **merged fleet trace reconciles with the result**:
      each replica's trace passes the per-server trace-drift checks, the
      union of all replica device spans matches the merged report's busy
      union, the router's per-token events replay every completed
      request's TTFT/TBT timeline, and fleet disposition event counts
      equal the report's disposition list lengths — all to ``rel_tol``.
    """
    violations: list[Violation] = []
    replica_tracers = (
        {name: tracer.replica(name) for name in tracer.replica_names}
        if tracer is not None
        else {}
    )

    for rep in result.replicas:
        for v in validate_server_run(
            rep.report,
            ledger=rep.ledger,
            budget=rep.kv_budget_bytes,
            faults=rep.machine_faults,
            tracer=replica_tracers.get(rep.name),
            rel_tol=rel_tol,
        ):
            violations.append(
                Violation(
                    check=v.check,
                    task=v.task if v.task is not None else f"replica:{rep.name}",
                    time=v.time,
                    message=f"[replica {rep.name}] {v.message}",
                )
            )
        for start, end in rep.report.busy_intervals:
            for c0, c1 in rep.crash_windows:
                lo, hi = max(start, c0), min(end, c1)
                if hi - lo > _tol(hi, rel_tol):
                    violations.append(
                        Violation(
                            check="crashed-replica-served",
                            task=f"replica:{rep.name}",
                            time=lo,
                            message=(
                                f"replica {rep.name} executed "
                                f"({start:.6g}, {end:.6g}) overlapping its "
                                f"crash window ({c0:.6g}, {c1:.6g})"
                            ),
                        )
                    )

    # KV conservation across migration: merge per-request events from every
    # replica ledger; residency depth must never exceed one holder.
    by_request: dict[str, list[tuple[float, int, str, str]]] = {}
    for rep in result.replicas:
        for seq, ev in enumerate(rep.ledger):
            by_request.setdefault(ev.name, []).append(
                (ev.time, 0 if ev.op == "free" else 1, ev.op, rep.name)
            )
    hedged_names = {f"req-{rid}" for rid in result.hedged_ids}
    for name, events in sorted(by_request.items()):
        if name in hedged_names:
            continue
        depth = 0
        # At equal timestamps the old replica's free precedes the new
        # replica's alloc — a same-instant migration is legal.
        for time, _, op, rep_name in sorted(events, key=lambda e: (e[0], e[1])):
            depth += 1 if op == "alloc" else -1
            if depth > 1:
                violations.append(
                    Violation(
                        check="kv-migration-overlap",
                        task=name,
                        time=time,
                        message=(
                            f"{name} held KV on two replicas at once "
                            f"(second alloc on {rep_name} at {time:.6g}s)"
                        ),
                    )
                )
                break

    # Router/replica accounting: dispositions partition the stream.
    report = result.report
    seen: dict[int, str] = {}
    for label, ids in (
        ("completed", [m.request.request_id for m in report.completed]),
        ("timed_out", [r.request_id for r in report.timed_out]),
        ("shed", [r.request_id for r in report.shed]),
        ("failed", [r.request_id for r in report.failed]),
    ):
        for rid in ids:
            if rid in seen:
                violations.append(
                    Violation(
                        check="fleet-accounting",
                        task=f"req-{rid}",
                        time=None,
                        message=(
                            f"request {rid} has two dispositions: "
                            f"{seen[rid]} and {label}"
                        ),
                    )
                )
            seen[rid] = label

    for metrics in report.completed:
        want = metrics.request.output_len
        got = len(metrics.token_times)
        if got != want:
            violations.append(
                Violation(
                    check="token-count-mismatch",
                    task=f"req-{metrics.request.request_id}",
                    time=metrics.token_times[-1],
                    message=(
                        f"request {metrics.request.request_id} delivered "
                        f"{got} tokens but owes {want}"
                    ),
                )
            )

    if result.transfers is not None:
        for v in validate_schedule(result.transfers, rel_tol=max(rel_tol, 1e-9)):
            violations.append(
                Violation(
                    check=v.check,
                    task=v.task,
                    time=v.time,
                    message=f"[transfers] {v.message}",
                )
            )

    if tracer is not None:
        violations.extend(_reconcile_fleet_trace(result, tracer, rel_tol))

    violations.sort(key=lambda v: (v.time if v.time is not None else -1.0, v.check))
    return violations


def _reconcile_fleet_trace(result, tracer, rel_tol: float) -> list[Violation]:  # repro-lint: disable=tracer-default -- only reached when a tracer was explicitly passed
    """Fleet-trace vs :class:`FleetResult` reconciliation (see above)."""
    from repro.serving.metrics import merge_busy_intervals

    violations: list[Violation] = []
    report = result.report

    trace_busy = tracer.merged_busy_union()
    report_busy = merge_busy_intervals(report.busy_intervals)
    if abs(trace_busy - report_busy) > _tol(report_busy, rel_tol):
        violations.append(
            Violation(
                check="fleet-trace-drift",
                message=(
                    f"merged replica trace busy union {trace_busy:.9g}s != "
                    f"fleet report busy union {report_busy:.9g}s"
                ),
            )
        )

    # Per-request token timelines: the router's per-token events must
    # replay each completed request's metrics (same count, same floats,
    # hence same TTFT and every TBT gap).
    tokens: dict[int, list[float]] = {}
    disposition_counts = {
        "fleet-finish": 0,
        "fleet-timeout": 0,
        "fleet-shed": 0,
        "fleet-fail": 0,
    }
    for ev in tracer.router.request_events:
        if ev.kind == "token":
            tokens.setdefault(ev.request_id, []).append(ev.time)
        elif ev.kind in disposition_counts:
            disposition_counts[ev.kind] += 1
    for metrics in report.completed:
        rid = metrics.request.request_id
        traced = tokens.get(rid, [])
        if len(traced) != len(metrics.token_times):
            violations.append(
                Violation(
                    check="fleet-trace-tokens",
                    task=f"req-{rid}",
                    time=metrics.token_times[-1],
                    message=(
                        f"request {rid}: trace recorded {len(traced)} token "
                        f"events but the report carries "
                        f"{len(metrics.token_times)}"
                    ),
                )
            )
            continue
        for traced_t, report_t in zip(traced, metrics.token_times):
            if abs(traced_t - report_t) > _tol(report_t, rel_tol):
                violations.append(
                    Violation(
                        check="fleet-trace-tokens",
                        task=f"req-{rid}",
                        time=report_t,
                        message=(
                            f"request {rid}: traced token at "
                            f"{traced_t:.9g}s vs reported {report_t:.9g}s"
                        ),
                    )
                )
                break

    for kind, have in (
        ("fleet-finish", len(report.completed)),
        ("fleet-timeout", len(report.timed_out)),
        ("fleet-shed", len(report.shed)),
        ("fleet-fail", len(report.failed)),
    ):
        if disposition_counts[kind] != have:
            violations.append(
                Violation(
                    check="fleet-trace-dispositions",
                    message=(
                        f"trace has {disposition_counts[kind]} {kind} events "
                        f"but the report lists {have} such requests"
                    ),
                )
            )
    return violations


# ---- energy ledgers --------------------------------------------------------------


def _sweep_metered_joules(entries, idle_watts_total: float, t0: float, horizon: float) -> float:
    """Independently integrate the piecewise-constant power curve.

    Deliberately NOT :class:`repro.telemetry.power.PowerMeter`: the
    validator re-derives the meter integral with its own sweep so a bug
    (or a doctored figure) in either accounting path can't hide.
    """
    events: list[tuple[float, float]] = []
    for entry in entries:
        if entry.end <= entry.start or entry.watts == 0.0:
            continue
        events.append((max(entry.start, t0), entry.watts))
        events.append((min(entry.end, horizon), -entry.watts))
    events.sort(key=lambda ev: ev[0])
    total = idle_watts_total * max(0.0, horizon - t0)
    level = 0.0
    prev = t0
    for t, delta in events:
        total += level * max(0.0, t - prev)
        level += delta
        prev = max(prev, t)
    total += level * max(0.0, horizon - prev)
    return total


def validate_energy_report(report, rel_tol: float = 1e-6) -> list[Violation]:
    """Check one :class:`repro.telemetry.power.EnergyReport` ledger.

    The contract, checked to ``rel_tol`` (1e-6 by default):

    * every ledger entry is finite, non-negative-duration, non-negative
      wattage, and its joules are exactly watts x duration
      (``energy-task-product``);
    * every entry lies inside the metered window (``energy-horizon``);
    * ``dynamic_joules`` is the ledger sum (``energy-ledger-sum``) and
      ``static_joules`` is the idle floor over the horizon
      (``energy-static``);
    * an independent sweep integration of the instantaneous power curve
      reproduces both the report's claimed meter reading
      (``energy-meter-drift``) and the ledger total
      (``energy-ledger-drift``) — including fault-epoch DVFS windows,
      whose scaled watts feed both paths identically.
    """
    violations: list[Violation] = []
    for entry in report.tasks:
        values = (entry.start, entry.end, entry.watts, entry.joules)
        if not all(math.isfinite(v) for v in values):
            violations.append(
                Violation(
                    check="energy-task-nonfinite",
                    message=f"non-finite ledger entry {values}",
                    task=entry.name,
                    time=entry.start,
                )
            )
            continue
        if entry.end < entry.start:
            violations.append(
                Violation(
                    check="energy-task-negative",
                    message=f"negative duration {entry.end - entry.start:.6g}s",
                    task=entry.name,
                    time=entry.start,
                )
            )
        if entry.watts < 0:
            violations.append(
                Violation(
                    check="energy-task-negative",
                    message=f"negative dynamic draw {entry.watts:.6g} W",
                    task=entry.name,
                    time=entry.start,
                )
            )
        expected = entry.watts * (entry.end - entry.start)
        if abs(entry.joules - expected) > _tol(expected, rel_tol):
            violations.append(
                Violation(
                    check="energy-task-product",
                    message=(
                        f"ledger claims {entry.joules:.9g} J but "
                        f"{entry.watts:.6g} W x "
                        f"{entry.end - entry.start:.6g} s = {expected:.9g} J"
                    ),
                    task=entry.name,
                    time=entry.start,
                )
            )
        if entry.start < report.t0 - _tol(report.t0, rel_tol) or entry.end > (
            report.horizon + _tol(report.horizon, rel_tol)
        ):
            violations.append(
                Violation(
                    check="energy-horizon",
                    message=(
                        f"entry [{entry.start:.6g}, {entry.end:.6g}] s lies "
                        f"outside the metered window "
                        f"[{report.t0:.6g}, {report.horizon:.6g}] s"
                    ),
                    task=entry.name,
                    time=entry.start,
                )
            )

    ledger_sum = sum(e.joules for e in report.tasks)
    if abs(report.dynamic_joules - ledger_sum) > _tol(ledger_sum, rel_tol):
        violations.append(
            Violation(
                check="energy-ledger-sum",
                message=(
                    f"report claims {report.dynamic_joules:.9g} J dynamic but "
                    f"the per-task ledger sums to {ledger_sum:.9g} J"
                ),
            )
        )
    idle_total = sum(report.idle.values())
    expected_static = idle_total * max(0.0, report.horizon - report.t0)
    if abs(report.static_joules - expected_static) > _tol(expected_static, rel_tol):
        violations.append(
            Violation(
                check="energy-static",
                message=(
                    f"report claims {report.static_joules:.9g} J static but "
                    f"{idle_total:.6g} W idle over "
                    f"{report.horizon - report.t0:.6g} s = "
                    f"{expected_static:.9g} J"
                ),
            )
        )
    metered = _sweep_metered_joules(
        report.tasks, idle_total, report.t0, report.horizon
    )
    if abs(report.metered_joules - metered) > _tol(metered, rel_tol):
        violations.append(
            Violation(
                check="energy-meter-drift",
                message=(
                    f"report's meter reads {report.metered_joules:.9g} J but "
                    f"an independent sweep integrates {metered:.9g} J"
                ),
            )
        )
    total = ledger_sum + expected_static
    if abs(metered - total) > _tol(total, rel_tol):
        violations.append(
            Violation(
                check="energy-ledger-drift",
                message=(
                    f"integrated power meter reads {metered:.9g} J but the "
                    f"per-task ledger + idle floor sums to {total:.9g} J "
                    f"(drift {metered - total:.3g} J)"
                ),
            )
        )
    return violations


def validate_fleet_energy(fleet_report, rel_tol: float = 1e-6) -> list[Violation]:
    """Check a :class:`repro.telemetry.power.FleetEnergyReport`.

    Runs :func:`validate_energy_report` on every replica and the
    interconnect (messages prefixed with the part's label), then checks
    that the fleet totals are exactly the sums of their parts
    (``fleet-energy-sum``).
    """
    violations: list[Violation] = []
    parts = list(fleet_report.replicas)
    if fleet_report.interconnect is not None:
        parts.append(fleet_report.interconnect)
    for part in parts:
        for violation in validate_energy_report(part, rel_tol=rel_tol):
            violations.append(
                Violation(
                    check=violation.check,
                    message=f"[{part.label}] {violation.message}",
                    task=violation.task,
                    time=violation.time,
                )
            )
    for field_name in ("dynamic_joules", "static_joules", "metered_joules"):
        claimed = getattr(fleet_report, field_name)
        summed = sum(getattr(part, field_name) for part in parts)
        if abs(claimed - summed) > _tol(summed, rel_tol):
            violations.append(
                Violation(
                    check="fleet-energy-sum",
                    message=(
                        f"fleet {field_name} {claimed:.9g} J != sum over "
                        f"replicas+interconnect {summed:.9g} J"
                    ),
                )
            )
    return violations
