"""Fleet-wide distributed tracing: per-replica tracers merged on one clock.

PR-3 tracing observes one :class:`~repro.serving.continuous
.ContinuousServer`; a fleet run spreads one request across a router and
N replicas, so a single flat tracer cannot say *which replica* ran a
span or *which dispatch attempt* an event belongs to.  This module adds
the two missing pieces:

* :class:`TraceContext` — the propagation token.  The router mints one
  per request and advances its **hop counter** at every dispatch
  (initial, re-dispatch after failover, hedge twin, post-transfer decode
  segment); sessions stamp the hop onto every request event they record,
  so a request that visits the same replica twice stays unambiguous.
* :class:`FleetTracer` — one :class:`~repro.telemetry.tracer.Tracer` per
  replica plus a router tracer, all on the single fleet clock, plus the
  hop log, a :class:`~repro.telemetry.timeseries.TimeSeriesBank` sampled
  on fleet ticks, and an optional
  :class:`~repro.telemetry.slo.SLOMonitor`.  Exported as one Chrome
  trace with a process lane per replica
  (:func:`~repro.telemetry.exporters.to_chrome_trace_fleet`).

:func:`explain_request` is the forensics entry point: it merges one
request's events from every lane — dispatches, queueing, retries, KV
migration, per-token progress, burn-rate alerts — into a single causal
timeline with a disposition summary (rendered by
:func:`format_explanation`, served by ``repro explain-request``).

Everything is opt-in: a fleet run with ``tracer=None`` records nothing
and stays bit-identical to the untraced schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.telemetry.slo import SLOMonitor
from repro.telemetry.timeseries import TimeSeriesBank
from repro.telemetry.tracer import RequestEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.faults import FaultSchedule

__all__ = [
    "TraceContext",
    "TraceHop",
    "FleetTracer",
    "record_fleet_fault_schedule",
    "explain_request",
    "format_explanation",
]


@dataclass(frozen=True)
class TraceContext:
    """The per-request propagation token threaded through the fleet.

    ``hop`` counts dispatch attempts (0 = minted at the router, before
    any dispatch); ``parent`` is the hop this one descends from — a
    failover re-dispatch descends from the failed segment, a hedge twin
    from the same parent as its sibling.
    """

    request_id: int
    hop: int = 0
    parent: int | None = None

    def child(self) -> "TraceContext":
        """The context of the next dispatch attempt."""
        return TraceContext(self.request_id, self.hop + 1, parent=self.hop)


@dataclass(frozen=True)
class TraceHop:
    """One dispatch attempt: which replica, why, and when."""

    request_id: int
    hop: int
    parent: int | None
    target: str
    kind: str  # dispatch | redispatch | hedge | decode
    time: float


class FleetTracer:
    """A router tracer plus one tracer per replica, on one fleet clock.

    Attach to :class:`~repro.serving.fleet.router.FleetRouter` in place
    of a plain :class:`Tracer` to get the deep fleet trace: the router
    records its events (dispatches, failovers, hedges, per-token
    delivery, KV transfers, alerts) on :attr:`router`; each replica's
    session records on its own :meth:`replica` tracer; the hop log ties
    them together.  ``sample_interval_s`` sets the tick grid the router
    samples :attr:`timeseries` (and evaluates :attr:`monitor`) on.
    """

    enabled: bool = True

    def __init__(
        self,
        monitor: SLOMonitor | None = None,
        slo=None,
        sample_interval_s: float = 0.25,
        ring_capacity: int = 4096,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.router = Tracer()
        self.monitor = monitor
        # The latency targets (a repro.serving.metrics.SLO) completed
        # requests are judged against when feeding `monitor`; without it
        # only non-completed dispositions burn budget.
        self.slo = slo
        self.sample_interval_s = sample_interval_s
        self.timeseries = TimeSeriesBank(capacity=ring_capacity)
        self.hops: list[TraceHop] = []
        self._replicas: dict[str, Tracer] = {}

    # ---- recording -------------------------------------------------------------

    def replica(self, name: str) -> Tracer:
        """Get-or-create the tracer observing replica ``name``."""
        tracer = self._replicas.get(name)
        if tracer is None:
            tracer = self._replicas[name] = Tracer()
        return tracer

    def begin_hop(
        self, ctx: TraceContext, target: str, kind: str, time: float
    ) -> TraceContext:
        """Log one dispatch attempt; returns ``ctx`` for chaining."""
        self.hops.append(
            TraceHop(
                request_id=ctx.request_id,
                hop=ctx.hop,
                parent=ctx.parent,
                target=target,
                kind=kind,
                time=time,
            )
        )
        return ctx

    # ---- queries ---------------------------------------------------------------

    @property
    def replica_names(self) -> tuple[str, ...]:
        """Replica lanes observed so far, in attach order."""
        return tuple(self._replicas)

    @property
    def alerts(self):
        """Alerts the attached monitor fired (empty without a monitor)."""
        return self.monitor.alerts if self.monitor is not None else []

    def __len__(self) -> int:
        """Total recorded events across the router and every replica."""
        return (
            len(self.router)
            + sum(len(t) for t in self._replicas.values())
            + len(self.hops)
        )

    def hops_of(self, request_id: int) -> list[TraceHop]:
        """The dispatch attempts of one request, in hop order."""
        return sorted(
            (h for h in self.hops if h.request_id == request_id),
            key=lambda h: h.hop,
        )

    def request_events(self, request_id: int) -> list[tuple[str, RequestEvent]]:
        """One request's events from every lane, merged in time order.

        Returns ``(source, event)`` pairs where ``source`` is
        ``"router"`` or a replica name.  Ties break router-first, then
        by recording order (stable for same-instant replica events).
        """
        merged: list[tuple[float, int, int, str, RequestEvent]] = []
        for rank, (source, tracer) in enumerate(
            [("router", self.router)] + list(self._replicas.items())
        ):
            for seq, ev in enumerate(tracer.request_events):
                if ev.request_id == request_id:
                    merged.append((ev.time, rank, seq, source, ev))
        merged.sort(key=lambda item: item[:3])
        return [(source, ev) for _, _, _, source, ev in merged]

    def merged_busy_union(self) -> float:
        """Seconds any replica device lane was busy, fleet-wide."""
        from repro.serving.metrics import merge_busy_intervals

        return merge_busy_intervals(
            (s.start, s.end)
            for tracer in self._replicas.values()
            for s in tracer.task_spans
        )


def record_fleet_fault_schedule(
    tracer: Tracer, faults: "FaultSchedule", replica: str = ""
) -> None:
    """Annotate a tracer with a schedule's *fleet-level* fault windows.

    The complement of :func:`~repro.telemetry.tracer
    .record_fault_schedule`: sessions record the machine-view faults
    (stalls, throttles) on their own ``faults`` lane, but the fleet
    kinds — ``replica-crash`` / ``replica-recover`` / ``link-degrade`` —
    are dropped by ``machine_view()`` translation and would vanish from
    the trace.  This records them as regions (plus a start instant each)
    on a ``fleet-faults`` lane, suffixed with the replica name when
    given, so crash and interconnect windows line up with the router's
    failover decisions in the merged timeline.
    """
    from repro.hardware.faults import FaultKind

    lane = f"fleet-faults:{replica}" if replica else "fleet-faults"
    for event in faults.events:
        if event.kind not in FaultKind.FLEET:
            continue
        tracer.add_region(
            lane,
            event.kind,
            event.start,
            event.end,
            args={"magnitude": event.magnitude},
        )
        tracer.add_instant(lane, f"{event.kind}-start", event.start)


# ---- request forensics ----------------------------------------------------------

# Event kinds that represent one delivered token (collapsed into runs by
# the text renderer; kept verbatim in the JSON timeline).
_TOKEN_KINDS = ("token", "first_token")


def _disposition_of(result, request_id: int) -> tuple[str, object | None]:
    report = result.report
    for metrics in report.completed:
        if metrics.request.request_id == request_id:
            return "completed", metrics
    for label, requests in (
        ("timed_out", report.timed_out),
        ("shed", report.shed),
        ("failed", report.failed),
    ):
        for request in requests:
            if request.request_id == request_id:
                return label, None
    return "unknown", None


def explain_request(
    tracer: FleetTracer, result, request_id: int, energy=None
) -> dict:
    """Reconstruct one request's causal timeline across the fleet.

    Merges the router's and every replica's events for ``request_id``
    with the hop log, the KV-transfer spans that moved its context, and
    any burn-rate alerts fired while it was in flight, into one
    time-ordered entry list plus a disposition summary.  ``result`` is
    the run's :class:`~repro.serving.fleet.report.FleetResult` (the
    ground truth the summary quotes).

    ``energy`` optionally takes the run's
    :class:`~repro.telemetry.power.FleetEnergyReport`; each timeline
    entry then carries ``fleet_joules`` — cumulative fleet energy at
    that instant from the merged power meter — and the summary gains an
    ``energy`` block (fleet joules burned while the request was in
    flight).  Omitted by default so existing transcripts are unchanged.
    """
    entries: list[dict] = []
    for hop in tracer.hops_of(request_id):
        entries.append(
            {
                "time": hop.time,
                "source": "router",
                "kind": f"hop-{hop.kind}",
                "hop": hop.hop,
                "detail": f"-> {hop.target}"
                + (f" (parent hop {hop.parent})" if hop.parent else ""),
            }
        )
    for source, ev in tracer.request_events(request_id):
        entries.append(
            {
                "time": ev.time,
                "source": source,
                "kind": ev.kind,
                "hop": ev.hop,
                "detail": "",
            }
        )
    prefix = f"kv/{request_id}/"
    for span in tracer.router.task_spans:
        if span.tag == "kv-transfer" and span.name.startswith(prefix):
            entries.append(
                {
                    "time": span.start,
                    "source": "router",
                    "kind": "kv-transfer",
                    "hop": None,
                    "detail": f"{span.name} streamed for {span.duration * 1e3:.2f} ms",
                }
            )
    # Hops sort ahead of same-instant events (the dispatch *causes* them);
    # everything else keeps recording order within an instant.
    order = {"hop-dispatch": 0, "hop-redispatch": 0, "hop-hedge": 0, "hop-decode": 0}
    entries.sort(
        key=lambda e: (e["time"], order.get(e["kind"], 1))
    )

    hops = tracer.hops_of(request_id)
    disposition, metrics = _disposition_of(result, request_id)
    summary: dict = {
        "request_id": request_id,
        "disposition": disposition,
        "n_hops": len(hops),
        "replicas": [h.target for h in hops],
        "replay_path": [f"{h.kind}->{h.target}" for h in hops],
        "hedged": request_id in result.hedged_ids,
        "n_events": len(entries),
    }
    if metrics is not None:
        summary["ttft_s"] = metrics.ttft
        summary["latency_s"] = metrics.latency
        summary["n_tokens"] = len(metrics.token_times)
    alerts = [
        a.to_dict()
        for a in tracer.alerts
        if any(
            e["time"] <= a.time <= entries[-1]["time"] for e in entries[:1]
        )
    ] if entries else []
    if energy is not None and entries:
        meter = energy.meter()
        for entry in entries:
            entry["fleet_joules"] = meter.cumulative_joules(entry["time"])
        t_first, t_last = entries[0]["time"], entries[-1]["time"]
        summary["energy"] = {
            "fleet_joules_in_flight": meter.energy_between(t_first, t_last),
            "fleet_avg_watts_in_flight": (
                meter.energy_between(t_first, t_last) / (t_last - t_first)
                if t_last > t_first
                else meter.power_at(t_first)
            ),
            "fleet_total_joules": energy.total_joules,
            "grams_co2": energy.grams_co2(),
        }
    return {"summary": summary, "timeline": entries, "alerts_during": alerts}


def format_explanation(explanation: dict) -> str:
    """Render :func:`explain_request` output as a human-readable log.

    Consecutive per-token events from one source collapse into a single
    ``tokens xN`` line so a 200-token decode does not drown the
    dispatch/failover structure the reader came for.
    """
    summary = explanation["summary"]
    lines = [
        f"request {summary['request_id']}: {summary['disposition']} after "
        f"{summary['n_hops']} hop(s) via {' -> '.join(summary['replicas']) or '-'}"
    ]
    if "ttft_s" in summary:
        lines.append(
            f"  ttft {summary['ttft_s']:.3f}s, latency {summary['latency_s']:.3f}s, "
            f"{summary['n_tokens']} tokens"
        )
    if "energy" in summary:
        energy = summary["energy"]
        lines.append(
            f"  fleet energy in flight {energy['fleet_joules_in_flight']:.1f} J "
            f"({energy['fleet_avg_watts_in_flight']:.0f} W avg); "
            f"run total {energy['fleet_total_joules']:.0f} J, "
            f"{energy['grams_co2']:.2f} gCO2"
        )

    def joules_col(entry: dict) -> str:
        if "fleet_joules" not in entry:
            return ""
        return f"  [{entry['fleet_joules']:8.1f} J]"

    run: list[dict] = []

    def flush() -> None:
        if not run:
            return
        first, last = run[0], run[-1]
        hop = f" hop={first['hop']}" if first["hop"] is not None else ""
        if len(run) == 1:
            lines.append(
                f"  {first['time']:9.4f}s  {first['source']:<16} token{hop}"
                f"{joules_col(first)}"
            )
        else:
            lines.append(
                f"  {first['time']:9.4f}s  {first['source']:<16} "
                f"tokens x{len(run)}{hop} (through {last['time']:.4f}s)"
                f"{joules_col(last)}"
            )
        run.clear()

    for entry in explanation["timeline"]:
        if entry["kind"] in _TOKEN_KINDS:
            if run and run[-1]["source"] != entry["source"]:
                flush()
            run.append(entry)
            continue
        flush()
        hop = f" hop={entry['hop']}" if entry["hop"] is not None else ""
        detail = f" {entry['detail']}" if entry["detail"] else ""
        lines.append(
            f"  {entry['time']:9.4f}s  {entry['source']:<16} "
            f"{entry['kind']}{hop}{detail}{joules_col(entry)}"
        )
    flush()
    for alert in explanation.get("alerts_during", ()):
        lines.append(
            f"  ! alert {alert['objective']} at {alert['time']:.3f}s "
            f"(burn {alert['burn_rate_long']:.1f}x)"
        )
    return "\n".join(lines)
