"""Numpy MLP activation predictors (paper Section 5.1, after DejaVu).

An activation predictor takes a layer's (normalized) input vector and
predicts which MLP neurons the ReLU gate will open.  Architecture follows
the paper: input layer (d_model) -> one hidden layer (adjustable — this is
the dimension the adaptive method tunes) -> output layer (d_ffn) with
sigmoid activations, trained with binary cross-entropy.

Implemented from scratch on numpy (no autograd): forward, manual backward,
SGD with momentum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PredictorMetrics", "MlpPredictor"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class PredictorMetrics:
    """Quality of activation prediction on an evaluation set.

    Attributes:
        accuracy: Fraction of (token, neuron) activation flags predicted
            correctly — the paper's headline >=95% metric.
        recall: Fraction of truly active neurons that were predicted active
            (misses here are what degrade LLM accuracy, Section 8.4).
        precision: Fraction of predicted-active neurons that were active
            (misses here waste compute but preserve accuracy).
    """

    accuracy: float
    recall: float
    precision: float


class MlpPredictor:
    """One layer's activation predictor: d_in -> hidden -> n_neurons."""

    def __init__(
        self,
        d_in: int,
        hidden: int,
        n_neurons: int,
        rng: np.random.Generator,
        threshold: float = 0.5,
    ) -> None:
        if d_in <= 0 or hidden <= 0 or n_neurons <= 0:
            raise ValueError("dimensions must be positive")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.d_in = d_in
        self.hidden = hidden
        self.n_neurons = n_neurons
        self.threshold = threshold
        self.w1 = (rng.standard_normal((hidden, d_in)) / np.sqrt(d_in)).astype(np.float32)
        self.b1 = np.zeros(hidden, dtype=np.float32)
        self.w2 = (rng.standard_normal((n_neurons, hidden)) / np.sqrt(hidden)).astype(np.float32)
        self.b2 = np.zeros(n_neurons, dtype=np.float32)
        self._vel = [np.zeros_like(p) for p in (self.w1, self.b1, self.w2, self.b2)]

    # ---- size accounting --------------------------------------------------

    @property
    def param_count(self) -> int:
        return self.w1.size + self.b1.size + self.w2.size + self.b2.size

    def nbytes(self, bytes_per_param: float = 2.0) -> float:
        """Storage footprint (predictors are kept in FP16 on the GPU)."""
        return self.param_count * bytes_per_param

    # ---- inference ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Activation probabilities, shape ``(..., n_neurons)``."""
        h = np.maximum(x @ self.w1.T + self.b1, 0.0)
        return _sigmoid(h @ self.w2.T + self.b2)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Boolean predicted-active mask, shape ``(..., n_neurons)``."""
        return self.forward(x) >= self.threshold

    # ---- training -----------------------------------------------------------

    def train_batch(
        self, x: np.ndarray, targets: np.ndarray, lr: float, momentum: float = 0.9
    ) -> float:
        """One SGD step on a batch; returns the batch BCE loss.

        Args:
            x: Inputs ``(b, d_in)``.
            targets: Boolean activation masks ``(b, n_neurons)``.
            lr: Learning rate.
            momentum: Classical momentum coefficient.
        """
        x = np.atleast_2d(x).astype(np.float32)
        y = np.atleast_2d(targets).astype(np.float32)
        b = x.shape[0]

        pre1 = x @ self.w1.T + self.b1
        h = np.maximum(pre1, 0.0)
        logits = h @ self.w2.T + self.b2
        probs = _sigmoid(logits)

        eps = 1e-7
        loss = float(
            -np.mean(y * np.log(probs + eps) + (1 - y) * np.log(1 - probs + eps))
        )

        # Backward: dL/dlogits for sigmoid+BCE is (probs - y) / (b * n).
        dlogits = (probs - y) / (b * self.n_neurons)
        dw2 = dlogits.T @ h
        db2 = dlogits.sum(axis=0)
        dh = dlogits @ self.w2
        dpre1 = dh * (pre1 > 0)
        dw1 = dpre1.T @ x
        db1 = dpre1.sum(axis=0)

        params = (self.w1, self.b1, self.w2, self.b2)
        grads = (dw1, db1, dw2, db2)
        for p, g, v in zip(params, grads, self._vel):
            v *= momentum
            v -= lr * g
            p += v
        return loss

    def fit(
        self,
        x: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
        epochs: int = 20,
        batch_size: int = 64,
        lr: float = 0.5,
    ) -> list[float]:
        """Mini-batch training; returns per-epoch mean losses."""
        n = x.shape[0]
        if targets.shape[0] != n:
            raise ValueError("x and targets must have matching first dim")
        losses = []
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_loss += self.train_batch(x[idx], targets[idx], lr=lr)
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses

    # ---- evaluation ----------------------------------------------------------

    def evaluate(self, x: np.ndarray, targets: np.ndarray) -> PredictorMetrics:
        """Accuracy / recall / precision of predicted activation flags."""
        pred = self.predict(x)
        truth = np.atleast_2d(targets).astype(bool)
        pred = np.atleast_2d(pred)
        correct = pred == truth
        tp = float(np.logical_and(pred, truth).sum())
        actives = float(truth.sum())
        predicted = float(pred.sum())
        return PredictorMetrics(
            accuracy=float(correct.mean()),
            recall=tp / actives if actives else 1.0,
            precision=tp / predicted if predicted else 1.0,
        )
