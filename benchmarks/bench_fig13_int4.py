"""Figure 13 — INT4 quantized models on PC-High and PC-Low.

Paper: PC-High averages 13.20 tokens/s (peak 29.08) with mean speedup
2.89x (max 4.28x); quantization lets OPT-175B run on PC-High at ~2
tokens/s (2.66x over llama.cpp).  INT4 speedups are smaller than FP16's
because llama.cpp itself fits more of the compressed model on the GPU.
"""

import numpy as np
from conftest import run_once

from repro.bench.end_to_end import run_fig13


def test_fig13_int4(benchmark, record_rows):
    rows = run_once(benchmark, run_fig13)
    record_rows("fig13_int4", rows, "Figure 13 — INT4 generation speed")

    valid = [r for r in rows if not r["note"]]
    high = [r for r in valid if r["machine"] == "pc-high"]
    assert high

    speedups = np.array([r["speedup"] for r in high])
    tps = np.array([r["powerinfer_tps"] for r in high])
    assert speedups.mean() > 1.5
    assert tps.mean() > 5.0

    # OPT-175B only runs quantized, and only on PC-High — around the
    # paper's ~2 tokens/s.
    opt175 = [r for r in high if r["model"] == "opt-175b"]
    assert opt175, "OPT-175B INT4 must fit PC-High"
    assert all(0.5 < r["powerinfer_tps"] < 8.0 for r in opt175)
    assert all(r["speedup"] > 1.3 for r in opt175)
    low175 = [
        r for r in valid if r["machine"] == "pc-low" and r["model"] == "opt-175b"
    ]
    assert not low175, "OPT-175B must not fit PC-Low"
