"""Orca-style continuous batching over a performance engine.

The static simulators (:mod:`repro.serving.simulator`,
:mod:`repro.serving.batched`) treat a request as one opaque service time, so
a batch is frozen at dispatch and every member finishes together.  This
module schedules at *token* granularity instead: the server advances one
model iteration at a time via :meth:`PerfEngine.simulate_iteration`,
requests join the running batch the moment a slot and KV memory are
available, and leave the instant their last token is emitted — the
iteration-level scheduling loop of Orca/vLLM-class serving systems.

Pieces that cooperate:

* **Admission control** — each admitted request reserves its worst-case KV
  footprint (prompt + full response) in a :class:`MemoryPool` sized by the
  GPU KV budget.  Requests queue FCFS when the pool is full
  (head-of-line blocking preserves arrival order) and the reservation is
  released on completion, so the budget is never exceeded mid-flight.
* **Scheduler policy** (:mod:`repro.serving.policies`) — decides, per
  iteration, which members prefill (and how many prompt tokens) and which
  decode.
* **Iteration cost cache** — iteration latency is deterministic in
  ``(ctx_len, n_tokens, batch)`` *within one fault epoch*; context lengths
  are bucketed so streams of thousands of requests hit a few hundred
  engine simulations.
* **Fault tolerance** — with a :class:`~repro.hardware.faults.FaultSchedule`
  attached, iteration costs become time-varying (PCIe/GPU/CPU degradation
  windows), device stalls abort in-flight work (bounded retry with
  exponential backoff), per-request deadlines cancel hopeless requests and
  free their KV reservations, arrivals beyond a queue bound are shed, and
  — with ``degradation=True`` — the server adapts: it caps the batch while
  a throughput fault is active and re-plans a smaller GPU hot-neuron set
  when the KV budget shrinks mid-run (trading hot-neuron residency for KV
  space).  All fault handling is deterministic: the same schedule and
  request stream always produce the same report.

The event loop itself lives in :class:`ServerSession`, a *re-entrant*
stepwise core: :meth:`ServerSession.step` executes exactly one pass of the
loop body and returns, so a driver can interleave many sessions on one
simulated clock.  :meth:`ContinuousServer.run` drives a session to
completion for the classic single-server case; the fleet layer
(:mod:`repro.serving.fleet`) drives one session per replica, feeding them
through :meth:`ServerSession.submit` and harvesting lifecycle events from
:attr:`ServerSession.outbox`.

Timing convention: completing the prompt emits the request's first output
token (the prefill step produces logits for token one), so TTFT is the end
of the iteration that finishes the prompt, and ``output_len - 1`` decode
steps follow.  Deadlines are enforced at iteration boundaries — a request
that would finish mid-iteration past its deadline still completes; one
that is unfinished at a boundary past its deadline is cancelled.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.check.schedule import KVEvent, require_valid, validate_server_run
from repro.engine.base import PerfEngine
from repro.hardware.events import ScheduleResult
from repro.hardware.faults import FaultKind, FaultSchedule
from repro.hardware.memory import MemoryPool, OutOfMemoryError
from repro.serving.arrival import Request
from repro.serving.metrics import ContinuousReport, RequestMetrics
from repro.serving.policies import SchedulerPolicy, make_policy
from repro.units import Bytes, Ratio, Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.fleet import TraceContext
    from repro.telemetry.tracer import Tracer

__all__ = [
    "RequestState",
    "IterationCostCache",
    "ServerSession",
    "ContinuousServer",
    "retry_delay",
    "simulate_continuous_serving",
]


def retry_delay(
    base: Seconds,
    attempt: int,
    jitter: Ratio = 0.0,
    rng: np.random.Generator | None = None,
    cap: Seconds | None = None,
) -> Seconds:
    """Bounded exponential backoff with optional seeded jitter.

    The one retry-delay code path shared by the single-replica server and
    the fleet router, so both back off identically.  The deterministic
    part is ``base * 2 ** (attempt - 1)``, optionally clamped at ``cap``;
    with ``jitter > 0`` a uniform fraction of the (clamped) delay — up to
    ``jitter`` of it, drawn from ``rng`` — is added on top.

    With ``jitter == 0`` (the default) no random number is consumed and
    the result is bit-identical to the classic un-jittered schedule.

    Raises:
        ValueError: On ``attempt < 1``, a negative ``jitter``, or
            ``jitter > 0`` without a generator (jitter must come from a
            *seeded* stream — an implicit global RNG would break run
            determinism).
    """
    if attempt < 1:
        raise ValueError("attempt numbers start at 1")
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    delay = base * 2 ** (attempt - 1)
    if cap is not None:
        delay = min(delay, cap)
    if jitter > 0.0:
        if rng is None:
            raise ValueError("retry jitter requires a seeded generator")
        delay += delay * jitter * float(rng.uniform())
    return delay


@dataclass
class RequestState:
    """Progress of one admitted request through prefill and decode."""

    request: Request
    admit_time: Seconds
    kv_bytes: Bytes
    prefilled: int = 0
    emitted: int = 0
    token_times: list[Seconds] = field(default_factory=list)

    @property
    def remaining_prompt(self) -> int:
        return self.request.input_len - self.prefilled

    @property
    def is_prefilling(self) -> bool:
        return self.remaining_prompt > 0

    @property
    def is_decoding(self) -> bool:
        return not self.is_prefilling and self.emitted < self.request.output_len

    @property
    def done(self) -> bool:
        return self.emitted >= self.request.output_len

    @property
    def context(self) -> int:
        """Tokens currently in this request's KV cache."""
        return self.prefilled + self.emitted


class IterationCostCache:
    """Memoized iteration latencies with context-length bucketing.

    Iteration cost varies slowly with context (only the KV terms are
    ctx-dependent), so contexts are rounded to the nearest multiple of
    ``ctx_bucket`` before keying the engine simulation.  This keeps the
    number of distinct simulations bounded for long streams.

    With a fault schedule attached, cache keys additionally carry the
    *fault epoch* of the query time — within one epoch the perturbed
    machine is constant, so memoization stays sound while the simulation
    becomes time-varying.  (Distinct epochs with identical perturbations
    are cached separately; correctness over maximal sharing.)
    """

    def __init__(
        self,
        engine: PerfEngine,
        ctx_bucket: int = 32,
        faults: FaultSchedule | None = None,
    ) -> None:
        if ctx_bucket < 1:
            raise ValueError("ctx_bucket must be >= 1")
        self.engine = engine
        self.ctx_bucket = ctx_bucket
        self.faults = faults
        self._cache: dict[tuple[int, int, int, int], float] = {}
        self._schedules: dict[tuple[int, int, int, int], ScheduleResult] = {}

    def _bucket(self, ctx_len: int) -> int:
        return self.ctx_bucket * round(ctx_len / self.ctx_bucket)

    def _key(
        self, ctx_len: int, n_tokens: int, batch: int, now: Seconds
    ) -> tuple[int, int, int, int]:
        """Validated, bucketed, epoch-stamped memoization key.

        Raises:
            ValueError: On negative ``ctx_len`` or non-positive
                ``n_tokens``/``batch`` — garbage keys must fail loudly
                instead of being cached.
        """
        if ctx_len < 0:
            raise ValueError("ctx_len must be non-negative")
        if n_tokens < 1:
            raise ValueError("n_tokens must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        epoch = self.faults.epoch(now) if self.faults is not None else 0
        return (self._bucket(ctx_len), n_tokens, batch, epoch)

    def cost(
        self, ctx_len: int, n_tokens: int, batch: int, now: Seconds = 0.0
    ) -> Seconds:
        """Latency of one iteration at ``(ctx_len, n_tokens, batch)``.

        ``now`` selects the fault epoch when a schedule is attached (and
        is ignored otherwise).
        """
        key = self._key(ctx_len, n_tokens, batch, now)
        if key not in self._cache:
            self._cache[key] = self.engine.simulate_iteration_at(
                now, self.faults, *key[:3]
            ).makespan
        return self._cache[key]

    def schedule(
        self, ctx_len: int, n_tokens: int, batch: int, now: Seconds = 0.0
    ) -> ScheduleResult:
        """The full per-task schedule behind :meth:`cost` (memoized).

        Tracing uses this to replay the scheduled DAG onto the global
        timeline.  The simulation is deterministic, so
        ``schedule(...).makespan == cost(...)`` for the same arguments —
        the invariant that keeps emitted task spans consistent with the
        iteration windows the server books.
        """
        key = self._key(ctx_len, n_tokens, batch, now)
        sched = self._schedules.get(key)
        if sched is None:
            sched = self.engine.simulate_iteration_at(now, self.faults, *key[:3])
            self._schedules[key] = sched
            self._cache.setdefault(key, sched.makespan)
        return sched

    def __len__(self) -> int:
        return len(self._cache)


class ServerSession:
    """The re-entrant stepwise core of one continuous-serving run.

    A session owns all loop state of one run — queues, running batch, KV
    pool, retry heap, report, simulated clock — and advances it one loop
    pass at a time via :meth:`step`.  :meth:`ContinuousServer.run` is just
    "construct a session, step until done, finish"; a fleet driver holds
    one session per replica and always steps the session whose
    :meth:`next_action_time` is earliest, which is what keeps N replicas
    consistent on one global clock.

    Two modes:

    * **batch mode** (``external=False``): the request stream is fixed up
      front and the session is driven to completion.  Behaviour is
      bit-identical to the historical monolithic loop.
    * **external mode** (``external=True``): requests arrive through
      :meth:`submit` (possibly mid-run, possibly with prior progress from
      another replica), lifecycle events are mirrored into
      :attr:`outbox` for the driver, and an admission deadlock parks the
      session (:attr:`blocked`) instead of raising — only an external
      event can unblock it.

    Outbox entries (external mode only) are tuples whose first element is
    the kind: ``("admit", rid, t)``, ``("token", rid, t)``,
    ``("complete", rid, metrics)``, ``("failed", request, t)``,
    ``("timeout", request, t)``, ``("shed", request, t)``.
    """

    def __init__(
        self,
        server: "ContinuousServer",
        requests: list[Request] | tuple[Request, ...] = (),
        external: bool = False,
        record_ledger: bool | None = None,
    ) -> None:
        self.server = server
        self.external = external
        self.record_ledger = server.validate if record_ledger is None else record_ledger
        self.pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        self.next_arrival = 0
        self.waiting: deque[Request] = deque()
        self.running: list[RequestState] = []
        self.pool = MemoryPool(name="kv-cache", capacity=server.kv_budget_bytes)
        self.report = ContinuousReport(kv_budget_bytes=self.pool.usable_capacity)
        self.kv_ledger: list[KVEvent] = []
        self.retry_heap: list[tuple[float, int, Request]] = []  # (ready, id, request)
        self.attempts: dict[int, int] = {}
        self.now = 0.0
        self.blocked = False
        # External submissions: (dispatch time, insertion seq, request,
        # prefilled, emitted).  The seq keeps equal-time pops FIFO.
        self.dispatch_heap: list[tuple[float, int, Request, int, int]] = []
        self._dispatch_seq = 0
        self._progress: dict[int, tuple[int, int]] = {}
        self.outbox: list[tuple] = []
        # Upper bound on pure clock *advances* (idle / admission-blocked
        # jumps) — a fleet driver sets it to the next global event time so
        # a session never skips past an arrival it has not been handed
        # yet.  Iterations and stalls are atomic and ignore the cap, same
        # as the monolithic loop.  None = unbounded.
        self.time_cap: Seconds | None = None
        # Seeded jitter stream (None when retry_jitter == 0: the classic
        # schedule consumes no randomness and stays bit-identical).
        self.rng = (
            np.random.default_rng(server.seed) if server.retry_jitter > 0.0 else None
        )
        tracer = server.tracer
        self.tracer = tracer
        self.tracing = tracer is not None and tracer.enabled
        self.enqueued_at: dict[int, float] = {}
        # Fleet dispatch-attempt counters, keyed by request id: stamped
        # onto every traced lifecycle event so re-dispatches of one
        # request to this replica stay distinguishable.  Empty (hop =
        # None on every event) outside a fleet run.
        self._hops: dict[int, int] = {}
        if self.tracing and server.faults is not None:
            from repro.telemetry.tracer import record_fault_schedule

            record_fault_schedule(tracer, server.faults)

    # ---- external-driver API -------------------------------------------------

    def submit(
        self,
        request: Request,
        at: Seconds,
        prefilled: int = 0,
        emitted: int = 0,
        ctx: "TraceContext | None" = None,
    ) -> None:
        """Hand the session a request that becomes visible at time ``at``.

        ``prefilled``/``emitted`` seed the request's admitted state — how a
        fleet resumes a migrated request whose context (``prefilled``) was
        already built elsewhere (e.g. KV streamed in from a prefill
        replica) and whose first ``emitted`` tokens already reached the
        user.  The session emits only the remaining
        ``output_len - emitted`` tokens.  ``ctx`` is the router's trace
        context for this dispatch attempt; its hop counter is stamped
        onto every lifecycle event the session records for the request
        (pure telemetry — it never affects scheduling).
        """
        if not self.external:
            raise RuntimeError("submit() requires an external-mode session")
        if prefilled < 0 or emitted < 0:
            raise ValueError("prefilled and emitted must be non-negative")
        if ctx is not None:
            self._hops[request.request_id] = ctx.hop
        heapq.heappush(
            self.dispatch_heap,
            (at, self._dispatch_seq, request, prefilled, emitted),
        )
        self._dispatch_seq += 1
        self.blocked = False

    def cancel(self, request_id: int, at: Seconds) -> bool:
        """Withdraw a request wherever it lives (hedge loser, stale copy).

        Releases its KV reservation and drops any queued or backoff copy;
        returns whether anything was removed.  The release is ledgered at
        the *session's* clock, not ``at``: the cancellation takes effect
        when this replica processes it, which keeps the per-replica KV
        ledger time-ordered whether the caller is ahead of or behind this
        session's clock.
        """
        t = self.now
        for i, request in enumerate(self.waiting):
            if request.request_id == request_id:
                del self.waiting[i]
                self._progress.pop(request_id, None)
                self.blocked = False
                return True
        for i, state in enumerate(self.running):
            if state.request.request_id == request_id:
                self.pool.release(f"req-{request_id}")
                self._ledger_add(t, "free", f"req-{request_id}", state.kv_bytes)
                if self.tracing:
                    self._trace_batch_phases(state, t)
                    self.tracer.add_request_event(
                        request_id, "cancel", t, hop=self._hop_of(request_id)
                    )
                del self.running[i]
                self.blocked = False
                return True
        for heap in (self.retry_heap, self.dispatch_heap):
            for i, entry in enumerate(heap):
                if entry[2].request_id == request_id:
                    del heap[i]
                    heapq.heapify(heap)
                    self._progress.pop(request_id, None)
                    return True
        return False

    def drain(self, at: Seconds) -> list[Request]:
        """Pull every undelivered request out of the session (crash drain).

        Queued, backoff, and not-yet-pumped submissions are returned for
        the driver to re-dispatch; anything still marked running (normally
        already aborted by the crash stall) is released defensively.  The
        session itself stays usable — a recovered replica accepts new
        :meth:`submit` calls.
        """
        drained: list[Request] = list(self.waiting)
        self.waiting.clear()
        while self.retry_heap:
            _, _, request = heapq.heappop(self.retry_heap)
            drained.append(request)
        while self.dispatch_heap:
            _, _, request, _, _ = heapq.heappop(self.dispatch_heap)
            drained.append(request)
        for state in self.running:
            self.pool.release(f"req-{state.request.request_id}")
            self._ledger_add(
                max(at, self.now),
                "free",
                f"req-{state.request.request_id}",
                state.kv_bytes,
            )
            self.report.n_aborts += 1
            drained.append(state.request)
        self.running.clear()
        self._progress.clear()
        self.blocked = False
        drained.sort(key=lambda r: r.request_id)
        return drained

    def has_work(self) -> bool:
        """Whether another :meth:`step` could make progress."""
        return bool(
            self.next_arrival < len(self.pending)
            or self.dispatch_heap
            or self.waiting
            or self.running
            or self.retry_heap
        )

    def next_action_time(self) -> Seconds | None:
        """Earliest simulated time the session can act, or None when idle.

        A session with admitted or queued work acts *now*; an empty one
        reports its next arrival/submission/retry instant.  ``None`` means
        no internal event will ever occur — only :meth:`submit` /
        :meth:`cancel` can wake it (this includes the :attr:`blocked`
        admission-deadlock state).
        """
        if self.blocked:
            return None
        if self.waiting or self.running:
            return self.now
        horizon = []
        if self.next_arrival < len(self.pending):
            horizon.append(self.pending[self.next_arrival].arrival_time)
        if self.dispatch_heap:
            horizon.append(self.dispatch_heap[0][0])
        if self.retry_heap:
            horizon.append(self.retry_heap[0][0])
        if not horizon:
            return None
        return max(self.now, min(horizon))

    # ---- bookkeeping helpers -------------------------------------------------

    def _hop_of(self, rid: int) -> int | None:
        """The fleet dispatch-attempt counter of ``rid`` (None standalone)."""
        return self._hops.get(rid)

    def _ledger_add(self, time: Seconds, op: str, name: str, nbytes: Bytes) -> None:
        """Record one KV-pool operation for post-run validation.

        The ledger mirrors every ``allocate``/``release`` on the pool with
        its simulated timestamp; :func:`validate_kv_ledger` replays it to
        prove conservation.  Kept with ``validate=True`` (or when the
        driver asked for it explicitly — the fleet validator needs per-
        replica ledgers even on unvalidated replicas).
        """
        if self.record_ledger:
            self.kv_ledger.append(KVEvent(time=time, op=op, name=name, nbytes=nbytes))

    def _trace_batch_phases(self, state: RequestState, end: Seconds) -> None:
        """Record the phase spans of a request leaving the batch at ``end``.

        Phase boundaries are reconstructed from the token timeline: the
        prefill span runs from admission to the first token (which the
        final prefill step emits); everything after is decode.  A request
        evicted before its first token gets only a (partial) prefill span.
        """
        rid = state.request.request_id
        if state.token_times:
            first = state.token_times[0]
            self.tracer.add_request_span(rid, "prefill", state.admit_time, first)
            if end > first:
                self.tracer.add_request_span(rid, "decode", first, end)
        else:
            self.tracer.add_request_span(rid, "prefill", state.admit_time, end)

    def _enqueue(self, request: Request) -> None:
        if (
            self.server.max_queue is not None
            and len(self.waiting) >= self.server.max_queue
        ):
            self.report.shed.append(request)
            if self.external:
                self.outbox.append(("shed", request, self.now))
            if self.tracing:
                self.tracer.add_request_event(
                    request.request_id,
                    "shed",
                    self.now,
                    hop=self._hop_of(request.request_id),
                )
                self.tracer.metrics.counter("shed").inc()
        else:
            self.waiting.append(request)

    def _admit(self, batch_cap: int, effective_budget: Bytes) -> None:
        """FCFS admission under batch slots and the (possibly shrunken) KV budget.

        Head-of-line blocking: if the oldest waiting request does not fit,
        nothing behind it is admitted (preserves arrival order, the
        "queue-on-full" discipline).  A request that cannot fit even an
        *empty* pristine pool can never be served and raises immediately.
        """
        while self.waiting and len(self.running) < batch_cap:
            request = self.waiting[0]
            kv_bytes = self.server.engine.request_kv_bytes(
                request.input_len, request.output_len
            )
            if kv_bytes > self.pool.usable_capacity:
                raise OutOfMemoryError(
                    f"request {request.request_id} needs "
                    f"{kv_bytes / 2**20:.1f} MiB of KV cache but the "
                    f"budget is {self.pool.usable_capacity / 2**20:.1f} MiB"
                )
            if self.pool.used + kv_bytes > effective_budget:
                return
            self.pool.allocate(f"req-{request.request_id}", kv_bytes)
            self._ledger_add(self.now, "alloc", f"req-{request.request_id}", kv_bytes)
            self.waiting.popleft()
            prefilled, emitted = self._progress.pop(request.request_id, (0, 0))
            self.running.append(
                RequestState(
                    request=request,
                    admit_time=self.now,
                    kv_bytes=kv_bytes,
                    prefilled=prefilled,
                    emitted=emitted,
                )
            )
            if self.external:
                self.outbox.append(("admit", request.request_id, self.now))
            if self.tracing:
                rid = request.request_id
                queued_from = self.enqueued_at.get(rid, request.arrival_time)
                self.tracer.add_request_span(rid, "queued", queued_from, self.now)
                self.tracer.add_request_event(
                    rid, "admit", self.now, hop=self._hop_of(rid)
                )

    def _abort_running(self, resume_at: Seconds, at: Seconds | None = None) -> None:
        """Abort all in-flight requests (device stall): release KV, retry.

        A retried request restarts from scratch (its partial stream is
        lost) and becomes eligible for re-admission after an exponential
        backoff (jittered when the server was configured with
        ``retry_jitter``); a request out of retries is recorded as failed.
        ``at`` is the abort instant on the traced timeline (defaults to
        ``resume_at`` — the stall end — when not given).
        """
        server = self.server
        abort_time = at if at is not None else resume_at
        for state in self.running:
            self.pool.release(f"req-{state.request.request_id}")
            self._ledger_add(
                abort_time, "free", f"req-{state.request.request_id}", state.kv_bytes
            )
            self.report.n_aborts += 1
            rid = state.request.request_id
            attempt = self.attempts.get(rid, 0) + 1
            self.attempts[rid] = attempt
            if self.tracing:
                self._trace_batch_phases(state, abort_time)
                self.tracer.add_request_event(
                    rid, "abort", abort_time, hop=self._hop_of(rid)
                )
                self.tracer.metrics.counter("aborts").inc()
            if attempt > server.max_retries:
                self.report.failed.append(state.request)
                if self.external:
                    self.outbox.append(("failed", state.request, abort_time))
                if self.tracing:
                    self.tracer.add_request_event(
                        rid, "fail", abort_time, hop=self._hop_of(rid)
                    )
                    self.tracer.metrics.counter("failed").inc()
            else:
                self.report.n_retries += 1
                ready = resume_at + retry_delay(
                    server.retry_backoff, attempt, server.retry_jitter, self.rng
                )
                heapq.heappush(self.retry_heap, (ready, rid, state.request))
                if self.tracing:
                    self.tracer.metrics.counter("retries").inc()
        self.running.clear()

    def _cancel_expired(self) -> None:
        """Deadline enforcement at an iteration boundary.

        Expired waiting requests are dropped; expired running requests
        release their KV reservation.  Either way they are recorded as
        timed out and never reach the completed set.
        """
        now = self.now
        kept: deque[Request] = deque()
        for request in self.waiting:
            d = self.server._deadline_of(request)
            if d is not None and now >= request.arrival_time + d:
                self.report.timed_out.append(request)
                self._progress.pop(request.request_id, None)
                if self.external:
                    self.outbox.append(("timeout", request, now))
                if self.tracing:
                    rid = request.request_id
                    queued_from = self.enqueued_at.get(rid, request.arrival_time)
                    self.tracer.add_request_span(rid, "queued", queued_from, now)
                    self.tracer.add_request_event(
                        rid, "timeout", now, hop=self._hop_of(rid)
                    )
                    self.tracer.metrics.counter("timeouts").inc()
            else:
                kept.append(request)
        self.waiting.clear()
        self.waiting.extend(kept)
        still: list[RequestState] = []
        for state in self.running:
            d = self.server._deadline_of(state.request)
            if d is not None and now >= state.request.arrival_time + d:
                self.pool.release(f"req-{state.request.request_id}")
                self._ledger_add(
                    now, "free", f"req-{state.request.request_id}", state.kv_bytes
                )
                self.report.timed_out.append(state.request)
                if self.external:
                    self.outbox.append(("timeout", state.request, now))
                if self.tracing:
                    self._trace_batch_phases(state, now)
                    self.tracer.add_request_event(
                        state.request.request_id,
                        "timeout",
                        now,
                        hop=self._hop_of(state.request.request_id),
                    )
                    self.tracer.metrics.counter("timeouts").inc()
            else:
                still.append(state)
        self.running = still

    # ---- the loop body -------------------------------------------------------

    def step(self) -> bool:
        """Execute one pass of the serving loop; returns whether it ran.

        One pass pumps due arrivals/submissions/retries, then either
        advances the clock to the next event, handles a stall, or books
        one iteration.  ``False`` means the session is done (or blocked,
        in external mode) — stepping again without new input is a no-op.
        """
        if self.blocked or not self.has_work():
            return False
        server = self.server
        tracer = self.tracer
        tracing = self.tracing
        pending = self.pending
        report = self.report
        pool = self.pool

        while (
            self.next_arrival < len(pending)
            and pending[self.next_arrival].arrival_time <= self.now
        ):
            request = pending[self.next_arrival]
            if tracing:
                tracer.add_request_event(
                    request.request_id,
                    "arrive",
                    request.arrival_time,
                    hop=self._hop_of(request.request_id),
                )
                self.enqueued_at[request.request_id] = request.arrival_time
            self._enqueue(request)
            self.next_arrival += 1
        while self.dispatch_heap and self.dispatch_heap[0][0] <= self.now:
            at, _, request, prefilled, emitted = heapq.heappop(self.dispatch_heap)
            if prefilled or emitted:
                self._progress[request.request_id] = (prefilled, emitted)
            if tracing:
                tracer.add_request_event(
                    request.request_id,
                    "arrive",
                    at,
                    hop=self._hop_of(request.request_id),
                )
                self.enqueued_at[request.request_id] = at
            self._enqueue(request)
        while self.retry_heap and self.retry_heap[0][0] <= self.now:
            _, _, request = heapq.heappop(self.retry_heap)
            if tracing:
                tracer.add_request_event(
                    request.request_id,
                    "requeue",
                    self.now,
                    hop=self._hop_of(request.request_id),
                )
                self.enqueued_at[request.request_id] = self.now
            self._enqueue(request)

        if not self.running and not self.waiting:
            horizon = []
            if self.next_arrival < len(pending):
                horizon.append(pending[self.next_arrival].arrival_time)
            if self.dispatch_heap:
                horizon.append(self.dispatch_heap[0][0])
            if self.retry_heap:
                horizon.append(self.retry_heap[0][0])
            if not horizon:
                return False  # everything remaining was shed or failed
            target = max(self.now, min(horizon))
            if self.time_cap is not None and self.time_cap < target:
                if self.time_cap <= self.now:
                    return False  # parked: the driver must act first
                target = self.time_cap
            self.now = target
            return True

        self._cancel_expired()
        if not self.running and not self.waiting:
            return True

        if server.faults is not None:
            stall_end = server.faults.stall_end_at(self.now)
            if stall_end is not None and stall_end > self.now:
                # The device is stalled: nothing can run until the
                # window closes; in-flight work is lost.
                self._abort_running(stall_end, at=self.now)
                self.now = stall_end
                return True

        kv_factor = (
            server.faults.kv_budget_factor(self.now)
            if server.faults is not None
            else 1.0
        )
        throughput_fault = server.faults is not None and server.faults.is_degraded(
            self.now
        )
        costs = server.costs
        effective_budget = pool.usable_capacity * kv_factor
        batch_cap = server.max_batch
        degraded_now = False
        if server.degradation and kv_factor < 1.0:
            # KV squeeze: swap in the re-planned engine whose demoted
            # hot neurons buy the budget back.
            engine_, costs, freed = server._degraded_runtime()
            effective_budget = min(pool.usable_capacity, effective_budget + freed)
            degraded_now = True
        if server.degradation and throughput_fault:
            # Brownout: keep the batch small while the machine is slow
            # so in-flight streams keep their token cadence.
            batch_cap = min(batch_cap, server.degraded_max_batch)
            degraded_now = True

        self._admit(batch_cap, effective_budget)
        report.peak_kv_bytes = max(report.peak_kv_bytes, pool.used)

        if not self.running:
            # Admission blocked (shrunken budget or stalled retries):
            # advance to whatever happens next.
            horizon = []
            if self.next_arrival < len(pending):
                horizon.append(pending[self.next_arrival].arrival_time)
            if self.dispatch_heap:
                horizon.append(self.dispatch_heap[0][0])
            if self.retry_heap:
                horizon.append(self.retry_heap[0][0])
            if server.faults is not None:
                boundary = server.faults.next_boundary_after(self.now)
                if boundary is not None:
                    horizon.append(boundary)
            future = [t for t in horizon if t > self.now]
            if not future:
                if self.external:
                    # Only an external submit/cancel can change anything;
                    # park instead of raising so the driver decides.
                    self.blocked = True
                    return False
                raise OutOfMemoryError(
                    "admission deadlocked: waiting requests can never "
                    "fit the remaining KV budget"
                )
            target = min(future)
            if self.time_cap is not None and self.time_cap < target:
                if self.time_cap <= self.now:
                    return False  # parked until the driver's next event
                target = self.time_cap
            self.now = target
            return True

        plan = server.policy.plan_iteration(self.running)
        if plan.is_empty:
            raise RuntimeError(
                f"policy {server.policy.name!r} stalled a non-empty batch"
            )

        if tracing:
            tracer.add_counter("queue_depth", self.now, float(len(self.waiting)))
            tracer.add_counter("running_batch", self.now, float(len(self.running)))
            tracer.add_counter("kv_used_bytes", self.now, pool.used)

        # Components: (offset within the iteration, ctx, n_tokens, batch).
        # The offsets accumulate with the same float additions as the
        # cost, so replayed schedules land exactly on the booked window.
        cost = 0.0
        components: list[tuple[float, int, int, int]] = []
        for state, chunk in plan.prefill:
            components.append((cost, state.context, chunk, 1))
            cost += costs.cost(state.context, chunk, 1, self.now)
        if plan.decode:
            ctx = max(state.context for state in plan.decode)
            components.append((cost, ctx, 1, len(plan.decode)))
            cost += costs.cost(ctx, 1, len(plan.decode), self.now)
        end = self.now + cost

        if server.faults is not None:
            stall = server.faults.next_stall_start(self.now, end)
            if stall is not None:
                # A device stall preempts the in-flight iteration: the
                # partial work is lost and the batch aborts.
                if stall.start > self.now:
                    report.busy_intervals.append((self.now, stall.start))
                    if tracing:
                        tracer.add_region(
                            "server",
                            "iteration-aborted",
                            self.now,
                            stall.start,
                            args={"batch": float(len(self.running))},
                        )
                        # The devices really did run until the stall —
                        # replay the component schedules clipped at the
                        # preemption point (lost work, no iteration id).
                        for offset, ctx_c, n_tok, bsz in components:
                            t0c = self.now + offset
                            if t0c >= stall.start:
                                break
                            sched = costs.schedule(ctx_c, n_tok, bsz, self.now)
                            for task in sched.tasks.values():
                                t_start = t0c + task.start
                                t_end = min(t0c + task.end, stall.start)
                                if t_end > t_start:
                                    tracer.add_task(
                                        task.name,
                                        task.resource,
                                        t_start,
                                        t_end,
                                        tag=task.tag,
                                    )
                if degraded_now:
                    report.degraded_intervals.append((self.now, stall.start))
                    if tracing and stall.start > self.now:
                        tracer.add_region("server", "degraded", self.now, stall.start)
                self._abort_running(stall.end, at=stall.start)
                self.now = stall.end
                return True

        report.busy_intervals.append((self.now, end))
        report.n_iterations += 1
        if degraded_now:
            report.degraded_intervals.append((self.now, end))

        if tracing:
            iteration = report.n_iterations - 1
            tracer.add_region(
                "server",
                "iteration",
                self.now,
                end,
                args={
                    "batch": float(len(self.running)),
                    "prefill_tokens": float(plan.prefill_tokens),
                    "decode": float(len(plan.decode)),
                },
            )
            if degraded_now:
                tracer.add_region("server", "degraded", self.now, end)
            busy_by_lane: dict[str, float] = {}
            for offset, ctx_c, n_tok, bsz in components:
                sched = costs.schedule(ctx_c, n_tok, bsz, self.now)
                tracer.add_schedule(sched, t0=self.now + offset, iteration=iteration)
                for lane, busy in sched.busy_time.items():
                    busy_by_lane[lane] = busy_by_lane.get(lane, 0.0) + busy
            if cost > 0:
                for lane in sorted(busy_by_lane):
                    tracer.add_counter(
                        f"busy_frac_{lane}", self.now, busy_by_lane[lane] / cost
                    )
            tracer.metrics.counter("iterations").inc()
            tracer.metrics.gauge("kv_used_bytes").set(pool.used)

        for state, chunk in plan.prefill:
            state.prefilled += chunk
            if not state.is_prefilling:
                # Prompt done: the prefill step yields the first token.
                state.emitted += 1
                state.token_times.append(end)
                if self.external:
                    self.outbox.append(("token", state.request.request_id, end))
                if tracing:
                    tracer.add_request_event(
                        state.request.request_id,
                        "first_token",
                        end,
                        hop=self._hop_of(state.request.request_id),
                    )
        for state in plan.decode:
            state.emitted += 1
            state.token_times.append(end)
            if self.external:
                self.outbox.append(("token", state.request.request_id, end))

        still_running: list[RequestState] = []
        for state in self.running:
            if state.done:
                pool.release(f"req-{state.request.request_id}")
                self._ledger_add(
                    state.token_times[-1],
                    "free",
                    f"req-{state.request.request_id}",
                    state.kv_bytes,
                )
                metrics = RequestMetrics(
                    request=state.request,
                    admit_time=state.admit_time,
                    token_times=tuple(state.token_times),
                )
                report.completed.append(metrics)
                if self.external:
                    self.outbox.append(
                        ("complete", state.request.request_id, metrics)
                    )
                if tracing:
                    self._trace_batch_phases(state, state.token_times[-1])
                    tracer.add_request_event(
                        state.request.request_id,
                        "finish",
                        state.token_times[-1],
                        hop=self._hop_of(state.request.request_id),
                    )
                    tracer.metrics.counter("completed").inc()
                    tracer.metrics.histogram("ttft_s").record(metrics.ttft)
                    tracer.metrics.histogram("latency_s").record(metrics.latency)
            else:
                still_running.append(state)
        self.running = still_running
        self.now = end
        return True

    # ---- wrap-up -------------------------------------------------------------

    def finish(self, validate: bool | None = None) -> ContinuousReport:
        """Sort and (optionally) validate the report; returns it.

        ``validate`` defaults to the server's ``validate`` flag.  The
        session remains inspectable afterwards (ledger, pool, clock).
        """
        report = self.report
        report.completed.sort(key=lambda m: m.request.request_id)
        report.timed_out.sort(key=lambda r: r.request_id)
        report.shed.sort(key=lambda r: r.request_id)
        report.failed.sort(key=lambda r: r.request_id)
        if self.tracing:
            self.tracer.metrics.gauge("peak_kv_bytes").set(report.peak_kv_bytes)
            self.tracer.metrics.gauge("time_in_degraded_mode_s").set(
                report.time_in_degraded_mode
            )
        self.server.last_kv_ledger = self.kv_ledger
        if validate if validate is not None else self.server.validate:
            # Over-budget is checked against the *nominal* pool capacity:
            # KV-shrink windows shrink the admission threshold, but
            # reservations made before the squeeze legitimately persist.
            require_valid(
                validate_server_run(
                    report,
                    ledger=self.kv_ledger,
                    budget=self.pool.usable_capacity,
                    faults=self.server.faults,
                    tracer=self.tracer if self.tracing else None,
                )
            )
        return report


class ContinuousServer:
    """Event-driven continuous-batching server with graceful degradation.

    Attributes:
        engine: Performance engine pricing each iteration.
        policy: Scheduler policy shaping iterations (name or instance).
        max_batch: Maximum concurrently running requests.
        kv_budget_bytes: KV-cache memory budget for admission control;
            defaults to the engine's free GPU memory after plan-resident
            weights (:meth:`PerfEngine.kv_budget_bytes`).
        ctx_bucket: Context-length bucket for the iteration cost cache.
        faults: Optional fault schedule perturbing the machine over
            simulated time (see :mod:`repro.hardware.faults`).
        deadline: Default per-request completion deadline (seconds after
            arrival) applied when a request carries none.  ``None``
            disables deadline enforcement for such requests.
        max_retries: How many times a stall-aborted request is re-queued
            before being recorded as failed.
        retry_backoff: Base of the exponential backoff between an abort
            and the retry's earliest re-admission (doubles per attempt).
        retry_jitter: Jitter fraction added to each backoff delay — up to
            ``retry_jitter`` of the deterministic delay, drawn from the
            run's seeded generator (see :func:`retry_delay`).  ``0.0``
            (default) consumes no randomness and reproduces the classic
            schedule bit-identically.
        seed: Seed for the run's jitter stream; required when
            ``retry_jitter > 0`` (an unseeded stream would break run
            determinism).
        max_queue: Bound on the admission queue; arrivals beyond it are
            shed (``None`` disables load shedding).
        degradation: Enables graceful degradation — the fault-adaptive
            batch cap and the KV-shrink hot-neuron re-plan.  With
            ``False`` the server still *suffers* every fault (perturbed
            costs, stalls, shrunken budget) but does not adapt; the chaos
            benchmark compares the two.
        degraded_max_batch: Batch cap while a throughput fault is active
            (defaults to ``max(1, max_batch // 4)``).
        tracer: Optional :class:`~repro.telemetry.tracer.Tracer` recording
            device task spans, request lifecycle spans/events, iteration
            and degraded-mode regions, fault annotations, and counter
            samples over the run.  ``None`` (default) disables tracing;
            the run's results are bit-identical either way.
        validate: When ``True``, :meth:`run` keeps a KV-allocation ledger
            and, before returning, replays the report against the server
            invariants (:func:`repro.check.schedule.validate_server_run` —
            non-overlapping iteration windows, nothing executing inside a
            device stall, KV-memory conservation under the nominal budget,
            trace/report reconciliation), raising
            :class:`~repro.check.schedule.ScheduleValidationError` on any
            violation.  Off by default; a diagnostic/CI hook.
    """

    def __init__(
        self,
        engine: PerfEngine,
        policy: SchedulerPolicy | str = "fcfs",
        max_batch: int = 8,
        kv_budget_bytes: Bytes | None = None,
        ctx_bucket: int = 32,
        faults: FaultSchedule | None = None,
        deadline: Seconds | None = None,
        max_retries: int = 2,
        retry_backoff: Seconds = 0.05,
        retry_jitter: Ratio = 0.0,
        seed: int | None = None,
        max_queue: int | None = None,
        degradation: bool = True,
        degraded_max_batch: int | None = None,
        tracer: "Tracer | None" = None,
        validate: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")
        if retry_jitter > 0 and seed is None:
            raise ValueError("retry_jitter > 0 requires a seed (determinism)")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None)")
        if degraded_max_batch is not None and degraded_max_batch < 1:
            raise ValueError("degraded_max_batch must be >= 1 (or None)")
        self.engine = engine
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.max_batch = max_batch
        budget = kv_budget_bytes if kv_budget_bytes is not None else engine.kv_budget_bytes()
        if budget <= 0:
            raise ValueError(
                "kv_budget_bytes must be positive (the plan leaves no GPU "
                "memory for KV; pass an explicit budget)"
            )
        self.kv_budget_bytes = budget
        self.faults = faults
        self.deadline = deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_jitter = retry_jitter
        self.seed = seed
        self.max_queue = max_queue
        self.degradation = degradation
        self.degraded_max_batch = (
            degraded_max_batch if degraded_max_batch is not None else max(1, max_batch // 4)
        )
        self.tracer = tracer
        self.validate = validate
        self.costs = IterationCostCache(engine, ctx_bucket, faults=faults)
        # Lazily-built degraded runtime: (engine, cost cache, bytes freed).
        self._degraded: tuple[PerfEngine, IterationCostCache, float] | None = None
        # KV-pool ledger of the last run (only populated with validate=True
        # or a session constructed with record_ledger=True).
        self.last_kv_ledger: list[KVEvent] = []

    # ---- degraded mode -------------------------------------------------------

    def _degraded_runtime(self) -> tuple[PerfEngine, IterationCostCache, float]:
        """Engine + cache for KV-shrink windows: hot neurons demoted to CPU.

        The re-plan frees enough GPU weight bytes to cover the worst KV
        shrinkage in the schedule, so admissions keep flowing while the
        squeeze lasts — at the price of slower iterations (more CPU-side
        neuron work).  Built once, deterministically.
        """
        if self._degraded is None:
            worst = min(
                (
                    e.magnitude
                    for e in self.faults.events
                    if e.kind == FaultKind.KV_SHRINK
                ),
                default=1.0,
            )
            target = self.kv_budget_bytes * (1.0 - worst)
            pristine_plan = self.engine.plan
            plan = pristine_plan.with_gpu_bytes_freed(target)
            freed = pristine_plan.gpu_weight_bytes - plan.gpu_weight_bytes
            engine = type(self.engine)(plan)
            cache = IterationCostCache(engine, self.costs.ctx_bucket, faults=self.faults)
            self._degraded = (engine, cache, float(freed))
        return self._degraded

    def _deadline_of(self, request: Request) -> Seconds | None:
        return request.deadline if request.deadline is not None else self.deadline

    # ---- main loop -----------------------------------------------------------

    def session(
        self,
        requests: list[Request] | tuple[Request, ...] = (),
        external: bool = False,
        record_ledger: bool | None = None,
    ) -> ServerSession:
        """A fresh :class:`ServerSession` over this server's configuration."""
        return ServerSession(
            self, requests, external=external, record_ledger=record_ledger
        )

    def run(self, requests: list[Request]) -> ContinuousReport:
        """Serve ``requests``; returns token-level metrics."""
        session = self.session(requests)
        while session.step():
            pass
        return session.finish()


def simulate_continuous_serving(
    engine: PerfEngine,
    requests: list[Request],
    policy: SchedulerPolicy | str = "fcfs",
    max_batch: int = 8,
    kv_budget_bytes: Bytes | None = None,
    max_prefill_tokens: int = 64,
    ctx_bucket: int = 32,
    **robustness,
) -> ContinuousReport:
    """Serve ``requests`` with continuous batching; returns the report.

    Convenience wrapper over :class:`ContinuousServer`.  ``policy`` is a
    preset name (``"fcfs"``, ``"prefill-first"``, ``"chunked"``) or a
    :class:`SchedulerPolicy` instance; ``max_prefill_tokens`` only applies
    to the chunked policy.  Extra keyword arguments (``faults``,
    ``deadline``, ``max_retries``, ``retry_backoff``, ``retry_jitter``,
    ``seed``, ``max_queue``, ``degradation``, ``degraded_max_batch``,
    ``tracer``, ``validate``) pass through to the server.
    """
    if isinstance(policy, str):
        kwargs = {"max_prefill_tokens": max_prefill_tokens} if policy == "chunked" else {}
        policy = make_policy(policy, **kwargs)
    server = ContinuousServer(
        engine,
        policy=policy,
        max_batch=max_batch,
        kv_budget_bytes=kv_budget_bytes,
        ctx_bucket=ctx_bucket,
        **robustness,
    )
    return server.run(requests)
