"""Run the schedule validator across the bench suite (`repro verify-schedule`).

Sweeps the canonical benchmark grid — every registered engine on the
bench-suite (model, machine, dtype) combinations — validating a prompt
iteration, a decode iteration, and a batched decode iteration for each,
then replays the canonical continuous-serving scenarios (fault-free and
the chaos degrade/squeeze/stall timeline) with ``validate=True`` and a
tracer attached, so every invariant in :mod:`repro.check.schedule` is
exercised against real schedules.  The fleet chaos scenarios
(:mod:`repro.bench.fleet_chaos`) are replayed through
:func:`~repro.check.schedule.validate_fleet_run` — crashed replicas
served nothing, KV conservation across migration, router/replica
accounting reconciliation.  Energy ledgers of the traced chaos scenarios
are reconciled against the integrated power meter
(:func:`~repro.check.schedule.validate_energy_report`).  Engines that
legitimately cannot fit a configuration (OOM at plan time) are reported
as skipped, not failed.
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.check.schedule import ScheduleValidationError, validate_schedule

__all__ = ["run_verification", "format_verification", "verification_to_json"]

# One schedule per phase shape: prompt prefill, single-token decode, and
# a batched decode (the shapes continuous batching actually issues).
ITERATION_POINTS = (
    ("prompt", 0, 64, 1),
    ("decode", 128, 1, 1),
    ("batched-decode", 128, 1, 4),
)

SERVING_N_REQUESTS = {"full": 32, "quick": 10}


def _iteration_grid(quick: bool) -> Iterator[tuple[str, str, str, str]]:
    """(engine, model, machine, dtype) combos: bench hw × every engine."""
    from repro.bench.baseline import E2E_CONFIGS_FULL, E2E_CONFIGS_QUICK
    from repro.bench.runner import ENGINE_CLASSES

    configs = E2E_CONFIGS_QUICK if quick else E2E_CONFIGS_FULL
    hardware = sorted({(model, machine, dtype) for _, model, machine, dtype in configs})
    for model, machine, dtype in hardware:
        for engine_name in sorted(ENGINE_CLASSES):
            yield engine_name, model, machine, dtype


def _iteration_cases(quick: bool) -> list[dict]:
    from repro.bench.runner import make_engine
    from repro.hardware.memory import OutOfMemoryError

    cases: list[dict] = []
    for engine_name, model, machine, dtype in _iteration_grid(quick):
        prefix = f"iteration/{engine_name}/{model}/{machine}/{dtype}"
        try:
            engine = make_engine(engine_name, model, machine, dtype)
        except OutOfMemoryError as exc:
            cases.append(
                {
                    "case": prefix,
                    "status": "skipped",
                    "reason": f"does not fit: {exc}",
                    "violations": [],
                }
            )
            continue
        for kind, ctx, n_tokens, batch in ITERATION_POINTS:
            result = engine.simulate_iteration(ctx, n_tokens, batch)
            violations = validate_schedule(result)
            cases.append(
                {
                    "case": f"{prefix}/{kind}",
                    "status": "ok" if not violations else "fail",
                    "n_tasks": len(result.tasks),
                    "makespan_s": result.makespan,
                    "violations": [v.to_dict() for v in violations],
                }
            )
    return cases


def _serving_cases(quick: bool) -> list[dict]:
    import numpy as np

    from repro.bench.fault_tolerance import (
        DEADLINE_S,
        DTYPE,
        KV_BUDGET_BYTES,
        MACHINE,
        MAX_BATCH,
        MAX_QUEUE,
        MAX_RETRIES,
        MODEL,
        RATE_RPS,
        SEED,
        default_fault_schedule,
    )
    from repro.bench.runner import make_engine
    from repro.serving.continuous import ContinuousServer
    from repro.serving.arrival import poisson_arrivals
    from repro.telemetry.tracer import Tracer
    from repro.workloads import CHATGPT_PROMPTS

    suite = "quick" if quick else "full"
    engine = make_engine("powerinfer", MODEL, MACHINE, DTYPE)
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=RATE_RPS,
        n_requests=SERVING_N_REQUESTS[suite],
        rng=np.random.default_rng(SEED),
        deadline=DEADLINE_S,
    )
    scenarios = (
        ("serving/no-fault", None),
        ("serving/chaos", default_fault_schedule()),
    )
    cases: list[dict] = []
    for case_name, faults in scenarios:
        tracer = Tracer()
        server = ContinuousServer(
            engine,
            policy="chunked",
            max_batch=MAX_BATCH,
            kv_budget_bytes=KV_BUDGET_BYTES,
            faults=faults,
            deadline=DEADLINE_S,
            max_retries=MAX_RETRIES,
            max_queue=MAX_QUEUE,
            tracer=tracer,
            validate=True,
        )
        try:
            report = server.run(requests)
        except ScheduleValidationError as exc:
            cases.append(
                {
                    "case": case_name,
                    "status": "fail",
                    "violations": [v.to_dict() for v in exc.violations],
                }
            )
            continue
        cases.append(
            {
                "case": case_name,
                "status": "ok",
                "n_iterations": report.n_iterations,
                "n_completed": len(report.completed),
                "makespan_s": report.makespan,
                "kv_events": len(server.last_kv_ledger),
                "violations": [],
            }
        )
    return cases


def _fleet_cases(quick: bool) -> list[dict]:
    """Replay the canonical fleet chaos scenarios through the validator.

    Covers the resilience mechanisms the fleet validator has dedicated
    checks for: failover under a crash, the blind (no-failover)
    ablation, and — in the full suite — the fault-free fleet, the
    disaggregated fleet (KV transfers under a decode-replica crash), and
    hedged dispatch (deliberate dual-residency the migration check must
    exempt).
    """
    from repro.bench.fleet_chaos import build_fleet, fleet_requests
    from repro.check.schedule import validate_fleet_run

    scenarios = [
        ("fleet/failover-chaos", dict(router_policy="round-robin", chaos=True)),
        ("fleet/blind-chaos", dict(router_policy="round-robin", chaos=True, failover=False)),
    ]
    if not quick:
        scenarios += [
            ("fleet/no-fault", dict(router_policy="least-loaded", chaos=False)),
            ("fleet/disagg-chaos", dict(router_policy="round-robin", chaos=True, disaggregate=True)),
            ("fleet/hedge-chaos", dict(router_policy="least-loaded", chaos=True, hedge=True)),
        ]
    cases: list[dict] = []
    for case_name, kwargs in scenarios:
        result = build_fleet(**kwargs).run(fleet_requests())
        violations = validate_fleet_run(result)
        cases.append(
            {
                "case": case_name,
                "status": "ok" if not violations else "fail",
                "n_replicas": len(result.replicas),
                "n_completed": len(result.report.completed),
                "availability": result.availability,
                "n_transfers": len(result.transfers.tasks) if result.transfers else 0,
                "violations": [v.to_dict() for v in violations],
            }
        )
    return cases


def _energy_cases(quick: bool) -> list[dict]:
    """Reconcile energy ledgers against the integrated power meter.

    Runs the two canonical traced scenarios — the single-server chaos
    timeline and the fleet chaos crash — through the energy meter and
    validates the ledger with
    :func:`~repro.check.schedule.validate_energy_report` /
    :func:`~repro.check.schedule.validate_fleet_energy` (sum of per-task
    energies == integrated meter to 1e-6, DVFS windows included).
    """
    import numpy as np

    from repro.bench.fault_tolerance import (
        DEADLINE_S,
        DTYPE,
        KV_BUDGET_BYTES,
        MACHINE,
        MAX_BATCH,
        MAX_QUEUE,
        MAX_RETRIES,
        MODEL,
        RATE_RPS,
        SEED,
        default_fault_schedule,
    )
    from repro.bench.fleet_chaos import (
        DEFAULT_SLO,
        build_fleet,
        default_fleet_monitor,
        fleet_requests,
    )
    from repro.bench.runner import make_engine
    from repro.check.schedule import validate_energy_report, validate_fleet_energy
    from repro.serving.arrival import poisson_arrivals
    from repro.serving.continuous import ContinuousServer
    from repro.telemetry.fleet import FleetTracer
    from repro.telemetry.power import fleet_energy, tracer_energy
    from repro.telemetry.tracer import Tracer
    from repro.workloads import CHATGPT_PROMPTS

    suite = "quick" if quick else "full"
    cases: list[dict] = []

    engine = make_engine("powerinfer", MODEL, MACHINE, DTYPE)
    faults = default_fault_schedule()
    tracer = Tracer()
    server = ContinuousServer(
        engine,
        policy="chunked",
        max_batch=MAX_BATCH,
        kv_budget_bytes=KV_BUDGET_BYTES,
        faults=faults,
        deadline=DEADLINE_S,
        max_retries=MAX_RETRIES,
        max_queue=MAX_QUEUE,
        tracer=tracer,
    )
    report = server.run(
        poisson_arrivals(
            CHATGPT_PROMPTS,
            rate=RATE_RPS,
            n_requests=SERVING_N_REQUESTS[suite],
            rng=np.random.default_rng(SEED),
            deadline=DEADLINE_S,
        )
    )
    energy = tracer_energy(tracer, engine.machine, faults=faults, horizon=report.makespan)
    violations = validate_energy_report(energy)
    cases.append(
        {
            "case": "energy/serving-chaos",
            "status": "ok" if not violations else "fail",
            "total_joules": energy.total_joules,
            "metered_joules": energy.metered_joules,
            "violations": [v.to_dict() for v in violations],
        }
    )

    fleet_tracer = FleetTracer(monitor=default_fleet_monitor(), slo=DEFAULT_SLO)
    router = build_fleet(tracer=fleet_tracer)
    result = router.run(fleet_requests(SERVING_N_REQUESTS[suite]))
    fenergy = fleet_energy(result, fleet_tracer)
    violations = validate_fleet_energy(fenergy)
    cases.append(
        {
            "case": "energy/fleet-chaos",
            "status": "ok" if not violations else "fail",
            "total_joules": fenergy.total_joules,
            "metered_joules": fenergy.metered_joules,
            "violations": [v.to_dict() for v in violations],
        }
    )
    return cases


def run_verification(quick: bool = False) -> dict:
    """Validate the bench suite; returns the verification document."""
    cases = (
        _iteration_cases(quick)
        + _serving_cases(quick)
        + _fleet_cases(quick)
        + _energy_cases(quick)
    )
    n_violations = sum(len(c["violations"]) for c in cases)
    n_skipped = sum(1 for c in cases if c["status"] == "skipped")
    return {
        "suite": "quick" if quick else "full",
        "ok": all(c["status"] != "fail" for c in cases),
        "n_cases": len(cases),
        "n_skipped": n_skipped,
        "n_violations": n_violations,
        "cases": cases,
    }


def format_verification(document: dict) -> str:
    """Human-readable verification report."""
    lines: list[str] = []
    for case in document["cases"]:
        status = case["status"]
        note = ""
        if status == "skipped":
            note = f" ({case['reason']})"
        elif status == "fail":
            note = f" ({len(case['violations'])} violation(s))"
        lines.append(f"{status:>7}  {case['case']}{note}")
        for v in case["violations"]:
            where = f" task={v['task']}" if v.get("task") is not None else ""
            when = f" t={v['time']:.6g}s" if v.get("time") is not None else ""
            lines.append(f"         - {v['check']}:{where}{when} {v['message']}")
    verdict = "OK" if document["ok"] else "FAIL"
    lines.append(
        f"{verdict}: {document['n_cases']} case(s), "
        f"{document['n_skipped']} skipped, "
        f"{document['n_violations']} violation(s) [{document['suite']} suite]"
    )
    return "\n".join(lines)


def verification_to_json(document: dict) -> str:
    return json.dumps(document, indent=2) + "\n"
