"""Unit tests for the Chrome trace_event and JSONL exporters."""

import json

import pytest

from repro.telemetry import (
    Tracer,
    save_chrome_trace,
    save_jsonl,
    to_chrome_trace,
    to_jsonl_records,
)
from repro.telemetry.exporters import DEVICE_PID, REQUEST_PID, SERVER_PID


@pytest.fixture
def tracer():
    """A small hand-built trace covering every event type."""
    t = Tracer()
    t.add_task("mlp-0", "gpu", 0.0, 0.5, tag="mlp", iteration=0)
    t.add_task("xfer-0", "pcie", 0.5, 0.75, tag="transfer", iteration=0)
    t.add_request_span(7, "queued", 0.0, 0.25)
    t.add_request_span(7, "prefill", 0.25, 0.5)
    t.add_request_event(7, "finish", 0.5)
    t.add_region("server", "iteration", 0.0, 0.75, args={"batch": 1.0})
    t.add_instant("faults", "epoch", 0.3)
    t.add_counter("queue_depth", 0.0, 2.0)
    return t


class TestChromeTrace:
    def test_metadata_names_all_processes_and_threads(self, tracer):
        events = to_chrome_trace(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        procs = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert procs == {DEVICE_PID: "devices", SERVER_PID: "server",
                         REQUEST_PID: "requests"}
        threads = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert "gpu" in threads.values()
        assert "pcie" in threads.values()
        assert "req-7" in threads.values()
        assert "server" in threads.values()
        assert "faults" in threads.values()

    def test_task_spans_are_complete_events_in_microseconds(self, tracer):
        events = to_chrome_trace(tracer)
        mlp = next(e for e in events if e.get("name") == "mlp-0")
        assert mlp["ph"] == "X"
        assert mlp["pid"] == DEVICE_PID
        assert mlp["ts"] == pytest.approx(0.0)
        assert mlp["dur"] == pytest.approx(0.5e6)
        assert mlp["cat"] == "mlp"
        assert mlp["args"] == {"iteration": 0}

    def test_request_span_and_event(self, tracer):
        events = to_chrome_trace(tracer)
        prefill = next(
            e for e in events
            if e.get("name") == "prefill" and e["pid"] == REQUEST_PID
        )
        assert prefill["ph"] == "X"
        assert prefill["ts"] == pytest.approx(0.25e6)
        finish = next(e for e in events if e.get("name") == "finish")
        assert finish["ph"] == "i"
        assert finish["s"] == "t"

    def test_region_instant_and_counter(self, tracer):
        events = to_chrome_trace(tracer)
        iteration = next(e for e in events if e.get("name") == "iteration")
        assert iteration["ph"] == "X"
        assert iteration["pid"] == SERVER_PID
        assert iteration["args"] == {"batch": 1.0}
        epoch = next(e for e in events if e.get("name") == "epoch")
        assert epoch["ph"] == "i"
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["name"] == "queue_depth"
        assert counter["args"] == {"value": 2.0}

    def test_save_chrome_trace_roundtrips(self, tracer, tmp_path):
        path = tmp_path / "run.trace.json"
        save_chrome_trace(tracer, path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(to_chrome_trace(tracer))

    def test_empty_tracer_exports_only_metadata(self):
        events = to_chrome_trace(Tracer())
        assert all(e["ph"] == "M" for e in events)


class TestJsonl:
    def test_one_record_per_event_with_types(self, tracer):
        records = to_jsonl_records(tracer)
        assert len(records) == len(tracer)
        types = {r["type"] for r in records}
        assert types == {
            "task", "request_span", "request_event", "region", "instant",
            "counter",
        }
        task = next(r for r in records if r["type"] == "task")
        assert task["start"] == 0.0 and task["end"] == 0.5  # seconds, unscaled

    def test_save_jsonl_is_line_delimited_json(self, tracer, tmp_path):
        path = tmp_path / "run.jsonl"
        save_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer)
        for line in lines:
            json.loads(line)
