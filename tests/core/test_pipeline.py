"""Tests for the offline pipeline (build_plan)."""

import dataclasses

import numpy as np
import pytest

from repro.core.pipeline import build_plan
from repro.hardware.memory import OutOfMemoryError
from repro.quant.formats import FP16, INT4


class TestBuildPlan:
    def test_ilp_plan_fills_gpu(self, mini_model, mini_machine):
        plan = build_plan(mini_model, mini_machine, FP16, policy="ilp")
        report = plan.memory_report()
        # GPU should be substantially used (hot neurons + predictors).
        assert report.gpu_fraction > 0.5
        assert plan.gpu_neuron_load_share() > 0.3

    def test_none_policy_places_nothing(self, mini_plan_none):
        assert mini_plan_none.gpu_weight_bytes == 0.0
        assert mini_plan_none.gpu_neuron_load_share() == 0.0

    def test_greedy_close_to_ilp(self, mini_model, mini_machine, mini_plan):
        greedy = build_plan(mini_model, mini_machine, FP16, policy="greedy")
        assert greedy.gpu_neuron_load_share() == pytest.approx(
            mini_plan.gpu_neuron_load_share(), abs=0.15
        )

    def test_unknown_policy_rejected(self, mini_model, mini_machine):
        with pytest.raises(ValueError, match="policy"):
            build_plan(mini_model, mini_machine, FP16, policy="magic")

    def test_oversized_model_rejected(self, mini_model, mini_machine):
        cramped = dataclasses.replace(
            mini_machine,
            cpu=mini_machine.cpu.with_memory_capacity(0.1 * 2**30),
        )
        with pytest.raises(OutOfMemoryError):
            build_plan(mini_model, cramped, FP16, policy="none")

    def test_int4_frees_capacity(self, mini_model, mini_machine):
        fp16 = build_plan(mini_model, mini_machine, FP16, policy="ilp")
        int4 = build_plan(mini_model, mini_machine, INT4, policy="ilp")
        # In INT4, more neurons fit the same GPU: load share can only grow.
        assert int4.gpu_neuron_load_share() >= fp16.gpu_neuron_load_share() - 0.01

    def test_predictor_bytes_sized_per_layer(self, mini_plan):
        assert len(mini_plan.predictor_bytes) == mini_plan.model.n_layers
        assert all(b > 0 for b in mini_plan.predictor_bytes)
        # Denser early layers need bigger predictors (depth ramp).
        assert mini_plan.predictor_bytes[0] > mini_plan.predictor_bytes[-1]

    def test_custom_probs_respected(self, mini_model, mini_machine, rng):
        mlp = [np.full(mini_model.d_ffn, 0.05) for _ in range(mini_model.n_layers)]
        attn = [np.full(mini_model.n_heads, 0.5) for _ in range(mini_model.n_layers)]
        plan = build_plan(
            mini_model, mini_machine, FP16, policy="none", mlp_probs=mlp, attn_probs=attn
        )
        assert plan.mlp_probs[0][0] == 0.05

    def test_deterministic_given_seed(self, mini_model, mini_machine):
        a = build_plan(mini_model, mini_machine, FP16, policy="ilp", seed=3)
        b = build_plan(mini_model, mini_machine, FP16, policy="ilp", seed=3)
        assert all(
            np.array_equal(x, y) for x, y in zip(a.mlp_gpu_masks, b.mlp_gpu_masks)
        )


class TestPaperScaleFit:
    """Memory-feasibility outcomes the paper reports (slow-ish: real ILP)."""

    def test_opt175b_fp16_does_not_fit_pc_high(self):
        from repro.hardware.spec import PC_HIGH
        from repro.models.config import OPT_175B

        with pytest.raises(OutOfMemoryError):
            build_plan(OPT_175B, PC_HIGH, FP16, policy="none")

    def test_opt175b_int4_fits_pc_high_but_not_pc_low(self):
        from repro.hardware.spec import PC_HIGH, PC_LOW
        from repro.models.config import OPT_175B

        build_plan(OPT_175B, PC_HIGH, INT4, policy="none")  # must not raise
        with pytest.raises(OutOfMemoryError):
            build_plan(OPT_175B, PC_LOW, INT4, policy="none")
