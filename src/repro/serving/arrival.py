"""Request arrival processes for serving simulations.

The paper's target setting is a local deployment serving one user's
requests with low latency (Section 1).  To study that regime — and how far
a machine can be pushed before queueing delay dominates — we model request
streams as a Poisson process whose prompt/output lengths come from the
:mod:`repro.workloads.prompts` distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import Hertz, Seconds
from repro.workloads.prompts import PromptWorkload

__all__ = ["Request", "poisson_arrivals"]


@dataclass(frozen=True)
class Request:
    """One serving request.

    ``deadline`` is an optional per-request completion deadline in seconds
    *relative to arrival*; ``None`` means the request never times out
    (unless the server imposes a default).  Deadline enforcement is the
    continuous server's job — see
    :class:`repro.serving.continuous.ContinuousServer`.

    ``priority`` ranks requests for fleet brownout (higher is more
    important; the router sheds the lowest classes first when surviving
    capacity drops).  ``session`` is an optional conversation id used by
    the session-affinity router policy to pin a conversation's requests
    to one replica (warm KV locality).  Both are inert outside the fleet
    layer (:mod:`repro.serving.fleet`).
    """

    request_id: int
    arrival_time: Seconds
    input_len: int
    output_len: int
    deadline: Seconds | None = None
    priority: int = 0
    session: int | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")


def poisson_arrivals(
    workload: PromptWorkload,
    rate: Hertz,
    n_requests: int,
    rng: np.random.Generator,
    output_lengths: tuple[int, ...] = (8, 128, 512),
    output_weights: tuple[float, ...] = (0.2, 0.6, 0.2),
    deadline: Seconds | None = None,
) -> list[Request]:
    """Sample a Poisson request stream.

    Args:
        workload: Prompt-length distribution.
        rate: Mean arrivals per second.
        n_requests: Stream length.
        rng: Seeded generator.
        output_lengths: Possible response lengths (paper's 8/128/512).
        output_weights: Mixture weights over ``output_lengths``; they are
            normalized, so any non-negative weights with a positive sum
            are accepted.
        deadline: Optional per-request completion deadline (seconds after
            arrival) stamped on every request.

    Returns:
        Requests ordered by arrival time (empty for ``n_requests == 0``).

    Raises:
        ValueError: On ``rate <= 0``, ``n_requests < 0``, mismatched or
            empty length/weight vectors, or weights that are negative,
            non-finite, or sum to zero.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if not output_lengths or len(output_lengths) != len(output_weights):
        raise ValueError(
            "output_lengths and output_weights must be non-empty and align"
        )
    if any(length <= 0 for length in output_lengths):
        raise ValueError("output_lengths must be positive")
    weights = np.asarray(output_weights, dtype=np.float64)
    if not np.all(np.isfinite(weights)) or np.any(weights < 0):
        raise ValueError("output_weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("output_weights must sum to a positive value")
    weights = weights / total
    if n_requests == 0:
        return []

    gaps = rng.exponential(1.0 / rate, size=n_requests)
    arrivals = np.cumsum(gaps)
    inputs = workload.sample_input_lengths(n_requests, rng)
    outputs = rng.choice(output_lengths, size=n_requests, p=weights)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_len=int(inputs[i]),
            output_len=int(outputs[i]),
            deadline=deadline,
        )
        for i in range(n_requests)
    ]
