"""Tests for PerfEngine's request-assembly logic via a stub engine."""

import numpy as np
import pytest

from repro.engine.base import PerfEngine
from repro.hardware.costmodel import CostModel, OpWork
from repro.hardware.events import SimTask


class StubEngine(PerfEngine):
    """Iteration cost = base + slope * ctx_len (linear in context)."""

    name = "stub"

    def __init__(self, plan, base=0.010, slope=1e-5):
        super().__init__(plan)
        self.base = base
        self.slope = slope
        self.calls: list[tuple[int, int, int]] = []

    def iteration_tasks(self, ctx_len, n_tokens, batch, rng=None):
        self.calls.append((ctx_len, n_tokens, batch))
        return [
            SimTask("op", "gpu", self.base + self.slope * ctx_len, tag="stub")
        ]


@pytest.fixture
def stub(mini_plan_none):
    return StubEngine(mini_plan_none)


class TestRequestAssembly:
    def test_decode_time_integrates_linear_context(self, stub):
        # With cost linear in ctx, sampled integration is exact: mean cost
        # at evenly spaced context points x output length.
        result = stub.simulate_request(input_len=10, output_len=100, decode_samples=4)
        expected_mean = stub.base + stub.slope * np.mean(
            np.linspace(10, 109, 4).astype(int)
        )
        assert result.decode_time == pytest.approx(expected_mean * 100, rel=1e-6)

    def test_prompt_phase_runs_once_at_ctx_zero(self, stub):
        stub.simulate_request(input_len=7, output_len=3)
        prompt_calls = [c for c in stub.calls if c[1] == 7]
        assert prompt_calls == [(0, 7, 1)]

    def test_decode_samples_bounded_by_output(self, stub):
        stub.simulate_request(input_len=4, output_len=2, decode_samples=10)
        decode_calls = [c for c in stub.calls if c[1] == 1]
        assert len(decode_calls) == 2

    def test_breakdown_scales_with_output(self, stub):
        short = stub.simulate_request(4, 10)
        stub.calls.clear()
        long = stub.simulate_request(4, 100)
        assert long.breakdown["stub"] > short.breakdown["stub"] * 5

    def test_invalid_args(self, stub):
        for bad in ((0, 1, 1), (1, 0, 1), (1, 1, 0)):
            with pytest.raises(ValueError):
                stub.simulate_request(*bad)


class TestSharedCostHelpers:
    def test_activation_bytes(self, stub, mini_plan_none):
        d = mini_plan_none.model.d_model
        assert stub._activation_bytes(3) == 3 * d * 4.0

    def test_kv_read_bytes_linear_in_context(self, stub):
        assert stub._kv_read_bytes(200, 1, 1) > stub._kv_read_bytes(100, 1, 1)

    def test_kv_prompt_averaging(self, stub):
        # A prompt of n tokens at ctx 0 reads ~n/2 positions per token.
        per_token = stub._kv_read_bytes(0, 100, 1) / 100
        mid_ctx = stub._kv_read_bytes(50, 1, 1)
        assert per_token == pytest.approx(mid_ctx, rel=0.02)

    def test_kv_flops_match_bytes_shape(self, stub):
        assert stub._kv_flops(10, 2, 3) > 0


class TestCostModelTransferParity:
    def test_transfer_time_uses_link_effective_bandwidth(self, mini_plan_none):
        link = mini_plan_none.machine.link
        t = CostModel.transfer_time(1e9, link)
        assert t == pytest.approx(link.latency + 1e9 / link.effective_bandwidth)

    def test_opwork_zero_guard(self, mini_plan_none):
        assert CostModel.op_time(OpWork(), mini_plan_none.machine.gpu) >= 0
