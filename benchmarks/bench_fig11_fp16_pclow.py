"""Figure 11 — end-to-end FP16 speedup over llama.cpp on PC-Low.

Paper: average speedup 5.01x, peak 7.06x — smaller than PC-High because
the 11 GB RTX 2080Ti hosts fewer hot neurons, shifting load to the CPU.
"""

import numpy as np
from conftest import run_once

from repro.bench.end_to_end import run_fig10, run_fig11


def test_fig11_fp16_pc_low(benchmark, record_rows):
    rows = run_once(benchmark, run_fig11)
    record_rows("fig11_fp16_pclow", rows, "Figure 11 — FP16 generation speed, PC-Low")

    valid = [r for r in rows if not r["note"]]
    assert valid, "small OPT models must fit PC-Low in FP16"
    speedups = np.array([r["speedup"] for r in valid])
    assert speedups.mean() > 2.0
    assert speedups.max() > 3.0

    # PC-Low gains are smaller than PC-High gains on the models both run.
    high = {
        (r["model"], r["input"], r["output"]): r["speedup"]
        for r in run_fig10()
        if not r["note"]
    }
    shared = [
        (r["speedup"], high[(r["model"], r["input"], r["output"])])
        for r in valid
        if (r["model"], r["input"], r["output"]) in high
    ]
    assert shared, "some models must run on both machines"
    low_mean = np.mean([s for s, _ in shared])
    high_mean = np.mean([h for _, h in shared])
    assert low_mean < high_mean
