"""Roofline cost model mapping operator workloads to device latencies.

LLM token generation at small batch sizes is memory-bandwidth bound (paper
Section 6.3.1, Equation 5: the time to compute a neuron approximately equals
the time to read its weights once).  The cost model therefore charges each
operator

    ``launch_overhead + max(bytes_moved / effective_bandwidth,
                            flops / compute_throughput)``

which reduces to the paper's Equation 5 in the bandwidth-bound regime and
transitions to compute-bound behaviour at large batch sizes — exactly the
crossover the paper exploits in Figures 6 and 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import DeviceSpec, LinkSpec

__all__ = ["OpWork", "CostModel"]


@dataclass(frozen=True)
class OpWork:
    """Resource footprint of one operator invocation.

    Attributes:
        flops: Floating-point operations performed.
        bytes_read: Bytes read from device memory (weights + inputs).
        bytes_written: Bytes written to device memory (outputs).
    """

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("OpWork fields must be non-negative")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "OpWork") -> "OpWork":
        return OpWork(
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )

    def scaled(self, factor: float) -> "OpWork":
        """Scale all dimensions (e.g. by an activation fraction)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return OpWork(
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )


class CostModel:
    """Latency estimates for operators and transfers on a given machine."""

    @staticmethod
    def op_time(work: OpWork, device: DeviceSpec, include_launch: bool = True) -> float:
        """Execution time of ``work`` on ``device`` in seconds."""
        if work.flops == 0 and work.bytes_total == 0:
            return device.launch_overhead if include_launch else 0.0
        mem_time = work.bytes_total / device.effective_bandwidth
        compute_time = work.flops / device.compute_flops
        base = max(mem_time, compute_time)
        return base + (device.launch_overhead if include_launch else 0.0)

    @staticmethod
    def transfer_time(nbytes: float, link: LinkSpec) -> float:
        """Time to move ``nbytes`` across ``link`` in seconds."""
        return link.transfer_time(nbytes)

    @staticmethod
    def bandwidth_bound(work: OpWork, device: DeviceSpec) -> bool:
        """Whether the operator is limited by memory bandwidth."""
        mem_time = work.bytes_total / device.effective_bandwidth
        compute_time = work.flops / device.compute_flops
        return mem_time >= compute_time

    @staticmethod
    def neuron_time(neuron_bytes: float, device: DeviceSpec) -> float:
        """Paper Equation 5: per-neuron compute time ~= weight-read time."""
        if neuron_bytes < 0:
            raise ValueError("neuron_bytes must be non-negative")
        return neuron_bytes / device.effective_bandwidth
