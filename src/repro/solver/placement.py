"""Placement policies and neuron tables.

The solver's output is a per-group boolean mask of GPU-resident neurons.
A *group* is one sparsifiable block — an MLP block or an attention block of
one layer — since intra-layer synchronization (and hence the communication
constraint C_l) applies per block.

:class:`NeuronTable` is the runtime index mapping of paper Section 5.2: it
correlates each GPU/CPU-resident neuron with its original row/column in the
weight matrix so segmented neurons are multiplied against the right tensor
entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NeuronGroup", "NeuronTable", "PlacementPolicy"]


@dataclass(frozen=True)
class NeuronGroup:
    """Solver input for one sparsifiable block.

    Attributes:
        name: Unique identifier, e.g. ``"layer3.mlp"``.
        impacts: Per-neuron impact metric (activation frequency).
        neuron_bytes: Weight bytes per neuron in this group.
    """

    name: str
    impacts: np.ndarray
    neuron_bytes: float

    def __post_init__(self) -> None:
        impacts = np.asarray(self.impacts, dtype=np.float64)
        if impacts.ndim != 1 or impacts.size == 0:
            raise ValueError(f"group {self.name!r}: impacts must be non-empty 1-D")
        if (impacts < 0).any():
            raise ValueError(f"group {self.name!r}: impacts must be non-negative")
        if self.neuron_bytes <= 0:
            raise ValueError(f"group {self.name!r}: neuron_bytes must be positive")
        object.__setattr__(self, "impacts", impacts)

    @property
    def n_neurons(self) -> int:
        return int(self.impacts.size)

    @property
    def total_bytes(self) -> float:
        return self.n_neurons * self.neuron_bytes


@dataclass(frozen=True)
class NeuronTable:
    """Index mapping between a device's compact neuron store and the
    original matrix positions (paper Section 5.2)."""

    gpu_indices: np.ndarray  # original positions of GPU-resident neurons
    cpu_indices: np.ndarray  # original positions of CPU-resident neurons

    @property
    def n_neurons(self) -> int:
        return int(self.gpu_indices.size + self.cpu_indices.size)

    def nbytes(self) -> float:
        """Table storage cost (4-byte index per neuron).

        The paper reports ~9 MB for OPT-175B's 350 GB of weights.
        """
        return 4.0 * self.n_neurons

    def device_of(self, neuron: int) -> str:
        """``"gpu"`` or ``"cpu"`` for the given original neuron index."""
        if neuron in set(self.gpu_indices.tolist()):
            return "gpu"
        if neuron in set(self.cpu_indices.tolist()):
            return "cpu"
        raise KeyError(f"neuron {neuron} not in table")


@dataclass
class PlacementPolicy:
    """Solver output: per-group GPU masks plus bookkeeping.

    Attributes:
        groups: The solver inputs, in order.
        gpu_masks: One boolean array per group (True = GPU-resident).
        objective: Total impact captured on the GPU (Equation 2's value).
        solver_name: ``"ilp"``, ``"greedy"``, ...
    """

    groups: list[NeuronGroup]
    gpu_masks: list[np.ndarray]
    objective: float = 0.0
    solver_name: str = ""

    def __post_init__(self) -> None:
        if len(self.groups) != len(self.gpu_masks):
            raise ValueError("one mask per group required")
        for group, mask in zip(self.groups, self.gpu_masks):
            if mask.dtype != bool or mask.shape != (group.n_neurons,):
                raise ValueError(
                    f"group {group.name!r}: mask must be bool of shape "
                    f"({group.n_neurons},)"
                )

    def mask(self, group_name: str) -> np.ndarray:
        for group, mask in zip(self.groups, self.gpu_masks):
            if group.name == group_name:
                return mask
        raise KeyError(f"no group named {group_name!r}")

    def neuron_table(self, group_name: str) -> NeuronTable:
        mask = self.mask(group_name)
        idx = np.arange(mask.size)
        return NeuronTable(gpu_indices=idx[mask], cpu_indices=idx[~mask])

    # ---- summaries ---------------------------------------------------------

    @property
    def gpu_bytes(self) -> float:
        """Weight bytes resident on the GPU under this policy."""
        return sum(
            float(mask.sum()) * group.neuron_bytes
            for group, mask in zip(self.groups, self.gpu_masks)
        )

    @property
    def cpu_bytes(self) -> float:
        return sum(
            float((~mask).sum()) * group.neuron_bytes
            for group, mask in zip(self.groups, self.gpu_masks)
        )

    def gpu_impact_share(self) -> float:
        """Fraction of total impact (activation mass) on the GPU.

        With impact == activation frequency this is the expected fraction
        of activated-neuron computations the GPU serves — the quantity in
        the paper's Figure 12.
        """
        total = 0.0
        on_gpu = 0.0
        for group, mask in zip(self.groups, self.gpu_masks):
            total += float(group.impacts.sum())
            on_gpu += float(group.impacts[mask].sum())
        return on_gpu / total if total else 0.0

    def group_gpu_fraction(self, group_name: str) -> float:
        """Fraction of a group's neurons resident on GPU."""
        mask = self.mask(group_name)
        return float(mask.mean())
