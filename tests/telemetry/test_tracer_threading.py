"""Tracer threading: every simulation path records spans, none pay for it.

PR contract: passing ``tracer=None`` (default), a ``NullTracer``, or a
real ``Tracer`` must yield bit-identical simulation results — tracing is
observation, never perturbation — and the paths that used to drop the
parameter (request integration, dynamic batching, speculative decoding)
now record complete timelines.
"""

import pytest

from repro.engine.baselines import LlamaCppEngine
from repro.engine.powerinfer import PowerInferEngine
from repro.engine.speculative import SpeculativeEngine
from repro.serving.arrival import Request
from repro.serving.batched import simulate_batched_serving
from repro.telemetry.tracer import NullTracer, Tracer


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


def _request_fields(result):
    return (result.prompt_time, result.decode_time, result.breakdown)


class TestSimulateRequest:
    def test_bit_identity_across_tracers(self, engine):
        untraced = engine.simulate_request(16, 8)
        null = NullTracer()
        with_null = engine.simulate_request(16, 8, tracer=null)
        real = Tracer()
        with_real = engine.simulate_request(16, 8, tracer=real, trace_t0=5.0)
        assert _request_fields(untraced) == _request_fields(with_null)
        assert _request_fields(untraced) == _request_fields(with_real)
        assert len(null) == 0

    def test_sampled_timeline_recorded(self, engine):
        tracer = Tracer()
        engine.simulate_request(16, 8, tracer=tracer, trace_t0=2.0)
        iterations = {s.iteration for s in tracer.task_spans}
        assert 0 in iterations, "prompt iteration must be labelled 0"
        assert len(iterations) > 1, "decode samples must be recorded too"
        assert min(s.start for s in tracer.task_spans) == 2.0
        # Back-to-back: each iteration starts where the previous ended.
        spans = tracer.task_spans
        for it in sorted(iterations)[1:]:
            prev_end = max(s.end for s in spans if s.iteration == it - 1)
            this_start = min(s.start for s in spans if s.iteration == it)
            assert this_start == pytest.approx(prev_end, rel=1e-12)


class TestBatchedServing:
    def _requests(self):
        # Two windows with identical padded shape: the second is served
        # from the service-time cache.
        return [
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=8),
            Request(request_id=1, arrival_time=1000.0, input_len=16, output_len=8),
        ]

    def test_bit_identity_across_tracers(self, engine):
        reports = [
            simulate_batched_serving(engine, self._requests(), tracer=tracer)
            for tracer in (None, NullTracer(), Tracer())
        ]
        finish = [
            [(c.request.request_id, c.start_time, c.finish_time) for c in r.completed]
            for r in reports
        ]
        assert finish[0] == finish[1] == finish[2]

    def test_cache_hit_window_still_traced(self, engine):
        tracer = Tracer()
        simulate_batched_serving(engine, self._requests(), tracer=tracer)
        windows = tracer.regions_on("server")
        assert len(windows) == 2
        assert all(w.name == "batch" for w in windows)
        # The second window is a cache hit, but its spans are still there.
        second = windows[1]
        assert any(s.start >= second.start for s in tracer.task_spans)

    def test_null_tracer_records_nothing(self, engine):
        null = NullTracer()
        simulate_batched_serving(engine, self._requests(), tracer=null)
        assert len(null) == 0


class TestSpeculative:
    @pytest.fixture(scope="class")
    def spec(self, mini_plan, mini_plan_none):
        return SpeculativeEngine(
            target=PowerInferEngine(mini_plan),
            draft=LlamaCppEngine(mini_plan_none),
            draft_len=3,
            acceptance_rate=0.8,
        )

    def test_round_time_bit_identity(self, spec):
        untraced = spec.round_time(32)
        assert spec.round_time(32, tracer=NullTracer()) == untraced
        tracer = Tracer()
        assert spec.round_time(32, tracer=tracer, trace_t0=1.0) == untraced
        assert tracer.task_spans

    def test_request_bit_identity(self, spec):
        untraced = spec.simulate_request(16, 8)
        with_null = spec.simulate_request(16, 8, tracer=NullTracer())
        real = Tracer()
        with_real = spec.simulate_request(16, 8, tracer=real)
        assert _request_fields(untraced) == _request_fields(with_null)
        assert _request_fields(untraced) == _request_fields(with_real)
        assert {s.iteration for s in real.task_spans} >= {0}
