"""Activation traces: per-neuron activation counts gathered by the profiler.

The paper's profiler builds a neuron information table on the GPU that a
monitoring kernel increments whenever a neuron activates (Section 6.1).
:class:`ActivationTrace` is that table: per layer, one count per MLP neuron
(and optionally per attention head), plus the number of tokens observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ActivationTrace"]


@dataclass
class ActivationTrace:
    """Per-layer neuron activation counts over a profiling run.

    Attributes:
        mlp_counts: One array of shape ``(d_ffn,)`` per layer.
        attn_counts: One array of shape ``(n_heads,)`` per layer (optional).
        n_tokens: Number of tokens the counts were accumulated over.
    """

    mlp_counts: list[np.ndarray]
    attn_counts: list[np.ndarray] = field(default_factory=list)
    n_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.mlp_counts:
            raise ValueError("mlp_counts must be non-empty")
        if self.n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        if self.attn_counts and len(self.attn_counts) != len(self.mlp_counts):
            raise ValueError("attn_counts must match mlp_counts length")

    @property
    def n_layers(self) -> int:
        return len(self.mlp_counts)

    @classmethod
    def empty(
        cls, n_layers: int, mlp_neurons: int, attn_neurons: int = 0
    ) -> "ActivationTrace":
        """A zeroed trace ready for accumulation."""
        return cls(
            mlp_counts=[np.zeros(mlp_neurons, dtype=np.int64) for _ in range(n_layers)],
            attn_counts=(
                [np.zeros(attn_neurons, dtype=np.int64) for _ in range(n_layers)]
                if attn_neurons
                else []
            ),
            n_tokens=0,
        )

    def record_mlp(self, layer: int, mask: np.ndarray) -> None:
        """Accumulate a boolean activation mask of shape ``(t, n)`` or ``(n,)``."""
        mask = np.atleast_2d(mask)
        self.mlp_counts[layer] += mask.sum(axis=0).astype(np.int64)

    def record_attn(self, layer: int, mask: np.ndarray) -> None:
        mask = np.atleast_2d(mask)
        self.attn_counts[layer] += mask.sum(axis=0).astype(np.int64)

    def advance_tokens(self, t: int) -> None:
        """Count ``t`` more observed tokens."""
        if t < 0:
            raise ValueError("t must be non-negative")
        self.n_tokens += t

    def mlp_rates(self, layer: int) -> np.ndarray:
        """Per-neuron activation probability estimates for ``layer``."""
        if self.n_tokens == 0:
            raise ValueError("no tokens profiled yet")
        return self.mlp_counts[layer] / self.n_tokens

    def attn_rates(self, layer: int) -> np.ndarray:
        if self.n_tokens == 0:
            raise ValueError("no tokens profiled yet")
        return self.attn_counts[layer] / self.n_tokens

    def all_mlp_rates(self) -> list[np.ndarray]:
        return [self.mlp_rates(li) for li in range(self.n_layers)]

    def merge(self, other: "ActivationTrace") -> "ActivationTrace":
        """Combine two traces over disjoint token sets."""
        if other.n_layers != self.n_layers:
            raise ValueError("layer count mismatch")
        if bool(self.attn_counts) != bool(other.attn_counts):
            raise ValueError("attention-count presence mismatch")
        return ActivationTrace(
            mlp_counts=[a + b for a, b in zip(self.mlp_counts, other.mlp_counts)],
            attn_counts=[a + b for a, b in zip(self.attn_counts, other.attn_counts)],
            n_tokens=self.n_tokens + other.n_tokens,
        )

    # ---- persistence ------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace to an ``.npz`` file."""
        arrays = {f"mlp_{i}": c for i, c in enumerate(self.mlp_counts)}
        arrays.update({f"attn_{i}": c for i, c in enumerate(self.attn_counts)})
        arrays["n_tokens"] = np.asarray(self.n_tokens)
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "ActivationTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(path) as data:
            mlp = [data[k] for k in sorted(
                (k for k in data.files if k.startswith("mlp_")),
                key=lambda k: int(k.split("_")[1]),
            )]
            attn = [data[k] for k in sorted(
                (k for k in data.files if k.startswith("attn_")),
                key=lambda k: int(k.split("_")[1]),
            )]
            n_tokens = int(data["n_tokens"])
        return cls(mlp_counts=mlp, attn_counts=attn, n_tokens=n_tokens)
