"""Unit tests for the counter/gauge/histogram registry."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("iters")
        c.inc()
        c.inc(2.5)
        assert c.summary() == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("iters").inc(-1.0)


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("kv")
        g.set(5.0)
        g.set(2.0)
        g.set(3.0)
        assert g.summary() == {"last": 3.0, "min": 2.0, "max": 5.0}

    def test_unset_gauge_summary_is_none(self):
        assert Gauge("kv").summary() == {"last": None, "min": None, "max": None}


class TestHistogram:
    def test_stats_and_percentiles(self):
        h = Histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.percentile(0) == pytest.approx(1.0)
        assert h.percentile(100) == pytest.approx(4.0)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert set(s) == {"count", "mean", "min", "max", "p50", "p95", "p99"}

    def test_empty_summary_and_percentile(self):
        h = Histogram("latency")
        assert h.summary() == {"count": 0}
        with pytest.raises(ValueError):
            h.percentile(50)

    def test_percentile_validates_q(self):
        h = Histogram("latency")
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_summary_shape(self):
        reg = MetricsRegistry()
        reg.counter("iters").inc(4)
        reg.gauge("kv").set(10.0)
        reg.histogram("ttft").record(0.5)
        s = reg.summary()
        assert s["counters"] == {"iters": 4.0}
        assert s["gauges"]["kv"]["last"] == 10.0
        assert s["histograms"]["ttft"]["count"] == 1

    def test_merge_into_copies_and_guards_collisions(self):
        reg = MetricsRegistry()
        reg.counter("iters").inc()
        report = {"makespan_s": 1.0}
        merged = reg.merge_into(report)
        assert merged["telemetry"]["counters"] == {"iters": 1.0}
        assert "telemetry" not in report  # original untouched
        with pytest.raises(ValueError):
            reg.merge_into(merged)
