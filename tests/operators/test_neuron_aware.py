"""Tests for neuron-aware sparse operators: exactness vs dense reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.dense import dense_gemv, dense_gemv_work
from repro.operators.neuron_aware import (
    CpuNeuronGemv,
    gather_cols_gemv,
    gather_rows_gemv,
    neuron_gemv_work,
    scatter_to_dense,
)


@pytest.fixture
def weight(rng):
    return rng.standard_normal((64, 32)).astype(np.float32)


@pytest.fixture
def x(rng):
    return rng.standard_normal(32).astype(np.float32)


class TestGatherRows:
    def test_matches_dense_subset(self, weight, x, rng):
        active = np.sort(rng.choice(64, size=20, replace=False))
        compact = gather_rows_gemv(weight, x, active)
        dense = dense_gemv(weight, x)
        assert np.allclose(compact, dense[active], atol=1e-5)

    def test_bias_applied_per_neuron(self, weight, x, rng):
        bias = rng.standard_normal(64).astype(np.float32)
        active = np.array([3, 10])
        out = gather_rows_gemv(weight, x, active, bias)
        assert np.allclose(out, (weight[active] @ x) + bias[active], atol=1e-5)

    def test_batched_input(self, weight, rng):
        xb = rng.standard_normal((5, 32)).astype(np.float32)
        active = np.array([0, 63])
        out = gather_rows_gemv(weight, xb, active)
        assert out.shape == (5, 2)

    def test_empty_active_set(self, weight, x):
        out = gather_rows_gemv(weight, x, np.array([], dtype=int))
        assert out.shape == (0,)


class TestGatherCols:
    def test_matches_dense_with_zeroed_inactive(self, rng):
        fc2 = rng.standard_normal((32, 64)).astype(np.float32)
        hidden = rng.standard_normal(64).astype(np.float32)
        active = np.sort(rng.choice(64, size=25, replace=False))
        masked = np.zeros_like(hidden)
        masked[active] = hidden[active]
        dense = fc2 @ masked
        compact = gather_cols_gemv(fc2, hidden[active], active)
        assert np.allclose(compact, dense, atol=1e-5)

    def test_shape_mismatch_in_scatter(self):
        with pytest.raises(ValueError):
            scatter_to_dense(np.zeros(3), np.array([0, 1]), 10)


class TestScatter:
    def test_scatter_inverse_of_gather(self, rng):
        values = rng.standard_normal(5).astype(np.float32)
        idx = np.array([1, 3, 5, 7, 9])
        dense = scatter_to_dense(values, idx, 12)
        assert np.allclose(dense[idx], values)
        mask = np.ones(12, dtype=bool)
        mask[idx] = False
        assert (dense[mask] == 0).all()

    def test_batched_scatter(self, rng):
        values = rng.standard_normal((4, 3)).astype(np.float32)
        dense = scatter_to_dense(values, np.array([0, 5, 9]), 10)
        assert dense.shape == (4, 10)


class TestCpuOperator:
    def test_matches_gather_reference(self, weight, x, rng):
        op = CpuNeuronGemv(n_cores=4)
        mask = rng.random(64) < 0.3
        compact, indices, per_core = op.run(weight, x, mask)
        assert np.array_equal(indices, np.nonzero(mask)[0])
        assert np.allclose(
            compact, gather_rows_gemv(weight, x, indices), atol=1e-5
        )
        assert sum(per_core) == int(mask.sum())

    def test_partition_covers_all_neurons(self):
        op = CpuNeuronGemv(n_cores=3)
        slices = op.partition(64)
        covered = sorted(i for s in slices for i in range(s.start, s.stop))
        assert covered == list(range(64))
        assert len(slices) == 3

    def test_no_active_neurons(self, weight, x):
        op = CpuNeuronGemv(n_cores=2)
        compact, indices, per_core = op.run(weight, x, np.zeros(64, dtype=bool))
        assert compact.shape[-1] == 0
        assert indices.size == 0
        assert per_core == [0, 0]

    def test_mask_shape_validated(self, weight, x):
        with pytest.raises(ValueError):
            CpuNeuronGemv().run(weight, x, np.zeros(10, dtype=bool))

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            CpuNeuronGemv(n_cores=0)

    @given(
        n_cores=st.integers(1, 16),
        n_active=st.integers(0, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_core_count_never_changes_result(self, n_cores, n_active):
        rng = np.random.default_rng(42)
        weight = rng.standard_normal((64, 16)).astype(np.float32)
        x = rng.standard_normal(16).astype(np.float32)
        mask = np.zeros(64, dtype=bool)
        mask[rng.choice(64, size=n_active, replace=False)] = True
        ref_compact, ref_idx, _ = CpuNeuronGemv(1).run(weight, x, mask)
        compact, idx, _ = CpuNeuronGemv(n_cores).run(weight, x, mask)
        assert np.array_equal(idx, ref_idx)
        assert np.allclose(compact, ref_compact, atol=1e-5)


class TestWorkAccounting:
    def test_neuron_work_scales_with_active(self):
        half = neuron_gemv_work(50, 1024)
        full = neuron_gemv_work(100, 1024)
        assert full.flops == 2 * half.flops
        assert full.bytes_read > half.bytes_read

    def test_full_density_matches_dense_weight_bytes(self):
        na = neuron_gemv_work(64, 32)
        dn = dense_gemv_work(64, 32)
        # Weight traffic identical at 0% sparsity; activation I/O may
        # differ by layout but stays the same here too.
        assert na.bytes_read == dn.bytes_read
        assert na.flops == dn.flops

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            neuron_gemv_work(-1, 10)
        with pytest.raises(ValueError):
            dense_gemv_work(0, 10)
