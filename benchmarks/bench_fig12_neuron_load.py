"""Figure 12 — neuron-load split between GPU and CPU.

Paper: on PC-High PowerInfer raises the GPU's share of activated-neuron
computation from llama.cpp's ~20% average to ~70%; on PC-Low the share
drops (e.g. ~42% for a 60 GB model on the 11 GB GPU).
"""

from conftest import run_once

from repro.bench.fig12 import run_fig12


def test_fig12_neuron_load(benchmark, record_rows):
    rows = run_once(benchmark, run_fig12)
    record_rows("fig12_neuron_load", rows, "Figure 12 — GPU neuron-load share")

    high = [r for r in rows if r["machine"] == "pc-high"]
    low = [r for r in rows if r["machine"] == "pc-low"]
    assert high and low

    for row in rows:
        assert row["powerinfer_gpu_load"] > row["llamacpp_gpu_load"], row

    # PC-High: PowerInfer's GPU share lands near the paper's ~70%.
    mean_high = sum(r["powerinfer_gpu_load"] for r in high) / len(high)
    assert mean_high > 0.6

    # Memory pressure lowers the share: PC-Low's mean is below PC-High's.
    mean_low = sum(r["powerinfer_gpu_load"] for r in low) / len(low)
    assert mean_low < mean_high
