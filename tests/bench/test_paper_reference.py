"""Tests for the paper-anchor reference data."""

import pytest

from repro.bench.paper_reference import PAPER_ANCHORS, anchor


class TestAnchors:
    def test_headline_values(self):
        assert anchor("fp16.max_speedup.pc_high") == 11.69
        assert anchor("int4.mean_tps.pc_high") == 13.20
        assert anchor("a100.gap.powerinfer.input1") == 0.18

    def test_unknown_key_lists_options(self):
        with pytest.raises(KeyError, match="known"):
            anchor("nonsense.key")

    def test_every_anchor_is_documented(self):
        for a in PAPER_ANCHORS.values():
            assert a.source, a.key
            assert a.description, a.key
            assert a.unit, a.key

    def test_fractions_are_valid(self):
        for a in PAPER_ANCHORS.values():
            if a.unit == "fraction":
                assert 0.0 <= a.value <= 1.0, a.key

    def test_keys_match_registry(self):
        for key, a in PAPER_ANCHORS.items():
            assert a.key == key

    def test_consistency_pairs(self):
        # Peak >= mean for speed anchors.
        assert anchor("fp16.peak_tps.pc_high") >= anchor("fp16.mean_tps.pc_high")
        assert anchor("int4.peak_tps.pc_high") >= anchor("int4.mean_tps.pc_high")
        assert anchor("fp16.max_speedup.pc_high") >= anchor("fp16.mean_speedup.pc_high")
        # Stage ablation is monotone.
        assert (
            anchor("ablation.po_speedup.opt30b")
            < anchor("ablation.engine_speedup.opt30b")
            < anchor("ablation.policy_speedup.opt30b")
        )
