"""Fleet-level run results: merged report, per-replica evidence, counters.

The fleet's headline numbers reuse the single-server report type
(:class:`~repro.serving.metrics.ContinuousReport`) so every downstream
metric — goodput, TTFT/TBT percentiles, deadline-miss rate, SLO
attainment — works unchanged at fleet scale, and a 1-replica fleet
degenerates to a bit-identical single-server report.  On top of that the
:class:`FleetResult` keeps the evidence the fleet validator replays:
per-replica reports and KV ledgers, the realized KV-transfer schedule,
and the router's decision counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.schedule import KVEvent
from repro.serving.metrics import SLO, ContinuousReport
from repro.units import Bytes, Ratio, Seconds

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.events import ScheduleResult
    from repro.hardware.faults import FaultSchedule
    from repro.hardware.spec import LinkSpec, MachineSpec

__all__ = ["ReplicaSummary", "FleetResult"]


@dataclass
class ReplicaSummary:
    """One replica's run evidence, as the fleet validator needs it.

    ``machine_spec`` is the replica's full :class:`MachineSpec` (the
    energy meter prices spans against its power envelope; ``machine``
    keeps the name for JSON summaries).
    """

    name: str
    machine: str
    role: str
    report: ContinuousReport
    ledger: list[KVEvent]
    kv_budget_bytes: Bytes
    machine_faults: "FaultSchedule | None"
    crash_windows: tuple[tuple[Seconds, Seconds], ...]
    detected_windows: tuple[tuple[Seconds, Seconds], ...]
    machine_spec: "MachineSpec | None" = None


@dataclass
class FleetResult:
    """Everything a fleet run produced.

    Attributes:
        report: Fleet-merged :class:`ContinuousReport` — completions are
            stitched across migrations (one entry per *original* request,
            full token timeline), dispositions are router-level, busy and
            degraded intervals are the concatenation over replicas, and
            the count fields (iterations/aborts/retries, KV peak/budget)
            are fleet sums.  ``peak_kv_bytes`` is the sum of per-replica
            peaks (an upper bound on the true simultaneous fleet peak).
        replicas: Per-replica evidence (:class:`ReplicaSummary`).
        transfers: Realized KV-transfer schedule for disaggregated runs
            (``None`` when nothing was transferred); validated with
            :func:`repro.check.schedule.validate_schedule`.
        counters: Router decision counts — ``dispatches``,
            ``redispatches``, ``failovers``, ``detections``, ``hedges``,
            ``hedge_wins``, ``hedge_cancels``, ``brownout_shed``.
        hedged_ids: Request ids that were hedged (served concurrently on
            two replicas on purpose — the migration-conservation check
            exempts them).
        horizon: End of the fleet timeline (max of replica clocks and
            processed event times).
        interconnect: The :class:`LinkSpec` KV transfers crossed — the
            energy meter prices the transfer schedule against its power
            envelope.
    """

    report: ContinuousReport
    replicas: list[ReplicaSummary]
    transfers: "ScheduleResult | None" = None
    counters: dict[str, int] = field(default_factory=dict)
    hedged_ids: frozenset[int] = frozenset()
    horizon: Seconds = 0.0
    interconnect: "LinkSpec | None" = None

    @property
    def availability(self) -> Ratio:
        """Fraction of submitted requests that completed."""
        n = self.report.n_submitted
        if not n:
            return 1.0
        return len(self.report.completed) / n

    @property
    def capacity_availability(self) -> Ratio:
        """Replica-seconds up (as detected) over replica-seconds total."""
        if not self.replicas or self.horizon <= 0:
            return 1.0
        down = 0.0
        for rep in self.replicas:
            for start, end in rep.detected_windows:
                down += max(0.0, min(end, self.horizon) - min(start, self.horizon))
        return 1.0 - down / (len(self.replicas) * self.horizon)

    def to_dict(
        self,
        slo: SLO | None = None,
        percentiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
    ) -> dict:
        """JSON-ready fleet summary: the merged report plus fleet extras."""
        out = self.report.to_dict(slo=slo, percentiles=percentiles)
        out["fleet"] = {
            "n_replicas": len(self.replicas),
            "availability": self.availability,
            "capacity_availability": self.capacity_availability,
            "horizon_s": self.horizon,
            "counters": dict(self.counters),
            "n_transfers": len(self.transfers.tasks) if self.transfers else 0,
            "replicas": [
                {
                    "name": rep.name,
                    "machine": rep.machine,
                    "role": rep.role,
                    "n_iterations": rep.report.n_iterations,
                    "n_completed_segments": len(rep.report.completed),
                    "crash_windows": list(rep.crash_windows),
                    "detected_windows": list(rep.detected_windows),
                }
                for rep in self.replicas
            ],
        }
        return out
