"""Multi-window burn-rate SLO alerting on the simulated clock.

Google-SRE-style alerting for the simulated fleet: an
:class:`SLOObjective` grants an error budget (the fraction of requests
allowed to violate a target — miss their TTFT, stretch a token gap,
blow a deadline), and the **burn rate** over a trailing window is how
fast that budget is being consumed::

    burn_rate(W) = bad_fraction(now - W, now) / budget

A :class:`BurnRateRule` pairs a long window (evidence the problem is
real) with a short window (evidence it is *still* happening) and fires
when both burn at or above its threshold — the multi-window pattern
that keeps alerts fast during an incident and quiet once recovery
starts.  The :class:`SLOMonitor` holds per-objective observation
streams, evaluates every rule at each ``check()``, applies hysteresis
(a firing rule stays silent until its short window recovers), and
timestamps every :class:`Alert` on the simulated clock, annotated with
whatever fault/crash/degraded windows the caller reports overlapping
the alert instant.

The fleet router feeds the monitor (observations at request
dispositions, checks on its tick grid — see
:class:`~repro.serving.fleet.router.FleetRouter`); nothing here reads
the wall clock or keeps global state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "SLOObjective",
    "BurnRateRule",
    "Alert",
    "SLOMonitor",
]


@dataclass(frozen=True)
class SLOObjective:
    """One objective: a bounded fraction of requests may go bad.

    Attributes:
        name: Objective identifier (``"ttft"``, ``"tbt"``,
            ``"deadline"``, ...).
        budget: Allowed bad fraction over the compliance period
            (``0.1`` = 10% of requests may violate the target).
    """

    name: str
    budget: float

    def __post_init__(self) -> None:
        if not 0.0 < self.budget < 1.0:
            raise ValueError("budget must be a fraction in (0, 1)")


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when both trailing windows burn budget at ``threshold`` x.

    ``long_window_s`` establishes the incident; ``short_window_s``
    proves it is ongoing (and resets the alert quickly once the bleed
    stops).  ``threshold`` is in budget-per-compliance-period units: a
    burn rate of 1.0 spends exactly the budget.
    """

    long_window_s: float
    short_window_s: float
    threshold: float

    def __post_init__(self) -> None:
        if self.long_window_s <= 0 or self.short_window_s <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError("short window must not exceed the long window")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


@dataclass(frozen=True)
class Alert:
    """One burn-rate alert, timestamped on the simulated clock.

    ``context`` carries the fault/crash/degraded annotations overlapping
    the alert instant (as reported by the caller at ``check()`` time) —
    the "what else was going on" an on-call would want inline.
    """

    objective: str
    time: float
    burn_rate_long: float
    burn_rate_short: float
    long_window_s: float
    short_window_s: float
    threshold: float
    context: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "time": self.time,
            "burn_rate_long": self.burn_rate_long,
            "burn_rate_short": self.burn_rate_short,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "threshold": self.threshold,
            "context": list(self.context),
        }

    def format(self) -> str:
        ctx = f" [{', '.join(self.context)}]" if self.context else ""
        return (
            f"t={self.time:.3f}s {self.objective}: burn "
            f"{self.burn_rate_long:.2f}x/{self.long_window_s:.3g}s and "
            f"{self.burn_rate_short:.2f}x/{self.short_window_s:.3g}s "
            f">= {self.threshold:.3g}x{ctx}"
        )


@dataclass
class _RuleState:
    firing: bool = False


class SLOMonitor:
    """Evaluates burn-rate rules over per-objective observation streams.

    Observations arrive via :meth:`observe` (one ``good``/``bad`` verdict
    per request per objective, timestamped on the simulated clock, in
    non-decreasing order); :meth:`check` evaluates every (objective,
    rule) pair at one instant and returns the alerts that *newly* fired
    there.  All fired alerts accumulate on :attr:`alerts`.
    """

    def __init__(
        self,
        objectives: list[SLOObjective] | tuple[SLOObjective, ...],
        rules: list[BurnRateRule] | tuple[BurnRateRule, ...],
        max_observations: int = 65536,
    ) -> None:
        if not objectives:
            raise ValueError("an SLO monitor needs at least one objective")
        if not rules:
            raise ValueError("an SLO monitor needs at least one burn-rate rule")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique, got {names}")
        self.objectives: dict[str, SLOObjective] = {o.name: o for o in objectives}
        self.rules = tuple(rules)
        self._observations: dict[str, deque[tuple[float, bool]]] = {
            name: deque(maxlen=max_observations) for name in self.objectives
        }
        self._state: dict[tuple[str, int], _RuleState] = {
            (name, i): _RuleState()
            for name in self.objectives
            for i in range(len(self.rules))
        }
        self.alerts: list[Alert] = []

    def observe(self, objective: str, time: float, bad: bool) -> None:
        """Record one request's verdict against one objective."""
        stream = self._observations.get(objective)
        if stream is None:
            raise KeyError(f"unknown objective {objective!r}")
        if stream and time < stream[-1][0]:
            raise ValueError(
                f"observation at {time:.6g}s precedes the previous one at "
                f"{stream[-1][0]:.6g}s (the simulated clock never rolls back)"
            )
        stream.append((time, bad))

    def bad_fraction(self, objective: str, t0: float, t1: float) -> float | None:
        """Bad fraction of observations in ``[t0, t1]``; None when empty."""
        stream = self._observations[objective]
        total = bad = 0
        for time, was_bad in stream:
            if t0 <= time <= t1:
                total += 1
                bad += was_bad
        if total == 0:
            return None
        return bad / total

    def burn_rate(self, objective: str, window_s: float, now: float) -> float | None:
        """Budget-consumption rate over the trailing ``window_s`` at ``now``."""
        fraction = self.bad_fraction(objective, now - window_s, now)
        if fraction is None:
            return None
        return fraction / self.objectives[objective].budget

    def check(self, now: float, context: tuple[str, ...] = ()) -> list[Alert]:
        """Evaluate every (objective, rule) pair at ``now``.

        Returns the alerts that newly fired (hysteresis: a pair that is
        already firing stays silent until its short-window burn drops
        below the threshold, so one incident produces one alert per
        pair, not one per check).
        """
        fired: list[Alert] = []
        for name in self.objectives:
            for i, rule in enumerate(self.rules):
                state = self._state[(name, i)]
                long_burn = self.burn_rate(name, rule.long_window_s, now)
                short_burn = self.burn_rate(name, rule.short_window_s, now)
                hot = (
                    long_burn is not None
                    and short_burn is not None
                    and long_burn >= rule.threshold
                    and short_burn >= rule.threshold
                )
                if hot and not state.firing:
                    state.firing = True
                    alert = Alert(
                        objective=name,
                        time=now,
                        burn_rate_long=long_burn,
                        burn_rate_short=short_burn,
                        long_window_s=rule.long_window_s,
                        short_window_s=rule.short_window_s,
                        threshold=rule.threshold,
                        context=tuple(context),
                    )
                    fired.append(alert)
                    self.alerts.append(alert)
                elif state.firing and (short_burn is None or short_burn < rule.threshold):
                    state.firing = False
        return fired

    def to_dicts(self) -> list[dict]:
        """Every fired alert as a JSON-ready dict, in firing order."""
        return [a.to_dict() for a in self.alerts]
