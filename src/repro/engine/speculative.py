"""Speculative decoding on top of PowerInfer (paper Section 9, future work).

The paper notes that speculative inference "could further boost LLM
inference speed" when combined with PowerInfer.  This module models the
standard draft-then-verify scheme:

1. a small *draft* engine autoregressively proposes ``draft_len`` tokens;
2. the *target* engine verifies the whole proposal in **one** iteration —
   a token block of ``draft_len + 1`` positions, which for PowerInfer means
   the activation union densifies slightly (like a small batch) but the hot
   weights are read once;
3. accepted-token count follows the usual geometric law: with per-token
   acceptance probability ``alpha``, a round yields on average
   ``(1 - alpha^(k+1)) / (1 - alpha)`` tokens.

The interplay the paper hints at falls out of the simulation: the target's
verify step costs barely more than a single decode (bandwidth-bound, shared
weights), so rounds amortize the expensive CPU-side cold-neuron sweep over
several output tokens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.engine.base import PerfEngine
from repro.engine.results import RequestResult

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.tracer import Tracer

__all__ = ["SpeculativeEngine", "expected_accepted_tokens"]


def expected_accepted_tokens(draft_len: int, acceptance_rate: float) -> float:
    """Mean tokens produced per speculative round (including the bonus
    token the verifier emits when every draft token is accepted)."""
    if draft_len < 1:
        raise ValueError("draft_len must be >= 1")
    if not 0.0 <= acceptance_rate < 1.0:
        raise ValueError("acceptance_rate must be in [0, 1)")
    if acceptance_rate == 0.0:
        return 1.0
    a = acceptance_rate
    return float((1.0 - a ** (draft_len + 1)) / (1.0 - a))


class SpeculativeEngine:
    """Draft-and-verify wrapper around two performance engines.

    Args:
        target: The full-quality engine (e.g. PowerInfer on OPT-30B).
        draft: A cheap engine proposing tokens (e.g. a small dense model
            resident on the GPU).
        draft_len: Tokens proposed per round.
        acceptance_rate: Probability each draft token survives
            verification (workload/model dependent; 0.7-0.9 is typical).
    """

    name = "speculative"

    def __init__(
        self,
        target: PerfEngine,
        draft: PerfEngine,
        draft_len: int = 4,
        acceptance_rate: float = 0.8,
    ) -> None:
        if target.machine is not draft.machine and (
            target.machine.name != draft.machine.name
        ):
            raise ValueError("target and draft must run on the same machine")
        self.target = target
        self.draft = draft
        self.draft_len = draft_len
        self.acceptance_rate = acceptance_rate
        # Validate the hyperparameters eagerly.
        expected_accepted_tokens(draft_len, acceptance_rate)

    @property
    def tokens_per_round(self) -> float:
        return expected_accepted_tokens(self.draft_len, self.acceptance_rate)

    def round_time(
        self,
        ctx_len: int,
        batch: int = 1,
        rng: np.random.Generator | None = None,
        tracer: "Tracer | None" = None,
        trace_t0: float = 0.0,
    ) -> float:
        """Seconds per speculative round at the given context length.

        A ``tracer`` records the round's timeline from ``trace_t0``: the
        draft iterations back to back, then the verify iteration.
        """
        trace_now = trace_t0
        draft_time = 0.0
        for i in range(self.draft_len):
            result = self.draft.simulate_iteration(
                ctx_len + i, 1, batch, rng, tracer=tracer, trace_t0=trace_now
            )
            draft_time += result.makespan
            trace_now += result.makespan
        verify_time = self.target.simulate_iteration(
            ctx_len, self.draft_len + 1, batch, rng, tracer=tracer, trace_t0=trace_now
        ).makespan
        return draft_time + verify_time

    def simulate_request(
        self,
        input_len: int,
        output_len: int,
        batch: int = 1,
        decode_samples: int = 3,
        rng: np.random.Generator | None = None,
        tracer: "Tracer | None" = None,
        trace_t0: float = 0.0,
    ) -> RequestResult:
        """End-to-end request with speculative decoding.

        The prompt phase runs on the target alone; decode rounds are
        sampled at a few context points and integrated, like
        :meth:`PerfEngine.simulate_request`.  A ``tracer`` records the
        sampled timeline (prompt, then each sampled round) from
        ``trace_t0``; results are bit-identical either way.
        """
        if input_len <= 0 or output_len <= 0:
            raise ValueError("input_len and output_len must be positive")
        prompt = self.target.simulate_iteration(
            0, input_len, batch, rng, tracer=tracer, trace_t0=trace_t0, trace_iteration=0
        )
        rounds = output_len / self.tokens_per_round
        ctx_points = np.linspace(
            input_len, input_len + output_len - 1, min(decode_samples, output_len)
        )
        trace_now = trace_t0 + prompt.makespan
        round_times = []
        for c in ctx_points:
            rt = self.round_time(
                int(c), batch, rng, tracer=tracer, trace_t0=trace_now
            )
            round_times.append(rt)
            trace_now += rt
        mean_round = float(np.mean(round_times))
        decode_time = rounds * mean_round
        return RequestResult(
            engine=self.name,
            model=self.target.model.name,
            input_len=input_len,
            output_len=output_len,
            batch=batch,
            prompt_time=prompt.makespan,
            decode_time=decode_time,
            breakdown={"speculative-round": decode_time, **prompt.time_by_tag()},
            gpu_load_share=self.target.gpu_load_share(batch),
        )
