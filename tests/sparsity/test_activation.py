"""Tests for the runtime activation sampler."""

import numpy as np
import pytest

from repro.sparsity.activation import ActivationModel, LayerActivationProfile


@pytest.fixture
def profile(rng):
    return LayerActivationProfile(probs=rng.random(512) * 0.3)


@pytest.fixture
def model(profile, rng):
    return ActivationModel([profile, profile], rng)


class TestProfile:
    def test_mean_rate(self):
        prof = LayerActivationProfile(probs=np.array([0.1, 0.3]))
        assert prof.mean_rate == pytest.approx(0.2)

    def test_union_probs_formula(self):
        prof = LayerActivationProfile(probs=np.array([0.5]))
        assert prof.union_probs(2)[0] == pytest.approx(0.75)
        assert prof.union_probs(1)[0] == pytest.approx(0.5)

    def test_union_rate_increases_with_batch(self, profile):
        rates = [profile.union_rate(b) for b in (1, 2, 8, 32)]
        assert rates == sorted(rates)
        assert rates[-1] <= 1.0

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            LayerActivationProfile(probs=np.array([1.5]))
        with pytest.raises(ValueError):
            LayerActivationProfile(probs=np.array([[0.1]]))

    def test_invalid_batch_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.union_probs(0)


class TestSampling:
    def test_mask_shape_and_dtype(self, model):
        mask = model.sample_mlp_mask(0)
        assert mask.shape == (512,)
        assert mask.dtype == bool

    def test_empirical_rate_matches_probs(self, rng):
        probs = np.full(2000, 0.2)
        am = ActivationModel([LayerActivationProfile(probs)], rng)
        rates = np.mean([am.sample_mlp_mask(0).mean() for _ in range(50)])
        assert rates == pytest.approx(0.2, abs=0.02)

    def test_batch_union_denser(self, rng):
        probs = np.full(2000, 0.1)
        am = ActivationModel([LayerActivationProfile(probs)], rng)
        single = np.mean([am.sample_mlp_mask(0, 1).mean() for _ in range(30)])
        batched = np.mean([am.sample_mlp_mask(0, 16).mean() for _ in range(30)])
        assert batched > single * 3

    def test_attn_requires_profiles(self, model):
        with pytest.raises(ValueError, match="attention"):
            model.sample_attn_mask(0)

    def test_attn_sampling_works(self, rng):
        mlp = LayerActivationProfile(rng.random(64))
        attn = LayerActivationProfile(rng.random(8))
        am = ActivationModel([mlp], rng, attn_profiles=[attn])
        assert am.sample_attn_mask(0).shape == (8,)


class TestExpectedSplit:
    def test_split_sums_to_expected_total(self, rng):
        probs = rng.random(100) * 0.5
        am = ActivationModel([LayerActivationProfile(probs)], rng)
        gpu_mask = np.zeros(100, dtype=bool)
        gpu_mask[:40] = True
        on_gpu, on_cpu = am.expected_active_split(0, gpu_mask)
        assert on_gpu + on_cpu == pytest.approx(probs.sum())
        assert on_gpu == pytest.approx(probs[:40].sum())

    def test_mismatched_mask_rejected(self, model):
        with pytest.raises(ValueError):
            model.expected_active_split(0, np.zeros(3, dtype=bool))


class TestValidation:
    def test_empty_profiles_rejected(self, rng):
        with pytest.raises(ValueError):
            ActivationModel([], rng)

    def test_mismatched_attn_length_rejected(self, profile, rng):
        with pytest.raises(ValueError):
            ActivationModel([profile], rng, attn_profiles=[profile, profile])
