"""Back-of-envelope throughput bounds from the roofline model alone.

The discrete-event engines answer "what does this schedule cost"; this
module answers the coarser sizing question a user asks first: *given this
model, this machine, and this dtype, what token rates are even possible?*

Four analytic bounds per configuration (generation phase, batch 1,
bandwidth-bound — the regime of paper Equation 5):

* ``dense_gpu_only`` — the whole model streams from GPU memory every token
  (the vLLM-on-A100 bound; hypothetical if the model does not fit);
* ``dense_hybrid`` — llama.cpp's layer split: GPU-resident bytes at GPU
  bandwidth, the spill at CPU bandwidth, fully serialized;
* ``sparse_hybrid`` — only activated neurons are touched, split
  hot-on-GPU / cold-on-CPU with CPU and GPU overlapped (PowerInfer's
  structure): time = max(device times);
* ``oracle_gpu_sparse`` — activated neurons only, all magically on the GPU
  (the ceiling no placement policy can beat).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import MachineSpec
from repro.models.config import ModelConfig
from repro.quant.formats import FP16, DType

__all__ = ["ThroughputBounds", "throughput_bounds"]


@dataclass(frozen=True)
class ThroughputBounds:
    """Analytic tokens/s bounds for one (model, machine, dtype) setup."""

    dense_gpu_only: float
    dense_hybrid: float
    sparse_hybrid: float
    oracle_gpu_sparse: float
    gpu_weight_fraction: float  # fraction of weights GPU-resident
    active_fraction: float  # fraction of weight bytes touched per token

    def as_rows(self) -> list[dict]:
        """Table-friendly representation."""
        return [
            {"bound": "dense_gpu_only", "tokens_per_s": self.dense_gpu_only},
            {"bound": "dense_hybrid", "tokens_per_s": self.dense_hybrid},
            {"bound": "sparse_hybrid", "tokens_per_s": self.sparse_hybrid},
            {"bound": "oracle_gpu_sparse", "tokens_per_s": self.oracle_gpu_sparse},
        ]


def throughput_bounds(
    model: ModelConfig,
    machine: MachineSpec,
    dtype: DType = FP16,
    mlp_active_rate: float = 0.10,
    attn_active_rate: float = 0.55,
    hot_capture: float = 0.80,
    gpu_weight_fraction: float | None = None,
) -> ThroughputBounds:
    """Compute the four bandwidth-bound throughput ceilings.

    Args:
        model / machine / dtype: The configuration to size.
        mlp_active_rate: Per-token MLP neuron activation rate.
        attn_active_rate: Per-token attention-head activation rate.
        hot_capture: Fraction of *activated* computation the GPU-resident
            hot set serves (paper Figure 12: ~0.7-0.9 on PC-High).
        gpu_weight_fraction: GPU-resident fraction of weight bytes; derived
            from GPU capacity when omitted.

    Returns:
        :class:`ThroughputBounds`; all rates in tokens/s.
    """
    if not 0.0 < mlp_active_rate <= 1.0 or not 0.0 < attn_active_rate <= 1.0:
        raise ValueError("activation rates must be in (0, 1]")
    if not 0.0 <= hot_capture <= 1.0:
        raise ValueError("hot_capture must be in [0, 1]")

    total_bytes = dtype.nbytes(model.n_layers * model.params_per_layer)
    gpu_bw = machine.gpu.effective_bandwidth
    cpu_bw = machine.cpu.effective_bandwidth

    if gpu_weight_fraction is None:
        usable = 0.9 * machine.gpu.memory_capacity
        gpu_weight_fraction = min(usable / total_bytes, 1.0)
    if not 0.0 <= gpu_weight_fraction <= 1.0:
        raise ValueError("gpu_weight_fraction must be in [0, 1]")

    mlp_bytes = dtype.nbytes(model.n_layers * model.mlp_params_per_layer)
    attn_bytes = dtype.nbytes(model.n_layers * model.attn_params_per_layer)
    active_bytes = mlp_active_rate * mlp_bytes + attn_active_rate * attn_bytes
    active_fraction = active_bytes / total_bytes

    dense_gpu_only = gpu_bw / total_bytes

    gpu_part = gpu_weight_fraction * total_bytes
    cpu_part = total_bytes - gpu_part
    dense_hybrid = 1.0 / (gpu_part / gpu_bw + cpu_part / cpu_bw)

    hot = min(hot_capture, gpu_weight_fraction / max(active_fraction, 1e-12), 1.0)
    gpu_active = hot * active_bytes
    cpu_active = active_bytes - gpu_active
    # CPU and GPU overlap in PowerInfer; the slower side binds.
    sparse_hybrid = 1.0 / max(gpu_active / gpu_bw, cpu_active / cpu_bw, 1e-300)

    oracle = gpu_bw / active_bytes

    return ThroughputBounds(
        dense_gpu_only=dense_gpu_only,
        dense_hybrid=dense_hybrid,
        sparse_hybrid=sparse_hybrid,
        oracle_gpu_sparse=oracle,
        gpu_weight_fraction=gpu_weight_fraction,
        active_fraction=active_fraction,
    )
