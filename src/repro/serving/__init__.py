"""Serving simulations: arrivals, FCFS/batched/continuous scheduling, SLO metrics."""

from repro.serving.arrival import Request, poisson_arrivals
from repro.serving.batched import simulate_batched_serving
from repro.serving.continuous import (
    ContinuousServer,
    IterationCostCache,
    RequestState,
    ServerSession,
    retry_delay,
    simulate_continuous_serving,
)
from repro.serving.fleet import (
    FleetConfig,
    FleetResult,
    FleetRouter,
    Replica,
    ReplicaRole,
    ReplicaSummary,
    make_router_policy,
)
from repro.serving.metrics import (
    SLO,
    ContinuousReport,
    RequestMetrics,
    merge_busy_intervals,
    percentile,
)
from repro.serving.policies import (
    SERVING_POLICIES,
    ChunkedPrefillPolicy,
    FCFSJoinPolicy,
    IterationPlan,
    PrefillPriorityPolicy,
    SchedulerPolicy,
    make_policy,
)
from repro.serving.simulator import CompletedRequest, ServingReport, simulate_serving

__all__ = [
    "SLO",
    "SERVING_POLICIES",
    "ChunkedPrefillPolicy",
    "CompletedRequest",
    "ContinuousReport",
    "ContinuousServer",
    "FCFSJoinPolicy",
    "FleetConfig",
    "FleetResult",
    "FleetRouter",
    "IterationCostCache",
    "IterationPlan",
    "PrefillPriorityPolicy",
    "Replica",
    "ReplicaRole",
    "ReplicaSummary",
    "Request",
    "RequestMetrics",
    "RequestState",
    "SchedulerPolicy",
    "ServerSession",
    "ServingReport",
    "make_policy",
    "make_router_policy",
    "retry_delay",
    "merge_busy_intervals",
    "percentile",
    "poisson_arrivals",
    "simulate_batched_serving",
    "simulate_continuous_serving",
    "simulate_serving",
]
