"""Tests for the roofline cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.costmodel import CostModel, OpWork
from repro.hardware.spec import GB, GIB, PC_HIGH, DeviceKind, DeviceSpec


def _device(bandwidth=100.0, flops=1000.0, launch=0.0) -> DeviceSpec:
    return DeviceSpec(
        name="d",
        kind=DeviceKind.GPU,
        memory_capacity=GIB,
        memory_bandwidth=bandwidth,
        compute_flops=flops,
        launch_overhead=launch,
        memory_efficiency=1.0,
    )


class TestOpWork:
    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            OpWork(flops=-1.0)

    def test_add_combines_fields(self):
        total = OpWork(1.0, 2.0, 3.0) + OpWork(10.0, 20.0, 30.0)
        assert (total.flops, total.bytes_read, total.bytes_written) == (11.0, 22.0, 33.0)

    def test_scaled(self):
        half = OpWork(2.0, 4.0, 6.0).scaled(0.5)
        assert (half.flops, half.bytes_read, half.bytes_written) == (1.0, 2.0, 3.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            OpWork(1.0).scaled(-1.0)


class TestOpTime:
    def test_bandwidth_bound_regime(self):
        # 200 bytes at 100 B/s = 2 s; 100 flops at 1000 F/s = 0.1 s.
        work = OpWork(flops=100.0, bytes_read=150.0, bytes_written=50.0)
        assert CostModel.op_time(work, _device()) == pytest.approx(2.0)
        assert CostModel.bandwidth_bound(work, _device())

    def test_compute_bound_regime(self):
        work = OpWork(flops=10_000.0, bytes_read=10.0)
        assert CostModel.op_time(work, _device()) == pytest.approx(10.0)
        assert not CostModel.bandwidth_bound(work, _device())

    def test_launch_overhead_added(self):
        work = OpWork(bytes_read=100.0)
        dev = _device(launch=0.5)
        assert CostModel.op_time(work, dev) == pytest.approx(1.5)
        assert CostModel.op_time(work, dev, include_launch=False) == pytest.approx(1.0)

    def test_empty_work_costs_only_launch(self):
        dev = _device(launch=0.25)
        assert CostModel.op_time(OpWork(), dev) == pytest.approx(0.25)

    def test_efficiency_slows_memory(self):
        eff = DeviceSpec(
            name="d",
            kind=DeviceKind.GPU,
            memory_capacity=GIB,
            memory_bandwidth=100.0,
            compute_flops=1e12,
            memory_efficiency=0.5,
        )
        assert CostModel.op_time(OpWork(bytes_read=100.0), eff) == pytest.approx(2.0)

    @given(
        flops=st.floats(0, 1e15),
        br=st.floats(0, 1e12),
        bw=st.floats(0, 1e12),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_work(self, flops, br, bw):
        dev = PC_HIGH.gpu
        base = CostModel.op_time(OpWork(flops, br, bw), dev)
        more = CostModel.op_time(OpWork(flops * 2 + 1, br * 2 + 1, bw * 2 + 1), dev)
        assert more >= base


class TestNeuronTime:
    def test_equation_5_is_weight_read_time(self):
        # Paper Eq. 5: T = M / Bandwidth.
        dev = _device(bandwidth=200.0)
        assert CostModel.neuron_time(100.0, dev) == pytest.approx(0.5)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            CostModel.neuron_time(-1.0, _device())

    def test_gpu_neuron_faster_than_cpu(self):
        nbytes = 28672 * 2.0  # one OPT-30B MLP neuron in FP16
        assert CostModel.neuron_time(nbytes, PC_HIGH.gpu) < CostModel.neuron_time(
            nbytes, PC_HIGH.cpu
        )


class TestTransfer:
    def test_transfer_matches_link(self):
        assert CostModel.transfer_time(GB, PC_HIGH.link) == pytest.approx(
            PC_HIGH.link.transfer_time(GB)
        )
