"""Tests for the numerical hybrid engine — the correctness core.

Key invariant (paper Section 8.4): with *oracle* activation prediction,
sparse hybrid execution is exact, because inactive ReLU neurons contribute
exactly zero.  With trained predictors, only missed activations perturb
the output.
"""

import numpy as np
import pytest

from repro.engine.numerical import NumericalHybridEngine
from repro.models.config import Activation, tiny_config
from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer
from repro.models.weights import init_weights
from repro.predictor.mlp import MlpPredictor
from repro.solver.placement import NeuronGroup, PlacementPolicy
from repro.sparsity.powerlaw import synthesize_activation_probs


@pytest.fixture
def oracle_engine(tiny_model, tiny_cfg):
    return NumericalHybridEngine(tiny_model, [None] * tiny_cfg.n_layers)


def make_policy(cfg, rng, gpu_frac=0.5):
    groups = []
    masks = []
    for li in range(cfg.n_layers):
        groups.append(
            NeuronGroup(
                name=f"layer{li}.mlp",
                impacts=rng.random(cfg.d_ffn),
                neuron_bytes=float(cfg.mlp_neuron_params * 2),
            )
        )
        mask = np.zeros(cfg.d_ffn, dtype=bool)
        mask[rng.choice(cfg.d_ffn, size=int(gpu_frac * cfg.d_ffn), replace=False)] = True
        masks.append(mask)
    return PlacementPolicy(groups=groups, gpu_masks=masks)


class TestOracleExactness:
    def test_matches_dense_bitwise_up_to_fp_noise(
        self, tiny_model, tiny_cfg, oracle_engine, rng
    ):
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=10)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        sparse = oracle_engine.forward_logits(tokens)
        assert np.allclose(dense, sparse, atol=1e-4)

    def test_exact_with_gpu_cpu_split(self, tiny_model, tiny_cfg, rng):
        # Splitting active neurons between the two executors must not
        # change the result (merging is exact scatter-add).
        policy = make_policy(tiny_cfg, rng, gpu_frac=0.5)
        engine = NumericalHybridEngine(
            tiny_model, [None] * tiny_cfg.n_layers, policy=policy
        )
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=8)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        assert np.allclose(dense, engine.forward_logits(tokens), atol=1e-4)
        assert engine.stats.neurons_gpu > 0
        assert engine.stats.neurons_cpu > 0

    def test_exact_for_reglu(self, rng):
        cfg = tiny_config(activation=Activation.REGLU)
        probs = [
            synthesize_activation_probs(cfg.d_ffn, rng, mean_activation_rate=0.2)
            for _ in range(cfg.n_layers)
        ]
        model = Transformer(init_weights(cfg, rng, activation_probs=probs))
        engine = NumericalHybridEngine(model, [None] * cfg.n_layers)
        tokens = rng.integers(0, cfg.vocab_size, size=6)
        dense = model.forward(tokens, KVCache(cfg))
        assert np.allclose(dense, engine.forward_logits(tokens), atol=1e-4)

    def test_generation_matches_dense(self, tiny_model, tiny_cfg, oracle_engine):
        dense_out = tiny_model.generate([3, 7, 11], 8)
        sparse_out = oracle_engine.generate([3, 7, 11], 8)
        assert dense_out == sparse_out


class TestStats:
    def test_oracle_has_zero_misses(self, tiny_cfg, oracle_engine, rng):
        oracle_engine.forward_logits(rng.integers(0, tiny_cfg.vocab_size, size=5))
        assert oracle_engine.stats.missed_active == 0
        assert oracle_engine.stats.false_active == 0
        assert oracle_engine.stats.miss_rate == 0.0

    def test_skipped_neurons_counted(self, tiny_cfg, oracle_engine, rng):
        oracle_engine.forward_logits(rng.integers(0, tiny_cfg.vocab_size, size=5))
        stats = oracle_engine.stats
        total = stats.neurons_gpu + stats.neurons_cpu + stats.neurons_skipped
        assert total == 5 * tiny_cfg.n_layers * tiny_cfg.d_ffn
        # The tiny model is ~85% sparse.
        assert stats.neurons_skipped / total > 0.6

    def test_gpu_load_share_tracks_policy(self, tiny_model, tiny_cfg, rng):
        policy = make_policy(tiny_cfg, rng, gpu_frac=1.0)
        engine = NumericalHybridEngine(
            tiny_model, [None] * tiny_cfg.n_layers, policy=policy
        )
        engine.forward_logits(rng.integers(0, tiny_cfg.vocab_size, size=4))
        assert engine.stats.gpu_load_share == 1.0

    def test_token_counter(self, tiny_cfg, oracle_engine, rng):
        oracle_engine.forward_logits(rng.integers(0, tiny_cfg.vocab_size, size=7))
        assert oracle_engine.stats.tokens == 7


class TestTrainedPredictors:
    def test_imperfect_predictor_counts_misses(self, tiny_model, tiny_cfg, rng):
        # An untrained predictor misses activations; stats must show it.
        preds = [
            MlpPredictor(tiny_cfg.d_model, 8, tiny_cfg.d_ffn, rng=rng)
            for _ in range(tiny_cfg.n_layers)
        ]
        engine = NumericalHybridEngine(tiny_model, preds)
        engine.forward_logits(rng.integers(0, tiny_cfg.vocab_size, size=5))
        assert engine.stats.missed_active > 0
        assert 0.0 < engine.stats.miss_rate <= 1.0

    def test_false_positives_do_not_change_output(self, tiny_model, tiny_cfg, rng):
        # A predictor that marks EVERYTHING active is numerically exact:
        # extra neurons pass through ReLU and contribute their true value
        # (possibly zero).
        class AllOn(MlpPredictor):
            def predict(self, x):
                return np.ones(x.shape[:-1] + (tiny_cfg.d_ffn,), dtype=bool)

        preds = [
            AllOn(tiny_cfg.d_model, 4, tiny_cfg.d_ffn, rng=rng)
            for _ in range(tiny_cfg.n_layers)
        ]
        engine = NumericalHybridEngine(tiny_model, preds)
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=6)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        assert np.allclose(dense, engine.forward_logits(tokens), atol=1e-4)


class TestValidation:
    def test_wrong_predictor_count_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            NumericalHybridEngine(tiny_model, [None])

    def test_wrong_predictor_width_rejected(self, tiny_model, tiny_cfg, rng):
        bad = MlpPredictor(tiny_cfg.d_model, 4, tiny_cfg.d_ffn + 1, rng=rng)
        with pytest.raises(ValueError):
            NumericalHybridEngine(tiny_model, [bad] * tiny_cfg.n_layers)
