"""Tests for the offline profiler on both substrates."""

import numpy as np
import pytest

from repro.profiler.datasets import c4_corpus
from repro.profiler.profiler import (
    layer_statistics,
    profile_numerical,
    profile_statistical,
)
from repro.sparsity.activation import ActivationModel, LayerActivationProfile


class TestNumericalProfiling:
    def test_counts_match_tokens(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=10) for _ in range(4)]
        trace = profile_numerical(tiny_model, requests)
        assert trace.n_tokens == 40
        assert trace.n_layers == tiny_cfg.n_layers
        # Counts are bounded by token count.
        for counts in trace.mlp_counts:
            assert counts.max() <= 40

    def test_profile_reflects_real_sparsity(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=24) for _ in range(6)]
        trace = profile_numerical(tiny_model, requests)
        stats = layer_statistics(trace)
        # The tiny model was built with ~15% activation rate.
        for s in stats:
            assert 0.6 < s.sparsity < 0.95

    def test_empty_requests_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            profile_numerical(tiny_model, [])

    def test_long_requests_truncated(self, tiny_model, tiny_cfg, rng):
        request = rng.integers(0, tiny_cfg.vocab_size, size=tiny_cfg.max_seq_len + 50)
        trace = profile_numerical(tiny_model, [request])
        assert trace.n_tokens == tiny_cfg.max_seq_len

    def test_corpus_integration(self, tiny_model, tiny_cfg, rng):
        requests = c4_corpus().requests(5, tiny_cfg.vocab_size, rng)
        trace = profile_numerical(tiny_model, requests)
        assert trace.n_tokens > 0


class TestStatisticalProfiling:
    def test_rates_converge_to_probs(self, rng):
        probs = rng.random(256) * 0.4
        am = ActivationModel([LayerActivationProfile(probs)], rng)
        trace = profile_statistical(am, n_tokens=2000)
        assert np.abs(trace.mlp_rates(0) - probs).mean() < 0.02

    def test_attention_profiles_counted(self, rng):
        mlp = LayerActivationProfile(rng.random(64))
        attn = LayerActivationProfile(np.full(8, 0.5))
        am = ActivationModel([mlp], rng, attn_profiles=[attn])
        trace = profile_statistical(am, n_tokens=500)
        assert trace.attn_rates(0).mean() == pytest.approx(0.5, abs=0.1)

    def test_chunking_covers_exact_token_count(self, rng):
        am = ActivationModel([LayerActivationProfile(rng.random(16))], rng)
        trace = profile_statistical(am, n_tokens=777, batch_tokens=100)
        assert trace.n_tokens == 777

    def test_nonpositive_tokens_rejected(self, rng):
        am = ActivationModel([LayerActivationProfile(rng.random(16))], rng)
        with pytest.raises(ValueError):
            profile_statistical(am, n_tokens=0)


class TestLayerStatistics:
    def test_stats_fields(self, rng):
        am = ActivationModel(
            [LayerActivationProfile(np.full(100, 0.25))], rng
        )
        trace = profile_statistical(am, n_tokens=1000)
        (stats,) = layer_statistics(trace)
        assert stats.layer == 0
        assert stats.sparsity == pytest.approx(0.75, abs=0.05)
        assert stats.mean_rate == pytest.approx(0.25, abs=0.05)
        assert 0.0 <= stats.skewness < 0.3  # near-uniform probs -> low skew
