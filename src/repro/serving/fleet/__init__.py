"""Fault-tolerant multi-replica fleet serving.

N independent :class:`~repro.serving.continuous.ContinuousServer`
replicas over heterogeneous machines, fronted by a :class:`FleetRouter`
with pluggable dispatch policies, heartbeat health checking, failover
with honest KV-loss replay, hedged dispatch, brownout, and optional
prefill→decode disaggregation over a modeled interconnect.  See
``docs/fleet.md``.
"""

from repro.serving.fleet.policies import (
    ROUTER_POLICIES,
    LeastLoadedPolicy,
    RouterPolicy,
    RoundRobinPolicy,
    SessionAffinityPolicy,
    make_router_policy,
)
from repro.serving.fleet.replica import Replica, ReplicaRole
from repro.serving.fleet.report import FleetResult, ReplicaSummary
from repro.serving.fleet.router import FleetConfig, FleetRouter, detect_windows

__all__ = [
    "ROUTER_POLICIES",
    "FleetConfig",
    "FleetResult",
    "FleetRouter",
    "LeastLoadedPolicy",
    "Replica",
    "ReplicaRole",
    "ReplicaSummary",
    "RouterPolicy",
    "RoundRobinPolicy",
    "SessionAffinityPolicy",
    "detect_windows",
    "make_router_policy",
]
