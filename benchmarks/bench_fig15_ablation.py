"""Figure 15 — component ablation on PC-High (OPT-30B / OPT-66B).

Paper: llama.cpp -> +PO (predictors + neuron-aware operators) roughly
doubles performance; +Engine (hybrid intra-layer execution) is the big
jump (9.97x / 3.43x); +Policy (ILP placement) adds the final margin
(10.47x / 3.67x).
"""

from conftest import run_once

from repro.bench.fig15 import run_fig15


def test_fig15_ablation(benchmark, record_rows):
    rows = run_once(benchmark, run_fig15)
    record_rows("fig15_ablation", rows, "Figure 15 — ablation stages")

    for model in {r["model"] for r in rows}:
        stages = {r["stage"]: r["speedup"] for r in rows if r["model"] == model}
        assert stages["llama.cpp"] == 1.0
        # +PO beats the baseline by skipping inactive neurons.
        assert stages["+PO"] > 1.5, stages
        # The hybrid engine is the dominant gain.
        assert stages["+Engine"] > stages["+PO"] * 1.5, stages
        # The ILP policy is at least competitive with the naive policy
        # (paper: a ~5% margin; simulation resolves it as >= within 2%).
        assert stages["+Policy"] >= stages["+Engine"] * 0.98, stages
