"""Tests for the numpy INT4 group quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.int4 import dequantize_int4, quantization_error, quantize_int4


class TestRoundTrip:
    def test_error_bounded_by_half_step(self, rng):
        w = rng.standard_normal((16, 64)).astype(np.float32)
        qt = quantize_int4(w, group_size=32)
        grouped = w.reshape(16, 2, 32)
        spans = grouped.max(-1) - grouped.min(-1)
        bound = spans.max() / 15 / 2 + 1e-6
        assert np.abs(dequantize_int4(qt) - w).max() <= bound

    def test_constant_groups_exact(self):
        w = np.full((4, 32), 3.25, dtype=np.float32)
        assert np.allclose(dequantize_int4(quantize_int4(w)), w)

    def test_endpoints_exact(self, rng):
        # Group min and max are exactly representable (codes 0 and 15).
        w = rng.standard_normal((8, 32)).astype(np.float32)
        deq = dequantize_int4(quantize_int4(w))
        assert np.allclose(deq.min(-1), w.min(-1), atol=1e-5)
        assert np.allclose(deq.max(-1), w.max(-1), atol=1e-5)

    def test_preserves_shape_and_monotone_order_within_group(self, rng):
        w = np.sort(rng.standard_normal((1, 32)).astype(np.float32))
        deq = dequantize_int4(quantize_int4(w))
        assert deq.shape == w.shape
        assert (np.diff(deq) >= -1e-6).all()

    @given(
        w=hnp.arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(1, 4), st.just(64)),
            elements=st.floats(-100, 100, width=32),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_error_bound_property(self, w):
        assert quantization_error(w, group_size=32) <= (
            (w.reshape(-1, 32).max(-1) - w.reshape(-1, 32).min(-1)).max() / 15.0
        ) / 2.0 + 1e-5


class TestValidation:
    def test_rejects_indivisible_last_axis(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            quantize_int4(rng.standard_normal((4, 33)), group_size=32)

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            quantize_int4(np.float32(1.0))

    def test_rejects_nonpositive_group(self, rng):
        with pytest.raises(ValueError):
            quantize_int4(rng.standard_normal((4, 32)), group_size=0)

    def test_codes_fit_4_bits(self, rng):
        qt = quantize_int4(rng.standard_normal((8, 64)).astype(np.float32))
        assert qt.codes.max() <= 15
        assert qt.codes.dtype == np.uint8


class TestStorage:
    def test_effective_bytes_match_dtype_model(self, rng):
        from repro.quant.formats import INT4

        n = 8 * 256
        qt = quantize_int4(rng.standard_normal((8, 256)).astype(np.float32))
        assert qt.nbytes_effective == pytest.approx(INT4.nbytes(n))

    def test_quantization_error_empty(self):
        assert quantization_error(np.zeros((0, 32), dtype=np.float32)) == 0.0
