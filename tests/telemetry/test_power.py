"""Energy metering: ledger/meter reconciliation, DVFS, and bit-identity."""

import dataclasses
import math

import pytest

from repro.bench.fleet_chaos import (
    DEFAULT_SLO,
    build_fleet,
    default_fleet_monitor,
    fleet_requests,
)
from repro.bench.runner import make_engine
from repro.hardware.events import EventSimulator, SimTask
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.spec import MACHINE_PRESETS
from repro.telemetry.fleet import FleetTracer
from repro.telemetry.power import (
    DEFAULT_CARBON_INTENSITY,
    PowerMeter,
    PowerModel,
    active_watts,
    fleet_energy,
    fleet_generated_tokens,
    grams_co2,
    idle_watts,
    record_power_counters,
    request_energy,
    schedule_energy,
    tracer_energy,
)
from repro.telemetry.tracer import Tracer

MACHINE = MACHINE_PRESETS["pc-low"]
IDLE_TOTAL = sum(idle_watts(MACHINE).values())


def run_tasks(tasks):
    resources = sorted({t.resource for t in tasks})
    return EventSimulator(resources).run(tasks)


def deep_tracer():
    return FleetTracer(monitor=default_fleet_monitor(), slo=DEFAULT_SLO)


class TestPowerMeter:
    def test_single_interval_integral(self):
        meter = PowerMeter([(1.0, 3.0, 50.0)], idle_watts_total=10.0, horizon=5.0)
        assert meter.total_joules == pytest.approx(10.0 * 5.0 + 50.0 * 2.0)
        assert meter.power_at(0.5) == pytest.approx(10.0)
        assert meter.power_at(2.0) == pytest.approx(60.0)
        assert meter.energy_between(1.0, 3.0) == pytest.approx(120.0)

    def test_zero_duration_entries_contribute_nothing(self):
        meter = PowerMeter(
            [(2.0, 2.0, 1000.0), (0.0, 4.0, 25.0)], idle_watts_total=5.0, horizon=4.0
        )
        assert meter.total_joules == pytest.approx(5.0 * 4.0 + 25.0 * 4.0)
        # A zero-width spike never shows up as instantaneous power either.
        assert meter.power_at(2.0) == pytest.approx(30.0)

    def test_overlapping_intervals_stack_dynamic_only(self):
        # Two overlapping tasks: idle must be counted once, dynamic draws
        # must stack — the overlap is where double-counting would show.
        meter = PowerMeter(
            [(0.0, 2.0, 30.0), (1.0, 3.0, 40.0)], idle_watts_total=10.0, horizon=3.0
        )
        assert meter.power_at(0.5) == pytest.approx(40.0)
        assert meter.power_at(1.5) == pytest.approx(80.0)
        assert meter.power_at(2.5) == pytest.approx(50.0)
        expected = 10.0 * 3.0 + 30.0 * 2.0 + 40.0 * 2.0
        assert meter.total_joules == pytest.approx(expected)

    def test_cumulative_is_monotone(self):
        meter = PowerMeter(
            [(0.0, 1.0, 20.0), (0.5, 2.5, 5.0)], idle_watts_total=2.0, horizon=3.0
        )
        samples = [meter.cumulative_joules(0.1 * k) for k in range(31)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))


class TestScheduleEnergy:
    def test_ledger_meter_reconcile(self):
        engine = make_engine("powerinfer", "opt-6.7b", "pc-low", "int4")
        result = engine.simulate_iteration(128, 1, 4)
        report = schedule_energy(result, engine.machine)
        ledger = report.dynamic_joules + report.static_joules
        assert report.metered_joules == pytest.approx(ledger, rel=1e-9)
        assert report.total_joules > 0.0

    def test_zero_duration_task_prices_zero_joules(self):
        tasks = [
            SimTask(name="a", resource="gpu", duration=0.0),
            SimTask(name="b", resource="gpu", duration=1.0, deps=("a",)),
        ]
        report = schedule_energy(run_tasks(tasks), MACHINE)
        by_name = {e.name: e for e in report.tasks}
        assert by_name["a"].joules == 0.0
        assert by_name["b"].joules > 0.0
        ledger = report.dynamic_joules + report.static_joules
        assert report.metered_joules == pytest.approx(ledger, rel=1e-9)

    def test_compute_bound_draws_more_than_memory_bound(self):
        gpu = MACHINE.gpu
        mem_w = active_watts("gpu", None, MACHINE)
        assert mem_w == pytest.approx(gpu.busy_watts - gpu.idle_watts)
        # Unknown lanes draw nothing.
        assert active_watts("request", None, MACHINE) == 0.0

    def test_dvfs_throttle_scales_dynamic_power_cubically(self):
        faults = FaultSchedule(
            [FaultEvent(FaultKind.GPU_THROTTLE, start=1.0, duration=2.0, magnitude=2.0)]
        )
        nominal = active_watts("gpu", None, MACHINE, faults=faults, at=0.5)
        throttled = active_watts("gpu", None, MACHINE, faults=faults, at=1.5)
        assert throttled == pytest.approx(nominal / 2.0**3)
        # CPU throttle must not touch the GPU lane and vice versa.
        cpu_faults = FaultSchedule(
            [FaultEvent(FaultKind.CPU_THROTTLE, start=0.0, duration=9.0, magnitude=3.0)]
        )
        assert active_watts("gpu", None, MACHINE, faults=cpu_faults, at=1.0) == (
            pytest.approx(nominal)
        )
        # PCIe degradation is contention, not DVFS: no power change.
        pcie_faults = FaultSchedule(
            [FaultEvent(FaultKind.PCIE_DEGRADE, start=0.0, duration=9.0, magnitude=4.0)]
        )
        assert active_watts("pcie", None, MACHINE, faults=pcie_faults, at=1.0) == (
            pytest.approx(MACHINE.link.busy_watts - MACHINE.link.idle_watts)
        )

    def test_dvfs_alpha_knob(self):
        faults = FaultSchedule(
            [FaultEvent(FaultKind.GPU_THROTTLE, start=0.0, duration=9.0, magnitude=2.0)]
        )
        linear = PowerModel(dvfs_alpha=1.0)
        nominal = active_watts("gpu", None, MACHINE)
        assert active_watts(
            "gpu", None, MACHINE, faults=faults, at=1.0, model=linear
        ) == pytest.approx(nominal / 2.0)

    def test_carbon_accounting(self):
        assert grams_co2(3.6e6) == pytest.approx(DEFAULT_CARBON_INTENSITY)
        assert grams_co2(3.6e6, intensity=50.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            PowerModel(carbon_intensity=-1.0)


class TestRequestEnergy:
    def test_deterministic_and_positive(self):
        engine = make_engine("powerinfer", "opt-6.7b", "pc-low", "int4")
        a = request_energy(engine, 64, 128)
        b = request_energy(engine, 64, 128)
        assert a == b
        assert a.j_per_token > 0.0
        assert a.avg_watts > IDLE_TOTAL
        assert a.grams_co2() == pytest.approx(
            grams_co2(a.total_joules, DEFAULT_CARBON_INTENSITY)
        )

    def test_rejects_degenerate_shapes(self):
        engine = make_engine("powerinfer", "opt-6.7b", "pc-low", "int4")
        with pytest.raises(ValueError):
            request_energy(engine, 0, 128)
        with pytest.raises(ValueError):
            request_energy(engine, 64, 0)


class TestTracerEnergy:
    def test_traced_serving_reconciles_under_faults(self):
        import numpy as np

        from repro.bench.fault_tolerance import default_fault_schedule
        from repro.serving.arrival import poisson_arrivals
        from repro.serving.continuous import ContinuousServer
        from repro.workloads import CHATGPT_PROMPTS

        engine = make_engine("powerinfer", "opt-6.7b", "pc-low", "int4")
        faults = default_fault_schedule()
        tracer = Tracer()
        server = ContinuousServer(
            engine,
            policy="chunked",
            max_batch=8,
            kv_budget_bytes=0.35 * 2**30,
            faults=faults,
            deadline=12.0,
            tracer=tracer,
        )
        report = server.run(
            poisson_arrivals(
                CHATGPT_PROMPTS,
                rate=0.9,
                n_requests=8,
                rng=np.random.default_rng(1234),
                deadline=12.0,
            )
        )
        energy = tracer_energy(
            tracer, engine.machine, faults=faults, horizon=report.makespan
        )
        ledger = energy.dynamic_joules + energy.static_joules
        assert energy.metered_joules == pytest.approx(ledger, rel=1e-9)

    def test_record_power_counters_adds_lanes_only(self):
        engine = make_engine("powerinfer", "opt-6.7b", "pc-low", "int4")
        result = engine.simulate_iteration(128, 1, 1, tracer=Tracer())
        tracer = Tracer()
        engine.simulate_iteration(128, 1, 1, tracer=tracer)
        before = len(tracer.task_spans)
        report = record_power_counters(tracer, engine.machine)
        lanes = {s.series for s in tracer.counters if s.series.startswith("power/")}
        assert lanes == {"power/gpu_w", "power/cpu_w", "power/pcie_w", "power/total_w"}
        assert len(tracer.task_spans) == before  # augments, never mutates
        assert report.total_joules > 0.0
        totals = [s for s in tracer.counters if s.series == "power/total_w"]
        meter = report.meter()
        for sample in totals:
            assert sample.value == pytest.approx(meter.power_at(sample.time))


class TestFleetEnergy:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        tracer = deep_tracer()
        result = build_fleet(tracer=tracer).run(fleet_requests(12))
        return tracer, result

    def test_fleet_reconciles(self, chaos_run):
        tracer, result = chaos_run
        energy = fleet_energy(result, tracer)
        ledger = energy.dynamic_joules + energy.static_joules
        assert energy.metered_joules == pytest.approx(ledger, rel=1e-9)
        assert energy.j_per_token(fleet_generated_tokens(result)) > 0.0
        assert math.isinf(energy.j_per_token(0))

    def test_crashed_replica_draws_idle_only_in_window(self, chaos_run):
        tracer, result = chaos_run
        energy = fleet_energy(result, tracer)
        crashed = next(s for s in result.replicas if s.crash_windows)
        report = energy.replica(crashed.name)
        idle_floor = sum(report.idle.values())
        for start, end in crashed.crash_windows:
            # No ledger entry may overlap the crash window...
            for entry in report.tasks:
                assert entry.end <= start or entry.start >= end
            # ...so the metered power inside it is exactly the idle floor.
            meter = report.meter()
            mid = (start + min(end, report.horizon)) / 2.0
            assert meter.power_at(mid) == pytest.approx(idle_floor)

    def test_watt_lanes_sampled_on_tick_grid(self, chaos_run):
        tracer, result = chaos_run
        bank = tracer.timeseries
        names = set(bank.names())
        assert "fleet/watts" in names
        for summary in result.replicas:
            for lane in ("gpu_watts", "cpu_watts", "pcie_watts", "watts"):
                assert f"{summary.name}/{lane}" in names
        ticks = [t for t, _ in bank.series("fleet/up_replicas").samples()]
        watt_ticks = [t for t, _ in bank.series("fleet/watts").samples()]
        assert watt_ticks == ticks

    def test_fleet_energy_requires_machine_spec(self, chaos_run):
        tracer, result = chaos_run
        stripped = dataclasses.replace(
            result,
            replicas=tuple(
                dataclasses.replace(s, machine_spec=None) for s in result.replicas
            ),
        )
        with pytest.raises(ValueError, match="MachineSpec"):
            fleet_energy(stripped, tracer)


class TestBitIdentity:
    def test_power_fields_never_reach_the_cost_model(self):
        # Same machine with a wildly different power envelope must produce
        # the bit-identical schedule: the cost model never reads watts.
        engine = make_engine("powerinfer", "opt-6.7b", "pc-low", "int4")
        machine = engine.machine
        hot = dataclasses.replace(
            machine,
            gpu=dataclasses.replace(
                machine.gpu, idle_watts=1.0, busy_watts=900.0, peak_watts=1000.0
            ),
            cpu=dataclasses.replace(
                machine.cpu, idle_watts=2.0, busy_watts=400.0, peak_watts=500.0
            ),
            link=dataclasses.replace(machine.link, idle_watts=0.5, busy_watts=99.0),
        )
        base = engine.simulate_iteration(128, 1, 4)
        perturbed = engine.simulate_iteration(128, 1, 4, machine=hot)
        assert base.makespan == perturbed.makespan
        assert {n: (t.start, t.end) for n, t in base.tasks.items()} == {
            n: (t.start, t.end) for n, t in perturbed.tasks.items()
        }

    def test_metering_disabled_leaves_fleet_result_identical(self):
        # An untraced run (metering off) and a deep-traced run (metering
        # samples watt lanes post-hoc) must produce the same report.
        untraced = build_fleet().run(fleet_requests(12))
        tracer = deep_tracer()
        traced = build_fleet(tracer=tracer).run(fleet_requests(12))
        assert untraced.to_dict(slo=DEFAULT_SLO) == traced.to_dict(slo=DEFAULT_SLO)
