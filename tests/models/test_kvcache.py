"""Tests for the KV cache."""

import numpy as np
import pytest

from repro.models.config import tiny_config
from repro.models.kvcache import KVCache


@pytest.fixture
def cfg():
    return tiny_config(n_layers=2, max_seq_len=16)


@pytest.fixture
def cache(cfg):
    return KVCache(cfg)


def _kv(cfg, t, fill):
    return np.full((t, cfg.kv_dim), fill, dtype=np.float32)


class TestAppend:
    def test_cursor_advances_only_on_last_layer(self, cfg, cache):
        cache.append(0, _kv(cfg, 3, 1.0), _kv(cfg, 3, 2.0))
        assert len(cache) == 0  # cursor waits for the last layer
        cache.append(1, _kv(cfg, 3, 1.0), _kv(cfg, 3, 2.0))
        assert len(cache) == 3

    def test_extra_exposes_inflight_rows(self, cfg, cache):
        cache.append(0, _kv(cfg, 2, 5.0), _kv(cfg, 2, 6.0))
        assert cache.keys(0).shape[0] == 0
        assert cache.keys(0, extra=2).shape[0] == 2
        assert (cache.keys(0, extra=2) == 5.0).all()

    def test_overflow_rejected(self, cfg, cache):
        with pytest.raises(ValueError, match="overflow"):
            cache.append(0, _kv(cfg, 17, 0.0), _kv(cfg, 17, 0.0))

    def test_shape_mismatch_rejected(self, cfg, cache):
        bad = np.zeros((2, cfg.kv_dim + 1), dtype=np.float32)
        with pytest.raises(ValueError):
            cache.append(0, bad, bad)

    def test_values_preserved_across_appends(self, cfg, cache):
        for fill in (1.0, 2.0):
            for layer in range(cfg.n_layers):
                cache.append(layer, _kv(cfg, 1, fill), _kv(cfg, 1, fill * 10))
        assert cache.keys(0)[0, 0] == 1.0
        assert cache.keys(0)[1, 0] == 2.0
        assert cache.values(1)[1, 0] == 20.0


class TestLifecycle:
    def test_reset_clears_length(self, cfg, cache):
        for layer in range(cfg.n_layers):
            cache.append(layer, _kv(cfg, 4, 1.0), _kv(cfg, 4, 1.0))
        cache.reset()
        assert len(cache) == 0
        assert cache.keys(0).shape[0] == 0

    def test_nbytes_grows_with_content(self, cfg, cache):
        empty = cache.nbytes()
        for layer in range(cfg.n_layers):
            cache.append(layer, _kv(cfg, 4, 1.0), _kv(cfg, 4, 1.0))
        assert cache.nbytes() > empty
        expected = 2 * 4 * cfg.kv_dim * cfg.n_layers * 4  # fp32
        assert cache.nbytes() == expected

    def test_capacity(self, cfg, cache):
        assert cache.capacity == cfg.max_seq_len
