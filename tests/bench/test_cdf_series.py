"""Tests for the Figure 5 CDF curve extraction."""

import numpy as np

from repro.bench.fig05 import cdf_series


class TestCdfSeries:
    def test_curve_shapes(self):
        series = cdf_series("opt-30b", points=15)
        for label in ("single_layer", "whole_model"):
            x = series[f"{label}_x"]
            y = series[f"{label}_y"]
            assert x.shape == y.shape == (15,)
            # Monotone CDF reaching ~1 at neuron proportion 1.
            assert (np.diff(y) >= -1e-12).all()
            assert x[-1] == 1.0
            assert y[-1] > 0.999

    def test_whole_model_curve_dominates_layer_curve_past_head(self):
        # Stronger concentration in the body of the distribution: beyond
        # the extreme head (x >= 0.1, where per-neuron probabilities cap
        # at 1 and curves may cross) the whole-model CDF has captured at
        # least as much activation mass as a single layer's.
        series = cdf_series("opt-30b", points=30)
        layer = np.interp(
            series["whole_model_x"], series["single_layer_x"], series["single_layer_y"]
        )
        body = series["whole_model_x"] >= 0.1
        assert (series["whole_model_y"][body] >= layer[body] - 0.02).all()

    def test_deterministic(self):
        a = cdf_series("llama-70b", seed=4)
        b = cdf_series("llama-70b", seed=4)
        assert np.array_equal(a["single_layer_y"], b["single_layer_y"])
