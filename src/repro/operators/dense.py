"""Dense matrix-vector/matrix kernels — the non-sparse baseline.

These are the operators llama.cpp effectively runs: every neuron (row) of
every matrix participates regardless of activation.  Each kernel returns the
numerical result; the matching ``*_work`` function reports the roofline
footprint (:class:`repro.hardware.costmodel.OpWork`) the performance
simulator charges for it.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.costmodel import OpWork

__all__ = ["dense_gemv", "dense_gemv_work"]


def dense_gemv(weight: np.ndarray, x: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Compute ``x @ weight.T (+ bias)`` for ``weight`` of shape ``(m, n)``.

    ``x`` may be a vector ``(n,)`` or a batch ``(t, n)``.
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def dense_gemv_work(
    m: int, n: int, batch: int = 1, dtype_bytes: float = 2.0
) -> OpWork:
    """Roofline footprint of a dense ``(m, n)`` GEMV with ``batch`` inputs.

    Weights are read once regardless of batch (they stay in cache across the
    batch for the sizes of interest); activations are read/written per batch
    element in FP32 as the paper's setups do.
    """
    if m <= 0 or n <= 0 or batch <= 0:
        raise ValueError("m, n, batch must be positive")
    return OpWork(
        flops=2.0 * m * n * batch,
        bytes_read=m * n * dtype_bytes + batch * n * 4.0,
        bytes_written=batch * m * 4.0,
    )
