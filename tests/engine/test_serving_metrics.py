"""Unit tests for serving metrics: intervals, TTFT/TBT, SLO goodput."""

import pytest

from repro.serving import SLO, ContinuousReport, Request, RequestMetrics
from repro.serving.metrics import merge_busy_intervals, percentile


def make_metrics(request_id=0, arrival=0.0, admit=0.5, tokens=(1.0, 1.5, 2.5)):
    return RequestMetrics(
        request=Request(
            request_id=request_id,
            arrival_time=arrival,
            input_len=8,
            output_len=len(tokens),
        ),
        admit_time=admit,
        token_times=tuple(tokens),
    )


class TestMergeBusyIntervals:
    def test_disjoint(self):
        assert merge_busy_intervals([(0.0, 1.0), (2.0, 3.0)]) == pytest.approx(2.0)

    def test_overlapping_not_double_counted(self):
        assert merge_busy_intervals([(0.0, 2.0), (1.0, 3.0)]) == pytest.approx(3.0)

    def test_nested_and_unsorted(self):
        spans = [(1.0, 4.0), (0.0, 5.0), (2.0, 3.0)]
        assert merge_busy_intervals(spans) == pytest.approx(5.0)

    def test_empty_and_degenerate(self):
        assert merge_busy_intervals([]) == 0.0
        assert merge_busy_intervals([(1.0, 1.0)]) == 0.0

    def test_exactly_adjacent_intervals_touch_without_gap(self):
        # [0,1] and [1,2] share the boundary point; the union is 2.0, not
        # 2.0-minus-a-gap and not a double count of the shared instant.
        assert merge_busy_intervals([(0.0, 1.0), (1.0, 2.0)]) == pytest.approx(2.0)
        assert merge_busy_intervals(
            [(1.0, 2.0), (0.0, 1.0), (2.0, 2.0)]
        ) == pytest.approx(2.0)


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestRequestMetrics:
    def test_derived_quantities(self):
        m = make_metrics(arrival=0.0, admit=0.5, tokens=(1.0, 1.5, 2.5))
        assert m.n_tokens == 3
        assert m.queue_delay == pytest.approx(0.5)
        assert m.ttft == pytest.approx(1.0)
        assert m.latency == pytest.approx(2.5)
        assert m.tbts == pytest.approx((0.5, 1.0))
        assert m.mean_tbt == pytest.approx(0.75)
        assert m.max_tbt == pytest.approx(1.0)

    def test_single_token_has_no_gaps(self):
        m = make_metrics(tokens=(1.0,))
        assert m.tbts == ()
        assert m.mean_tbt == 0.0
        assert m.max_tbt == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_metrics(tokens=())
        with pytest.raises(ValueError):
            make_metrics(tokens=(2.0, 1.0))

    def test_meets_slo(self):
        m = make_metrics(arrival=0.0, tokens=(1.0, 1.5, 2.5))
        assert m.meets_slo(SLO(ttft_target=1.0, tbt_target=1.0))
        assert not m.meets_slo(SLO(ttft_target=0.5, tbt_target=1.0))
        assert not m.meets_slo(SLO(ttft_target=1.0, tbt_target=0.9))


class TestSLO:
    def test_targets_must_be_positive(self):
        with pytest.raises(ValueError):
            SLO(ttft_target=0.0, tbt_target=1.0)
        with pytest.raises(ValueError):
            SLO(ttft_target=1.0, tbt_target=-1.0)


class TestContinuousReport:
    def build_report(self):
        fast = make_metrics(request_id=0, arrival=0.0, admit=0.0, tokens=(0.5, 1.0))
        slow = make_metrics(request_id=1, arrival=0.0, admit=0.0, tokens=(3.0, 8.0))
        return ContinuousReport(
            completed=[fast, slow],
            busy_intervals=[(0.0, 1.0), (0.5, 8.0)],
            kv_budget_bytes=100.0,
            peak_kv_bytes=60.0,
            n_iterations=4,
        )

    def test_aggregates(self):
        report = self.build_report()
        assert report.n_requests == 2
        assert report.makespan == pytest.approx(8.0)
        assert report.throughput_rps == pytest.approx(2 / 8.0)
        assert report.tokens_per_second == pytest.approx(4 / 8.0)
        assert report.utilization == pytest.approx(1.0)
        assert report.mean_latency == pytest.approx((1.0 + 8.0) / 2)
        assert report.mean_ttft == pytest.approx((0.5 + 3.0) / 2)

    def test_percentiles(self):
        report = self.build_report()
        assert report.latency_percentile(100) == pytest.approx(8.0)
        assert report.ttft_percentile(0) == pytest.approx(0.5)
        assert report.tbt_percentile(100) == pytest.approx(5.0)

    def test_goodput_counts_only_slo_compliant(self):
        report = self.build_report()
        slo = SLO(ttft_target=1.0, tbt_target=1.0)  # only the fast request
        assert report.slo_attainment(slo) == pytest.approx(0.5)
        assert report.goodput(slo) == pytest.approx(1 / 8.0)
        generous = SLO(ttft_target=10.0, tbt_target=10.0)
        assert report.slo_attainment(generous) == 1.0
        impossible = SLO(ttft_target=1e-9, tbt_target=1e-9)
        assert report.slo_attainment(impossible) == 0.0
        assert report.goodput(impossible) == 0.0

    def test_empty_report(self):
        report = ContinuousReport()
        assert report.n_requests == 0
        assert report.utilization == 0.0
        assert report.slo_attainment(SLO(1.0, 1.0)) == 0.0
        assert report.goodput(SLO(1.0, 1.0)) == 0.0
        with pytest.raises(ValueError):
            report.tbt_percentile(50)


class TestReportToDict:
    def test_mirrors_scalar_aggregates(self):
        report = TestContinuousReport().build_report()
        d = report.to_dict()
        assert d["n_requests"] == 2
        assert d["n_iterations"] == 4
        assert d["makespan_s"] == pytest.approx(8.0)
        assert d["utilization"] == pytest.approx(report.utilization)
        assert d["mean_ttft_s"] == pytest.approx(report.mean_ttft)
        assert d["peak_kv_bytes"] == 60.0
        assert d["latency_percentiles_s"]["p99"] == pytest.approx(
            report.latency_percentile(99)
        )
        assert "slo" not in d

    def test_is_json_serializable(self):
        import json

        payload = json.dumps(TestContinuousReport().build_report().to_dict())
        assert json.loads(payload)["n_requests"] == 2

    def test_slo_block_when_requested(self):
        report = TestContinuousReport().build_report()
        slo = SLO(ttft_target=1.0, tbt_target=1.0)
        d = report.to_dict(slo=slo)
        assert d["slo"]["attainment"] == pytest.approx(0.5)
        assert d["slo"]["goodput_rps"] == pytest.approx(1 / 8.0)

    def test_custom_percentiles(self):
        report = TestContinuousReport().build_report()
        d = report.to_dict(percentiles=(50,))
        assert set(d["latency_percentiles_s"]) == {"p50"}

    def test_empty_report_serializes(self):
        d = ContinuousReport().to_dict()
        assert d["n_requests"] == 0
        assert d["latency_percentiles_s"] == {}
