"""Tests for deterministic fault injection over the hardware specs."""

import pytest

from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.spec import MACHINE_PRESETS

MACHINE = MACHINE_PRESETS["pc-high"]


def pcie(start=1.0, duration=2.0, magnitude=4.0):
    return FaultEvent(FaultKind.PCIE_DEGRADE, start=start, duration=duration,
                      magnitude=magnitude)


class TestFaultEvent:
    def test_window_arithmetic(self):
        e = pcie(start=1.0, duration=2.0)
        assert e.end == 3.0
        assert not e.active_at(0.999)
        assert e.active_at(1.0)
        assert e.active_at(2.999)
        assert not e.active_at(3.0)  # half-open window

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("cosmic-ray", start=0.0, duration=1.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            pcie(start=-0.1)
        with pytest.raises(ValueError):
            pcie(duration=0.0)

    def test_magnitude_ranges_per_kind(self):
        with pytest.raises(ValueError, match="divisor"):
            pcie(magnitude=0.5)  # slowdowns divide, so < 1 is a speedup
        with pytest.raises(ValueError, match="remaining budget"):
            FaultEvent(FaultKind.KV_SHRINK, start=0.0, duration=1.0, magnitude=1.5)
        with pytest.raises(ValueError, match="remaining budget"):
            FaultEvent(FaultKind.KV_SHRINK, start=0.0, duration=1.0, magnitude=0.0)
        # Stalls ignore magnitude entirely.
        FaultEvent(FaultKind.DEVICE_STALL, start=0.0, duration=1.0)


class TestScheduleTimeline:
    def test_epochs_partition_at_boundaries(self):
        sched = FaultSchedule([pcie(start=1.0, duration=2.0)])
        assert sched.epoch(0.5) == sched.epoch(0.0)
        assert sched.epoch(1.0) != sched.epoch(0.5)
        assert sched.epoch(2.0) == sched.epoch(1.0)  # inside the window
        assert sched.epoch(3.0) != sched.epoch(2.0)

    def test_next_boundary_after(self):
        sched = FaultSchedule([pcie(start=1.0, duration=2.0)])
        assert sched.next_boundary_after(0.0) == 1.0
        assert sched.next_boundary_after(1.0) == 3.0
        assert sched.next_boundary_after(3.0) is None

    def test_horizon_and_active(self):
        sched = FaultSchedule([pcie(start=1.0, duration=2.0)])
        assert sched.horizon == 3.0
        assert sched.active(0.0) == ()
        assert len(sched.active(2.0)) == 1
        assert sched.is_degraded(2.0)
        assert not sched.is_degraded(0.0)

    def test_empty_schedule(self):
        sched = FaultSchedule([])
        assert len(sched) == 0
        assert sched.horizon == 0.0
        assert sched.next_boundary_after(0.0) is None
        assert sched.perturbed_machine(MACHINE, 5.0) is MACHINE
        assert sched.kv_budget_factor(5.0) == 1.0
        assert sched.stall_end_at(5.0) is None


class TestPerturbation:
    def test_pcie_degrade_hits_bandwidth_and_latency(self):
        sched = FaultSchedule([pcie(start=1.0, duration=2.0, magnitude=4.0)])
        hit = sched.perturbed_machine(MACHINE, 2.0)
        assert hit.link.bandwidth == pytest.approx(MACHINE.link.bandwidth / 4.0)
        assert hit.link.latency == pytest.approx(MACHINE.link.latency * 4.0)
        assert hit.gpu == MACHINE.gpu  # other devices untouched
        assert sched.perturbed_machine(MACHINE, 0.5) is MACHINE

    def test_throttles_hit_their_device(self):
        sched = FaultSchedule([
            FaultEvent(FaultKind.GPU_THROTTLE, start=0.0, duration=1.0, magnitude=2.0),
            FaultEvent(FaultKind.CPU_THROTTLE, start=0.0, duration=1.0, magnitude=3.0),
        ])
        hit = sched.perturbed_machine(MACHINE, 0.5)
        assert hit.gpu.compute_flops == pytest.approx(MACHINE.gpu.compute_flops / 2.0)
        assert hit.gpu.memory_bandwidth == pytest.approx(
            MACHINE.gpu.memory_bandwidth / 2.0
        )
        assert hit.cpu.compute_flops == pytest.approx(MACHINE.cpu.compute_flops / 3.0)
        assert hit.link == MACHINE.link

    def test_concurrent_events_compose_multiplicatively(self):
        sched = FaultSchedule([
            pcie(start=0.0, duration=2.0, magnitude=2.0),
            pcie(start=1.0, duration=2.0, magnitude=3.0),
        ])
        assert sched.perturbed_machine(MACHINE, 1.5).link.bandwidth == pytest.approx(
            MACHINE.link.bandwidth / 6.0
        )

    def test_perturbed_machine_cached_per_epoch(self):
        sched = FaultSchedule([pcie(start=1.0, duration=2.0)])
        assert sched.perturbed_machine(MACHINE, 1.2) is sched.perturbed_machine(
            MACHINE, 2.8
        )

    def test_kv_budget_factor_composes(self):
        sched = FaultSchedule([
            FaultEvent(FaultKind.KV_SHRINK, start=0.0, duration=2.0, magnitude=0.5),
            FaultEvent(FaultKind.KV_SHRINK, start=1.0, duration=2.0, magnitude=0.5),
        ])
        assert sched.kv_budget_factor(0.5) == pytest.approx(0.5)
        assert sched.kv_budget_factor(1.5) == pytest.approx(0.25)
        assert sched.kv_budget_factor(3.0) == 1.0


class TestStalls:
    def test_stall_end_at_merges_chained_stalls(self):
        sched = FaultSchedule([
            FaultEvent(FaultKind.DEVICE_STALL, start=1.0, duration=1.0),
            FaultEvent(FaultKind.DEVICE_STALL, start=1.5, duration=1.0),
        ])
        assert sched.stall_end_at(1.2) == 2.5  # rides the overlap
        assert sched.stall_end_at(0.5) is None
        assert sched.stall_end_at(2.5) is None

    def test_next_stall_start_strictly_inside(self):
        stall = FaultEvent(FaultKind.DEVICE_STALL, start=2.0, duration=1.0)
        sched = FaultSchedule([stall])
        assert sched.next_stall_start(1.0, 3.0) is stall
        assert sched.next_stall_start(2.0, 3.0) is None  # start is not inside
        assert sched.next_stall_start(0.0, 2.0) is None  # window ends at start


class TestConstruction:
    def test_dict_round_trip(self):
        sched = FaultSchedule([
            pcie(),
            FaultEvent(FaultKind.DEVICE_STALL, start=5.0, duration=0.5),
        ])
        again = FaultSchedule.from_dicts(sched.to_dicts())
        assert again.events == sched.events

    def test_from_dicts_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown fields"):
            FaultSchedule.from_dicts([{"kind": "stall", "start": 0, "duration": 1,
                                       "oops": True}])
        with pytest.raises(ValueError, match="event 0"):
            FaultSchedule.from_dicts([{"kind": "stall"}])

    def test_from_seed_deterministic(self):
        a = FaultSchedule.from_seed(7, horizon=60.0)
        b = FaultSchedule.from_seed(7, horizon=60.0)
        c = FaultSchedule.from_seed(8, horizon=60.0)
        assert a.events == b.events
        assert a.events != c.events
        assert all(0.0 <= e.start < 60.0 for e in a.events)

    def test_from_seed_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_seed(0, horizon=0.0)
        with pytest.raises(ValueError):
            FaultSchedule.from_seed(0, horizon=1.0, n_events=-1)
        with pytest.raises(ValueError):
            FaultSchedule.from_seed(0, horizon=1.0, max_magnitude=0.5)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.from_seed(0, horizon=1.0, kinds=("bogus",))

    def test_events_sorted_and_immutable(self):
        sched = FaultSchedule([pcie(start=5.0), pcie(start=1.0)])
        assert [e.start for e in sched.events] == [1.0, 5.0]
        with pytest.raises(AttributeError):
            sched.events[0].start = 0.0  # frozen dataclass


class TestFleetFaultKinds:
    def crash(self, start=2.0, duration=3.0):
        return FaultEvent(FaultKind.REPLICA_CRASH, start=start, duration=duration)

    def test_crash_windows_and_ground_truth(self):
        sched = FaultSchedule([
            self.crash(start=2.0, duration=3.0),
            self.crash(start=10.0, duration=1.0),
            FaultEvent(FaultKind.LINK_DEGRADE, start=0.0, duration=20.0,
                       magnitude=8.0),
        ])
        assert sched.crash_windows() == ((2.0, 5.0), (10.0, 11.0))
        assert not sched.is_crashed(1.999)
        assert sched.is_crashed(2.0)
        assert not sched.is_crashed(5.0)  # half-open window
        assert sched.is_crashed(10.5)

    def test_link_degrade_factor_composes(self):
        sched = FaultSchedule([
            FaultEvent(FaultKind.LINK_DEGRADE, start=1.0, duration=4.0,
                       magnitude=8.0),
            FaultEvent(FaultKind.LINK_DEGRADE, start=3.0, duration=4.0,
                       magnitude=2.0),
        ])
        assert sched.link_degrade_factor(0.5) == 1.0
        assert sched.link_degrade_factor(2.0) == 8.0
        assert sched.link_degrade_factor(4.0) == 16.0  # overlap multiplies
        assert sched.link_degrade_factor(6.0) == 2.0

    def test_machine_view_translates_fleet_kinds(self):
        sched = FaultSchedule([
            self.crash(start=2.0, duration=3.0),
            FaultEvent(FaultKind.REPLICA_RECOVER, start=5.0, duration=1.5,
                       magnitude=2.0),
            FaultEvent(FaultKind.LINK_DEGRADE, start=0.0, duration=9.0,
                       magnitude=8.0),
            pcie(start=7.0),
        ])
        view = sched.machine_view()
        kinds = [e.kind for e in view.events]
        # crash -> stall, recover -> gpu throttle, link-degrade dropped,
        # machine kinds pass through.
        assert kinds == [FaultKind.DEVICE_STALL, FaultKind.GPU_THROTTLE,
                         FaultKind.PCIE_DEGRADE]
        stall = view.events[0]
        assert (stall.start, stall.end) == (2.0, 5.0)
        throttle = view.events[1]
        assert throttle.magnitude == 2.0
        assert (throttle.start, throttle.end) == (5.0, 6.5)

    def test_machine_view_is_identity_for_machine_schedules(self):
        sched = FaultSchedule([pcie()])
        assert sched.machine_view() is sched

    def test_from_seed_replica_deterministic(self):
        a = FaultSchedule.from_seed_replica(7, horizon=300.0, mtbf=60.0, mttr=10.0)
        b = FaultSchedule.from_seed_replica(7, horizon=300.0, mtbf=60.0, mttr=10.0)
        c = FaultSchedule.from_seed_replica(8, horizon=300.0, mtbf=60.0, mttr=10.0)
        assert a.events == b.events
        assert a.events != c.events

    def test_from_seed_replica_round_trip(self):
        sched = FaultSchedule.from_seed_replica(
            11, horizon=300.0, mtbf=40.0, mttr=8.0, recover_slowdown=3.0
        )
        assert sched.events  # the parameters make at least one crash likely
        again = FaultSchedule.from_dicts(sched.to_dicts())
        assert again.events == sched.events

    def test_from_seed_replica_lifecycle_shape(self):
        sched = FaultSchedule.from_seed_replica(
            3, horizon=500.0, mtbf=50.0, mttr=10.0, recover_fraction=0.5,
            recover_slowdown=2.0, first_crash_after=5.0,
        )
        events = sched.events
        assert events and events[0].start >= 5.0
        assert all(e.start < 500.0 for e in events)
        # Alternating crash/recover, each recover glued to its crash end
        # at half the outage length; windows never overlap.
        for prev, nxt in zip(events, events[1:]):
            assert nxt.start >= prev.end
            if prev.kind == FaultKind.REPLICA_CRASH:
                assert nxt.kind == FaultKind.REPLICA_RECOVER
                assert nxt.start == prev.end
                assert nxt.duration == pytest.approx(0.5 * prev.duration)
                assert nxt.magnitude == 2.0

    def test_from_seed_replica_no_recover_windows(self):
        sched = FaultSchedule.from_seed_replica(
            3, horizon=500.0, mtbf=50.0, mttr=10.0, recover_fraction=0.0
        )
        assert all(e.kind == FaultKind.REPLICA_CRASH for e in sched.events)

    def test_from_seed_replica_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_seed_replica(0, horizon=0.0, mtbf=1.0, mttr=1.0)
        with pytest.raises(ValueError):
            FaultSchedule.from_seed_replica(0, horizon=1.0, mtbf=0.0, mttr=1.0)
        with pytest.raises(ValueError):
            FaultSchedule.from_seed_replica(0, horizon=1.0, mtbf=1.0, mttr=-1.0)
        with pytest.raises(ValueError):
            FaultSchedule.from_seed_replica(
                0, horizon=1.0, mtbf=1.0, mttr=1.0, recover_fraction=1.5
            )
        with pytest.raises(ValueError):
            FaultSchedule.from_seed_replica(
                0, horizon=1.0, mtbf=1.0, mttr=1.0, recover_slowdown=0.5
            )
        with pytest.raises(ValueError):
            FaultSchedule.from_seed_replica(
                0, horizon=1.0, mtbf=1.0, mttr=1.0, first_crash_after=-1.0
            )
