"""Numerical hybrid execution over the numpy reference transformer.

This is the correctness-bearing half of the reproduction: a real (small)
transformer whose MLP blocks are executed the PowerInfer way —

1. the layer's trained MLP predictor forecasts the activation mask;
2. predicted-active neurons are partitioned into GPU-resident and
   CPU-resident sets per the placement policy's neuron table;
3. the "GPU executor" computes its neurons with the gather operator, the
   "CPU executor" computes its share with the per-core batched operator
   (both numerically exact — the devices are simulated, the math is not);
4. partial results are merged (scatter-add) exactly as Section 5.3's
   result integration does.

Because inactive ReLU neurons contribute exactly zero, running only truly
active neurons is bit-exact with dense execution; prediction *misses* are
the only source of output deviation — precisely the paper's accuracy story
(Section 8.4, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.neuron_store import PartitionedMlp
from repro.models.config import Activation, ModelConfig
from repro.models.transformer import Transformer
from repro.operators.neuron_aware import CpuNeuronGemv, gather_cols_gemv, gather_rows_gemv
from repro.predictor.mlp import MlpPredictor
from repro.solver.placement import PlacementPolicy

__all__ = ["ExecutionStats", "NumericalHybridEngine"]


@dataclass
class ExecutionStats:
    """Counters accumulated while serving tokens."""

    tokens: int = 0
    neurons_gpu: int = 0  # predicted-active neurons computed on the "GPU"
    neurons_cpu: int = 0
    neurons_skipped: int = 0  # predicted-inactive (not computed)
    missed_active: int = 0  # truly active but predicted inactive
    false_active: int = 0  # predicted active but truly inactive
    per_layer_active: dict[int, int] = field(default_factory=dict)

    @property
    def gpu_load_share(self) -> float:
        total = self.neurons_gpu + self.neurons_cpu
        return self.neurons_gpu / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of truly active neurons the predictors missed."""
        truly_active = self.neurons_gpu + self.neurons_cpu - self.false_active + self.missed_active
        return self.missed_active / truly_active if truly_active else 0.0


class NumericalHybridEngine:
    """Sparse-predicted hybrid MLP execution on a numpy transformer.

    Args:
        model: The dense reference transformer (weights are shared, not
            copied — the hybrid engine gathers rows/columns on the fly,
            standing in for the device-resident compact stores).
        predictors: One trained predictor per layer, or ``None`` entries to
            use *oracle* prediction (the true mask) for that layer.
        policy: Placement policy whose groups are named ``layer{i}.mlp``;
            when omitted, all neurons are treated as CPU-resident.
        n_cpu_cores: Core count for the CPU-flavoured operator.
        use_partitioned_store: Store each device's neurons in compact
            per-device arrays (paper Section 5.2's loader layout) instead
            of gathering from the full matrices.  Numerically identical;
            exercises the neuron-table bookkeeping.
        attn_predictors: Optional per-layer attention-head predictors
            (``n_neurons == n_heads``).  Entries of ``None`` leave that
            layer's attention dense.  Predicted-inactive heads are skipped,
            which — unlike ReLU MLP sparsity — is a (small) approximation.
    """

    def __init__(
        self,
        model: Transformer,
        predictors: list[MlpPredictor | None],
        policy: PlacementPolicy | None = None,
        n_cpu_cores: int = 8,
        use_partitioned_store: bool = False,
        attn_predictors: list[MlpPredictor | None] | None = None,
    ) -> None:
        cfg: ModelConfig = model.config
        if len(predictors) != cfg.n_layers:
            raise ValueError("need one predictor entry per layer")
        for li, pred in enumerate(predictors):
            if pred is not None and pred.n_neurons != cfg.d_ffn:
                raise ValueError(f"predictor {li} output must match d_ffn")
        self.model = model
        self.config = cfg
        self.predictors = predictors
        self.stats = ExecutionStats()
        if attn_predictors is not None:
            if len(attn_predictors) != cfg.n_layers:
                raise ValueError("need one attn predictor entry per layer")
            for pred in attn_predictors:
                if pred is not None and pred.n_neurons != cfg.n_heads:
                    raise ValueError("attn predictor output must match n_heads")
        self.attn_predictors = attn_predictors
        self._cpu_op = CpuNeuronGemv(n_cpu_cores)
        self._gpu_masks: list[np.ndarray] = []
        for li in range(cfg.n_layers):
            if policy is None:
                self._gpu_masks.append(np.zeros(cfg.d_ffn, dtype=bool))
            else:
                self._gpu_masks.append(policy.mask(f"layer{li}.mlp"))
        self._stores: list[PartitionedMlp] | None = None
        if use_partitioned_store:
            self._stores = [
                PartitionedMlp(
                    model.weights.layers[li],
                    self._gpu_masks[li],
                    activation=cfg.activation,
                )
                for li in range(cfg.n_layers)
            ]

    # ---- the hybrid MLP override ------------------------------------------

    def _mlp(self, layer_index: int, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        layer = self.model.weights.layers[layer_index]
        predictor = self.predictors[layer_index]

        true_mask = (x @ layer.fc1.T + layer.fc1_bias) > 0  # (t, f)
        if predictor is None:
            pred_mask = true_mask
        else:
            pred_mask = predictor.predict(x)

        self._account(layer_index, pred_mask, true_mask)

        if self._stores is not None:
            return self._stores[layer_index].forward(x, pred_mask)

        # Union of predicted-active neurons across the token rows: weights
        # for these are gathered once; per-row masking restores exact
        # per-token sparsity.
        union = np.any(np.atleast_2d(pred_mask), axis=0)
        gpu_resident = self._gpu_masks[layer_index]
        gpu_idx = np.nonzero(union & gpu_resident)[0]
        cpu_sel = union & ~gpu_resident

        out = np.zeros_like(x)
        pieces: list[tuple[np.ndarray, np.ndarray]] = []
        if gpu_idx.size:
            pre = gather_rows_gemv(layer.fc1, x, gpu_idx, layer.fc1_bias)
            pieces.append((gpu_idx, pre))
        if cpu_sel.any():
            pre_cpu, cpu_idx, _ = self._cpu_op.run(
                layer.fc1, x, cpu_sel, layer.fc1_bias
            )
            pieces.append((cpu_idx, pre_cpu))
        for idx, pre in pieces:
            hidden = np.maximum(pre, 0.0)
            # Zero out neurons not predicted for each individual row.
            hidden = hidden * np.atleast_2d(pred_mask)[..., idx]
            if cfg.activation == Activation.REGLU:
                hidden = hidden * gather_rows_gemv(layer.gate, x, idx)
            out = out + gather_cols_gemv(layer.fc2, hidden, idx)
        return out

    def _account(
        self, layer_index: int, pred_mask: np.ndarray, true_mask: np.ndarray
    ) -> None:
        pred2 = np.atleast_2d(pred_mask)
        true2 = np.atleast_2d(true_mask)
        gpu_resident = self._gpu_masks[layer_index]
        on_gpu = int(np.logical_and(pred2, gpu_resident).sum())
        predicted = int(pred2.sum())
        self.stats.neurons_gpu += on_gpu
        self.stats.neurons_cpu += predicted - on_gpu
        self.stats.neurons_skipped += int((~pred2).sum())
        self.stats.missed_active += int(np.logical_and(true2, ~pred2).sum())
        self.stats.false_active += int(np.logical_and(pred2, ~true2).sum())
        self.stats.per_layer_active[layer_index] = self.stats.per_layer_active.get(
            layer_index, 0
        ) + int(true2.sum())

    # ---- serving -------------------------------------------------------------

    def _head_mask(self, layer_index: int, x: np.ndarray) -> np.ndarray:
        predictor = (
            self.attn_predictors[layer_index]
            if self.attn_predictors is not None
            else None
        )
        if predictor is None:
            return np.ones(
                np.atleast_2d(x).shape[:-1] + (self.config.n_heads,), dtype=bool
            )
        return predictor.predict(x)

    def forward_logits(self, token_ids: np.ndarray) -> np.ndarray:
        """Hybrid-execution logits for a full sequence (fresh KV cache)."""
        from repro.models.kvcache import KVCache

        cache = KVCache(self.config)
        head_override = self._head_mask if self.attn_predictors is not None else None
        logits = self.model.forward(
            np.asarray(token_ids),
            cache,
            mlp_override=self._mlp,
            head_mask_override=head_override,
        )
        self.stats.tokens += int(np.asarray(token_ids).size)
        return logits

    def generate(self, prompt_ids: list[int], max_new_tokens: int) -> list[int]:
        """Greedy decoding with sparse-predicted MLP execution."""
        out = self.model.generate(prompt_ids, max_new_tokens, mlp_override=self._mlp)
        self.stats.tokens += len(prompt_ids) + len(out)
        return out
