"""Adaptive predictor sizing (paper Section 5.1).

Fixed-size DejaVu predictors for a 175B model need ~27 GB — more than an
RTX 4090.  PowerInfer instead sizes each layer's predictor from two layer
properties:

* **sparsity** — sparser layers are easier to predict, so the baseline
  hidden dimension shrinks as sparsity rises (Figure 9);
* **skewness** — when activations concentrate in few neurons, even a small
  predictor is accurate, so the hidden layer is iteratively reduced while
  accuracy stays >= the target (and grown when it falls below).

Two entry points:

* :func:`adaptive_train` runs the real iterative algorithm on training
  data (numerical substrate): train at the baseline size, then shrink/grow
  the hidden layer geometrically, keeping the smallest predictor that meets
  the accuracy target.
* :func:`modeled_predictor_params` is the closed-form sizing used for
  paper-scale models in the performance simulator, calibrated so that an
  OPT-class layer profile yields ~10% of LLM parameters in predictors —
  the figure the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig
from repro.predictor.mlp import MlpPredictor, PredictorMetrics

__all__ = [
    "AdaptiveSizingResult",
    "baseline_hidden_size",
    "adaptive_train",
    "modeled_predictor_params",
    "modeled_predictor_bytes",
]


@dataclass
class AdaptiveSizingResult:
    """Outcome of the iterative sizing search for one layer."""

    predictor: MlpPredictor
    metrics: PredictorMetrics
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def hidden(self) -> int:
        return self.predictor.hidden


def baseline_hidden_size(
    d_in: int, n_neurons: int, layer_sparsity: float, budget_fraction: float = 0.15
) -> int:
    """Baseline hidden dimension from the layer's sparsity profile.

    The predictor parameter count is ``hidden * (d_in + n_neurons)``; the
    baseline spends ``budget_fraction`` of the MLP's FC1+FC2 parameters
    scaled by how hard the layer is to predict (denser -> larger), which is
    the Figure 9 relationship.
    """
    if not 0.0 <= layer_sparsity < 1.0:
        raise ValueError("layer_sparsity must be in [0, 1)")
    difficulty = min((1.0 - layer_sparsity) / 0.10, 2.0)  # 90% sparse == 1.0
    mlp_params = 2.0 * d_in * n_neurons
    params = budget_fraction * difficulty * mlp_params
    hidden = int(params / (d_in + n_neurons))
    return max(4, min(hidden, n_neurons))


def adaptive_train(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    layer_sparsity: float,
    layer_skewness: float,
    rng: np.random.Generator,
    accuracy_target: float = 0.95,
    max_rounds: int = 6,
    epochs: int = 15,
    lr: float = 0.5,
) -> AdaptiveSizingResult:
    """Iteratively size and train a predictor for one layer.

    Implements Section 5.1: start from the sparsity-derived baseline; for
    high-skew layers shrink the hidden layer progressively until accuracy
    drops below the target (keeping the last size that passed); for
    low-skew layers grow it until the target is met or bounds are reached.

    Returns:
        The smallest trained predictor meeting the target, or the most
        accurate one found if the target is unreachable within bounds.
    """
    d_in = x_train.shape[1]
    n_neurons = y_train.shape[1]
    hidden = baseline_hidden_size(d_in, n_neurons, layer_sparsity)
    # High skew permits more aggressive shrinking per round.
    shrink = 0.5 if layer_skewness >= 0.7 else 0.7
    grow = 1.6

    history: list[tuple[int, float]] = []
    best_passing: AdaptiveSizingResult | None = None
    best_any: AdaptiveSizingResult | None = None
    direction = 0  # -1 shrinking, +1 growing, 0 undecided

    for _ in range(max_rounds):
        predictor = MlpPredictor(d_in, hidden, n_neurons, rng=rng)
        predictor.fit(x_train, y_train, rng=rng, epochs=epochs, lr=lr)
        metrics = predictor.evaluate(x_val, y_val)
        history.append((hidden, metrics.accuracy))
        result = AdaptiveSizingResult(predictor=predictor, metrics=metrics)
        if best_any is None or metrics.accuracy > best_any.metrics.accuracy:
            best_any = result
        passed = metrics.accuracy >= accuracy_target
        if passed and (best_passing is None or hidden < best_passing.hidden):
            best_passing = result

        if passed:
            if direction == 1:
                break  # grew into the target: smallest passing size found
            direction = -1
            next_hidden = max(4, int(hidden * shrink))
        else:
            if direction == -1:
                break  # shrank below the target: previous size was minimal
            direction = 1
            next_hidden = min(n_neurons, int(hidden * grow) + 1)
        if next_hidden == hidden:
            break
        hidden = next_hidden

    chosen = best_passing or best_any
    assert chosen is not None
    chosen.history = history
    return chosen


def modeled_predictor_params(
    config: ModelConfig,
    layer_sparsity: float,
    layer_skewness: float,
    accuracy_target: float = 0.95,
) -> float:
    """Closed-form per-layer predictor parameter count for paper-scale models.

    Calibrated to the paper's outcomes: at a typical OPT profile (sparsity
    ~0.90, skewness ~0.75) the whole-model predictor footprint lands near
    10% of LLM parameters, decreasing with sparsity and skewness (Figure 9)
    and increasing with a stricter accuracy target.
    """
    if not 0.0 <= layer_sparsity < 1.0:
        raise ValueError("layer_sparsity must be in [0, 1)")
    if not 0.0 <= layer_skewness <= 1.0:
        raise ValueError("layer_skewness must be in [0, 1]")
    difficulty = min((1.0 - layer_sparsity) / 0.10, 1.6)
    skew_discount = 1.0 - 0.45 * layer_skewness
    strictness = 1.0 + 2.0 * (accuracy_target - 0.95)
    fraction = 0.10 * difficulty * skew_discount * strictness
    fraction = float(np.clip(fraction, 0.002, 0.40))
    mlp_params = 2.0 * config.d_model * config.d_ffn
    return fraction * mlp_params


def modeled_predictor_bytes(
    config: ModelConfig,
    layer_sparsities: list[float],
    layer_skewnesses: list[float],
    bytes_per_param: float = 2.0,
    accuracy_target: float = 0.95,
) -> float:
    """Total predictor memory for all layers of a paper-scale model."""
    if len(layer_sparsities) != config.n_layers or len(layer_skewnesses) != config.n_layers:
        raise ValueError("need one sparsity and skewness per layer")
    total = sum(
        modeled_predictor_params(config, s, k, accuracy_target)
        for s, k in zip(layer_sparsities, layer_skewnesses)
    )
    return total * bytes_per_param
