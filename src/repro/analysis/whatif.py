"""What-if sensitivity: re-cost a recorded schedule under hardware knobs.

The attribution layer says where time went; the next question is *what
single knob would help most*.  Because every engine task carries its raw
roofline terms (:class:`~repro.hardware.costmodel.TaskCost` — flops,
bytes, launch/sync counts, UM flag), a recorded schedule can be re-priced
**analytically** against a perturbed :class:`MachineSpec` and re-run
through the deterministic list scheduler without touching the engine: the
DAG's shape does not depend on the machine, only its durations do.

:data:`STANDARD_KNOBS` covers the perturbations the paper's bottleneck
arguments revolve around: PCIe bandwidth x2 (Section 6.2's weight-streaming
claim), GPU/CPU memory bandwidth x2 (Equation 5's bandwidth-bound regime),
kernel-launch overhead -> 0 and sync overhead -> 0 (Section 6.3.1's fixed
costs), and CPU cores +/- (throughput of the CPU executor).

:func:`cross_validate` checks the analytic predictions against an actual
re-simulation of the engine on the perturbed machine — the two should
agree to float noise on deterministic DAGs, and the acceptance bar is 5%.

:func:`whatif_power_sensitivity` extends the same knobs to *perf per
watt*: each re-priced schedule is also re-metered
(:mod:`repro.telemetry.power`), and since the work is fixed, the
perf-per-watt gain of a knob is exactly the energy ratio
``E_base / E_pred`` — a knob can speed the schedule up yet cost
efficiency if it drags the machine into a higher power state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from repro.hardware.events import EventSimulator, ScheduleResult, SimTask
from repro.hardware.spec import MachineSpec
from repro.units import Joules, Ratio, Seconds, Watts

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.engine.base import PerfEngine
    from repro.telemetry.power import PowerModel

__all__ = [
    "Knob",
    "STANDARD_KNOBS",
    "PowerWhatIfResult",
    "WhatIfResult",
    "reprice_tasks",
    "reprice_schedule",
    "whatif_sensitivity",
    "whatif_power_sensitivity",
    "cross_validate",
]

Knob = Callable[[MachineSpec], MachineSpec]


def _scale_gpu_bandwidth(factor: Ratio) -> Knob:
    def knob(machine: MachineSpec) -> MachineSpec:
        gpu = dataclasses.replace(
            machine.gpu, memory_bandwidth=machine.gpu.memory_bandwidth * factor
        )
        return dataclasses.replace(machine, gpu=gpu)

    return knob


def _scale_cpu(factor: Ratio, *, bandwidth: bool = False, flops: bool = False) -> Knob:
    def knob(machine: MachineSpec) -> MachineSpec:
        changes: dict = {}
        if bandwidth:
            changes["memory_bandwidth"] = machine.cpu.memory_bandwidth * factor
        if flops:
            changes["compute_flops"] = machine.cpu.compute_flops * factor
        cpu = dataclasses.replace(machine.cpu, **changes)
        return dataclasses.replace(machine, cpu=cpu)

    return knob


def _scale_link_bandwidth(factor: Ratio) -> Knob:
    def knob(machine: MachineSpec) -> MachineSpec:
        link = dataclasses.replace(
            machine.link, bandwidth=machine.link.bandwidth * factor
        )
        return dataclasses.replace(machine, link=link)

    return knob


def _zero_launch(machine: MachineSpec) -> MachineSpec:
    gpu = dataclasses.replace(machine.gpu, launch_overhead=0.0)
    cpu = dataclasses.replace(machine.cpu, launch_overhead=0.0)
    return dataclasses.replace(machine, gpu=gpu, cpu=cpu)


def _zero_sync(machine: MachineSpec) -> MachineSpec:
    return dataclasses.replace(machine, sync_overhead=0.0)


# Knob name -> MachineSpec perturbation.  Core count maps to CPU compute
# throughput (AVX throughput scales with cores; DRAM bandwidth does not).
STANDARD_KNOBS: dict[str, Knob] = {
    "pcie_bw_x2": _scale_link_bandwidth(2.0),
    "gpu_bw_x2": _scale_gpu_bandwidth(2.0),
    "cpu_bw_x2": _scale_cpu(2.0, bandwidth=True),
    "launch_zero": _zero_launch,
    "sync_zero": _zero_sync,
    "cpu_cores_x2": _scale_cpu(2.0, flops=True),
    "cpu_cores_half": _scale_cpu(0.5, flops=True),
}


@dataclass(frozen=True)
class WhatIfResult:
    """Predicted effect of one hardware knob on one recorded schedule."""

    knob: str
    baseline_makespan: Seconds
    predicted_makespan: Seconds

    @property
    def predicted_speedup(self) -> Ratio:
        if self.predicted_makespan <= 0.0:
            return float("inf")
        return self.baseline_makespan / self.predicted_makespan

    def as_row(self) -> dict:
        return {
            "knob": self.knob,
            "baseline_s": self.baseline_makespan,
            "predicted_s": self.predicted_makespan,
            "speedup": self.predicted_speedup,
        }


@dataclass(frozen=True)
class PowerWhatIfResult:
    """Predicted time *and* energy effect of one hardware knob.

    The DAG's work is fixed, so comparing knobs at equal work makes the
    perf-per-watt gain exactly the energy ratio ``E_base / E_pred``:
    perf/W = work / (time * avg_watts) = work / energy.
    """

    knob: str
    baseline_makespan: Seconds
    predicted_makespan: Seconds
    baseline_joules: Joules
    predicted_joules: Joules

    @property
    def predicted_speedup(self) -> Ratio:
        if self.predicted_makespan <= 0.0:
            return float("inf")
        return self.baseline_makespan / self.predicted_makespan

    @property
    def perf_per_watt_gain(self) -> Ratio:
        if self.predicted_joules <= 0.0:
            return float("inf")
        return self.baseline_joules / self.predicted_joules

    @property
    def baseline_watts(self) -> Watts:
        if self.baseline_makespan <= 0.0:
            return 0.0
        return self.baseline_joules / self.baseline_makespan

    @property
    def predicted_watts(self) -> Watts:
        if self.predicted_makespan <= 0.0:
            return 0.0
        return self.predicted_joules / self.predicted_makespan

    def as_row(self) -> dict:
        return {
            "knob": self.knob,
            "baseline_s": self.baseline_makespan,
            "predicted_s": self.predicted_makespan,
            "speedup": self.predicted_speedup,
            "baseline_j": self.baseline_joules,
            "predicted_j": self.predicted_joules,
            "baseline_w": self.baseline_watts,
            "predicted_w": self.predicted_watts,
            "perf_per_watt_gain": self.perf_per_watt_gain,
        }


def reprice_tasks(tasks: list[SimTask], machine: MachineSpec) -> list[SimTask]:
    """Same DAG, durations re-derived from each task's recorded work.

    Tasks without a :class:`~repro.hardware.costmodel.TaskCost` keep their
    original duration (there is nothing to re-price).
    """
    out: list[SimTask] = []
    for task in tasks:
        if task.cost is None:
            out.append(task)
            continue
        cost = task.cost.repriced(task.resource, machine)
        out.append(
            # Not engine pricing: this clones an already-priced recorded
            # DAG with its TaskCost re-evaluated under perturbed hardware.
            SimTask(  # repro-lint: disable=inline-sim-task -- re-pricing a recorded DAG
                name=task.name,
                resource=task.resource,
                duration=cost.duration,
                deps=task.deps,
                priority=task.priority,
                tag=task.tag,
                cost=cost,
            )
        )
    return out


def reprice_schedule(tasks: list[SimTask], machine: MachineSpec) -> ScheduleResult:
    """Re-price the DAG on ``machine`` and re-run the list scheduler."""
    resources = sorted({t.resource for t in tasks})
    return EventSimulator(resources).run(reprice_tasks(tasks, machine))


def whatif_sensitivity(
    tasks: list[SimTask],
    machine: MachineSpec,
    knobs: Mapping[str, Knob] | None = None,
) -> list[WhatIfResult]:
    """Predicted speedup of each knob for one recorded iteration DAG.

    ``machine`` is the spec the DAG was originally priced against; each
    knob perturbs it and the schedule is analytically re-costed.  Results
    come back sorted by predicted speedup, best first.
    """
    knobs = dict(knobs) if knobs is not None else dict(STANDARD_KNOBS)
    baseline = reprice_schedule(tasks, machine).makespan
    results = [
        WhatIfResult(
            knob=name,
            baseline_makespan=baseline,
            predicted_makespan=reprice_schedule(tasks, transform(machine)).makespan,
        )
        for name, transform in knobs.items()
    ]
    results.sort(key=lambda r: r.predicted_makespan)
    return results


def whatif_power_sensitivity(
    tasks: list[SimTask],
    machine: MachineSpec,
    knobs: Mapping[str, Knob] | None = None,
    model: "PowerModel | None" = None,
) -> list[PowerWhatIfResult]:
    """Predicted speedup *and* perf-per-watt gain of each knob.

    Each knob's perturbed schedule is metered with
    :func:`repro.telemetry.power.schedule_energy` against the perturbed
    machine (the :data:`STANDARD_KNOBS` perturbations use
    ``dataclasses.replace``, so the power fields carry over unchanged —
    the energy delta comes purely from the re-timed schedule).  Results
    come back sorted by perf-per-watt gain, best first; compare with the
    speedup ordering from :func:`whatif_sensitivity` to spot knobs that
    buy time at the cost of efficiency.
    """
    from repro.telemetry.power import schedule_energy

    knobs = dict(knobs) if knobs is not None else dict(STANDARD_KNOBS)
    base_sched = reprice_schedule(tasks, machine)
    base_energy = schedule_energy(base_sched, machine, model=model)
    results: list[PowerWhatIfResult] = []
    for name, transform in knobs.items():
        perturbed = transform(machine)
        sched = reprice_schedule(tasks, perturbed)
        energy = schedule_energy(sched, perturbed, model=model)
        results.append(
            PowerWhatIfResult(
                knob=name,
                baseline_makespan=base_sched.makespan,
                predicted_makespan=sched.makespan,
                baseline_joules=base_energy.total_joules,
                predicted_joules=energy.total_joules,
            )
        )
    results.sort(key=lambda r: -r.perf_per_watt_gain)
    return results


def cross_validate(
    engine: "PerfEngine",
    ctx_len: int,
    n_tokens: int,
    batch: int = 1,
    knobs: Mapping[str, Knob] | None = None,
) -> dict[str, dict[str, float]]:
    """Analytic what-if vs. actual re-simulation, per knob.

    For each knob, the engine is actually re-run with the perturbed
    machine (``simulate_iteration(machine=...)``) and compared to the
    analytic re-pricing of the unperturbed DAG.  Returns per-knob
    ``{"predicted": s, "actual": s, "rel_error": |p-a|/a}``.
    """
    knobs = dict(knobs) if knobs is not None else dict(STANDARD_KNOBS)
    tasks = engine.iteration_tasks(ctx_len, n_tokens, batch)
    report: dict[str, dict[str, float]] = {}
    for name, transform in knobs.items():
        perturbed = transform(engine.machine)
        predicted = reprice_schedule(tasks, perturbed).makespan
        actual = engine.simulate_iteration(
            ctx_len, n_tokens, batch, machine=perturbed
        ).makespan
        rel = abs(predicted - actual) / actual if actual > 0.0 else 0.0
        report[name] = {"predicted": predicted, "actual": actual, "rel_error": rel}
    return report
