"""Energy, power, and carbon metering over realized schedules.

Everything the simulator schedules already carries the quantities a
power model needs — each task's roofline :class:`~repro.hardware
.costmodel.TaskCost` says whether the interval was memory- or
compute-bound, and the :class:`~repro.hardware.spec.DeviceSpec` /
:class:`~repro.hardware.spec.LinkSpec` power envelopes say what those
states draw.  This module turns realized schedules (or recorded traces)
into energy the same way the rest of the telemetry stack works: purely
post-hoc, on the simulated clock, provably changing nothing about the
simulation itself.

The model is linear and reconciles exactly by construction:

* a device draws ``idle_watts`` for the whole horizon (static energy),
* each task adds *dynamic* watts above idle for its duration —
  ``peak - idle`` when compute-bound, ``busy - idle`` when memory-bound
  (transfers draw the link's ``busy - idle``),
* an active GPU/CPU throttle fault divides clocks by ``m``, so dynamic
  power scales by ``(1/m)**alpha`` (cube law by default) while the
  realized duration already reflects the slowdown,
* a crashed replica has no task spans inside its crash window (the
  schedule validator proves this), so it draws idle-only power there.

Two independent accounting paths cross-check each other:

* the **ledger**: per-task ``watts x duration`` products summed, plus
  idle over the horizon, and
* the **meter**: a :class:`PowerMeter` sweep that integrates the
  piecewise-constant instantaneous power curve over span boundaries.

``repro.check.schedule.validate_energy_report`` re-derives the meter
integral and requires the two paths to agree to 1e-6 — the same
trace-vs-report discipline the tracer uses.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.hardware.faults import FaultKind, FaultSchedule
from repro.hardware.spec import DeviceKind, LinkSpec, MachineSpec
from repro.units import (
    GramsCO2,
    GramsCO2PerKilowattHour,
    Joules,
    JoulesPerToken,
    Ratio,
    Seconds,
    Tokens,
    Watts,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.engine.base import PerfEngine
    from repro.hardware.events import ScheduleResult
    from repro.serving.fleet.report import FleetResult
    from repro.telemetry.fleet import FleetTracer
    from repro.telemetry.tracer import Tracer

__all__ = [
    "DEFAULT_CARBON_INTENSITY",
    "DVFS_ALPHA",
    "EnergyReport",
    "FleetEnergyReport",
    "PowerModel",
    "PowerMeter",
    "RequestEnergy",
    "TaskEnergy",
    "active_watts",
    "fleet_energy",
    "grams_co2",
    "idle_watts",
    "record_power_counters",
    "request_energy",
    "sample_fleet_power",
    "schedule_energy",
    "tracer_energy",
]

# Global-average grid carbon intensity, gCO2 per kWh (Ember 2023 figure;
# override per deployment region via PowerModel.carbon_intensity).
DEFAULT_CARBON_INTENSITY: GramsCO2PerKilowattHour = 400.0
# DVFS cube law: dynamic power ~ f * V^2 with V roughly linear in f.
DVFS_ALPHA: Ratio = 3.0
# Exact by definition: 1 kWh = 1000 W x 3600 s = 3.6e6 J.  A pure unit
# conversion (J per kWh), hence dimensionless in the J-based unit system;
# tests/telemetry/test_power_units.py pins the factor.
_J_PER_KWH: Ratio = 3.6e6

# Device lanes the energy model prices.  Anything else on a tracer
# (request lanes, fault annotation lanes) carries no task spans.
_TRANSFER_LANES = ("pcie", "interconnect")


@dataclass(frozen=True)
class PowerModel:
    """Tunable knobs of the power/carbon model (never affects timing)."""

    carbon_intensity: GramsCO2PerKilowattHour = DEFAULT_CARBON_INTENSITY
    dvfs_alpha: Ratio = DVFS_ALPHA

    def __post_init__(self) -> None:
        if self.carbon_intensity < 0:
            raise ValueError("carbon_intensity must be non-negative")
        if self.dvfs_alpha < 0:
            raise ValueError("dvfs_alpha must be non-negative")


DEFAULT_POWER_MODEL = PowerModel()


def grams_co2(
    joules: Joules, intensity: GramsCO2PerKilowattHour = DEFAULT_CARBON_INTENSITY
) -> GramsCO2:
    """Operational carbon for ``joules`` at ``intensity`` gCO2/kWh."""
    return joules / _J_PER_KWH * intensity


def idle_watts(machine: MachineSpec) -> dict[str, Watts]:
    """Static draw per device lane of one machine, watts."""
    return {
        DeviceKind.GPU: machine.gpu.idle_watts,
        DeviceKind.CPU: machine.cpu.idle_watts,
        "pcie": machine.link.idle_watts,
    }


def _dvfs_scale(
    resource: str,
    faults: FaultSchedule | None,
    at: Seconds,
    model: PowerModel,
) -> Ratio:
    """Dynamic-power scale from throttle faults active at time ``at``.

    A throttle of magnitude ``m`` divides the device clock by ``m``
    (matching :meth:`FaultSchedule.perturbed_machine`), so dynamic power
    falls by ``(1/m)**alpha``.  PCIe degradation is contention, not a
    frequency change, and does not scale power.
    """
    if faults is None:
        return 1.0
    div = 1.0
    for event in faults.active(at):
        if resource == DeviceKind.GPU and event.kind == FaultKind.GPU_THROTTLE:
            div *= event.magnitude
        elif resource == DeviceKind.CPU and event.kind == FaultKind.CPU_THROTTLE:
            div *= event.magnitude
    if div == 1.0:
        return 1.0
    return (1.0 / div) ** model.dvfs_alpha


def active_watts(
    resource: str,
    cost,
    machine: MachineSpec | None,
    faults: FaultSchedule | None = None,
    at: Seconds = 0.0,
    model: PowerModel | None = None,
    link: LinkSpec | None = None,
) -> Watts:
    """Dynamic watts *above idle* drawn by one task on ``resource``.

    ``cost`` is the task's :class:`TaskCost` (or ``None`` for an
    uncosted task, priced as memory-bound).  ``link`` overrides the
    machine's PCIe link for off-machine lanes (the fleet interconnect).
    """
    model = DEFAULT_POWER_MODEL if model is None else model
    if resource in (DeviceKind.GPU, DeviceKind.CPU):
        if machine is None:
            raise ValueError(f"resource {resource!r} needs a MachineSpec")
        device = machine.device(resource)
        if cost is not None and cost.bound == "compute":
            dynamic = device.peak_watts - device.idle_watts
        else:
            dynamic = device.busy_watts - device.idle_watts
        return dynamic * _dvfs_scale(resource, faults, at, model)
    if resource in _TRANSFER_LANES:
        spec = link
        if spec is None:
            if machine is None:
                raise ValueError(f"resource {resource!r} needs a LinkSpec")
            spec = machine.link
        return spec.busy_watts - spec.idle_watts
    # Unknown lane (nothing the engines schedule): draws nothing.
    return 0.0


@dataclass(frozen=True)
class TaskEnergy:
    """One ledger entry: a task's dynamic power draw over its interval."""

    name: str
    resource: str
    start: Seconds
    end: Seconds
    watts: Watts
    joules: Joules

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "resource": self.resource,
            "start": self.start,
            "end": self.end,
            "watts": self.watts,
            "joules": self.joules,
        }


class PowerMeter:
    """Piecewise-constant instantaneous power on the simulated clock.

    Built by a sweep over task-interval boundaries: total power on each
    segment is the constant idle floor plus the sum of dynamic watts of
    every task covering the segment.  This integrates overlap correctly
    by construction — concurrent tasks stack their *dynamic* draws while
    idle power is counted exactly once — and is a genuinely different
    accounting path from the per-task ledger, which is what makes the
    1e-6 reconciliation between the two a real check.
    """

    def __init__(
        self,
        entries: Iterable[tuple[Seconds, Seconds, Watts]],
        idle_watts_total: Watts,
        t0: Seconds = 0.0,
        horizon: Seconds | None = None,
    ) -> None:
        events: list[tuple[float, float]] = []
        max_end = t0
        for start, end, watts in entries:
            if end > max_end:
                max_end = end
            if end <= start or watts == 0.0:
                continue  # zero-duration or zero-draw: contributes 0 J
            events.append((start, watts))
            events.append((end, -watts))
        if horizon is None:
            horizon = max_end
        events.sort(key=lambda ev: ev[0])

        self.t0 = t0
        self.horizon = max(horizon, t0)
        self.idle_watts_total = idle_watts_total
        times: list[float] = [t0]
        powers: list[float] = []
        cum: list[float] = [0.0]
        level = 0.0
        i = 0
        while i < len(events):
            t = events[i][0]
            delta = 0.0
            while i < len(events) and events[i][0] <= t:
                delta += events[i][1]
                i += 1
            if t > times[-1]:
                powers.append(idle_watts_total + level)
                cum.append(cum[-1] + powers[-1] * (t - times[-1]))
                times.append(t)
            level += delta
        if self.horizon > times[-1]:
            powers.append(idle_watts_total + level)
            cum.append(cum[-1] + powers[-1] * (self.horizon - times[-1]))
            times.append(self.horizon)
        self._times = times
        self._powers = powers
        self._cum = cum

    def power_at(self, t: Seconds) -> Watts:
        """Instantaneous watts at simulated time ``t``."""
        if t < self.t0 or t >= self._times[-1]:
            return self.idle_watts_total
        k = bisect_right(self._times, t) - 1
        return self._powers[min(k, len(self._powers) - 1)]

    def cumulative_joules(self, t: Seconds) -> Joules:
        """Energy metered over ``[t0, t]`` (clamped to the horizon)."""
        if t <= self.t0:
            return 0.0
        if t >= self._times[-1]:
            return self._cum[-1] + self.idle_watts_total * max(
                0.0, min(t, self.horizon) - self._times[-1]
            )
        k = bisect_right(self._times, t) - 1
        return self._cum[k] + self._powers[min(k, len(self._powers) - 1)] * (
            t - self._times[k]
        )

    def energy_between(self, a: Seconds, b: Seconds) -> Joules:
        """Energy metered over ``[a, b]``, joules."""
        return self.cumulative_joules(b) - self.cumulative_joules(a)

    @property
    def total_joules(self) -> Joules:
        """Energy metered over the whole ``[t0, horizon]`` window."""
        return self.cumulative_joules(self.horizon)


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one machine over one realized schedule.

    ``dynamic_joules`` + ``static_joules`` come from the per-task ledger;
    ``metered_joules`` comes from the independent :class:`PowerMeter`
    sweep.  They agree to float noise unless something is broken (or
    doctored) — ``validate_energy_report`` enforces it.
    """

    label: str
    machine: str
    t0: Seconds
    horizon: Seconds
    idle: Mapping[str, Watts]
    tasks: tuple[TaskEnergy, ...]
    dynamic_joules: Joules
    static_joules: Joules
    metered_joules: Joules
    model: PowerModel = field(default_factory=PowerModel)

    @property
    def total_joules(self) -> Joules:
        return self.static_joules + self.dynamic_joules

    @property
    def duration(self) -> Seconds:
        return max(0.0, self.horizon - self.t0)

    @property
    def avg_watts(self) -> Watts:
        return self.total_joules / self.duration if self.duration > 0 else 0.0

    def by_resource(self) -> dict[str, Joules]:
        """Dynamic joules per device lane."""
        out: dict[str, Joules] = {}
        for entry in self.tasks:
            out[entry.resource] = out.get(entry.resource, 0.0) + entry.joules
        return out

    def grams_co2(self) -> GramsCO2:
        return grams_co2(self.total_joules, self.model.carbon_intensity)

    def j_per_token(self, n_tokens: Tokens) -> JoulesPerToken:
        if n_tokens <= 0:
            return math.inf
        return self.total_joules / n_tokens

    def meter(self) -> PowerMeter:
        """Rebuild the power meter over this report's ledger."""
        return PowerMeter(
            [(e.start, e.end, e.watts) for e in self.tasks],
            sum(self.idle.values()),
            t0=self.t0,
            horizon=self.horizon,
        )

    def lane_meter(self, resource: str) -> PowerMeter:
        """A meter for one device lane only (its idle floor included)."""
        return PowerMeter(
            [(e.start, e.end, e.watts) for e in self.tasks if e.resource == resource],
            self.idle.get(resource, 0.0),
            t0=self.t0,
            horizon=self.horizon,
        )

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "machine": self.machine,
            "t0": self.t0,
            "horizon": self.horizon,
            "idle_watts": dict(self.idle),
            "n_tasks": len(self.tasks),
            "dynamic_joules": self.dynamic_joules,
            "static_joules": self.static_joules,
            "metered_joules": self.metered_joules,
            "total_joules": self.total_joules,
            "avg_watts": self.avg_watts,
            "grams_co2": self.grams_co2(),
            "by_resource": self.by_resource(),
            "carbon_intensity_g_per_kwh": self.model.carbon_intensity,
        }


def _ledger_entry(
    name: str,
    resource: str,
    start: Seconds,
    end: Seconds,
    cost,
    machine: MachineSpec | None,
    faults: FaultSchedule | None,
    model: PowerModel,
    link: LinkSpec | None,
) -> TaskEnergy:
    watts = active_watts(
        resource, cost, machine, faults=faults, at=start, model=model, link=link
    )
    return TaskEnergy(
        name=name,
        resource=resource,
        start=start,
        end=end,
        watts=watts,
        joules=watts * (end - start),
    )


def _build_report(
    entries: Sequence[TaskEnergy],
    idle: Mapping[str, Watts],
    t0: Seconds,
    horizon: Seconds,
    model: PowerModel,
    label: str,
    machine_name: str,
) -> EnergyReport:
    dynamic = sum(e.joules for e in entries)
    static = sum(idle.values()) * max(0.0, horizon - t0)
    meter = PowerMeter(
        [(e.start, e.end, e.watts) for e in entries],
        sum(idle.values()),
        t0=t0,
        horizon=horizon,
    )
    return EnergyReport(
        label=label,
        machine=machine_name,
        t0=t0,
        horizon=horizon,
        idle=dict(idle),
        tasks=tuple(entries),
        dynamic_joules=dynamic,
        static_joules=static,
        metered_joules=meter.total_joules,
        model=model,
    )


def schedule_energy(
    result: "ScheduleResult",
    machine: MachineSpec,
    faults: FaultSchedule | None = None,
    t0: Seconds = 0.0,
    horizon: Seconds | None = None,
    model: PowerModel | None = None,
    label: str = "schedule",
) -> EnergyReport:
    """Energy of one realized :class:`ScheduleResult` on ``machine``.

    Task times are schedule-local; ``t0`` anchors them on the global
    clock (which is where ``faults`` epochs are looked up, matching how
    :meth:`simulate_iteration_at` perturbs the machine).
    """
    model = DEFAULT_POWER_MODEL if model is None else model
    if horizon is None:
        horizon = t0 + result.makespan
    entries = [
        _ledger_entry(
            task.name,
            task.resource,
            t0 + task.start,
            t0 + task.end,
            task.cost,
            machine,
            faults,
            model,
            link=None,
        )
        for task in result.tasks.values()
    ]
    return _build_report(
        entries, idle_watts(machine), t0, horizon, model, label, machine.name
    )


def tracer_energy(
    tracer,  # repro-lint: disable=tracer-default -- metering *reads* a recorded trace; a None tracer is meaningless here
    machine: MachineSpec,
    faults: FaultSchedule | None = None,
    horizon: Seconds | None = None,
    model: PowerModel | None = None,
    label: str = "trace",
) -> EnergyReport:
    """Energy of everything a :class:`Tracer` recorded on ``machine``.

    Task spans are already on the global clock.  ``faults`` should be
    the same schedule the traced run was perturbed by (for a fleet
    replica: its ``machine_view()``), so DVFS windows price exactly the
    spans that were slowed down.
    """
    model = DEFAULT_POWER_MODEL if model is None else model
    spans = tracer.task_spans
    if horizon is None:
        horizon = max((span.end for span in spans), default=0.0)
    entries = [
        _ledger_entry(
            span.name,
            span.lane,
            span.start,
            span.end,
            span.cost,
            machine,
            faults,
            model,
            link=None,
        )
        for span in spans
    ]
    return _build_report(
        entries, idle_watts(machine), 0.0, horizon, model, label, machine.name
    )


def transfers_energy(
    transfers: "ScheduleResult",
    link: LinkSpec,
    horizon: Seconds,
    model: PowerModel | None = None,
    label: str = "interconnect",
) -> EnergyReport:
    """Energy of the fleet interconnect's KV-transfer schedule."""
    model = DEFAULT_POWER_MODEL if model is None else model
    entries = [
        _ledger_entry(
            task.name,
            task.resource,
            task.start,
            task.end,
            task.cost,
            None,
            None,
            model,
            link=link,
        )
        for task in transfers.tasks.values()
    ]
    return _build_report(
        entries,
        {"interconnect": link.idle_watts},
        0.0,
        horizon,
        model,
        label,
        link.name,
    )


# ---- request-level J/token ----------------------------------------------------


@dataclass(frozen=True)
class RequestEnergy:
    """Energy of one full request (prompt + ``output_len`` decode steps).

    Mirrors :meth:`PerfEngine.simulate_request` sampling: decode energy
    is evaluated at a few context lengths and scaled, exactly like
    decode *time* is.  ``j_per_token`` is per *generated* token.
    """

    engine: str
    model_name: str
    machine: str
    input_len: int
    output_len: int
    batch: int
    duration_s: Seconds
    dynamic_joules: Joules
    static_joules: Joules
    carbon_intensity: GramsCO2PerKilowattHour

    @property
    def total_joules(self) -> Joules:
        return self.static_joules + self.dynamic_joules

    @property
    def j_per_token(self) -> JoulesPerToken:
        return self.total_joules / (self.output_len * self.batch)

    @property
    def avg_watts(self) -> Watts:
        return self.total_joules / self.duration_s if self.duration_s > 0 else 0.0

    def grams_co2(self) -> GramsCO2:
        return grams_co2(self.total_joules, self.carbon_intensity)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "model": self.model_name,
            "machine": self.machine,
            "input_len": self.input_len,
            "output_len": self.output_len,
            "batch": self.batch,
            "duration_s": self.duration_s,
            "dynamic_joules": self.dynamic_joules,
            "static_joules": self.static_joules,
            "total_joules": self.total_joules,
            "j_per_token": self.j_per_token,
            "avg_watts": self.avg_watts,
            "grams_co2": self.grams_co2(),
        }


def request_energy(
    engine: "PerfEngine",
    input_len: int,
    output_len: int,
    batch: int = 1,
    decode_samples: int = 4,
    model: PowerModel | None = None,
) -> RequestEnergy:
    """Energy of one request, sampled like ``simulate_request``.

    Dynamic energy: the prompt iteration's ledger plus the mean sampled
    decode iteration's ledger scaled to ``output_len`` steps.  Static
    energy: the machine's idle floor over the request's total duration.
    Deterministic (expected activations, no RNG), so it can regression-
    gate J/token in the bench baseline.
    """
    model = DEFAULT_POWER_MODEL if model is None else model
    if input_len <= 0 or output_len <= 0 or batch <= 0:
        raise ValueError("input_len, output_len, batch must be positive")
    prompt = engine.simulate_iteration(0, input_len, batch)
    dynamic = schedule_energy(prompt, engine.machine, model=model).dynamic_joules

    samples = min(decode_samples, output_len)
    ctx_points = np.linspace(input_len, input_len + output_len - 1, samples)
    decode_time = 0.0
    decode_dynamic = 0.0
    for ctx in ctx_points:
        step = engine.simulate_iteration(int(ctx), 1, batch)
        decode_time += step.makespan
        decode_dynamic += schedule_energy(
            step, engine.machine, model=model
        ).dynamic_joules
    scale = output_len / samples
    duration = prompt.makespan + decode_time * scale
    dynamic += decode_dynamic * scale
    static = sum(idle_watts(engine.machine).values()) * duration
    return RequestEnergy(
        engine=engine.name,
        model_name=engine.model.name,
        machine=engine.machine.name,
        input_len=input_len,
        output_len=output_len,
        batch=batch,
        duration_s=duration,
        dynamic_joules=dynamic,
        static_joules=static,
        carbon_intensity=model.carbon_intensity,
    )


# ---- fleet-wide energy --------------------------------------------------------


@dataclass(frozen=True)
class FleetEnergyReport:
    """Per-replica energy reports plus the interconnect, one fleet run."""

    horizon: Seconds
    replicas: tuple[EnergyReport, ...]
    interconnect: EnergyReport | None
    model: PowerModel = field(default_factory=PowerModel)

    def _parts(self) -> tuple[EnergyReport, ...]:
        if self.interconnect is None:
            return self.replicas
        return self.replicas + (self.interconnect,)

    @property
    def dynamic_joules(self) -> Joules:
        return sum(part.dynamic_joules for part in self._parts())

    @property
    def static_joules(self) -> Joules:
        return sum(part.static_joules for part in self._parts())

    @property
    def metered_joules(self) -> Joules:
        return sum(part.metered_joules for part in self._parts())

    @property
    def total_joules(self) -> Joules:
        return self.static_joules + self.dynamic_joules

    @property
    def avg_watts(self) -> Watts:
        return self.total_joules / self.horizon if self.horizon > 0 else 0.0

    def grams_co2(self) -> GramsCO2:
        return grams_co2(self.total_joules, self.model.carbon_intensity)

    def j_per_token(self, n_tokens: Tokens) -> JoulesPerToken:
        if n_tokens <= 0:
            return math.inf
        return self.total_joules / n_tokens

    def replica(self, name: str) -> EnergyReport:
        for report in self.replicas:
            if report.label == name:
                return report
        raise KeyError(f"no replica energy report named {name!r}")

    def meter(self) -> PowerMeter:
        """One merged meter over every replica and the interconnect."""
        entries: list[tuple[Seconds, Seconds, Watts]] = []
        idle_total = 0.0
        for part in self._parts():
            entries.extend((e.start, e.end, e.watts) for e in part.tasks)
            idle_total += sum(part.idle.values())
        return PowerMeter(entries, idle_total, t0=0.0, horizon=self.horizon)

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "dynamic_joules": self.dynamic_joules,
            "static_joules": self.static_joules,
            "metered_joules": self.metered_joules,
            "total_joules": self.total_joules,
            "avg_watts": self.avg_watts,
            "grams_co2": self.grams_co2(),
            "carbon_intensity_g_per_kwh": self.model.carbon_intensity,
            "replicas": [report.to_dict() for report in self.replicas],
            "interconnect": (
                self.interconnect.to_dict() if self.interconnect is not None else None
            ),
        }


def fleet_generated_tokens(result: "FleetResult") -> Tokens:
    """Tokens actually generated fleet-wide (completed + timed-out)."""
    report = result.report
    return sum(m.n_tokens for m in report.completed) + sum(
        m.n_tokens for m in report.timed_out
    )


def fleet_energy(
    result: "FleetResult",
    tracer: "FleetTracer",  # repro-lint: disable=tracer-default -- metering *reads* a recorded fleet trace; a None tracer is meaningless here
    model: PowerModel | None = None,
) -> FleetEnergyReport:
    """Energy of one fleet run from its result plus its deep trace.

    Each replica is priced on its own :class:`MachineSpec` under its own
    ``machine_view()`` fault schedule (so recovery-warm-up throttles DVFS
    its power and crash windows draw idle only); KV transfers are priced
    on the interconnect link.  Requires the run to have been driven with
    a :class:`FleetTracer` (energy needs the realized spans) and a
    router recent enough to stamp ``machine_spec`` onto its summaries.
    """
    model = DEFAULT_POWER_MODEL if model is None else model
    reports = []
    for summary in result.replicas:
        if summary.machine_spec is None:
            raise ValueError(
                f"replica {summary.name!r} carries no MachineSpec; "
                "fleet_energy needs a FleetResult assembled by FleetRouter"
            )
        reports.append(
            tracer_energy(
                tracer.replica(summary.name),
                summary.machine_spec,
                faults=summary.machine_faults,
                horizon=result.horizon,
                model=model,
                label=summary.name,
            )
        )
    interconnect = None
    if result.transfers is not None and result.interconnect is not None:
        interconnect = transfers_energy(
            result.transfers,
            result.interconnect,
            horizon=result.horizon,
            model=model,
        )
    return FleetEnergyReport(
        horizon=result.horizon,
        replicas=tuple(reports),
        interconnect=interconnect,
        model=model,
    )


# ---- sampling power onto telemetry lanes --------------------------------------


def record_power_counters(
    tracer,  # repro-lint: disable=tracer-default -- sampling *augments* a recorded trace; a None tracer is meaningless here
    machine: MachineSpec,
    faults: FaultSchedule | None = None,
    interval: Seconds = 0.25,
    horizon: Seconds | None = None,
    model: PowerModel | None = None,
) -> EnergyReport:
    """Sample watt counter lanes onto a single-server tracer.

    Adds ``power/gpu_w`` / ``power/cpu_w`` / ``power/pcie_w`` /
    ``power/total_w`` counter samples on a fixed grid, which the existing
    Chrome exporter renders as counter tracks.  Returns the underlying
    :class:`EnergyReport`.  Post-hoc only: nothing about the traced run
    changes.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    report = tracer_energy(
        tracer, machine, faults=faults, horizon=horizon, model=model
    )
    meters = {lane: report.lane_meter(lane) for lane in report.idle}
    total = report.meter()
    t = 0.0
    while t <= report.horizon:
        for lane, meter in meters.items():
            tracer.add_counter(f"power/{lane}_w", t, meter.power_at(t))
        tracer.add_counter("power/total_w", t, total.power_at(t))
        t += interval
    return report


def sample_fleet_power(
    tracer: "FleetTracer",  # repro-lint: disable=tracer-default -- sampling *augments* a recorded fleet trace; a None tracer is meaningless here
    result: "FleetResult",
    model: PowerModel | None = None,
) -> FleetEnergyReport:
    """Sample per-replica watt lanes into the fleet time-series bank.

    Runs on the same tick grid the router sampled (read back from the
    ``fleet/up_replicas`` series, falling back to the tracer's sample
    interval), appending ``{replica}/gpu_watts`` / ``{replica}/cpu_watts``
    / ``{replica}/pcie_watts`` / ``{replica}/watts`` lanes plus
    ``fleet/interconnect_watts`` and the fleet-total ``fleet/watts``.
    Called by the router after the run completes — ticks never mutate
    serving state, and neither does metering.
    """
    energy = fleet_energy(result, tracer, model=model)
    bank = tracer.timeseries
    if "fleet/up_replicas" in bank:
        ticks = [t for t, _ in bank.series("fleet/up_replicas").samples()]
    else:
        step = tracer.sample_interval_s
        ticks = []
        t = 0.0
        while t <= energy.horizon:
            ticks.append(t)
            t += step
    fleet_meter = energy.meter()
    lane_meters = []
    for report in energy.replicas:
        meters = {lane: report.lane_meter(lane) for lane in report.idle}
        meters["total"] = report.meter()
        lane_meters.append((report.label, meters))
    link_meter = (
        energy.interconnect.meter() if energy.interconnect is not None else None
    )
    for t in ticks:
        for name, meters in lane_meters:
            bank.sample(f"{name}/gpu_watts", t, meters[DeviceKind.GPU].power_at(t))
            bank.sample(f"{name}/cpu_watts", t, meters[DeviceKind.CPU].power_at(t))
            bank.sample(f"{name}/pcie_watts", t, meters["pcie"].power_at(t))
            bank.sample(f"{name}/watts", t, meters["total"].power_at(t))
        if link_meter is not None:
            bank.sample("fleet/interconnect_watts", t, link_meter.power_at(t))
        bank.sample("fleet/watts", t, fleet_meter.power_at(t))
    return energy
