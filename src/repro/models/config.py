"""LLM architecture configurations and the neuron abstraction.

The paper (footnote 1) defines a *neuron* as a specific row/column of a
weight matrix.  Concretely:

* In an MLP block with activation ``relu``, neuron *i* owns row *i* of FC1
  and column *i* of FC2 — the ReLU gate after FC1 decides jointly whether
  both participate (paper Figure 2).
* In a ``reglu`` MLP (LLaMA-style gated unit with ReLU), neuron *i* owns row
  *i* of the gate and up projections and column *i* of the down projection.
* In a self-attention block the unit of sparsity is a head (Section 2.1:
  "nearly half of the attention heads (neurons) make minimal contributions").

:class:`ModelConfig` captures enough architecture to derive parameter
counts, per-neuron weight sizes, and layer shapes for both the performance
simulator (paper-scale presets below) and the numpy numerical substrate
(tiny presets).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.quant.formats import FP16, DType

__all__ = [
    "Activation",
    "ModelConfig",
    "OPT_6_7B",
    "OPT_13B",
    "OPT_30B",
    "OPT_66B",
    "OPT_175B",
    "FALCON_40B",
    "LLAMA_70B",
    "MODEL_PRESETS",
    "tiny_config",
]


class Activation:
    """MLP activation families distinguished by the paper."""

    RELU = "relu"  # OPT / Falcon(ReLU): FC1 -> ReLU -> FC2
    REGLU = "reglu"  # LLaMA(ReGLU): (gate * relu(up)) -> down

    ALL = (RELU, REGLU)


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer architecture.

    Attributes:
        name: Model identifier (e.g. ``"opt-30b"``).
        n_layers: Number of transformer layers.
        d_model: Hidden (embedding) dimension.
        d_ffn: MLP intermediate dimension; equals the MLP neuron count.
        n_heads: Attention heads; equals the attention neuron count.
        n_kv_heads: Key/value heads (GQA/MQA); defaults to ``n_heads``.
        vocab_size: Vocabulary size (used for embeddings/LM head).
        activation: ``Activation.RELU`` or ``Activation.REGLU``.
        max_seq_len: Maximum context length (bounds the KV cache).
    """

    name: str
    n_layers: int
    d_model: int
    d_ffn: int
    n_heads: int
    n_kv_heads: int = 0
    vocab_size: int = 50272
    activation: str = Activation.RELU
    max_seq_len: int = 2048

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.d_model <= 0 or self.d_ffn <= 0:
            raise ValueError("layers and dimensions must be positive")
        if self.n_heads <= 0:
            raise ValueError("n_heads must be positive")
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        if self.n_kv_heads == 0:
            object.__setattr__(self, "n_kv_heads", self.n_heads)
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be divisible by n_kv_heads")
        if self.activation not in Activation.ALL:
            raise ValueError(f"unknown activation: {self.activation!r}")
        if self.vocab_size <= 0 or self.max_seq_len <= 0:
            raise ValueError("vocab_size and max_seq_len must be positive")

    # ---- dimensions -----------------------------------------------------

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Total key/value projection width (GQA-aware)."""
        return self.n_kv_heads * self.head_dim

    @property
    def mlp_matrices(self) -> int:
        """Weight matrices per MLP neuron (2 for ReLU, 3 for ReGLU)."""
        return 3 if self.activation == Activation.REGLU else 2

    # ---- parameter counts ----------------------------------------------

    @property
    def attn_params_per_layer(self) -> int:
        """Q, K, V, O projection parameters in one layer."""
        qo = 2 * self.d_model * self.d_model
        kv = 2 * self.d_model * self.kv_dim
        return qo + kv

    @property
    def mlp_params_per_layer(self) -> int:
        return self.mlp_matrices * self.d_model * self.d_ffn

    @property
    def params_per_layer(self) -> int:
        return self.attn_params_per_layer + self.mlp_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Token embedding + tied LM head (counted once)."""
        return self.vocab_size * self.d_model

    @property
    def total_params(self) -> int:
        return self.n_layers * self.params_per_layer + self.embedding_params

    # ---- neuron granularity ---------------------------------------------

    @property
    def mlp_neurons_per_layer(self) -> int:
        return self.d_ffn

    @property
    def attn_neurons_per_layer(self) -> int:
        return self.n_heads

    @property
    def mlp_neuron_params(self) -> int:
        """Parameters owned by one MLP neuron."""
        return self.mlp_matrices * self.d_model

    @property
    def attn_neuron_params(self) -> int:
        """Parameters owned by one attention head (its Q/K/V/O slices).

        With grouped-query attention the K/V slices are shared across the
        group, so they are amortized over ``n_heads / n_kv_heads`` heads.
        """
        q_and_o = 2 * self.head_dim * self.d_model
        group = self.n_heads // self.n_kv_heads
        kv = 2 * self.head_dim * self.d_model / group
        return int(q_and_o + kv)

    # ---- memory accounting ----------------------------------------------

    def weight_bytes(self, dtype: DType = FP16) -> float:
        """Total parameter storage in bytes under ``dtype``."""
        return dtype.nbytes(self.total_params)

    def layer_bytes(self, dtype: DType = FP16) -> float:
        return dtype.nbytes(self.params_per_layer)

    def mlp_neuron_bytes(self, dtype: DType = FP16) -> float:
        return dtype.nbytes(self.mlp_neuron_params)

    def attn_neuron_bytes(self, dtype: DType = FP16) -> float:
        return dtype.nbytes(self.attn_neuron_params)

    def kv_cache_bytes_per_token(self, dtype: DType = FP16) -> float:
        """KV cache growth per generated token across all layers."""
        return dtype.nbytes(2 * self.kv_dim * self.n_layers)

    def with_name(self, name: str) -> "ModelConfig":
        return replace(self, name=name)


# ---- paper-scale presets (Section 8.1) -----------------------------------
# Dimensions follow the published OPT/Falcon/LLaMA architectures; the ReLU
# variants of Falcon-40B and LLaMA-70B are the SparseLLM checkpoints the
# paper uses.

OPT_6_7B = ModelConfig(
    name="opt-6.7b", n_layers=32, d_model=4096, d_ffn=16384, n_heads=32
)
OPT_13B = ModelConfig(
    name="opt-13b", n_layers=40, d_model=5120, d_ffn=20480, n_heads=40
)
OPT_30B = ModelConfig(
    name="opt-30b", n_layers=48, d_model=7168, d_ffn=28672, n_heads=56
)
OPT_66B = ModelConfig(
    name="opt-66b", n_layers=64, d_model=9216, d_ffn=36864, n_heads=72
)
OPT_175B = ModelConfig(
    name="opt-175b", n_layers=96, d_model=12288, d_ffn=49152, n_heads=96
)
FALCON_40B = ModelConfig(
    name="falcon-40b",
    n_layers=60,
    d_model=8192,
    d_ffn=32768,
    n_heads=128,
    n_kv_heads=8,
    vocab_size=65024,
    activation=Activation.RELU,
)
LLAMA_70B = ModelConfig(
    name="llama-70b",
    n_layers=80,
    d_model=8192,
    d_ffn=28672,
    n_heads=64,
    n_kv_heads=8,
    vocab_size=32000,
    activation=Activation.REGLU,
    max_seq_len=4096,
)

MODEL_PRESETS = {
    m.name: m
    for m in (OPT_6_7B, OPT_13B, OPT_30B, OPT_66B, OPT_175B, FALCON_40B, LLAMA_70B)
}


def tiny_config(
    name: str = "tiny-relu",
    n_layers: int = 2,
    d_model: int = 64,
    d_ffn: int = 256,
    n_heads: int = 4,
    vocab_size: int = 256,
    activation: str = Activation.RELU,
    max_seq_len: int = 128,
) -> ModelConfig:
    """A laptop-scale config for the numpy numerical substrate."""
    return ModelConfig(
        name=name,
        n_layers=n_layers,
        d_model=d_model,
        d_ffn=d_ffn,
        n_heads=n_heads,
        vocab_size=vocab_size,
        activation=activation,
        max_seq_len=max_seq_len,
    )
