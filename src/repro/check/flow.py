"""Interprocedural flow analysis runner (`repro check-flow`).

Orchestrates the whole-project passes over a file set:

1. parse + index every file (:class:`~repro.check.callgraph.ProjectIndex`),
2. resolve the call graph (:class:`~repro.check.callgraph.CallGraph`),
3. run the dimension pass (:mod:`repro.check.dimensions`) and the
   seed-provenance pass (:mod:`repro.check.provenance`),
4. apply the shared inline-suppression contract
   (``# repro-lint: disable=<rule> -- why``, same comment syntax and
   semantics as :mod:`repro.check.lint`).

Unlike the linter, the passes here are interprocedural, so the file set
is analyzed as one project: a dimension violation at a call site may
involve a signature three modules away.  ``bad-suppression`` stays the
linter's job (the two always run together in ``repro check`` and CI), so
a typo'd flow suppression is still reported exactly once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.callgraph import CallGraph, ProjectIndex
from repro.check.dimensions import check_dimensions
from repro.check.lint import LintViolation, _collect_suppressions, iter_python_files
from repro.check.provenance import check_provenance
from repro.check.registry import FLOW_RULES

__all__ = [
    "FlowReport",
    "run_flow",
    "flow_report_as_dict",
    "format_flow_text",
    "flow_to_json",
]


class FlowReport:
    """Violations plus the project stats the passes ran over."""

    def __init__(
        self,
        violations: list[LintViolation],
        n_files: int,
        n_functions: int,
        n_call_edges: int,
        n_task_sites: int,
    ):
        self.violations = violations
        self.n_files = n_files
        self.n_functions = n_functions
        self.n_call_edges = n_call_edges
        self.n_task_sites = n_task_sites

    @property
    def ok(self) -> bool:
        return not self.violations


def _task_sites(graph: CallGraph) -> int:
    """Call sites of the blessed task constructors (op/transfer_task)."""
    return sum(
        1
        for site in graph.edges
        if site.callee.endswith((":op_task", ":transfer_task"))
    )


def run_flow(
    paths: Sequence[Path | str], rules: Iterable[str] | None = None
) -> FlowReport:
    """Run the flow passes over ``paths`` (files and/or directories).

    ``rules`` selects a subset of :data:`repro.check.registry.FLOW_RULES`
    (default: all; unknown names raise ``ValueError``).  Suppressed
    violations are dropped; ``parse-error`` findings (shared with the
    linter's rule id) are always kept.
    """
    if rules is None:
        enabled = set(FLOW_RULES)
    else:
        enabled = set(rules)
        unknown = enabled - set(FLOW_RULES)
        if unknown:
            raise ValueError(f"unknown flow rules: {sorted(unknown)}")

    files = iter_python_files(paths)
    index = ProjectIndex.build(files)
    graph = CallGraph.build(index)

    violations: list[LintViolation] = [
        LintViolation(
            rule="parse-error", path=path, line=line, col=0, message=message
        )
        for path, line, message in index.parse_errors
    ]
    found = check_dimensions(index, graph) + check_provenance(index, graph)
    violations += [v for v in found if v.rule in enabled]

    # Shared suppression contract: drop violations whose rule is named in
    # an inline `# repro-lint: disable=...` on the same line.
    suppressions_by_path: dict[str, dict[int, list[str]]] = {}
    for module in index.modules.values():
        suppressions_by_path[module.path] = _collect_suppressions(module.source)
    kept = [
        v
        for v in violations
        if v.rule == "parse-error"
        or v.rule not in suppressions_by_path.get(v.path, {}).get(v.line, [])
    ]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return FlowReport(
        violations=kept,
        n_files=len(files),
        n_functions=len(index.functions),
        n_call_edges=len(graph.edges),
        n_task_sites=_task_sites(graph),
    )


def flow_report_as_dict(report: FlowReport) -> dict:
    """JSON-ready document, shaped like the linter's report."""
    by_rule: dict[str, int] = {}
    for v in report.violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    return {
        "ok": report.ok,
        "n_files": report.n_files,
        "n_functions": report.n_functions,
        "n_call_edges": report.n_call_edges,
        "n_task_sites": report.n_task_sites,
        "n_violations": len(report.violations),
        "by_rule": dict(sorted(by_rule.items())),
        "violations": [v.to_dict() for v in report.violations],
    }


def format_flow_text(report: FlowReport) -> str:
    """Human-readable report, one violation per line."""
    lines = [v.format() for v in report.violations]
    verdict = "OK" if report.ok else "FAIL"
    lines.append(
        f"{verdict}: {len(report.violations)} violation(s) in "
        f"{report.n_files} file(s) "
        f"({report.n_functions} function(s), {report.n_call_edges} call "
        f"edge(s), {report.n_task_sites} task site(s))"
    )
    return "\n".join(lines)


def flow_to_json(report: FlowReport) -> str:
    return json.dumps(flow_report_as_dict(report), indent=2) + "\n"
