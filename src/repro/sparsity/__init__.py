"""Activation sparsity: power-law synthesis, sampling, statistics."""

from repro.sparsity.activation import ActivationModel, LayerActivationProfile
from repro.sparsity.powerlaw import (
    activation_cdf,
    fit_zipf_alpha,
    neuron_fraction_for_mass,
    synthesize_activation_probs,
    top_share,
    zipf_weights,
)
from repro.sparsity.stats import (
    classify_hot_cold,
    gini,
    hot_neuron_mask,
    skewness,
    sparsity,
)

__all__ = [
    "ActivationModel",
    "LayerActivationProfile",
    "activation_cdf",
    "classify_hot_cold",
    "fit_zipf_alpha",
    "gini",
    "hot_neuron_mask",
    "neuron_fraction_for_mass",
    "skewness",
    "sparsity",
    "synthesize_activation_probs",
    "top_share",
    "zipf_weights",
]
