"""The telemetry layer must be free when no tracer is attached.

Two guarantees: (1) results are *bit-identical* with ``tracer=None``, a
``NullTracer``, or no tracer argument at all; (2) the ``is None`` guard in
``simulate_iteration`` costs less than 2% of an iteration simulation,
measured against the raw simulator path with no wrapper at all.
"""

import time

import pytest

from repro.engine.base import RESOURCES
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.events import EventSimulator
from repro.telemetry import NullTracer, Tracer

OVERHEAD_BOUND = 1.02
ATTEMPTS = 5
SAMPLES = 40


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


class TestBitIdentical:
    def test_default_none_and_null_tracer_agree_exactly(self, engine):
        base = engine.simulate_iteration(64, 4, 2)
        with_none = engine.simulate_iteration(64, 4, 2, tracer=None)
        with_null = engine.simulate_iteration(64, 4, 2, tracer=NullTracer())
        assert base == with_none == with_null

    def test_traced_run_returns_the_same_schedule(self, engine):
        tracer = Tracer()
        base = engine.simulate_iteration(64, 4, 2)
        traced = engine.simulate_iteration(64, 4, 2, tracer=tracer, trace_t0=5.0)
        assert traced == base
        assert len(tracer.task_spans) == len(base.tasks)
        assert min(s.start for s in tracer.task_spans) >= 5.0

    def test_simulate_iteration_at_traces_at_now(self, engine):
        tracer = Tracer()
        engine.simulate_iteration_at(2.5, None, 64, 1, 1, tracer=tracer)
        assert tracer.task_spans
        assert min(s.start for s in tracer.task_spans) >= 2.5


class TestOverhead:
    def _min_time(self, fn):
        """Minimum single-call wall time over SAMPLES calls (noise floor)."""
        best = float("inf")
        for _ in range(SAMPLES):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def test_untraced_wrapper_overhead_below_two_percent(self, engine):
        """simulate_iteration (guard included) vs. the raw simulator path.

        Min-of-many timing with bounded retries: scheduler jitter can push
        any single attempt over the bound, but the minimum is stable, so
        one clean attempt out of five is conclusive — while a systematic
        regression (e.g. eager span construction on the untraced path)
        fails all five.
        """

        def wrapped():
            engine.simulate_iteration(64, 1, 2)

        def raw():
            EventSimulator(list(RESOURCES)).run(engine.iteration_tasks(64, 1, 2))

        wrapped()  # warm caches before timing
        raw()
        ratios = []
        for _ in range(ATTEMPTS):
            t_raw = self._min_time(raw)
            t_wrapped = self._min_time(wrapped)
            ratios.append(t_wrapped / t_raw)
            if ratios[-1] < OVERHEAD_BOUND:
                return
        pytest.fail(
            f"untraced simulate_iteration exceeded {OVERHEAD_BOUND:.0%} of the "
            f"raw simulator path in all {ATTEMPTS} attempts: ratios {ratios}"
        )
