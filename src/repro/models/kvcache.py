"""Per-layer key/value cache for autoregressive decoding.

PowerInfer keeps the KV cache in CPU memory (paper Section 7) because its
per-token access volume is small at batch size one; the numerical substrate
uses this class for correctness, and the performance simulator accounts its
bytes through :meth:`repro.models.config.ModelConfig.kv_cache_bytes_per_token`.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig

__all__ = ["KVCache"]


class KVCache:
    """Fixed-capacity key/value cache for one sequence.

    Keys and values are stored per layer as ``(max_seq_len, kv_dim)`` arrays
    with a shared length cursor.
    """

    def __init__(self, config: ModelConfig, dtype: np.dtype = np.float32) -> None:
        self._config = config
        self._keys = [
            np.zeros((config.max_seq_len, config.kv_dim), dtype=dtype)
            for _ in range(config.n_layers)
        ]
        self._values = [
            np.zeros((config.max_seq_len, config.kv_dim), dtype=dtype)
            for _ in range(config.n_layers)
        ]
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        return self._config.max_seq_len

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Append ``keys``/``values`` of shape ``(t, kv_dim)`` to ``layer``.

        The length cursor only advances when the last layer is written, so
        callers append to layers 0..n-1 in order for each token block.

        Raises:
            ValueError: On overflow or shape mismatch.
        """
        t = keys.shape[0]
        if keys.shape != values.shape or keys.shape[1] != self._config.kv_dim:
            raise ValueError("keys/values must both be (t, kv_dim)")
        if self._length + t > self.capacity:
            raise ValueError(
                f"KV cache overflow: {self._length} + {t} > {self.capacity}"
            )
        self._keys[layer][self._length : self._length + t] = keys
        self._values[layer][self._length : self._length + t] = values
        if layer == self._config.n_layers - 1:
            self._length += t

    def keys(self, layer: int, extra: int = 0) -> np.ndarray:
        """View of layer's cached keys, optionally including ``extra``
        rows just written for the in-flight token block."""
        return self._keys[layer][: self._length + extra]

    def values(self, layer: int, extra: int = 0) -> np.ndarray:
        return self._values[layer][: self._length + extra]

    def reset(self) -> None:
        """Clear the cache (keeps buffers allocated)."""
        self._length = 0

    def nbytes(self) -> int:
        """Currently used cache bytes across all layers."""
        per_layer = self._length * self._config.kv_dim
        itemsize = self._keys[0].itemsize if self._keys else 4
        return 2 * per_layer * self._config.n_layers * itemsize
