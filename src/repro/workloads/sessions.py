"""Multi-turn conversation sessions.

The ChatGPT-prompts workload the paper serves is conversational: each turn's
prompt rides on top of the accumulated dialogue context, so effective input
lengths grow across a session while output lengths stay response-sized.
:func:`sample_session` generates such a session; :func:`simulate_session`
plays one through a performance engine and reports per-turn results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.base import PerfEngine
from repro.engine.results import RequestResult
from repro.workloads.prompts import PromptWorkload

__all__ = ["SessionTurn", "sample_session", "simulate_session"]


@dataclass(frozen=True)
class SessionTurn:
    """One turn of a conversation.

    Attributes:
        turn: 0-based turn index.
        prompt_len: New user-prompt tokens this turn.
        context_len: Accumulated dialogue tokens before this turn.
        output_len: Response tokens to generate.
    """

    turn: int
    prompt_len: int
    context_len: int
    output_len: int

    @property
    def input_len(self) -> int:
        """Tokens the engine must process this turn (context + prompt)."""
        return self.context_len + self.prompt_len


def sample_session(
    workload: PromptWorkload,
    n_turns: int,
    rng: np.random.Generator,
    mean_output: int = 96,
    max_context: int = 2048,
) -> list[SessionTurn]:
    """Sample a multi-turn session with accumulating context.

    Output lengths are geometric-ish around ``mean_output``; the context is
    truncated at ``max_context`` (sliding window), as serving systems do.
    """
    if n_turns <= 0:
        raise ValueError("n_turns must be positive")
    if mean_output <= 0:
        raise ValueError("mean_output must be positive")
    prompts = workload.sample_input_lengths(n_turns, rng)
    turns: list[SessionTurn] = []
    context = 0
    for i in range(n_turns):
        output = int(np.clip(rng.geometric(1.0 / mean_output), 4, 4 * mean_output))
        turns.append(
            SessionTurn(
                turn=i,
                prompt_len=int(prompts[i]),
                context_len=context,
                output_len=output,
            )
        )
        context = min(context + int(prompts[i]) + output, max_context)
    return turns


def simulate_session(
    engine: PerfEngine, turns: list[SessionTurn]
) -> list[RequestResult]:
    """Serve each turn of a session; returns per-turn timing results."""
    if not turns:
        raise ValueError("turns must be non-empty")
    return [
        engine.simulate_request(turn.input_len, turn.output_len) for turn in turns
    ]
