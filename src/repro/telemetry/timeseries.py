"""Windowed time-series over the simulated clock: ring buffers + export.

The tracer's :class:`~repro.telemetry.tracer.CounterSample` stream is an
append-only event log — good for timelines, clumsy for "what was the
queue depth over the last two seconds".  This module keeps *bounded*
series instead: each :class:`Series` is a ring buffer of ``(time,
value)`` samples on the simulated clock, with windowed queries (last
value, window mean/max, deltas of cumulative counters) that the SLO
monitor and the fleet dashboardery consume.

A :class:`TimeSeriesBank` is a named registry of series sharing one
ring capacity, sampled by the fleet router on its tick grid (see
:class:`~repro.telemetry.fleet.FleetTracer`): per-replica queue depth,
KV occupancy, busy fraction per window, fleet-cumulative completions
and deadline misses.  ``to_jsonl_records`` / ``save_jsonl`` export every
retained sample as self-describing JSON lines for ``jq``/pandas.

All times are seconds of simulated time; nothing here reads the wall
clock.
"""

from __future__ import annotations

import json
from collections import deque

__all__ = ["Series", "TimeSeriesBank", "DEFAULT_RING_CAPACITY"]

DEFAULT_RING_CAPACITY = 4096


class Series:
    """One named ring-buffered time-series of ``(time, value)`` samples.

    Samples must arrive in non-decreasing time order (the simulated
    clock never rolls back); the ring keeps the most recent
    ``capacity`` samples and silently forgets older ones — bounded
    memory over arbitrarily long runs.
    """

    def __init__(self, name: str, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._ring: deque[tuple[float, float]] = deque(maxlen=capacity)
        self._last_time = float("-inf")

    def append(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"series {self.name!r}: sample at {time:.6g}s precedes the "
                f"previous sample at {self._last_time:.6g}s"
            )
        self._last_time = time
        self._ring.append((time, float(value)))

    def __len__(self) -> int:
        return len(self._ring)

    def samples(self) -> list[tuple[float, float]]:
        """All retained ``(time, value)`` samples, oldest first."""
        return list(self._ring)

    def latest(self) -> tuple[float, float] | None:
        """The most recent sample, or ``None`` when empty."""
        return self._ring[-1] if self._ring else None

    def window(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Retained samples with ``t0 <= time <= t1``, oldest first."""
        return [(t, v) for t, v in self._ring if t0 <= t <= t1]

    def window_mean(self, t0: float, t1: float) -> float | None:
        """Mean sample value over ``[t0, t1]`` (``None`` when no samples)."""
        values = [v for _, v in self.window(t0, t1)]
        if not values:
            return None
        return sum(values) / len(values)

    def window_max(self, t0: float, t1: float) -> float | None:
        """Max sample value over ``[t0, t1]`` (``None`` when no samples)."""
        values = [v for _, v in self.window(t0, t1)]
        return max(values) if values else None

    def window_delta(self, t0: float, t1: float) -> float | None:
        """Last minus first value over ``[t0, t1]`` — the windowed rate
        numerator for cumulative-counter series (completions, misses)."""
        values = [v for _, v in self.window(t0, t1)]
        if not values:
            return None
        return values[-1] - values[0]


class TimeSeriesBank:
    """A named registry of :class:`Series` sharing one ring capacity."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._series: dict[str, Series] = {}

    def series(self, name: str) -> Series:
        """Get-or-create the series called ``name``."""
        found = self._series.get(name)
        if found is None:
            found = self._series[name] = Series(name, self.capacity)
        return found

    def sample(self, name: str, time: float, value: float) -> None:
        """Append one sample to the series called ``name``."""
        self.series(name).append(time, value)

    def names(self) -> tuple[str, ...]:
        """All series names, sorted."""
        return tuple(sorted(self._series))

    def __len__(self) -> int:
        """Total retained samples across all series."""
        return sum(len(s) for s in self._series.values())

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def to_jsonl_records(self) -> list[dict]:
        """One self-describing dict per retained sample (times in seconds)."""
        records: list[dict] = []
        for name in self.names():
            for time, value in self._series[name].samples():
                records.append(
                    {"type": "sample", "series": name, "time": time, "value": value}
                )
        return records

    def save_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl_records` output, one JSON object per line."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.to_jsonl_records():
                fh.write(json.dumps(record) + "\n")
