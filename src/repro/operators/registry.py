"""Operator catalog and registry.

Paper Section 7: PowerInfer adds ~10 neuron-aware operators across the two
processing units.  This registry is the reproduction's operator catalog —
each entry names a kernel, the devices it supports, whether it is
sparsity-aware, and the function computing its roofline footprint — so
engines, benches, and tests can enumerate and look up operators uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hardware.costmodel import OpWork
from repro.operators.dense import dense_gemv, dense_gemv_work
from repro.operators.neuron_aware import (
    CpuNeuronGemv,
    gather_cols_gemv,
    gather_rows_gemv,
    neuron_gemv_work,
    scatter_to_dense,
)
from repro.operators.sparse_baselines import csr_spmv, csr_work, pit_gemv, pit_work

__all__ = ["OperatorSpec", "OPERATOR_REGISTRY", "get_operator", "list_operators"]


@dataclass(frozen=True)
class OperatorSpec:
    """Catalog entry for one kernel.

    Attributes:
        name: Registry key.
        kernel: The callable implementing the numerics (numpy).
        work: Roofline-footprint function (signature varies per family and
            is documented on the underlying function).
        devices: Devices the kernel targets (``"gpu"``, ``"cpu"``).
        sparsity_aware: Whether the kernel skips inactive neurons.
        origin: Which system the operator models.
    """

    name: str
    kernel: Callable
    work: Callable[..., OpWork]
    devices: tuple[str, ...]
    sparsity_aware: bool
    origin: str


_SPECS = [
    OperatorSpec(
        name="dense_gemv",
        kernel=dense_gemv,
        work=dense_gemv_work,
        devices=("gpu", "cpu"),
        sparsity_aware=False,
        origin="llama.cpp dense baseline",
    ),
    OperatorSpec(
        name="neuron_gather_rows",
        kernel=gather_rows_gemv,
        work=neuron_gemv_work,
        devices=("gpu", "cpu"),
        sparsity_aware=True,
        origin="PowerInfer FC1/QKV neuron-aware GEMV (Section 5.4)",
    ),
    OperatorSpec(
        name="neuron_gather_cols",
        kernel=gather_cols_gemv,
        work=neuron_gemv_work,
        devices=("gpu", "cpu"),
        sparsity_aware=True,
        origin="PowerInfer FC2 neuron-aware GEMV (Section 5.4)",
    ),
    OperatorSpec(
        name="neuron_scatter_merge",
        kernel=scatter_to_dense,
        work=lambda n, d, batch=1: OpWork(
            bytes_read=batch * n * 4.0, bytes_written=batch * d * 4.0
        ),
        devices=("gpu",),
        sparsity_aware=True,
        origin="PowerInfer result integration (Section 5.3)",
    ),
    OperatorSpec(
        name="cpu_core_batched_gemv",
        kernel=CpuNeuronGemv(n_cores=8).run,
        work=neuron_gemv_work,
        devices=("cpu",),
        sparsity_aware=True,
        origin="PowerInfer CPU executor with per-core neuron batches",
    ),
    OperatorSpec(
        name="csr_spmv",
        kernel=csr_spmv,
        work=csr_work,
        devices=("gpu", "cpu"),
        sparsity_aware=True,
        origin="cuSPARSE / PyTorch-sparse analog (Figure 16 baseline)",
    ),
    OperatorSpec(
        name="pit_gemv",
        kernel=pit_gemv,
        work=pit_work,
        devices=("gpu",),
        sparsity_aware=True,
        origin="PIT permutation-invariant transformation (Figure 16 baseline)",
    ),
]

OPERATOR_REGISTRY: dict[str, OperatorSpec] = {spec.name: spec for spec in _SPECS}


def get_operator(name: str) -> OperatorSpec:
    """Look up an operator by name.

    Raises:
        KeyError: Listing the known operators.
    """
    try:
        return OPERATOR_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown operator {name!r}; known: {sorted(OPERATOR_REGISTRY)}"
        ) from None


def list_operators(
    device: str | None = None, sparsity_aware: bool | None = None
) -> list[OperatorSpec]:
    """Filter the catalog by device support and/or sparsity awareness."""
    specs = list(OPERATOR_REGISTRY.values())
    if device is not None:
        specs = [s for s in specs if device in s.devices]
    if sparsity_aware is not None:
        specs = [s for s in specs if s.sparsity_aware == sparsity_aware]
    return specs
