"""Simulation-correctness analyzers: static lint rules + schedule validation.

Two halves, one contract.  :mod:`repro.check.lint` statically enforces
the coding discipline the simulator's determinism rests on (simulated
clock only, seeded RNGs, tolerance-based time comparison, shared cost
constructors, opt-in tracing, stable iteration order).
:mod:`repro.check.schedule` dynamically replays realized schedules and
serving runs against the invariants the simulator promises (exclusive
devices, dependency order, cost-component accounting, KV-memory
conservation, fault-epoch consistency, trace/report reconciliation).
:mod:`repro.check.verify` sweeps the dynamic checks across the bench
suite.  CLI: ``repro lint`` and ``repro verify-schedule``.
"""

from repro.check.lint import (
    RULES,
    LintViolation,
    lint_paths,
    lint_source,
)
from repro.check.schedule import (
    KVEvent,
    ScheduleValidationError,
    Violation,
    require_valid,
    validate_energy_report,
    validate_fleet_energy,
    validate_fleet_run,
    validate_kv_ledger,
    validate_schedule,
    validate_server_run,
)
from repro.check.verify import format_verification, run_verification

__all__ = [
    "RULES",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "KVEvent",
    "ScheduleValidationError",
    "Violation",
    "require_valid",
    "validate_energy_report",
    "validate_fleet_energy",
    "validate_fleet_run",
    "validate_kv_ledger",
    "validate_schedule",
    "validate_server_run",
    "format_verification",
    "run_verification",
]
