"""Figure 6 — Insight-2: compute on CPU vs load-then-execute on GPU.

For CPU-resident neurons (10% of an OPT-30B MLP layer, 60% of an attention
layer), compare (a) transferring their weights to the GPU and computing
there vs (b) computing directly on the CPU with AVX2, across batch sizes.
The paper finds direct CPU execution wins below batch ~32.
"""

from __future__ import annotations

from repro.hardware.costmodel import CostModel, OpWork
from repro.hardware.spec import MACHINE_PRESETS
from repro.models.config import MODEL_PRESETS
from repro.quant.formats import FP16

__all__ = ["run_fig06", "BATCH_SIZES"]

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)


def _block_work(nbytes: float, params: float, batch: int) -> OpWork:
    return OpWork(
        flops=2.0 * params * batch,
        bytes_read=nbytes + batch * 4096 * 4.0,
        bytes_written=batch * 4096 * 4.0,
    )


def run_fig06(
    model_name: str = "opt-30b",
    machine_name: str = "pc-high",
    mlp_fraction: float = 0.10,
    attn_fraction: float = 0.60,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
) -> list[dict]:
    """Rows: per-batch times for both strategies on MLP and attention."""
    model = MODEL_PRESETS[model_name]
    machine = MACHINE_PRESETS[machine_name]
    blocks = {
        "mlp": (
            mlp_fraction * model.mlp_neurons_per_layer * model.mlp_neuron_bytes(FP16),
            mlp_fraction * model.mlp_params_per_layer,
        ),
        "attention": (
            attn_fraction * model.attn_neurons_per_layer * model.attn_neuron_bytes(FP16),
            attn_fraction * model.attn_params_per_layer,
        ),
    }
    rows = []
    for block, (nbytes, params) in blocks.items():
        for batch in batch_sizes:
            work = _block_work(nbytes, params, batch)
            load_then_execute = CostModel.transfer_time(
                nbytes, machine.link
            ) + CostModel.op_time(work, machine.gpu)
            direct_execute = CostModel.op_time(work, machine.cpu)
            rows.append(
                {
                    "block": block,
                    "batch": batch,
                    "load_then_execute_ms": load_then_execute * 1e3,
                    "direct_execute_ms": direct_execute * 1e3,
                    "cpu_wins": direct_execute < load_then_execute,
                }
            )
    return rows
