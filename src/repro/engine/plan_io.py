"""Persistence for deployment plans.

The offline phase (profiling + predictor sizing + ILP placement) takes
seconds to minutes; in the real PowerInfer it is a one-time step whose
output ships with the model.  This module serializes a
:class:`~repro.engine.plan.DeploymentPlan` to a single ``.npz`` file —
arrays for the per-layer probabilities and masks, a JSON header for the
model/machine/dtype — and restores it exactly.

Integrity: the header carries a CRC32 checksum of every array, so a
truncated or bit-flipped file fails loudly at load time instead of
producing a silently bogus plan.  Loading validates the format version,
the presence of every expected array, and per-layer array shapes before
constructing the plan.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from pathlib import Path

import numpy as np

from repro.engine.plan import DeploymentPlan
from repro.hardware.spec import DeviceSpec, LinkSpec, MachineSpec
from repro.models.config import ModelConfig
from repro.quant.formats import DTYPE_PRESETS, DType

__all__ = ["save_plan", "load_plan"]

# Version 2 added per-array checksums; version-1 files (no checksums) still
# load, skipping integrity verification.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _machine_to_dict(machine: MachineSpec) -> dict:
    return {
        "name": machine.name,
        "gpu": dataclasses.asdict(machine.gpu),
        "cpu": dataclasses.asdict(machine.cpu),
        "link": dataclasses.asdict(machine.link),
        "sync_overhead": machine.sync_overhead,
    }


def _machine_from_dict(data: dict) -> MachineSpec:
    return MachineSpec(
        name=data["name"],
        gpu=DeviceSpec(**data["gpu"]),
        cpu=DeviceSpec(**data["cpu"]),
        link=LinkSpec(**data["link"]),
        sync_overhead=data["sync_overhead"],
    )


def _checksum(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def save_plan(plan: DeploymentPlan, path: str | Path) -> None:
    """Write ``plan`` to ``path`` as an ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {
        "predictor_bytes": np.asarray(plan.predictor_bytes, dtype=np.float64),
    }
    for li in range(plan.model.n_layers):
        arrays[f"mlp_probs_{li}"] = plan.mlp_probs[li]
        arrays[f"attn_probs_{li}"] = plan.attn_probs[li]
        arrays[f"mlp_mask_{li}"] = plan.mlp_gpu_masks[li]
        arrays[f"attn_mask_{li}"] = plan.attn_gpu_masks[li]
    header = {
        "version": _FORMAT_VERSION,
        "model": dataclasses.asdict(plan.model),
        "machine": _machine_to_dict(plan.machine),
        "dtype": dataclasses.asdict(plan.dtype),
        "gpu_memory_reserve": plan.gpu_memory_reserve,
        "expected_context": plan.expected_context,
        "checksums": {name: _checksum(a) for name, a in arrays.items()},
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _fetch(data, name: str) -> np.ndarray:
    try:
        return data[name]
    except KeyError:
        raise ValueError(
            f"plan file is missing array {name!r} (truncated or not a plan?)"
        ) from None


def _verify_shape(name: str, array: np.ndarray, expected: tuple[int, ...]) -> None:
    if array.shape != expected:
        raise ValueError(
            f"plan array {name!r} has shape {array.shape}, expected {expected} "
            "(file does not match its own model header)"
        )


def load_plan(path: str | Path) -> DeploymentPlan:
    """Restore a plan written by :func:`save_plan`.

    Raises:
        ValueError: On an unsupported format version, a corrupt or missing
            header, missing arrays, array shapes inconsistent with the
            model in the header, or checksum mismatches (bit rot /
            truncation).
    """
    with np.load(path) as data:
        try:
            header_bytes = bytes(data["header"])
        except KeyError:
            raise ValueError(
                f"{path}: no plan header found (not a plan file?)"
            ) from None
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: corrupt plan header ({exc})") from None
        version = header.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported plan format version: {version!r} "
                f"(this build reads versions {list(_SUPPORTED_VERSIONS)})"
            )
        model = ModelConfig(**header["model"])
        machine = _machine_from_dict(header["machine"])
        dtype_dict = header["dtype"]
        dtype = DTYPE_PRESETS.get(dtype_dict["name"]) or DType(**dtype_dict)
        n = model.n_layers

        arrays: dict[str, np.ndarray] = {
            "predictor_bytes": _fetch(data, "predictor_bytes")
        }
        for li in range(n):
            for name in (
                f"mlp_probs_{li}",
                f"attn_probs_{li}",
                f"mlp_mask_{li}",
                f"attn_mask_{li}",
            ):
                arrays[name] = _fetch(data, name)

        _verify_shape("predictor_bytes", arrays["predictor_bytes"], (n,))
        for li in range(n):
            _verify_shape(f"mlp_probs_{li}", arrays[f"mlp_probs_{li}"], (model.d_ffn,))
            _verify_shape(f"mlp_mask_{li}", arrays[f"mlp_mask_{li}"], (model.d_ffn,))
            _verify_shape(
                f"attn_probs_{li}", arrays[f"attn_probs_{li}"], (model.n_heads,)
            )
            _verify_shape(
                f"attn_mask_{li}", arrays[f"attn_mask_{li}"], (model.n_heads,)
            )

        checksums = header.get("checksums")
        if version >= 2:
            if not isinstance(checksums, dict):
                raise ValueError(f"{path}: version {version} plan has no checksums")
            for name, array in arrays.items():
                expected = checksums.get(name)
                actual = _checksum(array)
                if expected != actual:
                    raise ValueError(
                        f"plan array {name!r} failed its checksum "
                        f"(stored {expected}, computed {actual}) — the file "
                        "is corrupt or was modified after saving"
                    )

        return DeploymentPlan(
            model=model,
            machine=machine,
            dtype=dtype,
            mlp_probs=[arrays[f"mlp_probs_{li}"] for li in range(n)],
            attn_probs=[arrays[f"attn_probs_{li}"] for li in range(n)],
            mlp_gpu_masks=[arrays[f"mlp_mask_{li}"] for li in range(n)],
            attn_gpu_masks=[arrays[f"attn_mask_{li}"] for li in range(n)],
            predictor_bytes=list(arrays["predictor_bytes"]),
            gpu_memory_reserve=header["gpu_memory_reserve"],
            expected_context=header["expected_context"],
        )
