#!/usr/bin/env python
"""Hardware what-if sweep: how much GPU memory does PowerInfer need?

The paper's central claim is that a small GPU plus the power-law activation
distribution goes a long way: hot neurons capture most activation mass, so
tokens/s degrades gracefully as GPU memory shrinks (unlike layer-offloading,
which degrades linearly).  This example sweeps the GPU memory capacity of a
PC-High-class machine from 8 to 48 GiB for OPT-30B FP16 and prints both
systems' generation speed.

Usage::

    python examples/hardware_sweep.py
"""

import dataclasses

from repro import FP16, OPT_30B, PC_HIGH
from repro.core.pipeline import build_plan
from repro.engine import LlamaCppEngine, PowerInferEngine

GIB = 2**30


def machine_with_gpu_memory(gib: float):
    """PC-High with a resized GPU memory."""
    gpu = dataclasses.replace(PC_HIGH.gpu, memory_capacity=gib * GIB)
    return dataclasses.replace(PC_HIGH, gpu=gpu, name=f"pc-high-{gib:g}g")


def main() -> None:
    model = OPT_30B
    print(f"Sweeping GPU memory for {model.name} "
          f"({model.weight_bytes(FP16) / GIB:.1f} GiB FP16)\n")
    print(f"{'gpu_mem':>8} | {'powerinfer':>10} | {'llama.cpp':>9} | "
          f"{'speedup':>7} | {'gpu neuron load':>15}")
    print("-" * 62)
    for gib in (8, 12, 16, 24, 32, 48):
        machine = machine_with_gpu_memory(gib)
        plan = build_plan(model, machine, FP16, policy="ilp")
        base = build_plan(model, machine, FP16, policy="none")
        pi = PowerInferEngine(plan).simulate_request(64, 128)
        lc = LlamaCppEngine(base).simulate_request(64, 128)
        print(f"{gib:>5} GiB | {pi.tokens_per_second:>8.2f}/s | "
              f"{lc.tokens_per_second:>7.2f}/s | "
              f"{pi.tokens_per_second / lc.tokens_per_second:>6.2f}x | "
              f"{pi.gpu_load_share:>14.0%}")

    print("\nReading: PowerInfer keeps most of its speed down to small GPUs")
    print("because hot neurons (a small byte fraction) carry most activations;")
    print("llama.cpp's dense layer split scales only with raw capacity.")


if __name__ == "__main__":
    main()
