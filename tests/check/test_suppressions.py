"""Suppression-mechanism tests.

The contract: a `# repro-lint: disable=<rule>` comment on the violating
line silences exactly that rule on exactly that line; an identical
unsuppressed line still fires; and a suppression naming an unknown rule
is itself reported (typos must not silently disable checks).
"""

from repro.check.lint import lint_source


class TestSuppression:
    def test_suppressed_line_is_silent(self):
        src = "import time\nt = time.time()  # repro-lint: disable=wall-clock\n"
        assert lint_source(src) == []

    def test_identical_unsuppressed_line_still_fires(self):
        src = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=wall-clock\n"
            "b = time.time()\n"
        )
        violations = lint_source(src)
        assert [(v.rule, v.line) for v in violations] == [("wall-clock", 3)]

    def test_suppression_only_covers_named_rule(self):
        # The wrong rule name leaves the wall-clock violation standing.
        src = "import time\nt = time.time()  # repro-lint: disable=mutable-default\n"
        assert [v.rule for v in lint_source(src)] == ["wall-clock"]

    def test_multiple_rules_in_one_comment(self):
        src = (
            "import time\n"
            "def f(x=[], tracer=None):\n"
            "    return time.time(), x  "
            "# repro-lint: disable=wall-clock,mutable-default\n"
        )
        # The mutable default anchors on line 2, not the suppressed line 3.
        assert [(v.rule, v.line) for v in lint_source(src)] == [("mutable-default", 2)]

    def test_justification_text_after_dashes(self):
        src = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=wall-clock -- measuring real solver time\n"
        )
        assert lint_source(src) == []

    def test_unknown_rule_name_is_reported(self):
        src = "x = 1  # repro-lint: disable=no-such-rule\n"
        violations = lint_source(src)
        assert [v.rule for v in violations] == ["bad-suppression"]
        assert "no-such-rule" in violations[0].message

    def test_unknown_rule_reported_alongside_valid_one(self):
        src = "import time\nt = time.time()  # repro-lint: disable=wall-clock,wall-clok\n"
        violations = lint_source(src)
        assert [v.rule for v in violations] == ["bad-suppression"]
        assert "wall-clok" in violations[0].message

    def test_meta_rules_cannot_be_suppressed(self):
        # disable=bad-suppression is itself an unknown (meta) rule name.
        src = "x = 1  # repro-lint: disable=bad-suppression\n"
        assert [v.rule for v in lint_source(src)] == ["bad-suppression"]

    def test_unrelated_comments_ignored(self):
        src = "import time\nt = time.time()  # TODO: revisit\n"
        assert [v.rule for v in lint_source(src)] == ["wall-clock"]
