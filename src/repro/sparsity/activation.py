"""Input-dependent activation sampling over synthesized probabilities.

Bridges the offline statistics (per-neuron activation probabilities) and the
online engine: given a layer's probabilities, :class:`ActivationModel`
samples per-token activation masks, computes expected active fractions, and
models the *union* sparsity of batched inference (paper Figure 14: joint
activations across a batch reduce effective sparsity, shrinking
PowerInfer's advantage as batch size grows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ActivationModel", "LayerActivationProfile"]


@dataclass(frozen=True)
class LayerActivationProfile:
    """Static activation statistics for one layer's neuron population."""

    probs: np.ndarray  # shape (n_neurons,), per-token activation probability

    def __post_init__(self) -> None:
        probs = np.asarray(self.probs, dtype=np.float64)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("probs must be a non-empty 1-D array")
        if (probs < 0).any() or (probs > 1).any():
            raise ValueError("probabilities must lie in [0, 1]")
        object.__setattr__(self, "probs", probs)

    @property
    def n_neurons(self) -> int:
        return int(self.probs.size)

    @property
    def mean_rate(self) -> float:
        """Expected fraction of neurons active for one token."""
        return float(self.probs.mean())

    def union_probs(self, batch_size: int) -> np.ndarray:
        """Probability each neuron activates for *any* token in a batch.

        Tokens are modelled as independent draws: ``1 - (1-p)^B``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return 1.0 - (1.0 - self.probs) ** batch_size

    def union_rate(self, batch_size: int) -> float:
        """Expected active fraction under the union of a batch."""
        return float(self.union_probs(batch_size).mean())


class ActivationModel:
    """Samples activation masks for every layer of a model.

    Args:
        mlp_profiles: One :class:`LayerActivationProfile` per layer for MLP
            neurons.
        attn_profiles: Optional per-layer profiles for attention heads
            (paper: ~half the heads contribute per token).
        rng: Seeded generator used by all sampling methods.
    """

    def __init__(
        self,
        mlp_profiles: list[LayerActivationProfile],
        rng: np.random.Generator,
        attn_profiles: list[LayerActivationProfile] | None = None,
    ) -> None:
        if not mlp_profiles:
            raise ValueError("mlp_profiles must be non-empty")
        if attn_profiles is not None and len(attn_profiles) != len(mlp_profiles):
            raise ValueError("attn_profiles must match mlp_profiles length")
        self.mlp_profiles = mlp_profiles
        self.attn_profiles = attn_profiles
        self._rng = rng

    @property
    def n_layers(self) -> int:
        return len(self.mlp_profiles)

    def sample_mlp_mask(self, layer: int, batch_size: int = 1) -> np.ndarray:
        """Boolean union-activation mask for the MLP neurons of ``layer``."""
        probs = self.mlp_profiles[layer].union_probs(batch_size)
        return self._rng.random(probs.size) < probs

    def sample_attn_mask(self, layer: int, batch_size: int = 1) -> np.ndarray:
        """Boolean union-activation mask for attention heads of ``layer``."""
        if self.attn_profiles is None:
            raise ValueError("no attention profiles configured")
        probs = self.attn_profiles[layer].union_probs(batch_size)
        return self._rng.random(probs.size) < probs

    def expected_active_split(
        self, layer: int, gpu_mask: np.ndarray, batch_size: int = 1
    ) -> tuple[float, float]:
        """Expected (GPU, CPU) counts of *active* MLP neurons in ``layer``.

        ``gpu_mask`` is a boolean array marking GPU-resident neurons.  This
        is the quantity behind the paper's Figure 12 neuron-load split.
        """
        profile = self.mlp_profiles[layer]
        if gpu_mask.shape != profile.probs.shape:
            raise ValueError("gpu_mask shape must match the layer's neurons")
        probs = profile.union_probs(batch_size)
        on_gpu = float(probs[gpu_mask].sum())
        on_cpu = float(probs[~gpu_mask].sum())
        return on_gpu, on_cpu
