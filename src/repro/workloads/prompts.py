"""Synthetic serving workloads matching the paper's evaluation setup.

Section 8.1: workloads come from ChatGPT-prompts and Alpaca — real dialog
inputs with prompts sampled between 8 and 128 characters and responses of
8, 128, or 512 tokens.  The experiments only consume (input length, output
length, batch) tuples, so each dataset is modelled as a length
distribution with the matching range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PromptWorkload", "CHATGPT_PROMPTS", "ALPACA", "PAPER_OUTPUT_LENGTHS", "sample_requests"]

PAPER_OUTPUT_LENGTHS = (8, 128, 512)


@dataclass(frozen=True)
class PromptWorkload:
    """A named distribution of prompt lengths (in tokens).

    Attributes:
        name: Workload identifier.
        mean_input: Mean prompt length.
        sigma: Log-normal shape parameter.
        min_input / max_input: Clamp bounds (paper: 8..128).
    """

    name: str
    mean_input: float
    sigma: float = 0.5
    min_input: int = 8
    max_input: int = 128

    def sample_input_lengths(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` prompt lengths."""
        if n <= 0:
            raise ValueError("n must be positive")
        mu = np.log(self.mean_input) - 0.5 * self.sigma**2
        lengths = rng.lognormal(mu, self.sigma, size=n)
        return np.clip(lengths, self.min_input, self.max_input).astype(int)


# Conversational user prompts: short, chatty.
CHATGPT_PROMPTS = PromptWorkload(name="chatgpt-prompts", mean_input=40, sigma=0.6)
# Self-instruct instructions: somewhat longer and more uniform.
ALPACA = PromptWorkload(name="alpaca", mean_input=64, sigma=0.4)


def sample_requests(
    workload: PromptWorkload,
    n_requests: int,
    output_len: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Sample ``(input_len, output_len)`` request tuples."""
    if output_len <= 0:
        raise ValueError("output_len must be positive")
    return [
        (int(length), output_len)
        for length in workload.sample_input_lengths(n_requests, rng)
    ]
