#!/usr/bin/env python
"""The full offline pipeline on the numerical substrate, end to end.

Walks the paper's Figure 7 workflow on a real (small) numpy transformer:

1. **Profile** — run C4/Wikipedia-style requests through the model and
   count which MLP neurons each token activates (Section 6.1).
2. **Train adaptive predictors** — per layer, search the smallest MLP
   predictor meeting the accuracy target, sized by the layer's measured
   sparsity and skewness (Section 5.1).
3. **Solve placement** — batch neurons by impact and run the ILP to pick
   GPU-resident neurons under a memory budget (Section 6.3).
4. **Deploy & serve** — run hybrid sparse-predicted inference and compare
   its outputs with dense execution.

Usage::

    python examples/offline_pipeline.py
"""

import numpy as np

from repro.engine.numerical import NumericalHybridEngine
from repro.hardware import PC_HIGH
from repro.models import KVCache, Transformer, init_weights, tiny_config
from repro.predictor import adaptive_train, collect_training_data
from repro.profiler import c4_corpus, layer_statistics, profile_numerical, wikipedia_corpus
from repro.quant import FP16
from repro.solver import NeuronGroup, SolverOptions, solve_ilp
from repro.sparsity import synthesize_activation_probs


def main() -> None:
    rng = np.random.default_rng(42)
    config = tiny_config(n_layers=3, d_model=64, d_ffn=256, vocab_size=512)
    probs = [
        synthesize_activation_probs(config.d_ffn, rng, mean_activation_rate=0.15)
        for _ in range(config.n_layers)
    ]
    model = Transformer(init_weights(config, rng, activation_probs=probs))
    print(f"Model: {config.n_layers} layers, d_model={config.d_model}, "
          f"d_ffn={config.d_ffn} ({config.total_params / 1e3:.0f}K params)")

    # 1. Profile over general-dataset requests.
    requests = list(c4_corpus().requests(24, config.vocab_size, rng))
    requests += list(wikipedia_corpus().requests(8, config.vocab_size, rng))
    trace = profile_numerical(model, requests)
    print(f"\nStep 1 — profiled {trace.n_tokens} tokens")
    for stats in layer_statistics(trace):
        print(f"  layer {stats.layer}: sparsity {stats.sparsity:.2f}, "
              f"skewness {stats.skewness:.2f}")

    # 2. Adaptive predictor training per layer.
    print("\nStep 2 — adaptive predictor sizing:")
    predictors = []
    for li, stats in enumerate(layer_statistics(trace)):
        x, y = collect_training_data(model, li, requests[:16])
        split = int(0.8 * x.shape[0])
        result = adaptive_train(
            x[:split], y[:split], x[split:], y[split:],
            layer_sparsity=stats.sparsity,
            layer_skewness=stats.skewness,
            rng=rng,
            accuracy_target=0.95,
        )
        predictors.append(result.predictor)
        print(f"  layer {li}: hidden={result.hidden}, "
              f"accuracy={result.metrics.accuracy:.3f}, "
              f"recall={result.metrics.recall:.3f}, "
              f"search={result.history}")

    # 3. ILP placement under a synthetic GPU budget (30% of MLP weights).
    groups = [
        NeuronGroup(
            name=f"layer{li}.mlp",
            impacts=trace.mlp_rates(li),
            neuron_bytes=config.mlp_neuron_bytes(FP16),
        )
        for li in range(config.n_layers)
    ]
    budget = 0.3 * sum(g.total_bytes for g in groups)
    strict = solve_ilp(groups, PC_HIGH, budget)
    print(f"\nStep 3 — ILP placement ({budget / 2**20:.2f} MiB GPU budget):")
    print(f"  with communication constraint: {strict.gpu_impact_share():.0%} "
          f"of activation mass on GPU — toy layers are smaller than C_l, so "
          f"the solver rightly refuses to pay a sync for them (Ineq. 4)")
    policy = solve_ilp(
        groups, PC_HIGH, budget,
        options=SolverOptions(enforce_communication=False),
    )
    print(f"  without it (paper-scale layers always clear C_l): "
          f"{policy.gpu_impact_share():.0%} of activation mass on GPU")

    # 4. Hybrid serving vs dense reference.
    engine = NumericalHybridEngine(model, predictors, policy=policy)
    prompt = rng.integers(0, config.vocab_size, size=12)
    dense_logits = model.forward(prompt, KVCache(config))
    sparse_logits = engine.forward_logits(prompt)
    agreement = float(
        (dense_logits.argmax(-1) == sparse_logits.argmax(-1)).mean()
    )
    print(f"\nStep 4 — hybrid serving: top-1 agreement with dense = "
          f"{agreement:.0%}; GPU computed {engine.stats.gpu_load_share:.0%} "
          f"of predicted-active neurons; "
          f"{engine.stats.neurons_skipped} neuron computations skipped")


if __name__ == "__main__":
    main()
