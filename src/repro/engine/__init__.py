"""Online inference engines: PowerInfer and the baseline policies."""

from repro.engine.base import RESOURCES, PerfEngine
from repro.engine.baselines import (
    DejaVuUmEngine,
    FlexGenEngine,
    LayerwiseSparseEngine,
    LlamaCppEngine,
    VllmEngine,
)
from repro.engine.numerical import ExecutionStats, NumericalHybridEngine
from repro.engine.plan import DeploymentPlan, MemoryReport
from repro.engine.plan_io import load_plan, save_plan
from repro.engine.powerinfer import PowerInferEngine
from repro.engine.results import RequestResult
from repro.engine.speculative import SpeculativeEngine, expected_accepted_tokens

__all__ = [
    "DejaVuUmEngine",
    "DeploymentPlan",
    "ExecutionStats",
    "FlexGenEngine",
    "LayerwiseSparseEngine",
    "LlamaCppEngine",
    "MemoryReport",
    "NumericalHybridEngine",
    "PerfEngine",
    "PowerInferEngine",
    "RESOURCES",
    "RequestResult",
    "SpeculativeEngine",
    "VllmEngine",
    "expected_accepted_tokens",
    "load_plan",
    "save_plan",
]
