"""Analytic sizing helpers complementary to the discrete-event engines."""

from repro.analysis.roofline import ThroughputBounds, throughput_bounds

__all__ = ["ThroughputBounds", "throughput_bounds"]
