"""Figures 10, 11, 13 — end-to-end generation speed vs llama.cpp.

The paper's headline experiment: for each model, input length (~64 and
~128), and output length (8, 128, 512), measure tokens/s for PowerInfer
and llama.cpp and report the speedup.  Figure 10 is PC-High FP16,
Figure 11 PC-Low FP16, Figure 13 INT4 on both machines.

Models that cannot fit a machine's combined memory in the requested dtype
are skipped with a note (e.g. OPT-175B FP16 needs 350 GB; Falcon-40B FP16
exceeds PC-Low's 64 GB host) — mirroring what physically runs in the paper.
"""

from __future__ import annotations

from repro.bench.runner import make_engine
from repro.hardware.memory import OutOfMemoryError
from repro.workloads.prompts import PAPER_OUTPUT_LENGTHS

__all__ = [
    "run_end_to_end",
    "run_fig10",
    "run_fig11",
    "run_fig13",
    "INPUT_LENGTHS",
    "FP16_MODELS",
    "INT4_MODELS",
]

INPUT_LENGTHS = (64, 128)
FP16_MODELS = ("opt-30b", "opt-66b", "falcon-40b", "llama-70b")
INT4_MODELS = ("opt-30b", "opt-66b", "falcon-40b", "llama-70b", "opt-175b")


def run_end_to_end(
    machine_name: str,
    dtype_name: str,
    model_names: tuple[str, ...],
    input_lengths: tuple[int, ...] = INPUT_LENGTHS,
    output_lengths: tuple[int, ...] = PAPER_OUTPUT_LENGTHS,
) -> list[dict]:
    """One row per (model, input, output): tokens/s of both systems."""
    rows = []
    for model_name in model_names:
        try:
            powerinfer = make_engine("powerinfer", model_name, machine_name, dtype_name)
            llama = make_engine("llama.cpp", model_name, machine_name, dtype_name)
        except OutOfMemoryError as exc:
            rows.append(
                {
                    "model": model_name,
                    "input": "-",
                    "output": "-",
                    "powerinfer_tps": 0.0,
                    "llamacpp_tps": 0.0,
                    "speedup": 0.0,
                    "note": f"skipped: {exc}",
                }
            )
            continue
        for input_len in input_lengths:
            for output_len in output_lengths:
                pi = powerinfer.simulate_request(input_len, output_len)
                lc = llama.simulate_request(input_len, output_len)
                rows.append(
                    {
                        "model": model_name,
                        "input": input_len,
                        "output": output_len,
                        "powerinfer_tps": pi.tokens_per_second,
                        "llamacpp_tps": lc.tokens_per_second,
                        "speedup": pi.tokens_per_second / lc.tokens_per_second
                        if lc.tokens_per_second
                        else 0.0,
                        "note": "",
                    }
                )
    return rows


def run_fig10(**kwargs) -> list[dict]:
    """PC-High, FP16 (paper Figure 10)."""
    return run_end_to_end("pc-high", "fp16", FP16_MODELS, **kwargs)


def run_fig11(**kwargs) -> list[dict]:
    """PC-Low, FP16 (paper Figure 11)."""
    return run_end_to_end("pc-low", "fp16", FP16_MODELS, **kwargs)


def run_fig13(**kwargs) -> list[dict]:
    """INT4 on both machines (paper Figure 13)."""
    rows = []
    for machine in ("pc-high", "pc-low"):
        for row in run_end_to_end(machine, "int4", INT4_MODELS, **kwargs):
            rows.append({"machine": machine, **row})
    return rows
