"""Pluggable iteration-level scheduler policies for continuous batching.

Each iteration, the server asks its policy what the running batch should do
for the next model step: which prefilling requests advance (and by how many
prompt tokens), and which decoding requests emit a token.  Three policies
span the design space studied by iteration-level schedulers (Orca, vLLM,
Sarathi):

* :class:`FCFSJoinPolicy` — everyone runs every iteration; a joining
  request prefills its whole prompt in one step alongside ongoing decodes.
* :class:`PrefillPriorityPolicy` — while any member still has prompt
  tokens, iterations are prefill-only; decodes stall.  Minimizes TTFT and
  ramps the batch fastest, at the price of decode stalls (worse TBT).
* :class:`ChunkedPrefillPolicy` — prompt work is split into chunks capped
  at ``max_prefill_tokens`` per iteration so decode tokens keep flowing
  every step; this bounds the worst inter-token gap (Sarathi-style TBT
  protection).

Policies never see the waiting queue: admission (FCFS, KV-budget gated)
belongs to the server.  They only shape the iteration over already-admitted
requests, so a policy cannot violate the memory budget.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.continuous import RequestState

__all__ = [
    "IterationPlan",
    "SchedulerPolicy",
    "FCFSJoinPolicy",
    "PrefillPriorityPolicy",
    "ChunkedPrefillPolicy",
    "SERVING_POLICIES",
    "make_policy",
]


@dataclass
class IterationPlan:
    """What one model iteration does.

    Attributes:
        prefill: ``(request state, n_prompt_tokens)`` chunks advanced this
            iteration (each costed as its own prompt block).
        decode: Requests emitting one token this iteration (costed as one
            batched decode step).
    """

    prefill: list[tuple["RequestState", int]] = field(default_factory=list)
    decode: list["RequestState"] = field(default_factory=list)

    @property
    def prefill_tokens(self) -> int:
        """Total prompt tokens processed this iteration."""
        return sum(chunk for _, chunk in self.prefill)

    @property
    def is_empty(self) -> bool:
        return not self.prefill and not self.decode


class SchedulerPolicy(ABC):
    """Decides the composition of each model iteration."""

    name = "base"

    @abstractmethod
    def plan_iteration(self, running: Sequence["RequestState"]) -> IterationPlan:
        """Plan the next iteration over the admitted batch.

        ``running`` is ordered by admission time (FCFS).  Every returned
        state must come from ``running``; a non-empty batch must yield a
        non-empty plan (the server rejects stalls).
        """


class FCFSJoinPolicy(SchedulerPolicy):
    """Join-immediately scheduling: full prompt in one step, then decode."""

    name = "fcfs"

    def plan_iteration(self, running: Sequence["RequestState"]) -> IterationPlan:
        plan = IterationPlan()
        for state in running:
            if state.is_prefilling:
                plan.prefill.append((state, state.remaining_prompt))
            elif state.is_decoding:
                plan.decode.append(state)
        return plan


class PrefillPriorityPolicy(SchedulerPolicy):
    """Prefill-only iterations while any member still has prompt tokens."""

    name = "prefill-first"

    def plan_iteration(self, running: Sequence["RequestState"]) -> IterationPlan:
        plan = IterationPlan()
        prefilling = [s for s in running if s.is_prefilling]
        if prefilling:
            plan.prefill = [(s, s.remaining_prompt) for s in prefilling]
            return plan
        plan.decode = [s for s in running if s.is_decoding]
        return plan


class ChunkedPrefillPolicy(SchedulerPolicy):
    """Cap per-iteration prompt tokens so decodes never stall for long.

    Attributes:
        max_prefill_tokens: Prompt-token budget per iteration, shared FCFS
            across prefilling requests.
    """

    name = "chunked"

    def __init__(self, max_prefill_tokens: int = 64) -> None:
        if max_prefill_tokens < 1:
            raise ValueError("max_prefill_tokens must be >= 1")
        self.max_prefill_tokens = max_prefill_tokens

    def plan_iteration(self, running: Sequence["RequestState"]) -> IterationPlan:
        plan = IterationPlan()
        budget = self.max_prefill_tokens
        for state in running:
            if state.is_decoding:
                plan.decode.append(state)
            elif state.is_prefilling and budget > 0:
                chunk = min(state.remaining_prompt, budget)
                plan.prefill.append((state, chunk))
                budget -= chunk
        if plan.is_empty and running:
            # All members are prefilling but the budget starved them (can
            # only happen with budget 0 mid-loop, guarded above) — never
            # stall a non-empty batch.
            state = next(s for s in running if s.is_prefilling)
            plan.prefill.append((state, min(state.remaining_prompt, self.max_prefill_tokens)))
        return plan


SERVING_POLICIES: dict[str, Callable[..., SchedulerPolicy]] = {
    FCFSJoinPolicy.name: FCFSJoinPolicy,
    PrefillPriorityPolicy.name: PrefillPriorityPolicy,
    ChunkedPrefillPolicy.name: ChunkedPrefillPolicy,
}


def make_policy(name: str, **kwargs) -> SchedulerPolicy:
    """Instantiate a policy by preset name.

    ``kwargs`` are forwarded to the policy constructor (only
    ``chunked`` takes one: ``max_prefill_tokens``).
    """
    try:
        factory = SERVING_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler policy {name!r}; choose from {sorted(SERVING_POLICIES)}"
        ) from None
    return factory(**kwargs)
