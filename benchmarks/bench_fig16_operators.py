"""Figure 16 — neuron-aware operators vs generic sparse kernels.

Paper: PowerInfer's CPU operator beats dense GEMV even below 10% sparsity,
while generic sparse kernels (PyTorch sparse / cuSPARSE-style CSR with
dynamic conversion) need ~87%+ sparsity; on GPU the neuron-aware operator
matches PIT.
"""

from conftest import run_once

from repro.bench.fig16 import run_fig16_measured, run_fig16_modeled


def test_fig16_modeled(benchmark, record_rows):
    rows = run_once(benchmark, run_fig16_modeled)
    record_rows("fig16_modeled", rows, "Figure 16 — modeled operator times (PC-Low)")

    dense_cpu = rows[0]["cpu_dense_ms"]
    for row in rows:
        if row["sparsity"] >= 0.1:
            # Neuron-aware wins on CPU even at low sparsity...
            assert row["cpu_neuron_aware_ms"] < dense_cpu, row
        if 0.05 < row["sparsity"] < 0.80:
            # ...where even pre-converted CSR still loses to dense...
            assert row["cpu_csr_ms"] > dense_cpu, row
            # ...and dynamically-converted CSR loses at ANY sparsity.
            assert row["cpu_csr_dynamic_ms"] > dense_cpu, row
        # GPU: neuron-aware ~matches PIT (within 20%).
        ratio = row["gpu_neuron_aware_ms"] / row["gpu_pit_ms"]
        assert 0.8 < ratio < 1.2, row
    # Static CSR beats dense only at extreme sparsity (paper: ~87%+).
    assert rows[-1]["cpu_csr_ms"] < dense_cpu
    crossover = next(r["sparsity"] for r in rows if r["cpu_csr_ms"] < dense_cpu)
    assert crossover >= 0.80, f"CSR crossover too early: {crossover}"

    # Near-linear scaling with sparsity for the neuron-aware operator.
    t10 = next(r for r in rows if r["sparsity"] == 0.1)["cpu_neuron_aware_ms"]
    t95 = next(r for r in rows if r["sparsity"] == 0.95)["cpu_neuron_aware_ms"]
    assert t95 < t10 * 0.15


def test_fig16_measured(benchmark, record_rows):
    rows = run_once(benchmark, run_fig16_measured)
    record_rows("fig16_measured", rows, "Figure 16 — measured numpy kernel times")

    for row in rows:
        if row["sparsity"] >= 0.9:
            assert row["neuron_aware_us"] < row["dense_us"], row
        # Dynamic conversion makes CSR slower than dense at any sparsity
        # on this hardware.
        assert row["csr_dynamic_us"] > row["neuron_aware_us"], row
