"""Figure 18 — consumer RTX 4090 + PowerInfer vs server A100.

Generation speed of PowerInfer on PC-High compared with llama.cpp and vLLM
on a single 80 GB A100, for OPT-30B and Falcon-40B (both fit the A100
exactly), with input lengths 1 (pure generation) and 64 (conversation).
Paper: llama.cpp lags vLLM by 92-93%; PowerInfer narrows the gap to 18-29%.
"""

from __future__ import annotations

from repro.bench.runner import make_engine

__all__ = ["run_fig18", "INPUT_LENGTHS"]

INPUT_LENGTHS = (1, 64)
_MODELS = ("opt-30b", "falcon-40b")


def run_fig18(
    model_names: tuple[str, ...] = _MODELS,
    input_lengths: tuple[int, ...] = INPUT_LENGTHS,
    output_len: int = 128,
    dtype_name: str = "fp16",
) -> list[dict]:
    """Tokens/s for each system and the slowdown relative to vLLM@A100."""
    rows = []
    for model_name in model_names:
        vllm = make_engine("vllm", model_name, "a100-server", dtype_name)
        powerinfer = make_engine("powerinfer", model_name, "pc-high", dtype_name)
        llama = make_engine("llama.cpp", model_name, "pc-high", dtype_name)
        for input_len in input_lengths:
            ref = vllm.simulate_request(input_len, output_len).tokens_per_second
            for name, engine in (("powerinfer", powerinfer), ("llama.cpp", llama)):
                tps = engine.simulate_request(input_len, output_len).tokens_per_second
                rows.append(
                    {
                        "model": model_name,
                        "input": input_len,
                        "system": f"{name}@4090",
                        "tokens_per_s": tps,
                        "vllm_a100_tps": ref,
                        "slowdown_vs_a100": 1.0 - tps / ref,
                    }
                )
    return rows
