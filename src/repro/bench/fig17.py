"""Figure 17 — online predictor overhead.

The share of end-to-end inference time spent executing activation
predictors on PC-Low.  Paper: under 10% on average, thanks to adaptive
sizing and GPU placement of the predictors.
"""

from __future__ import annotations

from repro.bench.runner import make_engine
from repro.hardware.memory import OutOfMemoryError

__all__ = ["run_fig17"]

_MODELS = ("opt-6.7b", "opt-13b", "opt-30b", "falcon-40b", "llama-70b")


def run_fig17(
    machine_name: str = "pc-low",
    dtype_name: str = "int4",
    model_names: tuple[str, ...] = _MODELS,
    input_len: int = 64,
    output_len: int = 128,
) -> list[dict]:
    """Predictor share of total busy time per model."""
    rows = []
    for model_name in model_names:
        try:
            engine = make_engine("powerinfer", model_name, machine_name, dtype_name)
        except OutOfMemoryError:
            continue
        result = engine.simulate_request(input_len, output_len)
        shares = result.breakdown_shares()
        rows.append(
            {
                "model": model_name,
                "predictor_share": shares.get("predictor", 0.0),
                "inference_share": 1.0 - shares.get("predictor", 0.0),
                "tokens_per_s": result.tokens_per_second,
            }
        )
    return rows
