"""Tests for sparsity/skewness statistics and hot-cold classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparsity.stats import (
    classify_hot_cold,
    gini,
    hot_neuron_mask,
    skewness,
    sparsity,
)


class TestSparsity:
    def test_from_rates(self):
        assert sparsity(np.array([0.1, 0.3])) == pytest.approx(0.8)

    def test_from_counts(self):
        assert sparsity(np.array([10, 30]), total_tokens=100) == pytest.approx(0.8)

    def test_rejects_rates_above_one(self):
        with pytest.raises(ValueError):
            sparsity(np.array([1.5]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sparsity(np.array([]))


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_point_mass_approaches_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini(v) > 0.99

    def test_known_value(self):
        # For [0, 1]: G = 0.5.
        assert gini(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_scale_invariant(self, rng):
        v = rng.random(200)
        assert gini(v) == pytest.approx(gini(v * 37.5))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini(np.array([-1.0, 1.0]))

    def test_all_zero_is_zero(self):
        assert gini(np.zeros(5)) == 0.0

    @given(
        v=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(2, 50),
            elements=st.floats(0, 100),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_in_unit_interval(self, v):
        g = gini(v)
        assert -1e-9 <= g < 1.0

    def test_skewness_alias(self, rng):
        v = rng.random(50)
        assert skewness(v) == gini(v)


class TestHotColdClassification:
    def test_mask_covers_requested_mass_minimally(self, rng):
        freqs = rng.random(500)
        mask = hot_neuron_mask(freqs, mass=0.8)
        assert freqs[mask].sum() / freqs.sum() >= 0.8
        # Minimality: removing the coldest hot neuron drops below the mass.
        hot_idx = np.nonzero(mask)[0]
        coldest_hot = hot_idx[np.argmin(freqs[hot_idx])]
        reduced = mask.copy()
        reduced[coldest_hot] = False
        assert freqs[reduced].sum() / freqs.sum() < 0.8

    def test_hot_set_is_top_frequencies(self, rng):
        freqs = np.arange(100, dtype=float)
        hot, cold = classify_hot_cold(freqs, mass=0.5)
        assert freqs[hot].min() > freqs[cold].max()

    def test_partition_is_complete(self, rng):
        freqs = rng.random(64)
        hot, cold = classify_hot_cold(freqs)
        assert sorted(np.concatenate([hot, cold]).tolist()) == list(range(64))

    def test_power_law_yields_small_hot_set(self, rng):
        from repro.sparsity.powerlaw import synthesize_activation_probs

        probs = synthesize_activation_probs(2048, rng)
        hot, _ = classify_hot_cold(probs, mass=0.80)
        # Paper: hot neurons are a minority (26% at this calibration).
        assert len(hot) / 2048 < 0.30

    def test_rejects_bad_mass(self):
        with pytest.raises(ValueError):
            hot_neuron_mask(np.ones(5), mass=0.0)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            hot_neuron_mask(np.zeros(5))
