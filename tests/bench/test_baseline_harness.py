"""Benchmark baseline harness: record, re-check, and catch regressions."""

import json

import pytest

from repro.bench.baseline import (
    SCHEMA_VERSION,
    check_against_baseline,
    format_diff,
    load_baseline,
    run_suite,
    write_baseline,
)
from repro.cli import main


@pytest.fixture(scope="module")
def baseline_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_baseline.json"
    assert main(["bench-baseline", "--quick", "--out", str(path)]) == 0
    return path


class TestBaselineDocument:
    def test_schema_and_contents(self, baseline_path):
        doc = load_baseline(baseline_path)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "quick"
        metrics = doc["metrics"]
        assert "serving/ttft_p95_s" in metrics
        assert any(k.startswith("e2e/powerinfer/") for k in metrics)
        for name, record in metrics.items():
            if name.startswith("simperf/"):
                # Wall-clock throughput metrics carry their own (wide)
                # tolerance so CI machine speed never gates the check.
                assert set(record) == {"value", "higher_is_better", "tolerance"}
                assert record["tolerance"] >= 0.5
                assert record["higher_is_better"] is True
            elif name.endswith("/j_per_token") or name == "fleet/j_per_token":
                # Energy metrics pin their intended band explicitly.
                assert set(record) == {"value", "higher_is_better", "tolerance"}
                assert record["higher_is_better"] is False
                assert record["value"] > 0.0
            else:
                assert set(record) == {"value", "higher_is_better"}
        assert "simperf/serving_iterations_per_s" in metrics
        assert any(
            k.startswith("energy/") and k.endswith("/j_per_token") for k in metrics
        )
        assert doc["attribution"], "e2e configs must carry fingerprints"
        for fp in doc["attribution"].values():
            assert set(fp) == {"shares", "critical_resource", "makespan_s"}
            assert fp["critical_resource"] in ("gpu", "cpu", "pcie")
            assert sum(fp["shares"].values()) == pytest.approx(1.0)

    def test_load_rejects_unknown_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 999, "metrics": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(bad)


class TestBenchCheckCli:
    def test_self_check_passes(self, baseline_path, capsys):
        """The suite is deterministic: HEAD vs HEAD must exit 0."""
        assert main(["bench-check", "--baseline", str(baseline_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_doctored_baseline_fails(self, baseline_path, tmp_path, capsys):
        doc = json.loads(baseline_path.read_text())
        name = next(k for k in doc["metrics"] if k.endswith("/decode_tps"))
        doc["metrics"][name]["value"] *= 1.5  # pretend we used to be faster
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(doc))
        assert main(["bench-check", "--baseline", str(doctored)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "regression" in out

    def test_report_artifact(self, baseline_path, tmp_path):
        report = tmp_path / "diff.json"
        code = main(
            ["bench-check", "--baseline", str(baseline_path), "--report", str(report)]
        )
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["rows"]

    def test_missing_baseline_exits_2(self, tmp_path):
        assert main(["bench-check", "--baseline", str(tmp_path / "nope.json")]) == 2


class TestDiffLogic:
    def _doc(self, metrics, attribution=None):
        return {
            "schema": SCHEMA_VERSION,
            "suite": "quick",
            "metrics": metrics,
            "attribution": attribution or {},
        }

    def test_within_tolerance_ok(self):
        base = self._doc({"m": {"value": 100.0, "higher_is_better": True}})
        cur = self._doc({"m": {"value": 97.0, "higher_is_better": True}})
        assert check_against_baseline(base, cur, tolerance=0.05).ok

    def test_regression_direction_respects_orientation(self):
        higher = {"value": 100.0, "higher_is_better": True}
        lower = {"value": 100.0, "higher_is_better": False}
        base = self._doc({"up": higher, "down": lower})
        cur = self._doc(
            {
                "up": {"value": 90.0, "higher_is_better": True},  # -10%: bad
                "down": {"value": 90.0, "higher_is_better": False},  # -10%: good
            }
        )
        diff = check_against_baseline(base, cur, tolerance=0.05)
        assert [r["metric"] for r in diff.regressions] == ["up"]
        by_name = {r["metric"]: r for r in diff.rows}
        assert by_name["down"]["status"] == "improved"

    def test_missing_metric_is_regression(self):
        base = self._doc({"m": {"value": 1.0, "higher_is_better": True}})
        diff = check_against_baseline(base, self._doc({}), tolerance=0.05)
        assert not diff.ok
        assert diff.regressions[0]["status"] == "missing-in-current"

    def test_attribution_note_on_e2e_regression(self):
        key = "e2e/powerinfer/opt-6.7b/pc-low/int4"
        metric = f"{key}/decode_tps"
        base = self._doc(
            {metric: {"value": 100.0, "higher_is_better": True}},
            {key: {"shares": {"memory": 0.6, "transfer": 0.31},
                   "critical_resource": "gpu", "makespan_s": 0.01}},
        )
        cur = self._doc(
            {metric: {"value": 80.0, "higher_is_better": True}},
            {key: {"shares": {"memory": 0.47, "transfer": 0.44},
                   "critical_resource": "pcie", "makespan_s": 0.0125}},
        )
        diff = check_against_baseline(base, cur, tolerance=0.05)
        assert not diff.ok
        (note,) = diff.attribution_notes
        assert "transfer share grew 31% -> 44%" in note
        assert "critical resource moved gpu -> pcie" in note
        assert note in format_diff(diff)

    def test_format_diff_verdict_lines(self):
        base = self._doc({"m": {"value": 1.0, "higher_is_better": True}})
        ok = check_against_baseline(base, base)
        assert "OK" in format_diff(ok)
        bad = check_against_baseline(base, self._doc({}))
        assert "FAIL: 1 metric(s) regressed" in format_diff(bad)


def test_write_baseline_roundtrip(tmp_path):
    path = tmp_path / "b.json"
    doc = write_baseline(path, quick=True)
    assert load_baseline(path) == doc
    # Deterministic simulation: a fresh run is byte-for-byte reproducible —
    # except the simperf/* metrics, which measure real wall-clock simulator
    # throughput and are gated by their own wide tolerance instead.
    rerun = run_suite(quick=True)

    def deterministic(document):
        return {
            **document,
            "metrics": {
                k: v
                for k, v in document["metrics"].items()
                if not k.startswith("simperf/")
            },
        }

    assert deterministic(rerun) == deterministic(doc)
    assert {k for k in rerun["metrics"] if k.startswith("simperf/")} == {
        k for k in doc["metrics"] if k.startswith("simperf/")
    }
