"""Figure 15 — ablation: performance breakdown of PowerInfer's components.

Step-by-step integration into llama.cpp on PC-High:

* ``llama.cpp`` — the dense layer-offloading baseline;
* ``+PO`` — add predictors and neuron-aware operators (still layer-wise);
* ``+Engine`` — add the hybrid intra-layer engine with the naive
  frequency-greedy placement;
* ``+Policy`` — replace the naive policy with the offline ILP solution.

Paper (OPT-30B / OPT-66B): 1x -> ~2x -> 9.97x/3.43x -> 10.47x/3.67x.
"""

from __future__ import annotations

from repro.bench.runner import make_engine

__all__ = ["run_fig15", "STAGES"]

STAGES = ("llama.cpp", "+PO", "+Engine", "+Policy")


def run_fig15(
    model_names: tuple[str, ...] = ("opt-30b", "opt-66b"),
    machine_name: str = "pc-high",
    dtype_name: str = "fp16",
    input_len: int = 64,
    output_len: int = 128,
) -> list[dict]:
    """Per-model tokens/s and speedup at each integration stage."""
    rows = []
    for model_name in model_names:
        engines = {
            "llama.cpp": make_engine("llama.cpp", model_name, machine_name, dtype_name),
            "+PO": make_engine("+PO", model_name, machine_name, dtype_name),
            "+Engine": make_engine(
                "powerinfer", model_name, machine_name, dtype_name, policy="greedy"
            ),
            "+Policy": make_engine(
                "powerinfer", model_name, machine_name, dtype_name, policy="ilp"
            ),
        }
        base_tps = None
        for stage in STAGES:
            result = engines[stage].simulate_request(input_len, output_len)
            if base_tps is None:
                base_tps = result.tokens_per_second
            rows.append(
                {
                    "model": model_name,
                    "stage": stage,
                    "tokens_per_s": result.tokens_per_second,
                    "speedup": result.tokens_per_second / base_tps,
                }
            )
    return rows
