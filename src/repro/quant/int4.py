"""Group-wise INT4 quantization in numpy.

This is the numerical counterpart of :data:`repro.quant.formats.INT4`: a
symmetric-range, asymmetric-zero-point group quantizer matching the Q4_1
layout llama.cpp uses.  Weights are split along the last axis into groups of
``group_size`` values; each group stores 4-bit codes plus an FP scale and
minimum.

The numerical engine uses this to demonstrate the paper's Figure 13 path
(quantized inference) with bounded reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedTensor", "quantize_int4", "dequantize_int4", "quantization_error"]

_LEVELS = 15  # 4-bit codes span 0..15


@dataclass(frozen=True)
class QuantizedTensor:
    """An INT4-quantized tensor with per-group scale/min metadata.

    Attributes:
        codes: uint8 array of 4-bit codes, same shape as the original.
        scales: Per-group scale, shape ``(..., n_groups)``.
        mins: Per-group minimum, shape ``(..., n_groups)``.
        group_size: Values per quantization group.
        original_shape: Shape of the source tensor.
    """

    codes: np.ndarray
    scales: np.ndarray
    mins: np.ndarray
    group_size: int
    original_shape: tuple[int, ...]

    @property
    def nbytes_effective(self) -> float:
        """Modelled storage: 4 bits/code + fp16 scale & min per group."""
        n_codes = self.codes.size
        n_groups = self.scales.size
        return n_codes * 0.5 + n_groups * 4.0


def quantize_int4(weights: np.ndarray, group_size: int = 32) -> QuantizedTensor:
    """Quantize ``weights`` to 4 bits with per-group scale and minimum.

    The last axis must be divisible by ``group_size``.

    Raises:
        ValueError: If the shape is incompatible with ``group_size``.
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    if weights.ndim == 0:
        raise ValueError("cannot quantize a scalar")
    last = weights.shape[-1]
    if last % group_size != 0:
        raise ValueError(
            f"last axis ({last}) must be divisible by group_size ({group_size})"
        )
    grouped = weights.reshape(*weights.shape[:-1], last // group_size, group_size)
    mins = grouped.min(axis=-1)
    maxs = grouped.max(axis=-1)
    spans = maxs - mins
    # Flat groups (span == 0) quantize to code 0 with scale 0.
    scales = np.where(spans > 0, spans / _LEVELS, 0.0)
    safe_scales = np.where(scales > 0, scales, 1.0)
    codes = np.rint((grouped - mins[..., None]) / safe_scales[..., None])
    codes = np.clip(codes, 0, _LEVELS).astype(np.uint8)
    return QuantizedTensor(
        codes=codes.reshape(weights.shape),
        scales=scales.astype(weights.dtype, copy=False),
        mins=mins.astype(weights.dtype, copy=False),
        group_size=group_size,
        original_shape=tuple(weights.shape),
    )


def dequantize_int4(qt: QuantizedTensor) -> np.ndarray:
    """Reconstruct an FP tensor from its INT4 representation."""
    last = qt.original_shape[-1]
    grouped_codes = qt.codes.reshape(
        *qt.original_shape[:-1], last // qt.group_size, qt.group_size
    )
    grouped = grouped_codes * qt.scales[..., None] + qt.mins[..., None]
    return grouped.reshape(qt.original_shape)


def quantization_error(weights: np.ndarray, group_size: int = 32) -> float:
    """Max absolute round-trip error of INT4 quantization of ``weights``.

    Bounded by half a quantization step: ``max_group_span / (2 * 15)``.
    """
    qt = quantize_int4(weights, group_size=group_size)
    return float(np.max(np.abs(dequantize_int4(qt) - weights))) if weights.size else 0.0
