"""Counter / gauge / histogram registry for telemetry summaries.

The tracer records raw events; many questions only need aggregates ("how
many aborts?", "what was the TTFT p99?", "how high did the KV pool get?").
:class:`MetricsRegistry` is the aggregate side of the telemetry subsystem:
a named collection of

* :class:`Counter` — monotonically increasing totals (iterations, aborts),
* :class:`Gauge` — last/min/max of a sampled quantity (KV pool bytes),
* :class:`Histogram` — full value distributions with percentiles (TTFT,
  latency, inter-token gaps).

``summary()`` renders everything as a plain JSON-ready dict, and
``merge_into()`` attaches that summary to an existing report dict (e.g.
:meth:`repro.serving.metrics.ContinuousReport.to_dict`) without clobbering
the report's own keys.
"""

from __future__ import annotations

from repro.serving.metrics import percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self.value += amount

    def summary(self) -> float:
        return self.value


class Gauge:
    """Last / min / max of a sampled quantity."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def summary(self) -> dict:
        return {"last": self.value, "min": self.min, "max": self.max}


class Histogram:
    """A value distribution; retains samples so any percentile is exact.

    Simulated runs record at most a few thousand samples, so keeping them
    all (rather than bucketing) is both simpler and more precise.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile over the recorded samples, ``q`` in [0, 100]."""
        return percentile(self._values, q)

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": min(self._values),
            "max": max(self._values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms with a JSON-ready summary."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ---- get-or-create accessors --------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # ---- export ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def summary(self) -> dict:
        """All instruments as one plain dict (stable key order)."""
        return {
            "counters": {
                k: c.summary() for k, c in sorted(self._counters.items())
            },
            "gauges": {k: g.summary() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }

    def merge_into(self, report: dict) -> dict:
        """A copy of ``report`` with this registry under a ``"telemetry"`` key.

        Raises:
            ValueError: If ``report`` already carries a ``"telemetry"`` key
                (merging twice would silently drop data).
        """
        if "telemetry" in report:
            raise ValueError("report already contains a 'telemetry' key")
        merged = dict(report)
        merged["telemetry"] = self.summary()
        return merged
