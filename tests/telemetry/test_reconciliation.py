"""Trace/report reconciliation on a traced chaos run.

The acceptance bar for the telemetry subsystem: a trace is only useful if
it *agrees* with the aggregate report of the same run.  These tests run
one fault-injected continuous-batching serve over the mini engine with a
tracer attached and check that device busy time, request lifecycles, fault
annotations, and degraded windows all reconcile — and that attaching the
tracer changed nothing about the simulation itself.

Timescales reference the mini engine: one 16-token prefill iteration costs
~6 ms, one decode step ~1.7 ms, a (16 in, 32 out) request ~60 ms end to
end.
"""

import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.serving import Request, simulate_continuous_serving
from repro.serving.metrics import merge_busy_intervals
from repro.telemetry import NullTracer, Tracer

BUDGET = 256 * 2**20


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


def burst(n, input_len=16, output_len=32, gap=0.004, deadline=None):
    return [
        Request(request_id=i, arrival_time=gap * i, input_len=input_len,
                output_len=output_len, deadline=deadline)
        for i in range(n)
    ]


def chaos_faults():
    """Degrade + squeeze + stall, timed to land mid-run on the mini engine."""
    return FaultSchedule(
        [
            FaultEvent(FaultKind.PCIE_DEGRADE, start=0.02, duration=0.05,
                       magnitude=3.0),
            FaultEvent(FaultKind.KV_SHRINK, start=0.08, duration=0.05,
                       magnitude=0.5),
            FaultEvent(FaultKind.DEVICE_STALL, start=0.15, duration=0.01),
        ]
    )


SERVE_KWARGS = dict(max_batch=4, kv_budget_bytes=BUDGET, deadline=5.0,
                    max_retries=2)


@pytest.fixture(scope="module")
def traced_run(engine):
    faults = chaos_faults()
    tracer = Tracer()
    report = simulate_continuous_serving(
        engine, burst(12), faults=faults, tracer=tracer, **SERVE_KWARGS
    )
    return tracer, report, faults


class TestTracingIsPassive:
    def test_report_identical_with_and_without_tracer(self, engine, traced_run):
        _, traced, faults = traced_run
        untraced = simulate_continuous_serving(
            engine, burst(12), faults=chaos_faults(), **SERVE_KWARGS
        )
        assert untraced.busy_intervals == traced.busy_intervals
        assert untraced.degraded_intervals == traced.degraded_intervals
        assert untraced.n_iterations == traced.n_iterations
        assert untraced.n_aborts == traced.n_aborts
        assert untraced.peak_kv_bytes == traced.peak_kv_bytes
        assert [m.token_times for m in untraced.completed] == [
            m.token_times for m in traced.completed
        ]

    def test_null_tracer_records_nothing_and_changes_nothing(self, engine, traced_run):
        _, traced, _ = traced_run
        null = NullTracer()
        report = simulate_continuous_serving(
            engine, burst(12), faults=chaos_faults(), tracer=null, **SERVE_KWARGS
        )
        assert len(null) == 0
        assert len(null.metrics) == 0
        assert report.busy_intervals == traced.busy_intervals


class TestDeviceReconciliation:
    def test_fault_run_exercises_every_event_class(self, traced_run):
        tracer, report, _ = traced_run
        assert report.n_aborts > 0  # the stall really hit in-flight work
        assert report.time_in_degraded_mode > 0
        assert tracer.task_spans and tracer.request_spans and tracer.counters

    def test_busy_union_matches_report_busy_time(self, traced_run):
        tracer, report, _ = traced_run
        busy = merge_busy_intervals(report.busy_intervals)
        assert abs(tracer.busy_union() - busy) < 1e-6

    def test_utilization_matches_within_tolerance(self, traced_run):
        tracer, report, _ = traced_run
        assert tracer.busy_union() / report.makespan == pytest.approx(
            report.utilization, abs=1e-6
        )

    def test_iteration_regions_cover_exactly_the_busy_intervals(self, traced_run):
        tracer, report, _ = traced_run
        regions = [
            (r.start, r.end)
            for r in tracer.regions_on("server")
            if r.name in ("iteration", "iteration-aborted")
        ]
        assert regions == report.busy_intervals
        n_committed = sum(
            1 for r in tracer.regions_on("server") if r.name == "iteration"
        )
        assert n_committed == report.n_iterations

    def test_task_spans_stay_inside_their_iteration_window(self, traced_run):
        tracer, report, _ = traced_run
        windows = [
            (r.start, r.end)
            for r in tracer.regions_on("server")
            if r.name == "iteration"
        ]
        clipped = 0
        for span in tracer.task_spans:
            if span.iteration is None:  # lost work cut short by a stall
                clipped += 1
                continue
            window = windows[span.iteration]
            assert span.start >= window[0] - 1e-9
            assert span.end <= window[1] + 1e-9
        assert clipped > 0  # the chaos schedule preempts at least one iteration

    def test_degraded_regions_sum_to_report_time(self, traced_run):
        tracer, report, _ = traced_run
        degraded = [
            (r.start, r.end)
            for r in tracer.regions_on("server")
            if r.name == "degraded"
        ]
        assert merge_busy_intervals(degraded) == pytest.approx(
            report.time_in_degraded_mode
        )


class TestRequestReconciliation:
    def events_of(self, tracer, rid, kind):
        return [e for e in tracer.request_events
                if e.request_id == rid and e.kind == kind]

    def test_completed_requests_reconcile_with_metrics(self, traced_run):
        tracer, report, _ = traced_run
        assert report.completed, "chaos run completed no requests"
        for m in report.completed:
            rid = m.request.request_id
            (finish,) = self.events_of(tracer, rid, "finish")
            assert finish.time == m.finish_time
            first = self.events_of(tracer, rid, "first_token")[-1]
            assert first.time == m.token_times[0]
            spans = [s for s in tracer.request_spans if s.request_id == rid]
            prefill = [s for s in spans if s.phase == "prefill"][-1]
            assert prefill.start == m.admit_time
            assert prefill.end == m.token_times[0]
            assert prefill.end - m.request.arrival_time == pytest.approx(m.ttft)
            queued = [s for s in spans if s.phase == "queued"][-1]
            assert queued.end == m.admit_time

    def test_abort_and_fail_events_match_report_counts(self, traced_run):
        tracer, report, _ = traced_run
        aborts = [e for e in tracer.request_events if e.kind == "abort"]
        assert len(aborts) == report.n_aborts
        fails = [e for e in tracer.request_events if e.kind == "fail"]
        assert len(fails) == len(report.failed)
        requeues = [e for e in tracer.request_events if e.kind == "requeue"]
        assert len(requeues) <= report.n_retries

    def test_every_request_arrives_exactly_once(self, traced_run):
        tracer, _, _ = traced_run
        arrivals = [e for e in tracer.request_events if e.kind == "arrive"]
        assert len(arrivals) == 12
        assert {e.request_id for e in arrivals} == set(range(12))
        for e in arrivals:
            assert e.time == pytest.approx(0.004 * e.request_id)

    def test_timeouts_are_traced(self, engine):
        tracer = Tracer()
        report = simulate_continuous_serving(
            engine,
            burst(6, output_len=64),
            max_batch=2,
            kv_budget_bytes=BUDGET,
            deadline=0.05,  # far below a full request's ~100 ms
            tracer=tracer,
        )
        assert report.timed_out
        timeouts = [e for e in tracer.request_events if e.kind == "timeout"]
        assert {e.request_id for e in timeouts} == {
            r.request_id for r in report.timed_out
        }
        assert tracer.metrics.counter("timeouts").value == len(report.timed_out)


class TestFaultAnnotations:
    def test_fault_regions_match_the_schedule(self, traced_run):
        tracer, _, faults = traced_run
        regions = tracer.regions_on("faults")
        assert [(r.name, r.start, r.end) for r in regions] == [
            (e.kind, e.start, e.end) for e in faults.events
        ]
        for region, event in zip(regions, faults.events):
            assert region.args == {"magnitude": event.magnitude}

    def test_epoch_instants_match_the_boundaries(self, traced_run):
        tracer, _, faults = traced_run
        marks = [i.time for i in tracer.instants
                 if i.lane == "faults" and i.name == "epoch"]
        assert marks == list(faults.boundaries)


class TestCountersAndMetrics:
    def test_counter_samples_once_per_priced_iteration(self, traced_run):
        tracer, report, _ = traced_run
        depth = tracer.counter_series("queue_depth")
        batch = tracer.counter_series("running_batch")
        assert len(depth) == len(batch) >= report.n_iterations
        assert all(v >= 1 for _, v in batch)

    def test_kv_counter_stays_within_the_tracked_peak(self, traced_run):
        tracer, report, _ = traced_run
        kv = tracer.counter_series("kv_used_bytes")
        assert kv and max(v for _, v in kv) <= report.peak_kv_bytes
        assert tracer.metrics.gauge("peak_kv_bytes").value == report.peak_kv_bytes

    def test_busy_fraction_counters_are_fractions(self, traced_run):
        tracer, _, _ = traced_run
        for lane in ("gpu", "cpu", "pcie"):
            series = tracer.counter_series(f"busy_frac_{lane}")
            assert series
            assert all(0.0 <= v <= 1.0 + 1e-9 for _, v in series)

    def test_registry_mirrors_the_report(self, traced_run):
        tracer, report, _ = traced_run
        counters = tracer.metrics.summary()["counters"]
        assert counters["iterations"] == report.n_iterations
        assert counters["completed"] == len(report.completed)
        assert counters["aborts"] == report.n_aborts
        assert counters["retries"] == report.n_retries
        assert tracer.metrics.histogram("latency_s").count == len(report.completed)
        merged = tracer.metrics.merge_into(report.to_dict())
        assert merged["telemetry"]["counters"]["iterations"] == report.n_iterations
