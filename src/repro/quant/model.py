"""Whole-model INT4 quantization for the numerical substrate.

The paper serves INT4-compressed models "maintaining model accuracy"
(Figure 13, Table 2 context).  :func:`quantize_model_weights` round-trips
every weight matrix of a numpy model through the group-wise INT4 quantizer,
returning a model whose *numerics* are those of 4-bit inference (dequantized
on the fly, as llama.cpp does) plus a per-matrix error report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.weights import LayerWeights, ModelWeights
from repro.quant.int4 import dequantize_int4, quantize_int4

__all__ = ["QuantizationReport", "quantize_model_weights"]


@dataclass(frozen=True)
class QuantizationReport:
    """Round-trip error statistics of a model quantization."""

    max_abs_error: float
    mean_abs_error: float
    n_matrices: int
    quantized_fraction: float  # parameters actually quantized


def _quantize_matrix(
    matrix: np.ndarray, group_size: int, errors: list[tuple[float, float, int]]
) -> np.ndarray:
    """INT4 round-trip, skipping matrices whose last axis is incompatible."""
    if matrix.ndim < 1 or matrix.shape[-1] % group_size != 0:
        errors.append((0.0, 0.0, 0))
        return matrix
    deq = dequantize_int4(quantize_int4(matrix, group_size)).astype(
        matrix.dtype, copy=False
    )
    diff = np.abs(deq - matrix)
    errors.append((float(diff.max()), float(diff.sum()), matrix.size))
    return deq


def quantize_model_weights(
    weights: ModelWeights, group_size: int = 32
) -> tuple[ModelWeights, QuantizationReport]:
    """INT4-quantize every weight matrix of a model (round-tripped).

    Biases and norm vectors stay full precision, matching llama.cpp's Q4
    layouts.  Matrices whose trailing dimension is not a multiple of
    ``group_size`` are left unquantized (and counted in the report).

    Returns:
        ``(quantized_model, report)``.
    """
    errors: list[tuple[float, float, int]] = []

    def q(matrix: np.ndarray) -> np.ndarray:
        return _quantize_matrix(matrix, group_size, errors)

    layers = [
        LayerWeights(
            wq=q(layer.wq),
            wk=q(layer.wk),
            wv=q(layer.wv),
            wo=q(layer.wo),
            fc1=q(layer.fc1),
            fc1_bias=layer.fc1_bias,
            fc2=q(layer.fc2),
            gate=q(layer.gate) if layer.gate is not None else None,
            attn_norm=layer.attn_norm,
            mlp_norm=layer.mlp_norm,
        )
        for layer in weights.layers
    ]
    embedding = q(weights.embedding)
    quantized = ModelWeights(
        config=weights.config,
        embedding=embedding,
        layers=layers,
        final_norm=weights.final_norm,
    )
    quantized_params = sum(n for _, _, n in errors)
    total_sum = sum(s for _, s, _ in errors)
    report = QuantizationReport(
        max_abs_error=max((m for m, _, _ in errors), default=0.0),
        mean_abs_error=total_sum / quantized_params if quantized_params else 0.0,
        n_matrices=sum(1 for _, _, n in errors if n),
        quantized_fraction=quantized_params
        / max(weights.config.total_params, 1),
    )
    return quantized, report
