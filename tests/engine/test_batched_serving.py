"""Tests for dynamic-batching serving."""

import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.serving.arrival import Request
from repro.serving.batched import simulate_batched_serving
from repro.serving.simulator import simulate_serving


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


def burst(n, input_len=16, output_len=32, gap=0.001):
    return [
        Request(request_id=i, arrival_time=gap * i, input_len=input_len, output_len=output_len)
        for i in range(n)
    ]


class TestBatchedServing:
    def test_all_requests_complete(self, engine):
        report = simulate_batched_serving(engine, burst(10), max_batch=4)
        assert report.n_requests == 10

    def test_batch_members_finish_together(self, engine):
        report = simulate_batched_serving(engine, burst(6), max_batch=8)
        finishes = sorted({round(c.finish_time, 9) for c in report.completed})
        # First request starts alone (nothing else has arrived); the other
        # five batch together on the second dispatch.
        assert len(finishes) <= 3

    def test_max_batch_respected(self, engine):
        report = simulate_batched_serving(engine, burst(9), max_batch=2)
        starts = [c.start_time for c in report.completed]
        for start in set(starts):
            assert starts.count(start) <= 2

    def test_batching_beats_fcfs_on_makespan_under_burst(self, engine):
        requests = burst(12)
        fcfs = simulate_serving(engine, requests)
        batched = simulate_batched_serving(engine, requests, max_batch=8)
        # Union-activation batching amortizes weight reads: the burst
        # drains faster (Figure 14's throughput effect).
        assert batched.makespan < fcfs.makespan

    def test_no_queue_degenerates_to_fcfs(self, engine):
        spaced = [
            Request(request_id=i, arrival_time=100.0 * i, input_len=16, output_len=32)
            for i in range(3)
        ]
        fcfs = simulate_serving(engine, spaced)
        batched = simulate_batched_serving(engine, spaced, max_batch=8)
        assert batched.makespan == pytest.approx(fcfs.makespan, rel=1e-6)

    def test_padded_batch_dimensions(self, engine):
        # Mixed shapes: batch service time follows the largest member.
        requests = [
            Request(request_id=0, arrival_time=0.0, input_len=8, output_len=8),
            Request(request_id=1, arrival_time=0.0, input_len=32, output_len=64),
        ]
        report = simulate_batched_serving(engine, requests, max_batch=2)
        big_alone = engine.simulate_request(32, 64, batch=2).total_time
        c0, c1 = sorted(report.completed, key=lambda c: c.request.request_id)
        assert c0.finish_time == pytest.approx(c1.finish_time)
        assert c0.service_time == pytest.approx(big_alone)

    def test_invalid_max_batch(self, engine):
        with pytest.raises(ValueError):
            simulate_batched_serving(engine, burst(2), max_batch=0)

    def test_max_batch_one_matches_fcfs_exactly(self, engine):
        requests = burst(6, gap=0.01) + [
            Request(request_id=6, arrival_time=10.0, input_len=32, output_len=8)
        ]
        fcfs = simulate_serving(engine, requests)
        batched = simulate_batched_serving(engine, requests, max_batch=1)
        key = lambda c: c.request.request_id
        for a, b in zip(sorted(fcfs.completed, key=key), sorted(batched.completed, key=key)):
            assert b.start_time == pytest.approx(a.start_time, abs=1e-12)
            assert b.finish_time == pytest.approx(a.finish_time, abs=1e-12)

    def test_empty_request_list(self, engine):
        report = simulate_batched_serving(engine, [], max_batch=4)
        assert report.n_requests == 0
        assert report.makespan == 0.0
        assert report.utilization == 0.0

    def test_utilization_never_exceeds_one(self, engine):
        # 8 requests dispatched as one batch: utilization counts the busy
        # interval once, not 8 times.
        simultaneous = [
            Request(request_id=i, arrival_time=0.0, input_len=16, output_len=32)
            for i in range(8)
        ]
        report = simulate_batched_serving(engine, simultaneous, max_batch=8)
        assert 0.0 < report.utilization <= 1.0 + 1e-9
