"""Table rendering and machine-readable persistence for experiment outputs.

Every benchmark result is persisted twice from the same rows: the
human-readable ASCII table EXPERIMENTS.md quotes, and a structured JSON
document (``{"title", "rows"}``) downstream tooling — including ``repro
bench-check`` — reads without re-parsing tables.  :func:`save_rows` is the
single writer both the ``benchmarks/`` drivers and ad-hoc scripts share, so
humans and the regression harness always see the same numbers.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Sequence

__all__ = ["format_table", "print_table", "json_safe", "write_rows_json", "save_rows"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned ASCII table (keys become headers)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    table = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in table)) for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for line in table:
        out.append(" | ".join(cell.rjust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def print_table(rows: Sequence[dict[str, Any]], title: str = "") -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title))


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with None (strict-JSON NaN)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def write_rows_json(path: Path | str, rows: Sequence[dict[str, Any]], title: str = "") -> None:
    """Write rows as a structured ``{"title", "rows"}`` JSON document."""
    document = {"title": title, "rows": json_safe(list(rows))}
    Path(path).write_text(json.dumps(document, indent=2) + "\n")


def save_rows(
    directory: Path | str, name: str, rows: Sequence[dict[str, Any]], title: str = ""
) -> str:
    """Persist one result set as ``<name>.txt`` + ``<name>.json``.

    Returns the formatted table so callers can also print it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    text = format_table(rows, title or name)
    (directory / f"{name}.txt").write_text(text + "\n")
    write_rows_json(directory / f"{name}.json", rows, title=title or name)
    return text
