"""Tests for the fault-tolerant fleet: router, failover, chaos scenarios.

Covers the acceptance criteria of the fleet subsystem: a 1-replica fleet
is bit-identical to the monolithic continuous server, failover strictly
beats a blind router under the canonical crash, crash-mid-decode replay
is honest (token conservation, KV loss-then-realloc across replicas),
and every chaos scenario passes the fleet validator with zero
violations — all of it deterministic across same-seed runs.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.bench.fleet_chaos import (
    DEADLINE_S,
    DEFAULT_SLO,
    KV_BUDGET_BYTES,
    MAX_BATCH,
    MAX_QUEUE,
    MAX_RETRIES,
    build_fleet,
    fleet_requests,
)
from repro.bench.runner import make_engine
from repro.check.schedule import validate_fleet_run
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.serving import (
    FleetConfig,
    FleetRouter,
    Replica,
    make_policy,
    make_router_policy,
    poisson_arrivals,
    retry_delay,
    simulate_continuous_serving,
)
from repro.serving.arrival import Request
from repro.serving.fleet import detect_windows
from repro.serving.fleet.policies import LeastLoadedPolicy
from repro.workloads import CHATGPT_PROMPTS

SERVER_KW = dict(
    max_batch=MAX_BATCH,
    kv_budget_bytes=KV_BUDGET_BYTES,
    max_retries=MAX_RETRIES,
    max_queue=MAX_QUEUE,
)


def _engine(machine="pc-low"):
    return make_engine("powerinfer", "opt-6.7b", machine, "int4")


def _replica(name="r0", machine="pc-low", faults=None, role="both"):
    return Replica(
        name=name,
        engine=_engine(machine),
        faults=faults,
        role=role,
        policy=make_policy("chunked", max_prefill_tokens=32),
        **SERVER_KW,
    )


def _requests(n=16, rate=1.2, seed=7, deadline=DEADLINE_S):
    return poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=rate,
        n_requests=n,
        rng=np.random.default_rng(seed),
        deadline=deadline,
    )


@pytest.fixture(scope="module")
def chaos_result():
    return build_fleet(router_policy="round-robin", chaos=True).run(fleet_requests())


@pytest.fixture(scope="module")
def blind_result():
    return build_fleet(
        router_policy="round-robin", chaos=True, failover=False
    ).run(fleet_requests())


# ---- retry backoff (shared single-server / fleet code path) ------------------


class TestRetryDelay:
    def test_exponential_growth_and_cap(self):
        assert retry_delay(0.05, 1) == 0.05
        assert retry_delay(0.05, 2) == 0.10
        assert retry_delay(0.05, 4) == 0.40
        assert retry_delay(0.05, 10, cap=2.0) == 2.0

    def test_no_jitter_draws_no_randomness(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert retry_delay(0.05, 3, jitter=0.0, rng=rng) == 0.20
        assert rng.bit_generator.state == before

    def test_jitter_is_seeded_and_bounded(self):
        a = retry_delay(0.05, 2, jitter=0.5, rng=np.random.default_rng(3))
        b = retry_delay(0.05, 2, jitter=0.5, rng=np.random.default_rng(3))
        assert a == b
        assert 0.10 <= a <= 0.15

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError, match="seeded generator"):
            retry_delay(0.05, 1, jitter=0.5)
        with pytest.raises(ValueError):
            retry_delay(0.05, 0)
        with pytest.raises(ValueError):
            retry_delay(0.05, 1, jitter=-0.1, rng=np.random.default_rng(0))

    def test_server_no_jitter_default_is_bit_identical(self):
        # Satellite contract: the jitter-free default reproduces the
        # classic schedule exactly — no RNG is even instantiated.
        engine = _engine()
        requests = _requests()
        base = simulate_continuous_serving(
            engine, requests, policy="fcfs", **SERVER_KW
        )
        explicit = simulate_continuous_serving(
            engine, requests, policy="fcfs", retry_jitter=0.0, **SERVER_KW
        )
        assert base.to_dict(DEFAULT_SLO) == explicit.to_dict(DEFAULT_SLO)
        assert base.completed == explicit.completed

    def test_server_jitter_requires_seed_and_is_deterministic(self):
        engine = _engine()
        with pytest.raises(ValueError, match="seed"):
            simulate_continuous_serving(
                engine, _requests(n=4), retry_jitter=0.3, **SERVER_KW
            )
        kw = dict(retry_jitter=0.3, seed=5, **SERVER_KW)
        a = simulate_continuous_serving(engine, _requests(), **kw)
        b = simulate_continuous_serving(engine, _requests(), **kw)
        assert a.to_dict(DEFAULT_SLO) == b.to_dict(DEFAULT_SLO)


# ---- heartbeat detection -----------------------------------------------------


class TestDetectWindows:
    def test_long_crash_detected_on_the_beat_grid(self):
        [(down, up)] = detect_windows(((6.0, 24.0),), 0.25, 0.75)
        assert down == pytest.approx(6.5)
        assert up == pytest.approx(24.0)

    def test_short_crash_goes_unnoticed(self):
        assert detect_windows(((6.0, 6.4),), 0.25, 0.75) == []

    def test_multiple_windows(self):
        wins = detect_windows(((6.0, 10.0), (20.0, 20.1), (30.0, 33.0)), 0.25, 0.75)
        assert len(wins) == 2
        assert wins[0][0] < wins[0][1] <= 20.0
        assert wins[1][0] >= 30.0


# ---- router policies ---------------------------------------------------------


class TestRouterPolicies:
    def test_round_robin_cycles_over_candidates(self):
        policy = make_router_policy("round-robin")
        cands = [(0, None), (2, None), (5, None)]
        req = Request(request_id=0, arrival_time=0.0, input_len=8, output_len=8)
        picks = [policy.choose(cands, req, 0.0, 6) for _ in range(5)]
        assert picks == [0, 2, 5, 0, 2]

    def test_least_loaded_prefers_emptiest_then_lowest_index(self):
        a, b = _replica("a"), _replica("b")
        req = Request(request_id=1, arrival_time=0.0, input_len=8, output_len=8)
        policy = make_router_policy("least-loaded")
        assert policy.choose([(0, a), (1, b)], req, 0.0, 2) == 0  # tie -> lowest
        a.session.submit(req, at=0.0)
        assert LeastLoadedPolicy.load_of(a) == 1
        assert policy.choose([(0, a), (1, b)], req, 0.0, 2) == 1

    def test_session_affinity_pins_home_and_falls_back(self):
        a, b, c = _replica("a"), _replica("b"), _replica("c")
        policy = make_router_policy("session-affinity")
        req = Request(
            request_id=2, arrival_time=0.0, input_len=8, output_len=8, session=4
        )
        cands = [(0, a), (1, b), (2, c)]
        assert policy.choose(cands, req, 0.0, 3) == 1  # 4 % 3
        # Home down -> least-loaded fallback; no session -> same.
        assert policy.choose([(0, a), (2, c)], req, 0.0, 3) == 0
        bare = replace(req, session=None)
        assert policy.choose(cands, bare, 0.0, 3) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="unknown router policy"):
            make_router_policy("random")


# ---- config / construction validation ----------------------------------------


class TestFleetValidation:
    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FleetConfig(heartbeat_s=0.0)
        with pytest.raises(ValueError):
            FleetConfig(retry_jitter=0.5)  # no seed
        with pytest.raises(ValueError):
            FleetConfig(hedge=True)  # no hedge_deadline_s
        with pytest.raises(ValueError):
            FleetConfig(hedge=True, hedge_deadline_s=5.0, disaggregate=True)

    def test_router_rejects_bad_fleets(self):
        with pytest.raises(ValueError, match="replica"):
            FleetRouter([])
        with pytest.raises(ValueError, match="unique"):
            FleetRouter([_replica("dup"), _replica("dup")])
        with pytest.raises(ValueError):
            FleetRouter(
                [_replica("p", role="prefill")],
                config=FleetConfig(disaggregate=True),
            )


# ---- 1-replica degeneration ---------------------------------------------------


class TestSingleReplicaBitIdentity:
    def test_fleet_of_one_reproduces_the_monolithic_server(self):
        requests = _requests(n=24, rate=1.5, seed=11)
        solo = simulate_continuous_serving(
            _engine(),
            requests,
            policy=make_policy("chunked", max_prefill_tokens=32),
            **SERVER_KW,
        )
        result = FleetRouter([_replica()]).run(requests)
        fleet = result.report
        assert fleet.completed == solo.completed
        assert fleet.timed_out == solo.timed_out
        assert fleet.shed == solo.shed
        assert fleet.failed == solo.failed
        assert fleet.busy_intervals == solo.busy_intervals
        assert fleet.n_iterations == solo.n_iterations
        assert fleet.peak_kv_bytes == solo.peak_kv_bytes
        assert fleet.to_dict(DEFAULT_SLO) == solo.to_dict(DEFAULT_SLO)
        assert validate_fleet_run(result) == []


# ---- the canonical chaos scenario --------------------------------------------


class TestFailover:
    def test_failover_strictly_beats_the_blind_router(self, chaos_result, blind_result):
        healed, blind = chaos_result.report, blind_result.report
        assert healed.goodput(DEFAULT_SLO) > blind.goodput(DEFAULT_SLO)
        assert healed.deadline_miss_rate < blind.deadline_miss_rate
        assert chaos_result.availability > blind_result.availability
        assert chaos_result.counters["failovers"] > 0
        assert blind_result.counters["failovers"] == 0

    def test_chaos_run_is_deterministic(self, chaos_result):
        again = build_fleet(router_policy="round-robin", chaos=True).run(
            fleet_requests()
        )
        assert again.report.to_dict(DEFAULT_SLO) == chaos_result.report.to_dict(
            DEFAULT_SLO
        )
        assert again.counters == chaos_result.counters

    def test_chaos_runs_pass_the_fleet_validator(self, chaos_result, blind_result):
        assert validate_fleet_run(chaos_result) == []
        assert validate_fleet_run(blind_result) == []

    def test_every_request_has_exactly_one_disposition(self, chaos_result):
        report = chaos_result.report
        ids = [r.request.request_id for r in report.completed]
        ids += [r.request_id for r in report.timed_out + report.shed + report.failed]
        assert sorted(ids) == list(range(len(fleet_requests())))

    def test_crashed_replica_served_nothing_inside_the_crash(self, chaos_result):
        rep = chaos_result.replicas[0]
        assert rep.crash_windows
        c0, c1 = rep.crash_windows[0]
        for start, end in rep.report.busy_intervals:
            assert end <= c0 + 1e-9 or start >= c1 - 1e-9


class TestCrashMidDecodeReplay:
    """Satellite: seeded crash-mid-decode fixture, replayed honestly."""

    @pytest.fixture(scope="class")
    def run(self):
        # Two identical replicas; replica 0 crashes at 4 s, long past the
        # first admissions, so in-flight decodes are mid-stream victims.
        faults = FaultSchedule(
            [FaultEvent(FaultKind.REPLICA_CRASH, start=4.0, duration=30.0)]
        )
        replicas = [_replica("r0", faults=faults), _replica("r1")]
        router = FleetRouter(replicas, config=FleetConfig(policy="round-robin"))
        requests = _requests(n=12, rate=2.0, seed=3, deadline=40.0)
        result = router.run(requests)
        return result

    def _migrated_ids(self, result):
        r0 = {e.name for e in result.replicas[0].ledger}
        r1 = {e.name for e in result.replicas[1].ledger}
        return sorted(r0 & r1)

    def test_victims_complete_with_full_token_count(self, run):
        assert run.counters["failovers"] > 0
        migrated = self._migrated_ids(run)
        assert migrated
        by_id = {m.request.request_id: m for m in run.report.completed}
        for name in migrated:
            rid = int(name.split("-")[-1])
            if rid not in by_id:
                continue  # timed out victims are allowed, lost ones are not
            metrics = by_id[rid]
            assert len(metrics.token_times) == metrics.request.output_len
            assert list(metrics.token_times) == sorted(metrics.token_times)

    def test_tokens_delivered_before_the_crash_are_not_re_emitted(self, run):
        # Replay starts from the last completed token: tokens timed before
        # the crash must be a prefix of the stitched timeline.
        c0 = 4.0
        for metrics in run.report.completed:
            times = metrics.token_times
            pre = [t for t in times if t < c0]
            assert times[: len(pre)] == tuple(pre)

    def test_kv_is_freed_on_the_dead_replica_then_reallocated(self, run):
        def balance(events):
            return sum(e.nbytes if e.op == "alloc" else -e.nbytes for e in events)

        migrated = self._migrated_ids(run)
        for name in migrated:
            r0_events = [e for e in run.replicas[0].ledger if e.name == name]
            r1_events = [e for e in run.replicas[1].ledger if e.name == name]
            assert r0_events and r1_events
            # Loss on r0 (alloc then free, nothing left resident)...
            assert r0_events[0].op == "alloc"
            assert balance(r0_events) == 0
            # ...then a fresh, larger residency on r1: the replayed
            # segment re-prefills prompt + delivered tokens.
            assert r1_events[0].op == "alloc"
            assert r1_events[0].nbytes >= r0_events[0].nbytes
            assert max(e.time for e in r0_events) <= min(e.time for e in r1_events)

    def test_fixture_passes_verify_schedule(self, run):
        assert validate_fleet_run(run) == []


# ---- resilience extras -------------------------------------------------------


class TestHedging:
    def test_hedged_requests_win_once_and_cancel_the_loser(self):
        result = build_fleet(
            router_policy="least-loaded", chaos=True, hedge=True
        ).run(fleet_requests())
        counters = result.counters
        assert counters["hedges"] > 0
        assert counters["hedge_wins"] == counters["hedges"]
        assert counters["hedge_cancels"] == counters["hedges"]
        assert result.hedged_ids
        assert validate_fleet_run(result) == []

    def test_hedging_loses_no_requests(self):
        result = build_fleet(
            router_policy="least-loaded", chaos=True, hedge=True
        ).run(fleet_requests())
        assert result.report.n_submitted == len(fleet_requests())
        assert not result.report.failed


class TestBrownout:
    def test_brownout_sheds_only_low_priority_during_detected_down(self):
        requests = [
            replace(r, priority=0 if i % 2 else 1)
            for i, r in enumerate(fleet_requests())
        ]
        result = build_fleet(router_policy="round-robin", chaos=True, brownout=True).run(
            requests
        )
        assert result.counters["brownout_shed"] > 0
        assert result.report.shed
        assert all(r.priority == 0 for r in result.report.shed)
        assert validate_fleet_run(result) == []

    def test_no_brownout_without_a_detected_crash(self):
        requests = [replace(r, priority=0) for r in fleet_requests()]
        result = build_fleet(
            router_policy="round-robin", chaos=False, brownout=True
        ).run(requests)
        assert result.counters.get("brownout_shed", 0) == 0
        assert not result.report.shed


class TestDisaggregation:
    def _fleet(self, link_faults=None):
        replicas = [
            _replica("prefill", machine="a100-server", role="prefill",
                     faults=link_faults),
            _replica("decode", machine="pc-low", role="decode"),
        ]
        return FleetRouter(
            replicas, config=FleetConfig(policy="round-robin", disaggregate=True)
        )

    def test_every_request_transfers_kv_once(self):
        requests = _requests(n=10, rate=1.0, seed=9, deadline=60.0)
        result = self._fleet().run(requests)
        assert result.transfers is not None
        assert len(result.transfers.tasks) == len(result.report.completed)
        assert validate_fleet_run(result) == []
        for metrics in result.report.completed:
            assert len(metrics.token_times) == metrics.request.output_len

    def test_link_degrade_slows_the_transfers(self):
        requests = _requests(n=10, rate=1.0, seed=9, deadline=60.0)
        nominal = self._fleet().run(requests)
        degraded_faults = FaultSchedule(
            [FaultEvent(FaultKind.LINK_DEGRADE, start=0.0, duration=500.0,
                        magnitude=8.0)]
        )
        slowed = self._fleet(link_faults=degraded_faults).run(requests)
        nominal_busy = nominal.transfers.busy_time["interconnect"]
        slowed_busy = slowed.transfers.busy_time["interconnect"]
        assert slowed_busy > 4.0 * nominal_busy
        assert validate_fleet_run(slowed) == []


# ---- external-mode session plumbing ------------------------------------------


class TestServerSessionExternalMode:
    def _session(self):
        from repro.serving.continuous import ContinuousServer

        server = ContinuousServer(
            _engine(), policy="fcfs", **SERVER_KW
        )
        return server.session(external=True, record_ledger=True)

    def _req(self, rid, at=0.0):
        return Request(request_id=rid, arrival_time=at, input_len=16, output_len=4)

    def test_submit_step_emits_lifecycle_events(self):
        session = self._session()
        session.submit(self._req(0), at=0.0)
        while session.has_work():
            if not session.step():
                break
        kinds = [e[0] for e in session.outbox]
        assert kinds[0] == "admit"
        assert kinds.count("token") == 4
        assert kinds[-1] == "complete"

    def test_cancel_releases_kv_and_stops_events(self):
        session = self._session()
        session.submit(self._req(0), at=0.0)
        session.submit(self._req(1), at=0.0)
        # Step until request 1 is running, then cancel it.
        while not any(s.request.request_id == 1 for s in session.running):
            assert session.step()
        assert session.cancel(1, at=session.now)
        assert not session.cancel(99, at=session.now)  # unknown rid
        while session.has_work():
            if not session.step():
                break
        session.finish(validate=False)
        completed = [e[2].request.request_id for e in session.outbox
                     if e[0] == "complete"]
        assert completed == [0]
        assert session.pool.used == 0
        assert sum(
            e.nbytes if e.op == "alloc" else -e.nbytes for e in session.kv_ledger
        ) == 0

    def test_drain_returns_undelivered_and_keeps_session_usable(self):
        session = self._session()
        for rid in range(3):
            session.submit(self._req(rid), at=float(rid))
        assert session.step()  # pump the first arrival in
        drained = session.drain(at=session.now)
        assert [r.request_id for r in drained] == [0, 1, 2]
        assert not session.has_work()
        # The session stays alive: new work is accepted after a drain.
        session.submit(self._req(7, at=session.now), at=session.now)
        while session.has_work():
            if not session.step():
                break
        assert any(e[0] == "complete" for e in session.outbox)
