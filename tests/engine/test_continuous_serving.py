"""Tests for the continuous-batching server, policies, and KV admission."""

import numpy as np
import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.memory import OutOfMemoryError
from repro.serving import (
    ChunkedPrefillPolicy,
    ContinuousServer,
    Request,
    make_policy,
    simulate_batched_serving,
    simulate_continuous_serving,
    simulate_serving,
)
from repro.serving.continuous import IterationCostCache


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


# Ample budget: admission control never binds unless a test narrows it.
BUDGET = 256 * 2**20


def burst(n, input_len=16, output_len=32, gap=0.001):
    return [
        Request(request_id=i, arrival_time=gap * i, input_len=input_len, output_len=output_len)
        for i in range(n)
    ]


class TestKvFootprintHelpers:
    def test_request_kv_bytes_arithmetic(self, engine):
        per_token = engine.kv_bytes_per_token()
        assert per_token > 0
        assert engine.request_kv_bytes(16, 32) == pytest.approx(48 * per_token)

    def test_request_kv_bytes_validation(self, engine):
        with pytest.raises(ValueError):
            engine.request_kv_bytes(0, 32)
        with pytest.raises(ValueError):
            engine.request_kv_bytes(16, 0)

    def test_kv_budget_non_negative_and_bounded(self, engine):
        budget = engine.kv_budget_bytes()
        assert 0.0 <= budget <= engine.machine.gpu.memory_capacity


class TestContinuousServing:
    def test_all_requests_complete_with_all_tokens(self, engine):
        report = simulate_continuous_serving(
            engine, burst(10), max_batch=4, kv_budget_bytes=BUDGET
        )
        assert report.n_requests == 10
        for metrics in report.completed:
            assert metrics.n_tokens == metrics.request.output_len
            assert list(metrics.token_times) == sorted(metrics.token_times)
            assert metrics.ttft > 0
            assert metrics.latency >= metrics.ttft

    def test_empty_request_list(self, engine):
        report = simulate_continuous_serving(engine, [], kv_budget_bytes=BUDGET)
        assert report.n_requests == 0
        assert report.makespan == 0.0
        assert report.utilization == 0.0
        assert report.tokens_per_second == 0.0
        with pytest.raises(ValueError):
            report.latency_percentile(50)

    def test_capacity_one_degenerates_to_fcfs(self, engine):
        requests = burst(5, gap=0.002)
        fcfs = simulate_serving(engine, requests)
        cont = simulate_continuous_serving(
            engine, requests, max_batch=1, kv_budget_bytes=BUDGET, ctx_bucket=1
        )
        # One request at a time, in arrival order, with no overlap.
        order = [m.request.request_id for m in sorted(cont.completed, key=lambda m: m.finish_time)]
        assert order == [r.request_id for r in requests]
        spans = sorted(cont.busy_intervals)
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert s1 >= e0 - 1e-12
        # Aggregate timing matches the whole-request FCFS simulator (the
        # only differences are decode-context sampling vs exact summation
        # and the prefill step emitting token one).
        assert cont.makespan == pytest.approx(fcfs.makespan, rel=0.05)

    def test_simultaneous_arrivals_served_in_arrival_order(self, engine):
        requests = [
            Request(request_id=i, arrival_time=0.0, input_len=16, output_len=16)
            for i in range(6)
        ]
        report = simulate_continuous_serving(
            engine, requests, max_batch=2, kv_budget_bytes=BUDGET
        )
        first_tokens = [m.first_token_time for m in report.completed]
        # request_id order == submission order; earlier requests must not
        # see their first token after later ones.
        assert first_tokens == sorted(first_tokens)

    def test_requests_leave_batch_at_last_token(self, engine):
        # A short and a long request admitted together: the short one must
        # finish first instead of waiting for the batch (the static-batching
        # pathology this subsystem removes).
        requests = [
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=8),
            Request(request_id=1, arrival_time=0.0, input_len=16, output_len=64),
        ]
        report = simulate_continuous_serving(
            engine, requests, max_batch=2, kv_budget_bytes=BUDGET
        )
        short, long_ = report.completed
        assert short.finish_time < long_.finish_time

    def test_continuous_beats_static_on_mean_latency(self, engine):
        requests = [
            Request(request_id=i, arrival_time=0.001 * i, input_len=16,
                    output_len=64 if i % 2 else 8)
            for i in range(12)
        ]
        static = simulate_batched_serving(engine, requests, max_batch=4)
        cont = simulate_continuous_serving(
            engine, requests, max_batch=4, kv_budget_bytes=BUDGET
        )
        static_mean = float(np.mean([c.latency for c in static.completed]))
        assert cont.mean_latency < static_mean
        assert cont.tokens_per_second >= static.tokens_per_second

    def test_utilization_at_most_one(self, engine):
        report = simulate_continuous_serving(
            engine, burst(8), max_batch=8, kv_budget_bytes=BUDGET
        )
        assert 0.0 < report.utilization <= 1.0 + 1e-9

    def test_invalid_parameters(self, engine):
        with pytest.raises(ValueError):
            ContinuousServer(engine, max_batch=0, kv_budget_bytes=BUDGET)
        with pytest.raises(ValueError):
            ContinuousServer(engine, kv_budget_bytes=-1.0)
        with pytest.raises(KeyError):
            make_policy("not-a-policy")


class TestAdmissionControl:
    def test_peak_kv_never_exceeds_budget(self, engine):
        budget = 3 * engine.request_kv_bytes(16, 32)
        report = simulate_continuous_serving(
            engine, burst(9), max_batch=8, kv_budget_bytes=budget
        )
        assert report.n_requests == 9
        assert report.peak_kv_bytes <= report.kv_budget_bytes + 1e-6
        assert report.peak_kv_bytes > 0

    def test_budget_caps_concurrency(self, engine):
        # Budget for exactly 2 requests: no instant may hold 3 in flight.
        budget = 2 * engine.request_kv_bytes(16, 32)
        report = simulate_continuous_serving(
            engine, burst(6), max_batch=8, kv_budget_bytes=budget
        )
        events = []
        for m in report.completed:
            events.append((m.admit_time, 1))
            events.append((m.finish_time, -1))
        in_flight = 0
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            in_flight += delta
            assert in_flight <= 2

    def test_queue_on_full_delays_admission_in_order(self, engine):
        budget = engine.request_kv_bytes(16, 32)  # one request at a time
        report = simulate_continuous_serving(
            engine, burst(4), max_batch=8, kv_budget_bytes=budget
        )
        admits = [m.admit_time for m in report.completed]
        assert admits == sorted(admits)
        # Later arrivals waited for a KV slot, not just for their arrival.
        assert report.completed[-1].queue_delay > 0

    def test_oversized_request_raises(self, engine):
        budget = engine.request_kv_bytes(16, 32) * 0.5
        with pytest.raises(OutOfMemoryError):
            simulate_continuous_serving(engine, burst(1), kv_budget_bytes=budget)


class TestSchedulerPolicies:
    def test_chunked_prefill_protects_decode_tbt(self, engine):
        # A decoding request (A) is joined mid-stream by a long prompt (B).
        # Under FCFS-join, B's whole prompt runs in one iteration and stalls
        # A; chunked prefill bounds A's worst inter-token gap.
        requests = [
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=64),
            Request(request_id=1, arrival_time=0.05, input_len=96, output_len=8),
        ]
        fcfs = simulate_continuous_serving(
            engine, requests, policy="fcfs", max_batch=2, kv_budget_bytes=BUDGET
        )
        chunked = simulate_continuous_serving(
            engine,
            requests,
            policy="chunked",
            max_prefill_tokens=16,
            max_batch=2,
            kv_budget_bytes=BUDGET,
        )
        a_fcfs = next(m for m in fcfs.completed if m.request.request_id == 0)
        a_chunked = next(m for m in chunked.completed if m.request.request_id == 0)
        assert a_chunked.max_tbt < a_fcfs.max_tbt

    def test_chunked_prefill_caps_iteration_prompt_tokens(self, engine):
        policy = ChunkedPrefillPolicy(max_prefill_tokens=8)
        server = ContinuousServer(
            engine, policy=policy, max_batch=2, kv_budget_bytes=BUDGET
        )
        report = server.run(burst(2, input_len=32, output_len=4))
        # 64 prompt tokens at <= 8/iteration need >= 8 prefill iterations.
        assert report.n_iterations >= 8

    def test_prefill_priority_lowers_joiner_ttft(self, engine):
        requests = [
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=64),
            Request(request_id=1, arrival_time=0.05, input_len=64, output_len=8),
        ]
        fcfs = simulate_continuous_serving(
            engine, requests, policy="fcfs", max_batch=2, kv_budget_bytes=BUDGET
        )
        priority = simulate_continuous_serving(
            engine, requests, policy="prefill-first", max_batch=2, kv_budget_bytes=BUDGET
        )
        b_fcfs = next(m for m in fcfs.completed if m.request.request_id == 1)
        b_priority = next(m for m in priority.completed if m.request.request_id == 1)
        assert b_priority.ttft < b_fcfs.ttft

    def test_chunked_policy_validation(self):
        with pytest.raises(ValueError):
            ChunkedPrefillPolicy(max_prefill_tokens=0)


class TestIterationCostCache:
    def test_bucketing_bounds_engine_calls(self, engine):
        cache = IterationCostCache(engine, ctx_bucket=32)
        costs = {cache.cost(ctx, 1, 1) for ctx in range(49, 64)}
        assert len(cache) == 1  # all contexts round to the 64 bucket
        assert len(costs) == 1

    def test_cached_cost_matches_engine(self, engine):
        cache = IterationCostCache(engine, ctx_bucket=1)
        expected = engine.simulate_iteration(64, 1, 2).makespan
        assert cache.cost(64, 1, 2) == pytest.approx(expected)

    def test_invalid_bucket(self, engine):
        with pytest.raises(ValueError):
            IterationCostCache(engine, ctx_bucket=0)

    def test_invalid_queries_fail_loudly_and_cache_nothing(self, engine):
        cache = IterationCostCache(engine)
        with pytest.raises(ValueError, match="ctx_len"):
            cache.cost(-1, 1, 1)
        with pytest.raises(ValueError, match="n_tokens"):
            cache.cost(16, 0, 1)
        with pytest.raises(ValueError, match="batch"):
            cache.cost(16, 1, 0)
        assert len(cache) == 0
