"""Render a recorded trace as Chrome ``trace_event`` JSON or JSONL.

The Chrome trace-event format (consumed by Perfetto and chrome://tracing)
models a trace as processes and threads of timed events.  We map:

* ``pid 0`` (**devices**) — one thread per device lane (``gpu``, ``cpu``,
  ``pcie``); every :class:`~repro.telemetry.tracer.TaskSpan` becomes a
  complete (``"X"``) event whose category is the operator tag.  Counter
  (``"C"``) events also live here, one track per series.
* ``pid 1`` (**server**) — one thread per annotation lane (``server``
  iterations, ``degraded`` windows, ``faults``); regions become ``"X"``
  events, instants become ``"i"`` markers.
* ``pid 2`` (**requests**) — one thread per request, carrying its
  ``queued`` / ``prefill`` / ``decode`` phase spans and instant lifecycle
  events — the per-request swim lanes of the timeline.

A fleet run records one tracer per replica plus a router tracer
(:class:`~repro.telemetry.fleet.FleetTracer`);
:func:`to_chrome_trace_fleet` lays each source out as its own pid trio —
the router at pids 0–2, replica *i* at pids ``3+3i`` .. ``5+3i`` — so
Perfetto shows one process group per replica, all on the single fleet
clock.

Timestamps are microseconds (the unit the format expects); the recorded
seconds are multiplied by 1e6 on the way out.  The JSONL exporter instead
emits one self-describing JSON object per event, in seconds, for ad-hoc
analysis with ``jq``/pandas.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.fleet import FleetTracer
    from repro.telemetry.tracer import Tracer

__all__ = [
    "to_chrome_trace",
    "save_chrome_trace",
    "to_chrome_trace_fleet",
    "save_fleet_chrome_trace",
    "to_jsonl_records",
    "save_jsonl",
]

DEVICE_PID = 0
SERVER_PID = 1
REQUEST_PID = 2

_US = 1e6  # seconds -> microseconds


def _meta(metadata: str, pid: int, tid: int = 0, *, label: str) -> dict:
    """A Chrome metadata ("M") event naming a process or thread."""
    return {
        "name": metadata,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    }


def _trace_events(
    tracer: "Tracer",
    device_pid: int,
    server_pid: int,
    request_pid: int,
    prefix: str = "",
) -> list[dict]:
    """One tracer's events mapped onto a given pid trio.

    ``prefix`` qualifies the process labels (``"r0-pc-high/"``) so fleet
    exports keep each replica's lanes visually grouped.
    """
    events: list[dict] = [
        _meta("process_name", device_pid, label=f"{prefix}devices"),
        _meta("process_name", server_pid, label=f"{prefix}server"),
        _meta("process_name", request_pid, label=f"{prefix}requests"),
    ]

    # -- device lanes ----------------------------------------------------------
    device_tids = {lane: i for i, lane in enumerate(tracer.lanes)}
    for lane, tid in device_tids.items():
        events.append(_meta("thread_name", device_pid, tid, label=lane))
    for span in tracer.task_spans:
        event = {
            "name": span.name,
            "cat": span.tag or "op",
            "ph": "X",
            "pid": device_pid,
            "tid": device_tids[span.lane],
            "ts": span.start * _US,
            "dur": span.duration * _US,
        }
        if span.iteration is not None:
            event["args"] = {"iteration": span.iteration}
        events.append(event)

    # -- annotation lanes (server iterations, degraded windows, faults) -------
    annotation_lanes = sorted(
        {r.lane for r in tracer.regions} | {i.lane for i in tracer.instants}
    )
    annotation_tids = {lane: i for i, lane in enumerate(annotation_lanes)}
    for lane, tid in annotation_tids.items():
        events.append(_meta("thread_name", server_pid, tid, label=lane))
    for region in tracer.regions:
        event = {
            "name": region.name,
            "cat": region.lane,
            "ph": "X",
            "pid": server_pid,
            "tid": annotation_tids[region.lane],
            "ts": region.start * _US,
            "dur": (region.end - region.start) * _US,
        }
        if region.args:
            event["args"] = dict(region.args)
        events.append(event)
    for instant in tracer.instants:
        event = {
            "name": instant.name,
            "cat": instant.lane,
            "ph": "i",
            "s": "t",  # thread-scoped marker
            "pid": server_pid,
            "tid": annotation_tids[instant.lane],
            "ts": instant.time * _US,
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)

    # -- request swim lanes ----------------------------------------------------
    request_ids = sorted(
        {s.request_id for s in tracer.request_spans}
        | {e.request_id for e in tracer.request_events}
    )
    request_tids = {rid: i for i, rid in enumerate(request_ids)}
    for rid, tid in request_tids.items():
        events.append(_meta("thread_name", request_pid, tid, label=f"req-{rid}"))
    for span in tracer.request_spans:
        events.append(
            {
                "name": span.phase,
                "cat": "request",
                "ph": "X",
                "pid": request_pid,
                "tid": request_tids[span.request_id],
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
            }
        )
    for ev in tracer.request_events:
        event = {
            "name": ev.kind,
            "cat": "request",
            "ph": "i",
            "s": "t",
            "pid": request_pid,
            "tid": request_tids[ev.request_id],
            "ts": ev.time * _US,
        }
        if ev.hop is not None:
            event["args"] = {"hop": ev.hop}
        events.append(event)

    # -- counter tracks --------------------------------------------------------
    for sample in tracer.counters:
        events.append(
            {
                "name": sample.series,
                "ph": "C",
                "pid": device_pid,
                "ts": sample.time * _US,
                "args": {"value": sample.value},
            }
        )
    return events


def to_chrome_trace(tracer: "Tracer") -> list[dict]:
    """The recorded events as a Chrome ``trace_event`` object list."""
    return _trace_events(tracer, DEVICE_PID, SERVER_PID, REQUEST_PID)


def save_chrome_trace(tracer: "Tracer", path) -> None:
    """Write :func:`to_chrome_trace` output as a ``.trace.json`` file."""
    payload = {"traceEvents": to_chrome_trace(tracer), "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def to_chrome_trace_fleet(tracer: "FleetTracer") -> list[dict]:
    """A fleet trace as one Chrome event list: a pid trio per source.

    The router's lanes (dispatch decisions, KV transfers on
    ``interconnect``, fleet-fault windows, alert markers, per-request
    fleet swim lanes) occupy pids 0–2; each replica, in attach order,
    occupies the next trio with its name prefixed onto the process
    labels.
    """
    events = _trace_events(
        tracer.router, DEVICE_PID, SERVER_PID, REQUEST_PID, prefix="router/"
    )
    replica_pids: dict[str, int] = {}
    for i, name in enumerate(tracer.replica_names):
        base = 3 + 3 * i
        replica_pids[name] = base
        events.extend(
            _trace_events(
                tracer.replica(name), base, base + 1, base + 2, prefix=f"{name}/"
            )
        )
    # Watt lanes sampled into the fleet time-series bank render as counter
    # tracks: a replica's `{name}/..._watts` series lands on that replica's
    # device pid, fleet-wide lanes (`fleet/watts`, interconnect) on the
    # router's.
    for series_name in tracer.timeseries.names():
        if "watts" not in series_name.rsplit("/", 1)[-1]:
            continue
        replica = series_name.split("/", 1)[0]
        pid = replica_pids.get(replica, DEVICE_PID)
        for t, value in tracer.timeseries.series(series_name).samples():
            events.append(
                {
                    "name": series_name,
                    "ph": "C",
                    "pid": pid,
                    "ts": t * _US,
                    "args": {"value": value},
                }
            )
    return events


def save_fleet_chrome_trace(tracer: "FleetTracer", path) -> None:
    """Write :func:`to_chrome_trace_fleet` output as ``.trace.json``."""
    payload = {
        "traceEvents": to_chrome_trace_fleet(tracer),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def to_jsonl_records(tracer: "Tracer") -> list[dict]:
    """One self-describing dict per event (times in seconds)."""
    records: list[dict] = []
    for t in tracer.task_spans:
        record = {
            "type": "task",
            "name": t.name,
            "lane": t.lane,
            "start": t.start,
            "end": t.end,
            "tag": t.tag,
            "iteration": t.iteration,
        }
        if t.cost is not None:
            record["cost"] = {"bound": t.cost.bound, **t.cost.components()}
        records.append(record)
    for s in tracer.request_spans:
        records.append(
            {
                "type": "request_span",
                "request_id": s.request_id,
                "phase": s.phase,
                "start": s.start,
                "end": s.end,
            }
        )
    for e in tracer.request_events:
        record = {
            "type": "request_event",
            "request_id": e.request_id,
            "kind": e.kind,
            "time": e.time,
        }
        if e.hop is not None:
            record["hop"] = e.hop
        records.append(record)
    for r in tracer.regions:
        records.append(
            {
                "type": "region",
                "lane": r.lane,
                "name": r.name,
                "start": r.start,
                "end": r.end,
                "args": dict(r.args) if r.args else None,
            }
        )
    for i in tracer.instants:
        records.append(
            {
                "type": "instant",
                "lane": i.lane,
                "name": i.name,
                "time": i.time,
                "args": dict(i.args) if i.args else None,
            }
        )
    for c in tracer.counters:
        records.append(
            {
                "type": "counter",
                "series": c.series,
                "time": c.time,
                "value": c.value,
            }
        )
    return records


def save_jsonl(tracer: "Tracer", path) -> None:
    """Write :func:`to_jsonl_records` output, one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for record in to_jsonl_records(tracer):
            fh.write(json.dumps(record) + "\n")
