"""Neuron-aware sparse operators (paper Section 5.4).

PowerInfer's key operator insight: with neuron-granularity sparsity there is
no need for sparse matrix *formats* at all.  An activated neuron is a whole
row (FC1) or column (FC2) of a dense matrix, so the kernel can simply gather
those rows/columns and run a small dense GEMV — no CSR conversion, no
per-element index tracking.

Two flavours mirror the paper:

* GPU-flavoured (:func:`gather_rows_gemv` / :func:`gather_cols_gemv`): all
  "thread blocks" check activation and compute their vector if active; in
  numpy this is one fancy-indexing gather plus a GEMV.
* CPU-flavoured (:class:`CpuNeuronGemv`): neurons are divided into
  per-core batches; each core checks activation within its batch and
  computes only its active neurons with AVX2-style vector ops.  The numpy
  implementation partitions identically (numerically equal to the GPU
  flavour) so the partitioning logic itself is under test.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.costmodel import OpWork

__all__ = [
    "gather_rows_gemv",
    "gather_cols_gemv",
    "scatter_to_dense",
    "neuron_gemv_work",
    "CpuNeuronGemv",
]


def gather_rows_gemv(
    weight: np.ndarray,
    x: np.ndarray,
    active_rows: np.ndarray,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Compute only the active output neurons of ``x @ weight.T``.

    Args:
        weight: Row-major neuron matrix of shape ``(m, n)`` (FC1-style:
            row i is neuron i's input weights).
        x: Input of shape ``(n,)`` or ``(t, n)``.
        active_rows: Integer indices of activated neurons.
        bias: Optional per-neuron bias of shape ``(m,)``.

    Returns:
        Array of shape ``(..., len(active_rows))`` — compact outputs for the
        active neurons only.
    """
    sub = weight[active_rows]
    out = x @ sub.T
    if bias is not None:
        out = out + bias[active_rows]
    return out


def gather_cols_gemv(
    weight: np.ndarray, hidden_active: np.ndarray, active_cols: np.ndarray
) -> np.ndarray:
    """FC2-style: combine active neurons' output columns.

    Args:
        weight: Column-major neuron matrix of shape ``(d, m)`` (column i is
            neuron i's output weights).
        hidden_active: Compact activations ``(..., k)`` for active neurons.
        active_cols: Integer indices (length k) of the activated neurons.

    Returns:
        Dense output of shape ``(..., d)``.
    """
    sub = weight[:, active_cols]
    return hidden_active @ sub.T


def scatter_to_dense(
    compact: np.ndarray, indices: np.ndarray, size: int
) -> np.ndarray:
    """Expand compact per-neuron values back to a dense vector of ``size``.

    Used when merging CPU and GPU partial results (paper Section 5.3).
    """
    if compact.shape[-1] != indices.shape[0]:
        raise ValueError("compact values and indices must align")
    out = np.zeros(compact.shape[:-1] + (size,), dtype=compact.dtype)
    out[..., indices] = compact
    return out


def neuron_gemv_work(
    n_active: int, neuron_dim: int, batch: int = 1, dtype_bytes: float = 2.0
) -> OpWork:
    """Roofline footprint of a neuron-aware GEMV over ``n_active`` neurons.

    Only active neurons' weights are read — this is the whole point of the
    operator (Figure 16's near-linear scaling with sparsity).
    """
    if n_active < 0 or neuron_dim <= 0 or batch <= 0:
        raise ValueError("invalid dimensions")
    return OpWork(
        flops=2.0 * n_active * neuron_dim * batch,
        bytes_read=n_active * neuron_dim * dtype_bytes + batch * neuron_dim * 4.0,
        bytes_written=batch * n_active * 4.0,
    )


class CpuNeuronGemv:
    """CPU-flavoured neuron-aware operator with per-core neuron batching.

    The CPU executor divides a layer's neurons into ``n_cores`` contiguous
    batches; each core scans its batch for activated neurons and computes
    them (paper Section 5.4, "Neuron-aware Operators for CPU").  Results are
    identical to :func:`gather_rows_gemv`; the class additionally reports
    the per-core active counts used to model load balance.
    """

    def __init__(self, n_cores: int = 8) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.n_cores = n_cores

    def partition(self, n_neurons: int) -> list[slice]:
        """Contiguous neuron ranges assigned to each core."""
        bounds = np.linspace(0, n_neurons, self.n_cores + 1).astype(int)
        return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    def run(
        self,
        weight: np.ndarray,
        x: np.ndarray,
        active_mask: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Compute active rows of ``x @ weight.T`` core-batch by core-batch.

        Returns:
            ``(compact_output, active_indices, per_core_active)`` where
            ``compact_output`` has one entry per active neuron in index
            order and ``per_core_active`` counts active neurons per core.
        """
        m = weight.shape[0]
        if active_mask.shape != (m,):
            raise ValueError("active_mask must have one flag per neuron")
        pieces: list[np.ndarray] = []
        index_pieces: list[np.ndarray] = []
        per_core: list[int] = []
        for core_slice in self.partition(m):
            local_mask = active_mask[core_slice]
            local_idx = np.nonzero(local_mask)[0] + core_slice.start
            per_core.append(int(local_idx.size))
            if local_idx.size:
                pieces.append(gather_rows_gemv(weight, x, local_idx, bias))
                index_pieces.append(local_idx)
        if pieces:
            compact = np.concatenate(pieces, axis=-1)
            indices = np.concatenate(index_pieces)
        else:
            batch_shape = x.shape[:-1]
            compact = np.zeros(batch_shape + (0,), dtype=x.dtype)
            indices = np.zeros(0, dtype=np.int64)
        return compact, indices, per_core
