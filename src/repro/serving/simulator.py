"""FCFS serving-loop simulation over a performance engine.

Local LLM deployments serve requests one at a time (batch size one,
Section 8.2); under a request stream the user-visible latency is queueing
delay plus service time.  :func:`simulate_serving` plays a request stream
through an engine, reusing the engine's deterministic per-shape service
times, and reports throughput/latency statistics — the metrics a downstream
user sizes their machine with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.base import PerfEngine
from repro.serving.arrival import Request
from repro.serving.metrics import merge_busy_intervals, percentile
from repro.units import Hertz, Ratio, Seconds, TokensPerSecond

__all__ = ["CompletedRequest", "ServingReport", "simulate_serving"]


@dataclass(frozen=True)
class CompletedRequest:
    """Timing of one served request."""

    request: Request
    start_time: Seconds
    finish_time: Seconds

    @property
    def queue_delay(self) -> Seconds:
        return self.start_time - self.request.arrival_time

    @property
    def latency(self) -> Seconds:
        """Arrival-to-completion time (what the user experiences)."""
        return self.finish_time - self.request.arrival_time

    @property
    def service_time(self) -> Seconds:
        return self.finish_time - self.start_time


@dataclass
class ServingReport:
    """Aggregate statistics of a serving simulation."""

    completed: list[CompletedRequest] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.completed)

    @property
    def makespan(self) -> Seconds:
        if not self.completed:
            return 0.0
        return max(c.finish_time for c in self.completed)

    @property
    def throughput_rps(self) -> Hertz:
        """Requests completed per second of simulated time."""
        span = self.makespan
        return self.n_requests / span if span else 0.0

    @property
    def tokens_per_second(self) -> TokensPerSecond:
        span = self.makespan
        total = sum(c.request.output_len for c in self.completed)
        return total / span if span else 0.0

    @property
    def utilization(self) -> Ratio:
        """Fraction of simulated time the server was busy.

        Busy time is the union of per-request service intervals: a batch
        of 8 occupies the server once, not 8 times, so utilization never
        exceeds 1.
        """
        span = self.makespan
        busy = merge_busy_intervals(
            (c.start_time, c.finish_time) for c in self.completed
        )
        return busy / span if span else 0.0

    def latency_percentile(self, q: float) -> Seconds:
        """User-visible latency percentile, ``q`` in [0, 100]."""
        return percentile((c.latency for c in self.completed), q)

    @property
    def mean_queue_delay(self) -> Seconds:
        if not self.completed:
            return 0.0
        return float(np.mean([c.queue_delay for c in self.completed]))


def simulate_serving(
    engine: PerfEngine, requests: list[Request], cache_service_times: bool = True
) -> ServingReport:
    """Serve ``requests`` FCFS on ``engine``; returns the timing report.

    Service time for each (input_len, output_len) shape is obtained from
    the engine's deterministic request simulation and memoized, so streams
    with repeated shapes simulate quickly.
    """
    report = ServingReport()
    service_cache: dict[tuple[int, int], float] = {}
    server_free_at = 0.0
    for request in sorted(requests, key=lambda r: r.arrival_time):
        shape = (request.input_len, request.output_len)
        if not cache_service_times or shape not in service_cache:
            result = engine.simulate_request(request.input_len, request.output_len)
            service_cache[shape] = result.total_time
        service_time = service_cache[shape]
        start = max(request.arrival_time, server_free_at)
        finish = start + service_time
        server_free_at = finish
        report.completed.append(
            CompletedRequest(request=request, start_time=start, finish_time=finish)
        )
    return report
