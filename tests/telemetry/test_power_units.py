"""Unit-conversion regression tests for the energy/carbon arithmetic.

These pin the two conversions the dimensional analyzer cannot prove on
its own (they are *numeric* facts, not dimensional ones):

* the J-per-kWh factor is exactly ``3.6e6`` (1000 W x 3600 s, exact by
  definition) — a wrong factor here would silently mis-scale every
  carbon figure while staying dimensionally consistent;
* :func:`repro.telemetry.power.grams_co2` is the linear map
  ``g = J / 3.6e6 * intensity`` with intensity in gCO2 per kWh.

The ``_J_PER_KWH`` comment in :mod:`repro.telemetry.power` points here.
"""

import math

from repro.telemetry.power import DEFAULT_CARBON_INTENSITY, _J_PER_KWH, grams_co2


def test_j_per_kwh_factor_is_exact():
    # 1 kWh = 1000 W x 3600 s.  Exact in binary floating point, so the
    # comparison is ==, not approx.
    assert _J_PER_KWH == 1000.0 * 3600.0
    assert _J_PER_KWH == 3.6e6


def test_one_kwh_at_intensity_400_is_exactly_400_grams():
    # 3.6e6 J is one kWh; at 400 gCO2/kWh that is 400 g, exactly:
    # the division J / (J/kWh) is x/x = 1 in floats.
    assert grams_co2(3.6e6, intensity=400.0) == 400.0


def test_default_intensity_round_trip():
    assert grams_co2(3.6e6) == DEFAULT_CARBON_INTENSITY


def test_grams_co2_is_linear_in_energy_and_intensity():
    base = grams_co2(1.0e6, intensity=100.0)
    assert grams_co2(2.0e6, intensity=100.0) == 2.0 * base
    assert grams_co2(1.0e6, intensity=300.0) == 3.0 * base


def test_zero_energy_is_zero_carbon():
    assert grams_co2(0.0) == 0.0


def test_known_value_against_hand_computation():
    # A 250 W machine running 2 hours: 0.5 kWh; at 400 g/kWh -> 200 g.
    joules = 250.0 * 2 * 3600.0
    assert math.isclose(grams_co2(joules, intensity=400.0), 200.0, rel_tol=1e-12)
