"""Tests for the PowerInfer performance engine (DAG structure & timing)."""

import numpy as np
import pytest

from repro.engine.powerinfer import PowerInferEngine


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


class TestDagStructure:
    def test_tasks_cover_all_layers(self, engine, mini_plan):
        tasks = engine.iteration_tasks(ctx_len=16, n_tokens=1, batch=1)
        names = {t.name for t in tasks}
        for li in range(mini_plan.model.n_layers):
            assert f"L{li}.pred_mlp" in names
            assert f"L{li}.mlp_gpu" in names
            assert f"L{li}.attn_merge" in names
        assert "lm_head" in names

    def test_dag_is_acyclic_and_complete(self, engine):
        # The simulator itself validates the DAG; it must not raise.
        result = engine.simulate_iteration(ctx_len=16, n_tokens=1)
        assert result.makespan > 0

    def test_selective_sync_elides_cpu_path(self, mini_plan):
        # Force all neurons onto the GPU: no mlp_cpu/mlp_xfer tasks.
        import copy

        plan = copy.copy(mini_plan)
        plan.mlp_gpu_masks = [np.ones_like(m) for m in mini_plan.mlp_gpu_masks]
        plan.attn_gpu_masks = [np.ones_like(m) for m in mini_plan.attn_gpu_masks]
        engine = PowerInferEngine(plan)
        names = {t.name for t in engine.iteration_tasks(0, 1, 1)}
        assert not any(".mlp_cpu" in n or ".mlp_xfer" in n for n in names)

    def test_cpu_tasks_present_with_split(self, engine):
        names = {t.name for t in engine.iteration_tasks(0, 1, 1)}
        assert any(".mlp_cpu" in n for n in names)

    def test_predictors_run_on_gpu(self, engine):
        tasks = engine.iteration_tasks(0, 1, 1)
        for task in tasks:
            if "pred" in task.name:
                assert task.resource == "gpu"

    def test_transfers_on_pcie(self, engine):
        tasks = engine.iteration_tasks(0, 1, 1)
        for task in tasks:
            if task.tag == "transfer":
                assert task.resource == "pcie"


class TestTiming:
    def test_more_tokens_cost_more(self, engine):
        one = engine.simulate_iteration(0, n_tokens=1).makespan
        many = engine.simulate_iteration(0, n_tokens=32).makespan
        assert many > one

    def test_longer_context_costs_more(self, engine):
        short = engine.simulate_iteration(ctx_len=8, n_tokens=1).makespan
        long = engine.simulate_iteration(ctx_len=512, n_tokens=1).makespan
        assert long > short

    def test_batching_denser_than_linear_scaling(self, engine):
        # Union activation: batch-8 iteration costs less than 8x batch-1
        # (weights for shared neurons read once).
        single = engine.simulate_iteration(0, 1, batch=1).makespan
        batched = engine.simulate_iteration(0, 1, batch=8).makespan
        assert batched < 8 * single

    def test_sampled_mode_is_deterministic_per_seed(self, engine):
        a = engine.simulate_iteration(0, 1, rng=np.random.default_rng(5)).makespan
        b = engine.simulate_iteration(0, 1, rng=np.random.default_rng(5)).makespan
        assert a == b

    def test_expected_mode_is_deterministic(self, engine):
        assert (
            engine.simulate_iteration(0, 1).makespan
            == engine.simulate_iteration(0, 1).makespan
        )


class TestRequestSimulation:
    def test_request_result_fields(self, engine):
        result = engine.simulate_request(input_len=8, output_len=16)
        assert result.prompt_time > 0
        assert result.decode_time > 0
        assert result.tokens_per_second > 0
        assert result.engine == "powerinfer"
        assert 0 <= result.gpu_load_share <= 1
        assert result.breakdown

    def test_longer_outputs_take_longer(self, engine):
        short = engine.simulate_request(8, 8)
        long = engine.simulate_request(8, 64)
        assert long.total_time > short.total_time

    def test_tokens_per_second_is_end_to_end(self, engine):
        result = engine.simulate_request(8, 16, batch=2)
        assert result.tokens_per_second == pytest.approx(
            16 * 2 / result.total_time
        )

    def test_invalid_request_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.simulate_request(0, 8)
        with pytest.raises(ValueError):
            engine.simulate_request(8, 0)

    def test_breakdown_contains_expected_tags(self, engine):
        result = engine.simulate_request(8, 8)
        for tag in ("predictor", "gpu-neuron", "merge", "lmhead"):
            assert tag in result.breakdown, result.breakdown
