"""Tests for deployment-plan persistence."""

import numpy as np
import pytest

from repro.engine.plan_io import load_plan, save_plan
from repro.engine.powerinfer import PowerInferEngine


class TestRoundTrip:
    def test_arrays_and_header_preserved(self, mini_plan, tmp_path):
        path = tmp_path / "plan.npz"
        save_plan(mini_plan, path)
        loaded = load_plan(path)
        assert loaded.model == mini_plan.model
        assert loaded.machine == mini_plan.machine
        assert loaded.dtype == mini_plan.dtype
        assert loaded.expected_context == mini_plan.expected_context
        for a, b in zip(loaded.mlp_gpu_masks, mini_plan.mlp_gpu_masks):
            assert np.array_equal(a, b)
        for a, b in zip(loaded.mlp_probs, mini_plan.mlp_probs):
            assert np.allclose(a, b)
        assert loaded.predictor_bytes == pytest.approx(mini_plan.predictor_bytes)

    def test_loaded_plan_simulates_identically(self, mini_plan, tmp_path):
        path = tmp_path / "plan.npz"
        save_plan(mini_plan, path)
        loaded = load_plan(path)
        original = PowerInferEngine(mini_plan).simulate_request(8, 16)
        restored = PowerInferEngine(loaded).simulate_request(8, 16)
        assert restored.tokens_per_second == pytest.approx(
            original.tokens_per_second
        )

    def test_int4_plan_round_trips(self, mini_model, mini_machine, tmp_path):
        from repro.core.pipeline import build_plan
        from repro.quant.formats import INT4

        plan = build_plan(mini_model, mini_machine, INT4, policy="none")
        path = tmp_path / "plan_int4.npz"
        save_plan(plan, path)
        assert load_plan(path).dtype.name == "int4"


class TestValidation:
    def test_bad_version_rejected(self, mini_plan, tmp_path):
        import json

        path = tmp_path / "plan.npz"
        save_plan(mini_plan, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"]).decode())
        header["version"] = 999
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_plan(path)
