"""Figure 16 — neuron-aware operator vs generic sparse kernels.

Sparse matrix-vector multiply at neuron granularity, [4096,4096] x [4096,1],
sweeping row sparsity.  Two complementary reproductions:

* **modeled**: roofline times on the PC-Low devices for the dense kernel,
  PowerInfer's neuron-aware kernel, dynamic CSR (PyTorch-sparse/cuSPARSE
  analog, paying dense->CSR conversion every call), and a PIT-like gather
  kernel — the paper's cost structure (neuron-aware wins at any sparsity on
  CPU; CSR needs ~87%+ to beat dense; PIT ~matches neuron-aware on GPU).
* **measured**: wall-clock numpy timings of the actual kernel
  implementations in :mod:`repro.operators` (dense vs gather vs CSR with
  conversion), confirming the same ordering on real hardware.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hardware.costmodel import CostModel
from repro.hardware.spec import MACHINE_PRESETS
from repro.operators.dense import dense_gemv, dense_gemv_work
from repro.operators.neuron_aware import gather_rows_gemv, neuron_gemv_work
from repro.operators.sparse_baselines import (
    csr_from_row_sparse,
    csr_spmv,
    csr_work,
    pit_work,
)

__all__ = ["run_fig16_modeled", "run_fig16_measured", "SPARSITY_LEVELS"]

SPARSITY_LEVELS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.87, 0.95, 0.99)


def run_fig16_modeled(
    n: int = 4096,
    machine_name: str = "pc-low",
    sparsity_levels: tuple[float, ...] = SPARSITY_LEVELS,
) -> list[dict]:
    """Roofline operator times per sparsity level, both devices."""
    machine = MACHINE_PRESETS[machine_name]
    rows = []
    dense = dense_gemv_work(n, n)
    for sp in sparsity_levels:
        n_active = int(round((1.0 - sp) * n))
        na = neuron_gemv_work(n_active, n)
        # Static CSR: pre-converted weight sparsity, the Figure 16 setting.
        csr_static = csr_work(n, n, n_active, include_conversion=False)
        # Dynamic CSR: converted per call — real sparse-predicted inference.
        csr_dynamic = csr_work(n, n, n_active, include_conversion=True)
        pit = pit_work(n_active, n)
        rows.append(
            {
                "sparsity": sp,
                "cpu_dense_ms": CostModel.op_time(dense, machine.cpu) * 1e3,
                "cpu_neuron_aware_ms": CostModel.op_time(na, machine.cpu) * 1e3,
                "cpu_csr_ms": CostModel.op_time(csr_static, machine.cpu) * 1e3,
                "cpu_csr_dynamic_ms": CostModel.op_time(csr_dynamic, machine.cpu) * 1e3,
                "gpu_dense_ms": CostModel.op_time(dense, machine.gpu) * 1e3,
                "gpu_neuron_aware_ms": CostModel.op_time(na, machine.gpu) * 1e3,
                "gpu_pit_ms": CostModel.op_time(pit, machine.gpu) * 1e3,
            }
        )
    return rows


def _time_call(fn, repeats: int = 5) -> float:
    """Best-of-N wall time of ``fn`` — Figure 16's *measured* operator cost.

    Real wall time on purpose: this benchmarks the numpy operator kernels
    themselves, not anything on the simulated timeline.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # repro-lint: disable=wall-clock -- measuring real operator kernels
        fn()
        best = min(best, time.perf_counter() - start)  # repro-lint: disable=wall-clock -- measuring real operator kernels
    return best


def run_fig16_measured(
    n: int = 1024,
    sparsity_levels: tuple[float, ...] = (0.0, 0.5, 0.9, 0.99),
    seed: int = 0,
) -> list[dict]:
    """Wall-clock numpy kernel times (smaller n keeps the bench quick)."""
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((n, n)).astype(np.float32)
    x = rng.standard_normal(n).astype(np.float32)
    rows = []
    for sp in sparsity_levels:
        n_active = max(1, int(round((1.0 - sp) * n)))
        active = rng.choice(n, size=n_active, replace=False)
        active.sort()
        dense_t = _time_call(lambda: dense_gemv(weight, x))
        gather_t = _time_call(lambda: gather_rows_gemv(weight, x, active))
        def csr_call():
            csr = csr_from_row_sparse(weight, active)  # dynamic conversion
            csr_spmv(csr, x)
        csr_t = _time_call(csr_call)
        rows.append(
            {
                "sparsity": sp,
                "dense_us": dense_t * 1e6,
                "neuron_aware_us": gather_t * 1e6,
                "csr_dynamic_us": csr_t * 1e6,
            }
        )
    return rows
