#!/usr/bin/env python
"""Continuous batching walkthrough: token-level scheduling under load.

Plays one Poisson request stream (ChatGPT-prompts lengths, the paper's
8/128/512 output mix) through three schedulers on the same PowerInfer
deployment of OPT-6.7B INT4 on PC-High:

1. FCFS            — one request at a time, whole-request service.
2. Static batching — padded batches frozen at dispatch (paper Section 8.2).
3. Continuous      — iteration-level batching: requests join the running
                     batch on arrival and leave at their own last token,
                     under KV-cache admission control.

Then sweeps the continuous scheduler's iteration policies (FCFS-join,
prefill-first, chunked prefill) to show the TTFT/TBT trade they span.

Usage::

    python examples/continuous_serving.py
"""

import numpy as np

from repro.bench.runner import make_engine
from repro.serving import (
    SLO,
    poisson_arrivals,
    simulate_batched_serving,
    simulate_continuous_serving,
    simulate_serving,
)
from repro.workloads import CHATGPT_PROMPTS

MODEL = "opt-6.7b"
MACHINE = "pc-high"
N_REQUESTS = 40
RATE = 0.5  # requests/second — enough pressure to make batching matter
KV_CARVE = 1.0 * 2**30  # GPU memory reserved for KV at plan time
SLO_TARGET = SLO(ttft_target=5.0, tbt_target=0.5)


def mean_latency(report) -> float:
    return float(np.mean([c.latency for c in report.completed]))


def main() -> None:
    print(f"Continuous batching on {MACHINE}: {MODEL} INT4, "
          f"{N_REQUESTS} requests at {RATE}/s\n")
    # Carving KV space out of the GPU at plan time is what makes admission
    # control meaningful: the solver packs hot neurons into the rest.
    engine = make_engine("powerinfer", MODEL, MACHINE, "int4",
                         kv_gpu_budget_bytes=KV_CARVE)
    print(f"KV budget left by the plan: {engine.kv_budget_bytes() / 2**30:.2f} GiB "
          f"({engine.kv_budget_bytes() / engine.kv_bytes_per_token():,.0f} tokens)\n")

    requests = poisson_arrivals(
        CHATGPT_PROMPTS, rate=RATE, n_requests=N_REQUESTS,
        rng=np.random.default_rng(0),
    )

    fcfs = simulate_serving(engine, requests)
    static = simulate_batched_serving(engine, requests, max_batch=8)
    cont = simulate_continuous_serving(engine, requests, max_batch=8)

    print(f"{'scheduler':>12} | {'mean lat':>8} | {'p99 lat':>8} | "
          f"{'tok/s':>6} | {'util':>5}")
    print("-" * 52)
    for name, rep in (("fcfs", fcfs), ("static", static)):
        print(f"{name:>12} | {mean_latency(rep):>6.1f} s | "
              f"{rep.latency_percentile(99):>6.1f} s | "
              f"{rep.tokens_per_second:>6.1f} | {rep.utilization:>4.0%}")
    print(f"{'continuous':>12} | {cont.mean_latency:>6.1f} s | "
          f"{cont.latency_percentile(99):>6.1f} s | "
          f"{cont.tokens_per_second:>6.1f} | {cont.utilization:>4.0%}")

    print(f"\nContinuous batching token-level metrics "
          f"(SLO: TTFT<={SLO_TARGET.ttft_target:.0f}s, "
          f"TBT<={SLO_TARGET.tbt_target * 1e3:.0f}ms):")
    print(f"  TTFT p50 {cont.ttft_percentile(50):.2f} s, "
          f"p99 {cont.ttft_percentile(99):.2f} s")
    print(f"  TBT  p50 {cont.tbt_percentile(50) * 1e3:.0f} ms, "
          f"p99 {cont.tbt_percentile(99) * 1e3:.0f} ms")
    print(f"  SLO attainment {cont.slo_attainment(SLO_TARGET):.0%}, "
          f"goodput {cont.goodput(SLO_TARGET):.2f} req/s")
    print(f"  peak KV {cont.peak_kv_bytes / 2**30:.2f} GiB of "
          f"{cont.kv_budget_bytes / 2**30:.2f} GiB budget, "
          f"{cont.n_iterations} iterations")

    print("\nIteration policies (same stream, max_batch=8):")
    print(f"{'policy':>14} | {'mean lat':>8} | {'TTFT p99':>8} | {'TBT p99':>8}")
    print("-" * 50)
    for policy in ("fcfs", "prefill-first", "chunked"):
        rep = simulate_continuous_serving(
            engine, requests, policy=policy, max_batch=8, max_prefill_tokens=32
        )
        print(f"{policy:>14} | {rep.mean_latency:>6.1f} s | "
              f"{rep.ttft_percentile(99):>6.2f} s | "
              f"{rep.tbt_percentile(99) * 1e3:>5.0f} ms")

    print("\nReading: continuous batching matches or beats static batching on")
    print("throughput while cutting mean latency — short requests no longer")
    print("wait for the batch's longest member, and TTFT falls by an order of")
    print("magnitude because tokens stream from the first iteration. Chunked")
    print("prefill trades a little TTFT for the tightest TBT tail.")


if __name__ == "__main__":
    main()
