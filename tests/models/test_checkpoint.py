"""Tests for model checkpoint IO."""

import numpy as np
import pytest

from repro.models.checkpoint import load_weights, save_weights
from repro.models.config import Activation, tiny_config
from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer
from repro.models.weights import init_weights


class TestRoundTrip:
    def test_weights_identical(self, rng, tmp_path):
        cfg = tiny_config()
        weights = init_weights(cfg, rng)
        path = tmp_path / "model.npz"
        save_weights(weights, path)
        loaded = load_weights(path)
        assert loaded.config == cfg
        assert np.array_equal(loaded.embedding, weights.embedding)
        assert np.array_equal(loaded.layers[0].fc1, weights.layers[0].fc1)
        assert np.array_equal(loaded.layers[1].wq, weights.layers[1].wq)

    def test_loaded_model_computes_identically(self, rng, tmp_path):
        cfg = tiny_config()
        weights = init_weights(cfg, rng)
        path = tmp_path / "model.npz"
        save_weights(weights, path)
        tokens = rng.integers(0, cfg.vocab_size, size=6)
        a = Transformer(weights).forward(tokens, KVCache(cfg))
        b = Transformer(load_weights(path)).forward(tokens, KVCache(cfg))
        assert np.array_equal(a, b)

    def test_reglu_gate_round_trips(self, rng, tmp_path):
        cfg = tiny_config(activation=Activation.REGLU)
        weights = init_weights(cfg, rng)
        path = tmp_path / "reglu.npz"
        save_weights(weights, path)
        loaded = load_weights(path)
        assert loaded.layers[0].gate is not None
        assert np.array_equal(loaded.layers[0].gate, weights.layers[0].gate)

    def test_relu_has_no_gate_after_load(self, rng, tmp_path):
        cfg = tiny_config()
        path = tmp_path / "relu.npz"
        save_weights(init_weights(cfg, rng), path)
        assert load_weights(path).layers[0].gate is None

    def test_bad_version_rejected(self, rng, tmp_path):
        import json

        cfg = tiny_config(n_layers=1)
        path = tmp_path / "model.npz"
        save_weights(init_weights(cfg, rng), path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"]).decode())
        header["version"] = 0
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_weights(path)
