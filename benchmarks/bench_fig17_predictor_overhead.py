"""Figure 17 — online predictor overhead on PC-Low.

Paper: predictor execution accounts for less than 10% of total inference
time on average, thanks to adaptive sizing and GPU placement.
"""

from conftest import run_once

from repro.bench.fig17 import run_fig17


def test_fig17_predictor_overhead(benchmark, record_rows):
    rows = run_once(benchmark, run_fig17)
    record_rows("fig17_predictor_overhead", rows, "Figure 17 — predictor overhead share")

    assert rows, "some models must fit PC-Low in INT4"
    mean_share = sum(r["predictor_share"] for r in rows) / len(rows)
    assert mean_share < 0.10, f"mean predictor share {mean_share:.3f} >= 10%"
    for row in rows:
        assert row["predictor_share"] < 0.20, row
