"""Operators: dense baseline, neuron-aware sparse, generic sparse baselines."""

from repro.operators.dense import dense_gemv, dense_gemv_work
from repro.operators.registry import (
    OPERATOR_REGISTRY,
    OperatorSpec,
    get_operator,
    list_operators,
)
from repro.operators.neuron_aware import (
    CpuNeuronGemv,
    gather_cols_gemv,
    gather_rows_gemv,
    neuron_gemv_work,
    scatter_to_dense,
)
from repro.operators.sparse_baselines import (
    CsrMatrix,
    csr_from_row_sparse,
    csr_spmv,
    csr_work,
    pit_gemv,
    pit_work,
)

__all__ = [
    "CpuNeuronGemv",
    "OPERATOR_REGISTRY",
    "OperatorSpec",
    "get_operator",
    "list_operators",
    "CsrMatrix",
    "csr_from_row_sparse",
    "csr_spmv",
    "csr_work",
    "dense_gemv",
    "dense_gemv_work",
    "gather_cols_gemv",
    "gather_rows_gemv",
    "neuron_gemv_work",
    "pit_gemv",
    "pit_work",
    "scatter_to_dense",
]
