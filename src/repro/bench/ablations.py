"""Ablation sweeps over PowerInfer's design choices.

Beyond the paper's Figure 15 component ablation, these experiments probe
the individual design decisions DESIGN.md calls out:

* synchronization-overhead sensitivity (why Inequality 4 exists),
* selective synchronization (Section 5.3),
* the predictor accuracy/memory trade-off (Section 5.1's balance),
* the ILP's neuron-batch size (Section 6.3.3's tractability knob),
* byte-weighted vs literal Equation-1 impact in the objective.

All sweeps use OPT-13B on PC-Low — small enough to re-solve the ILP per
configuration, large enough for realistic time constants.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.pipeline import build_plan
from repro.core.profiles import synthesize_model_probs
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.spec import MACHINE_PRESETS
from repro.models.config import MODEL_PRESETS
from repro.quant.formats import FP16
from repro.solver.ilp import SolverOptions, communication_threshold, solve_ilp
from repro.solver.placement import NeuronGroup

__all__ = [
    "run_ablation_sync_overhead",
    "run_ablation_selective_sync",
    "run_ablation_predictor_budget",
    "run_ablation_solver_batching",
    "run_ablation_impact_weighting",
    "run_prompt_heavy",
]

_MODEL = "opt-13b"
_MACHINE = "pc-low"


def run_ablation_sync_overhead(
    sync_values_us: tuple[float, ...] = (5.0, 35.0, 150.0, 600.0),
) -> list[dict]:
    """Sweep T_sync: tokens/s and the communication threshold C_l."""
    model = MODEL_PRESETS[_MODEL]
    base = MACHINE_PRESETS[_MACHINE]
    rows = []
    for sync_us in sync_values_us:
        machine = dataclasses.replace(base, sync_overhead=sync_us * 1e-6)
        plan = build_plan(model, machine, FP16, policy="ilp")
        result = PowerInferEngine(plan).simulate_request(64, 128)
        group = NeuronGroup(
            name="probe",
            impacts=np.ones(model.d_ffn),
            neuron_bytes=model.mlp_neuron_bytes(FP16),
        )
        rows.append(
            {
                "sync_us": sync_us,
                "tokens_per_s": result.tokens_per_second,
                "c_l_neurons": communication_threshold(group, machine),
            }
        )
    return rows


def run_ablation_selective_sync() -> list[dict]:
    """Selective synchronization on vs off (Section 5.3).

    Uses an INT4 deployment where the model (mostly) fits the GPU: many
    layers then have NO activated CPU neurons, which is exactly when the
    selective strategy skips the transfer + synchronization.  (In a
    heavily split FP16 deployment the CPU almost always holds activated
    neurons, so both variants behave identically — the constraint only
    pays off when layers go fully hot-resident.)
    """
    from repro.quant.formats import INT4

    model = MODEL_PRESETS[_MODEL]
    machine = MACHINE_PRESETS[_MACHINE]
    plan = build_plan(model, machine, INT4, policy="ilp")
    rows = []
    for selective in (True, False):
        engine = PowerInferEngine(plan, selective_sync=selective)
        result = engine.simulate_request(64, 128)
        rows.append(
            {
                "selective_sync": selective,
                "tokens_per_s": result.tokens_per_second,
                "decode_ms": result.decode_latency * 1e3,
            }
        )
    return rows


def run_ablation_predictor_budget(
    accuracy_targets: tuple[float, ...] = (0.90, 0.95, 0.99),
) -> list[dict]:
    """Predictor size vs serving speed: bigger predictors are more accurate
    but steal GPU memory from hot neurons (Section 5.1's tension)."""
    model = MODEL_PRESETS[_MODEL]
    machine = MACHINE_PRESETS[_MACHINE]
    rows = []
    for target in accuracy_targets:
        plan = build_plan(model, machine, FP16, policy="ilp", accuracy_target=target)
        result = PowerInferEngine(plan).simulate_request(64, 128)
        rows.append(
            {
                "accuracy_target": target,
                "predictor_gib": plan.total_predictor_bytes / 2**30,
                "gpu_load_share": plan.gpu_neuron_load_share(),
                "tokens_per_s": result.tokens_per_second,
            }
        )
    return rows


def _solver_inputs(model, seed=0):
    rng = np.random.default_rng(seed)
    mlp_probs, attn_probs = synthesize_model_probs(model, rng)
    groups = []
    for li in range(model.n_layers):
        groups.append(
            NeuronGroup(
                name=f"l{li}.attn",
                impacts=attn_probs[li],
                neuron_bytes=model.attn_neuron_bytes(FP16),
            )
        )
        groups.append(
            NeuronGroup(
                name=f"l{li}.mlp",
                impacts=mlp_probs[li],
                neuron_bytes=model.mlp_neuron_bytes(FP16),
            )
        )
    return groups


def run_ablation_solver_batching(
    batch_sizes: tuple[int, ...] = (64, 256, 1024, 4096),
) -> list[dict]:
    """ILP neuron-batch size: solve time vs objective quality (Sec. 6.3.3)."""
    model = MODEL_PRESETS[_MODEL]
    machine = MACHINE_PRESETS[_MACHINE]
    groups = _solver_inputs(model)
    budget = 0.3 * sum(g.total_bytes for g in groups)
    rows = []
    for batch_size in batch_sizes:
        # Real wall time on purpose: the ablation measures actual ILP
        # solver cost, which is not part of the simulated timeline.
        start = time.perf_counter()  # repro-lint: disable=wall-clock -- measuring real solver time
        policy = solve_ilp(
            groups, machine, budget,
            options=SolverOptions(batch_size=batch_size, time_limit=60.0),
        )
        rows.append(
            {
                "batch_size": batch_size,
                "solve_s": time.perf_counter() - start,  # repro-lint: disable=wall-clock -- measuring real solver time
                "gpu_impact_share": policy.gpu_impact_share(),
            }
        )
    return rows


def run_ablation_impact_weighting() -> list[dict]:
    """Byte-weighted objective vs literal Equation 1 (see solver docs)."""
    model = MODEL_PRESETS[_MODEL]
    machine = MACHINE_PRESETS[_MACHINE]
    groups = _solver_inputs(model)
    budget = 0.3 * sum(g.total_bytes for g in groups)
    rows = []
    for weighted in (True, False):
        policy = solve_ilp(
            groups, machine, budget,
            options=SolverOptions(batch_size=512, weight_impact_by_bytes=weighted),
        )
        gpu_bytes_active = 0.0
        total_bytes_active = 0.0
        for group, mask in zip(policy.groups, policy.gpu_masks):
            gpu_bytes_active += float(group.impacts[mask].sum()) * group.neuron_bytes
            total_bytes_active += float(group.impacts.sum()) * group.neuron_bytes
        rows.append(
            {
                "byte_weighted": weighted,
                "gpu_compute_share": gpu_bytes_active / total_bytes_active,
                "raw_impact_share": policy.gpu_impact_share(),
            }
        )
    return rows


def run_prompt_heavy(
    configs: tuple[tuple[int, int], ...] = ((512, 8), (64, 128), (8, 512)),
) -> list[dict]:
    """Section 8.2's caveat: long prompts with short outputs blunt the
    advantage (prompt-phase union activation kills sparsity)."""
    from repro.bench.runner import make_engine

    rows = []
    pi = make_engine("powerinfer", _MODEL, _MACHINE)
    lc = make_engine("llama.cpp", _MODEL, _MACHINE)
    for input_len, output_len in configs:
        a = pi.simulate_request(input_len, output_len)
        b = lc.simulate_request(input_len, output_len)
        rows.append(
            {
                "input": input_len,
                "output": output_len,
                "powerinfer_tps": a.tokens_per_second,
                "llamacpp_tps": b.tokens_per_second,
                "speedup": a.tokens_per_second / b.tokens_per_second,
            }
        )
    return rows
