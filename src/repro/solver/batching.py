"""Neuron batching for ILP tractability (paper Section 6.3.3).

Solving the placement ILP over millions of individual neurons is
intractable; the paper groups 64 neurons *with similar impacts* from the
same layer into a batch placed as a unit, shrinking the variable count to
tens of thousands.  Batches are formed by sorting a layer's neurons by
impact and chunking — adjacent neurons in sorted order have the most
similar impacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NeuronBatch", "batch_neurons"]


@dataclass(frozen=True)
class NeuronBatch:
    """A placement unit: up to ``batch_size`` similar-impact neurons."""

    neuron_indices: np.ndarray  # original indices within the layer
    impact: float  # summed impact of members
    nbytes: float  # summed weight bytes of members

    @property
    def size(self) -> int:
        return int(self.neuron_indices.size)


def batch_neurons(
    impacts: np.ndarray, neuron_bytes: float, batch_size: int = 64
) -> list[NeuronBatch]:
    """Group a layer's neurons into similar-impact batches.

    Args:
        impacts: Per-neuron impact metric, shape ``(n_neurons,)``.
        neuron_bytes: Weight bytes per neuron (uniform within a layer).
        batch_size: Neurons per batch (paper: 64).

    Returns:
        Batches ordered by descending impact.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if neuron_bytes <= 0:
        raise ValueError("neuron_bytes must be positive")
    impacts = np.asarray(impacts, dtype=np.float64)
    if impacts.ndim != 1 or impacts.size == 0:
        raise ValueError("impacts must be a non-empty 1-D array")
    order = np.argsort(impacts)[::-1]
    batches: list[NeuronBatch] = []
    for start in range(0, order.size, batch_size):
        members = order[start : start + batch_size]
        batches.append(
            NeuronBatch(
                neuron_indices=members.copy(),
                impact=float(impacts[members].sum()),
                nbytes=float(members.size * neuron_bytes),
            )
        )
    return batches
