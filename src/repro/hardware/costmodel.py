"""Roofline cost model mapping operator workloads to device latencies.

LLM token generation at small batch sizes is memory-bandwidth bound (paper
Section 6.3.1, Equation 5: the time to compute a neuron approximately equals
the time to read its weights once).  The cost model therefore charges each
operator

    ``launch_overhead + max(bytes_moved / effective_bandwidth,
                            flops / compute_throughput)``

which reduces to the paper's Equation 5 in the bandwidth-bound regime and
transitions to compute-bound behaviour at large batch sizes — exactly the
crossover the paper exploits in Figures 6 and 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hardware.spec import DeviceSpec, LinkSpec
from repro.units import Bytes, Flops, Ratio, Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.spec import MachineSpec

__all__ = ["OpWork", "TaskCost", "CostModel", "COST_COMPONENTS"]

# The five places a simulated second can go.  Decompositions index by these
# names; their per-task sum always equals the task duration exactly.
COST_COMPONENTS = ("memory", "compute", "launch", "sync", "transfer")


@dataclass(frozen=True)
class OpWork:
    """Resource footprint of one operator invocation.

    Attributes:
        flops: Floating-point operations performed.
        bytes_read: Bytes read from device memory (weights + inputs).
        bytes_written: Bytes written to device memory (outputs).
    """

    flops: Flops = 0.0
    bytes_read: Bytes = 0.0
    bytes_written: Bytes = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("OpWork fields must be non-negative")

    @property
    def bytes_total(self) -> Bytes:
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "OpWork") -> "OpWork":
        return OpWork(
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )

    def scaled(self, factor: Ratio) -> "OpWork":
        """Scale all dimensions (e.g. by an activation fraction)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return OpWork(
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )


@dataclass(frozen=True)
class TaskCost:
    """The roofline terms behind one task's duration, kept separable.

    Attribution and what-if analysis need more than a scalar latency: they
    need to know *why* the task costs what it costs and how that cost
    responds to hardware knobs.  ``TaskCost`` records the cost model's own
    terms at pricing time:

    Attributes:
        flops: Floating-point work priced into ``compute_time``.
        bytes: Device-memory bytes (operators) or link bytes (transfers).
        mem_time: Full ``bytes / effective_bandwidth`` term (even when
            compute-bound — the roofline keeps both sides).
        compute_time: Full ``flops / compute_flops`` term.
        launch: Dispatch overhead charged (0 when elided).
        sync: Fixed synchronization overhead charged (paper's T_sync).
        transfer: Link latency + DMA/UM streaming time (transfers only).
        launches: How many dispatch overheads ``launch`` covers (0 or 1) —
            what-if re-pricing rescales by the perturbed device's overhead.
        syncs: How many sync overheads ``sync`` covers (0 or 1).
        unified_memory: Whether ``transfer`` was priced at UM page-fault
            efficiency rather than bulk-DMA efficiency.
    """

    flops: Flops = 0.0
    bytes: Bytes = 0.0
    mem_time: Seconds = 0.0
    compute_time: Seconds = 0.0
    launch: Seconds = 0.0
    sync: Seconds = 0.0
    transfer: Seconds = 0.0
    launches: int = 0
    syncs: int = 0
    unified_memory: bool = False

    @property
    def duration(self) -> Seconds:
        """Task duration: the roofline max plus every fixed overhead.

        Matches :meth:`CostModel.op_time` / :meth:`CostModel.transfer_time`
        bit for bit for costs built by :meth:`CostModel.op_cost` /
        :meth:`CostModel.transfer_cost`.
        """
        return max(self.mem_time, self.compute_time) + self.launch + self.sync + self.transfer

    @property
    def bound(self) -> str:
        """Which roofline side binds: ``"memory"`` or ``"compute"``."""
        return "memory" if self.mem_time >= self.compute_time else "compute"

    def components(self) -> dict[str, Seconds]:
        """Duration split over :data:`COST_COMPONENTS`; sums to ``duration``.

        The roofline ``max`` term is attributed entirely to the binding
        side (a memory-bound operator's compute time is hidden under the
        memory streaming, and vice versa), so the five components add up
        to the task duration exactly.
        """
        binding = self.bound
        return {
            "memory": self.mem_time if binding == "memory" else 0.0,
            "compute": self.compute_time if binding == "compute" else 0.0,
            "launch": self.launch,
            "sync": self.sync,
            "transfer": self.transfer,
        }

    def repriced(self, resource: str, machine: "MachineSpec") -> "TaskCost":
        """Re-price this task's recorded work on a (perturbed) machine.

        The recorded ``flops``/``bytes`` are re-run through the same cost
        formulas against ``machine``'s specs — the analytic core of what-if
        sensitivity analysis.  ``resource`` is the task's resource name
        (``"gpu"`` / ``"cpu"`` / ``"pcie"``).
        """
        if resource == "pcie":
            return TaskCost(
                bytes=self.bytes,
                transfer=machine.link.transfer_time(
                    self.bytes, unified_memory=self.unified_memory
                ),
                unified_memory=self.unified_memory,
            )
        device = machine.device(resource)
        return TaskCost(
            flops=self.flops,
            bytes=self.bytes,
            mem_time=self.bytes / device.effective_bandwidth,
            compute_time=self.flops / device.compute_flops,
            launch=self.launches * device.launch_overhead,
            sync=self.syncs * machine.sync_overhead,
            launches=self.launches,
            syncs=self.syncs,
        )


class CostModel:
    """Latency estimates for operators and transfers on a given machine."""

    @staticmethod
    def op_time(
        work: OpWork, device: DeviceSpec, include_launch: bool = True
    ) -> Seconds:
        """Execution time of ``work`` on ``device`` in seconds."""
        if work.flops == 0 and work.bytes_total == 0:
            return device.launch_overhead if include_launch else 0.0
        mem_time = work.bytes_total / device.effective_bandwidth
        compute_time = work.flops / device.compute_flops
        base = max(mem_time, compute_time)
        return base + (device.launch_overhead if include_launch else 0.0)

    @staticmethod
    def transfer_time(nbytes: Bytes, link: LinkSpec) -> Seconds:
        """Time to move ``nbytes`` across ``link`` in seconds."""
        return link.transfer_time(nbytes)

    @staticmethod
    def op_cost(
        work: OpWork,
        device: DeviceSpec,
        include_launch: bool = True,
        sync: Seconds = 0.0,
    ) -> TaskCost:
        """The structured cost behind :meth:`op_time` (plus optional sync).

        ``TaskCost.duration`` equals ``sync + op_time(work, device,
        include_launch)`` exactly; engines attach the returned record to
        their :class:`~repro.hardware.events.SimTask` so traces stay
        decomposable and re-priceable.
        """
        launched = include_launch
        return TaskCost(
            flops=work.flops,
            bytes=work.bytes_total,
            mem_time=work.bytes_total / device.effective_bandwidth,
            compute_time=work.flops / device.compute_flops,
            launch=device.launch_overhead if launched else 0.0,
            sync=sync,
            launches=1 if launched else 0,
            syncs=1 if sync > 0.0 else 0,
        )

    @staticmethod
    def transfer_cost(
        nbytes: Bytes, link: LinkSpec, unified_memory: bool = False
    ) -> TaskCost:
        """The structured cost behind :meth:`transfer_time`."""
        return TaskCost(
            bytes=nbytes,
            transfer=link.transfer_time(nbytes, unified_memory=unified_memory),
            unified_memory=unified_memory,
        )

    @staticmethod
    def bandwidth_bound(work: OpWork, device: DeviceSpec) -> bool:
        """Whether the operator is limited by memory bandwidth."""
        mem_time = work.bytes_total / device.effective_bandwidth
        compute_time = work.flops / device.compute_flops
        return mem_time >= compute_time

    @staticmethod
    def neuron_time(neuron_bytes: Bytes, device: DeviceSpec) -> Seconds:
        """Paper Equation 5: per-neuron compute time ~= weight-read time."""
        if neuron_bytes < 0:
            raise ValueError("neuron_bytes must be non-negative")
        return neuron_bytes / device.effective_bandwidth
