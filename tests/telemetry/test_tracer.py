"""Unit tests for the Tracer event store and NullTracer sink."""

import pytest

from repro.hardware.events import EventSimulator, SimTask
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.telemetry import (
    NullTracer,
    Region,
    RequestSpan,
    TaskSpan,
    Tracer,
    record_fault_schedule,
)


def small_schedule():
    """A three-task DAG across two resources (deterministic)."""
    sim = EventSimulator(["gpu", "cpu"])
    return sim.run(
        [
            SimTask("a", "gpu", 1.0, tag="mlp"),
            SimTask("b", "cpu", 0.5, deps=("a",), tag="mlp"),
            SimTask("c", "gpu", 0.25, deps=("a",), tag="transfer"),
        ]
    )


class TestEventValidation:
    def test_task_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TaskSpan("t", "gpu", 1.0, 0.5)

    def test_request_span_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            RequestSpan(0, "warming-up", 0.0, 1.0)

    def test_request_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            RequestSpan(0, "decode", 2.0, 1.0)

    def test_region_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Region("server", "iteration", 2.0, 1.0)

    def test_zero_length_spans_are_legal(self):
        TaskSpan("t", "gpu", 1.0, 1.0)
        RequestSpan(0, "queued", 1.0, 1.0)
        Region("server", "iteration", 1.0, 1.0)


class TestTracerRecording:
    def test_add_schedule_shifts_to_global_time(self):
        sched = small_schedule()
        tracer = Tracer()
        tracer.add_schedule(sched, t0=10.0, iteration=3)
        assert len(tracer.task_spans) == len(sched.tasks)
        by_name = {s.name: s for s in tracer.task_spans}
        for name, task in sched.tasks.items():
            span = by_name[name]
            assert span.start == 10.0 + task.start
            assert span.end == 10.0 + task.end
            assert span.lane == task.resource
            assert span.tag == task.tag
            assert span.iteration == 3

    def test_lanes_and_len(self):
        tracer = Tracer()
        tracer.add_task("a", "gpu", 0.0, 1.0)
        tracer.add_task("b", "cpu", 0.0, 1.0)
        tracer.add_request_event(0, "arrive", 0.0)
        tracer.add_counter("queue_depth", 0.0, 1)
        assert tracer.lanes == ("cpu", "gpu")
        assert len(tracer) == 4

    def test_device_busy_merges_overlaps(self):
        tracer = Tracer()
        tracer.add_task("a", "gpu", 0.0, 2.0)
        tracer.add_task("b", "gpu", 1.0, 3.0)  # overlaps a
        tracer.add_task("c", "cpu", 0.0, 1.0)
        busy = tracer.device_busy()
        assert busy["gpu"] == pytest.approx(3.0)
        assert busy["cpu"] == pytest.approx(1.0)

    def test_busy_union_spans_all_lanes(self):
        tracer = Tracer()
        tracer.add_task("a", "gpu", 0.0, 1.0)
        tracer.add_task("b", "cpu", 0.5, 2.0)
        assert tracer.busy_union() == pytest.approx(2.0)

    def test_counter_series_filters_by_name(self):
        tracer = Tracer()
        tracer.add_counter("x", 0.0, 1.0)
        tracer.add_counter("y", 0.5, 2.0)
        tracer.add_counter("x", 1.0, 3.0)
        assert tracer.counter_series("x") == [(0.0, 1.0), (1.0, 3.0)]
        assert tracer.counter_series("missing") == []

    def test_regions_on_lane(self):
        tracer = Tracer()
        tracer.add_region("server", "iteration", 0.0, 1.0)
        tracer.add_region("faults", "stall", 2.0, 3.0)
        assert [r.name for r in tracer.regions_on("faults")] == ["stall"]


class TestNullTracer:
    def test_disabled_and_records_nothing(self):
        null = NullTracer()
        assert null.enabled is False
        null.add_task("a", "gpu", 0.0, 1.0)
        null.add_schedule(small_schedule(), t0=1.0)
        null.add_request_span(0, "queued", 0.0, 1.0)
        null.add_request_event(0, "arrive", 0.0)
        null.add_region("server", "iteration", 0.0, 1.0)
        null.add_instant("faults", "epoch", 0.0)
        null.add_counter("x", 0.0, 1.0)
        assert len(null) == 0

    def test_is_a_tracer(self):
        assert isinstance(NullTracer(), Tracer)


class TestRecordFaultSchedule:
    def test_events_become_regions_and_boundaries_instants(self):
        faults = FaultSchedule(
            [
                FaultEvent(FaultKind.PCIE_DEGRADE, 1.0, 2.0, 4.0),
                FaultEvent(FaultKind.DEVICE_STALL, 5.0, 0.5),
            ]
        )
        tracer = Tracer()
        record_fault_schedule(tracer, faults)
        regions = tracer.regions_on("faults")
        assert [(r.name, r.start, r.end) for r in regions] == [
            ("pcie-degrade", 1.0, 3.0),
            ("stall", 5.0, 5.5),
        ]
        assert regions[0].args == {"magnitude": 4.0}
        marks = [i.time for i in tracer.instants if i.name == "epoch"]
        assert marks == list(faults.boundaries) == [1.0, 3.0, 5.0, 5.5]

    def test_empty_schedule_adds_nothing(self):
        tracer = Tracer()
        record_fault_schedule(tracer, FaultSchedule([]))
        assert len(tracer) == 0
