"""Per-request serving metrics: TTFT, TBT, latency percentiles, SLO goodput.

Static serving reports (:class:`repro.serving.simulator.ServingReport`) only
see whole requests; a token-level scheduler needs token-level metrics.  This
module records, for each request, the time of every emitted token, and
derives the quantities production serving systems are judged by:

* **TTFT** — time to first token (arrival until the first output token).
* **TBT**  — time between tokens during decode (the streaming cadence).
* **Latency** — arrival until the last token.
* **Goodput** — requests per second that met a configurable
  :class:`SLO` on both TTFT and worst-case TBT.

:func:`merge_busy_intervals` is the shared utilization primitive: it sums
the union of (start, end) busy spans, so overlapping work (batched or
continuous) is never double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.serving.arrival import Request
from repro.units import Bytes, Hertz, Ratio, Seconds, TokensPerSecond

__all__ = [
    "SLO",
    "RequestMetrics",
    "ContinuousReport",
    "merge_busy_intervals",
    "percentile",
]


def percentile(values: Iterable[float], q: float) -> float:
    """Validated percentile over a non-empty collection, ``q`` in [0, 100].

    The one shared percentile primitive of the serving reports (and the
    telemetry histograms), so validation lives in exactly one place.

    Raises:
        ValueError: When ``q`` is outside [0, 100] (or NaN), or ``values``
            is empty.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    vals = list(values)
    if not vals:
        raise ValueError("cannot take a percentile of an empty collection")
    return float(np.percentile(vals, q))


def merge_busy_intervals(intervals: Iterable[tuple[Seconds, Seconds]]) -> Seconds:
    """Total length of the union of ``(start, end)`` intervals.

    Overlapping and nested spans are merged before summing, so the result
    is the wall-clock time during which *at least one* interval was active
    — the correct notion of server busy time under batching.
    """
    spans = sorted((s, e) for s, e in intervals if e > s)
    total = 0.0
    current_start: float | None = None
    current_end = 0.0
    for start, end in spans:
        if current_start is None or start > current_end:
            if current_start is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_start is not None:
        total += current_end - current_start
    return total


@dataclass(frozen=True)
class SLO:
    """A latency service-level objective on the streaming experience.

    Attributes:
        ttft_target: Maximum acceptable time-to-first-token, seconds.
        tbt_target: Maximum acceptable gap between consecutive tokens,
            seconds (judged against the request's *worst* gap, since one
            long stall breaks the streaming illusion).
    """

    ttft_target: Seconds
    tbt_target: Seconds

    def __post_init__(self) -> None:
        if self.ttft_target <= 0 or self.tbt_target <= 0:
            raise ValueError("SLO targets must be positive")


@dataclass(frozen=True)
class RequestMetrics:
    """Token-level timing of one served request."""

    request: Request
    admit_time: Seconds
    token_times: tuple[Seconds, ...]

    def __post_init__(self) -> None:
        if not self.token_times:
            raise ValueError("a completed request must have emitted tokens")
        if list(self.token_times) != sorted(self.token_times):
            raise ValueError("token_times must be non-decreasing")

    @property
    def n_tokens(self) -> int:
        return len(self.token_times)

    @property
    def first_token_time(self) -> Seconds:
        return self.token_times[0]

    @property
    def finish_time(self) -> Seconds:
        return self.token_times[-1]

    @property
    def queue_delay(self) -> Seconds:
        """Arrival until admission into the running batch."""
        return self.admit_time - self.request.arrival_time

    @property
    def ttft(self) -> Seconds:
        """Time to first token (arrival until first emission)."""
        return self.first_token_time - self.request.arrival_time

    @property
    def latency(self) -> Seconds:
        """Arrival-to-completion time (what the user experiences)."""
        return self.finish_time - self.request.arrival_time

    @property
    def tbts(self) -> tuple[Seconds, ...]:
        """Gaps between consecutive emitted tokens (empty for 1 token)."""
        return tuple(
            b - a for a, b in zip(self.token_times, self.token_times[1:])
        )

    @property
    def mean_tbt(self) -> Seconds:
        gaps = self.tbts
        return float(np.mean(gaps)) if gaps else 0.0

    @property
    def max_tbt(self) -> Seconds:
        gaps = self.tbts
        return max(gaps) if gaps else 0.0

    def meets_slo(self, slo: SLO) -> bool:
        """Whether this request stayed within the SLO end to end."""
        return self.ttft <= slo.ttft_target and self.max_tbt <= slo.tbt_target


@dataclass
class ContinuousReport:
    """Aggregate statistics of a continuous-batching simulation.

    Attributes:
        completed: Token-level metrics of every served request.
        busy_intervals: ``(start, end)`` spans during which the server ran
            an iteration (merged for utilization).
        kv_budget_bytes: KV-cache memory budget the admission controller
            enforced.
        peak_kv_bytes: Highest concurrent KV reservation observed.
        n_iterations: Model iterations executed.
        timed_out: Requests cancelled because they exceeded their deadline
            (KV reservation released; they never complete).
        shed: Requests rejected at arrival because the admission queue
            exceeded its bound (load shedding).
        failed: Requests aborted by transient faults that exhausted their
            retry budget.
        n_aborts: In-flight request aborts caused by device stalls (one
            request may abort several times across retries).
        n_retries: Abort recoveries re-queued with backoff.
        degraded_intervals: ``(start, end)`` spans the server spent in
            degraded mode (fault-adaptive batch cap or re-planned
            hot-neuron set active).
    """

    completed: list[RequestMetrics] = field(default_factory=list)
    busy_intervals: list[tuple[Seconds, Seconds]] = field(default_factory=list)
    kv_budget_bytes: Bytes = 0.0
    peak_kv_bytes: Bytes = 0.0
    n_iterations: int = 0
    timed_out: list[Request] = field(default_factory=list)
    shed: list[Request] = field(default_factory=list)
    failed: list[Request] = field(default_factory=list)
    n_aborts: int = 0
    n_retries: int = 0
    degraded_intervals: list[tuple[Seconds, Seconds]] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.completed)

    # ---- robustness accounting ---------------------------------------------

    @property
    def n_submitted(self) -> int:
        """Every request that entered the system, by final disposition.

        Each submitted request ends in exactly one of ``completed``,
        ``timed_out``, ``shed``, or ``failed``.
        """
        return (
            len(self.completed)
            + len(self.timed_out)
            + len(self.shed)
            + len(self.failed)
        )

    @property
    def deadline_miss_rate(self) -> Ratio:
        """Fraction of submitted requests cancelled past their deadline."""
        n = self.n_submitted
        return len(self.timed_out) / n if n else 0.0

    @property
    def shed_rate(self) -> Ratio:
        """Fraction of submitted requests rejected by load shedding."""
        n = self.n_submitted
        return len(self.shed) / n if n else 0.0

    @property
    def time_in_degraded_mode(self) -> Seconds:
        """Seconds the server operated with degradation measures active."""
        return merge_busy_intervals(self.degraded_intervals)

    @property
    def makespan(self) -> Seconds:
        if not self.completed:
            return 0.0
        return max(m.finish_time for m in self.completed)

    @property
    def throughput_rps(self) -> Hertz:
        """Requests completed per second of simulated time."""
        span = self.makespan
        return self.n_requests / span if span else 0.0

    @property
    def tokens_per_second(self) -> TokensPerSecond:
        span = self.makespan
        total = sum(m.n_tokens for m in self.completed)
        return total / span if span else 0.0

    @property
    def utilization(self) -> Ratio:
        """Fraction of simulated time at least one iteration was running."""
        span = self.makespan
        return merge_busy_intervals(self.busy_intervals) / span if span else 0.0

    @property
    def mean_latency(self) -> Seconds:
        if not self.completed:
            return 0.0
        return float(np.mean([m.latency for m in self.completed]))

    @property
    def mean_ttft(self) -> Seconds:
        if not self.completed:
            return 0.0
        return float(np.mean([m.ttft for m in self.completed]))

    @property
    def mean_queue_delay(self) -> Seconds:
        if not self.completed:
            return 0.0
        return float(np.mean([m.queue_delay for m in self.completed]))

    def latency_percentile(self, q: float) -> Seconds:
        """User-visible latency percentile, ``q`` in [0, 100]."""
        return percentile((m.latency for m in self.completed), q)

    def ttft_percentile(self, q: float) -> Seconds:
        return percentile((m.ttft for m in self.completed), q)

    def tbt_percentile(self, q: float) -> Seconds:
        """Percentile over all inter-token gaps, pooled across requests."""
        return percentile((g for m in self.completed for g in m.tbts), q)

    def slo_attainment(self, slo: SLO) -> Ratio:
        """Fraction of *completed* requests that met the SLO."""
        if not self.completed:
            return 0.0
        met = sum(1 for m in self.completed if m.meets_slo(slo))
        return met / self.n_requests

    def slo_attainment_overall(self, slo: SLO) -> Ratio:
        """Fraction of *submitted* requests that completed within the SLO.

        Unlike :meth:`slo_attainment`, the denominator includes requests
        that timed out, were shed, or failed — a server cannot improve
        this number by dropping inconvenient requests, which makes it the
        honest metric for comparing degradation strategies.
        """
        n = self.n_submitted
        if not n:
            return 0.0
        return sum(1 for m in self.completed if m.meets_slo(slo)) / n

    def goodput(self, slo: SLO) -> Hertz:
        """SLO-meeting requests completed per second of simulated time."""
        span = self.makespan
        if not span:
            return 0.0
        return sum(1 for m in self.completed if m.meets_slo(slo)) / span

    def to_dict(
        self,
        slo: SLO | None = None,
        percentiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
    ) -> dict:
        """The report as a JSON-ready dict (for structured benchmark output).

        Scalars and percentile tables only — per-token timelines belong to
        the telemetry subsystem (:mod:`repro.telemetry`), whose registry
        summary merges into this dict via
        :meth:`~repro.telemetry.metrics.MetricsRegistry.merge_into`.

        Args:
            slo: When given, adds an ``"slo"`` block with the targets and
                attainment/goodput against them.
            percentiles: Quantiles rendered into each percentile table.
        """
        def table(values: list[float]) -> dict[str, float]:
            return {
                f"p{q:g}": percentile(values, q) for q in percentiles
            } if values else {}

        result = {
            "n_requests": self.n_requests,
            "n_submitted": self.n_submitted,
            "n_iterations": self.n_iterations,
            "n_timed_out": len(self.timed_out),
            "n_shed": len(self.shed),
            "n_failed": len(self.failed),
            "n_aborts": self.n_aborts,
            "n_retries": self.n_retries,
            "makespan_s": self.makespan,
            "throughput_rps": self.throughput_rps,
            "tokens_per_second": self.tokens_per_second,
            "utilization": self.utilization,
            "kv_budget_bytes": self.kv_budget_bytes,
            "peak_kv_bytes": self.peak_kv_bytes,
            "mean_latency_s": self.mean_latency,
            "mean_ttft_s": self.mean_ttft,
            "mean_queue_delay_s": self.mean_queue_delay,
            "deadline_miss_rate": self.deadline_miss_rate,
            "shed_rate": self.shed_rate,
            "time_in_degraded_mode_s": self.time_in_degraded_mode,
            "latency_percentiles_s": table([m.latency for m in self.completed]),
            "ttft_percentiles_s": table([m.ttft for m in self.completed]),
            "tbt_percentiles_s": table(
                [g for m in self.completed for g in m.tbts]
            ),
        }
        if slo is not None:
            result["slo"] = {
                "ttft_target_s": slo.ttft_target,
                "tbt_target_s": slo.tbt_target,
                "attainment": self.slo_attainment(slo),
                "attainment_overall": self.slo_attainment_overall(slo),
                "goodput_rps": self.goodput(slo),
            }
        return result
