"""Call-graph construction, project stats, and the clean-tree guarantee.

The interprocedural passes are only as good as the graph under them;
these tests pin the indexing contract (qualified names, method edges,
cross-module resolution) and the headline acceptance property: the real
``src/repro`` tree analyzes clean.
"""

from pathlib import Path

from repro.check.callgraph import CallGraph, ProjectIndex
from repro.check.flow import flow_report_as_dict, run_flow

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


FIXTURE = (
    "class Box:\n"
    "    def get(self):\n"
    "        return self.load()\n"
    "\n"
    "    def load(self):\n"
    "        return 1\n"
    "\n"
    "\n"
    "def helper(x):\n"
    "    return x\n"
    "\n"
    "\n"
    "def caller():\n"
    "    return helper(3)\n"
)


def build(tmp_path: Path, sources: dict[str, str]):
    for name, src in sources.items():
        (tmp_path / name).write_text(src)
    index = ProjectIndex.build(sorted(tmp_path.glob("*.py")))
    return index, CallGraph.build(index)


class TestProjectIndex:
    def test_functions_get_module_qualified_names(self, tmp_path):
        index, _ = build(tmp_path, {"fixture.py": FIXTURE})
        assert set(index.functions) == {
            "fixture:Box.get",
            "fixture:Box.load",
            "fixture:helper",
            "fixture:caller",
        }

    def test_parse_errors_are_collected_not_raised(self, tmp_path):
        index, _ = build(tmp_path, {"broken.py": "def oops(:\n"})
        assert len(index.parse_errors) == 1
        path, line, _message = index.parse_errors[0]
        assert path.endswith("broken.py")
        assert line >= 1

    def test_parse_error_surfaces_in_flow_report(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        report = run_flow([tmp_path])
        assert [v.rule for v in report.violations] == ["parse-error"]
        assert not report.ok


class TestCallGraph:
    def test_module_function_edge(self, tmp_path):
        _, graph = build(tmp_path, {"fixture.py": FIXTURE})
        edges = {(e.caller, e.callee) for e in graph.edges}
        assert ("fixture:caller", "fixture:helper") in edges

    def test_self_method_edge(self, tmp_path):
        _, graph = build(tmp_path, {"fixture.py": FIXTURE})
        edges = {(e.caller, e.callee) for e in graph.edges}
        assert ("fixture:Box.get", "fixture:Box.load") in edges

    def test_cross_module_import_edge(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "a.py": "def shared():\n    return 1\n",
                "b.py": (
                    "from a import shared\n"
                    "\n"
                    "\n"
                    "def use():\n"
                    "    return shared()\n"
                ),
            },
        )
        edges = {(e.caller, e.callee) for e in graph.edges}
        assert ("b:use", "a:shared") in edges


class TestCleanTree:
    def test_src_repro_is_flow_clean(self):
        report = run_flow([SRC_REPRO])
        assert report.violations == []
        assert report.ok
        # The stats prove the passes actually covered the project — a
        # path bug that analyzed nothing would also report 0 violations.
        assert report.n_files > 100
        assert report.n_functions > 800
        assert report.n_call_edges > 1000
        assert report.n_task_sites > 20

    def test_report_dict_shape(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        d = flow_report_as_dict(run_flow([tmp_path]))
        assert d["ok"] is True
        assert d["n_files"] == 1
        assert d["violations"] == []
        assert set(d) >= {
            "ok",
            "n_files",
            "n_functions",
            "n_call_edges",
            "n_task_sites",
            "violations",
        }
