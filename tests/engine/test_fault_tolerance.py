"""Tests for fault injection, deadlines, retries, shedding, and degradation.

Timescales reference the mini engine: one 16-token prefill iteration costs
~6 ms, one decode step ~1.7 ms, a (16 in, 32 out) request ~60 ms end to
end, and its KV reservation is 3 MiB.
"""

import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.serving import Request, simulate_continuous_serving
from repro.serving.continuous import IterationCostCache

BUDGET = 256 * 2**20


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


def burst(n, input_len=16, output_len=32, gap=0.001, deadline=None):
    return [
        Request(request_id=i, arrival_time=gap * i, input_len=input_len,
                output_len=output_len, deadline=deadline)
        for i in range(n)
    ]


def throttle(start, duration, magnitude=4.0):
    return FaultEvent(FaultKind.GPU_THROTTLE, start=start, duration=duration,
                      magnitude=magnitude)


class TestFaultAwareCosts:
    def test_cost_rises_inside_fault_window(self, engine):
        faults = FaultSchedule([throttle(1.0, 1.0)])
        cache = IterationCostCache(engine, faults=faults)
        assert cache.cost(16, 1, 1, now=1.5) > cache.cost(16, 1, 1, now=0.5)

    def test_cache_keys_carry_the_epoch(self, engine):
        faults = FaultSchedule([throttle(1.0, 1.0)])
        cache = IterationCostCache(engine, faults=faults)
        cache.cost(16, 1, 1, now=0.0)
        cache.cost(16, 1, 1, now=0.5)  # same epoch: cache hit
        assert len(cache) == 1
        cache.cost(16, 1, 1, now=1.5)  # inside the window: new epoch
        assert len(cache) == 2

    def test_cost_recovers_past_the_horizon(self, engine):
        faults = FaultSchedule([throttle(1.0, 1.0)])
        faulty = IterationCostCache(engine, faults=faults)
        pristine = IterationCostCache(engine)
        assert faulty.cost(16, 1, 1, now=5.0) == pytest.approx(
            pristine.cost(16, 1, 1)
        )


class TestDeadlines:
    def test_timeout_releases_kv_and_skips_percentiles(self, engine):
        # req 0 reserves the whole budget and cannot finish 512 tokens in
        # 20 ms; req 1 fits only after req 0's reservation is released.
        requests = [
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=512,
                    deadline=0.02),
            Request(request_id=1, arrival_time=0.001, input_len=16, output_len=16),
        ]
        budget = engine.request_kv_bytes(16, 512)
        report = simulate_continuous_serving(
            engine, requests, kv_budget_bytes=budget
        )
        assert [r.request_id for r in report.timed_out] == [0]
        assert [m.request.request_id for m in report.completed] == [1]
        assert report.n_submitted == 2
        # The cancelled request never pollutes the completed percentiles.
        survivor = report.completed[0]
        assert report.latency_percentile(100) == pytest.approx(survivor.latency)
        assert report.deadline_miss_rate == pytest.approx(0.5)

    def test_waiting_request_can_time_out_in_queue(self, engine):
        requests = [
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=256),
            Request(request_id=1, arrival_time=0.001, input_len=16, output_len=8,
                    deadline=0.01),
        ]
        report = simulate_continuous_serving(
            engine, requests, max_batch=1, kv_budget_bytes=BUDGET
        )
        assert [r.request_id for r in report.timed_out] == [1]
        assert [m.request.request_id for m in report.completed] == [0]

    def test_server_default_deadline_and_per_request_override(self, engine):
        requests = [
            # Overrides the generous server default with a hopeless one.
            Request(request_id=0, arrival_time=0.0, input_len=16, output_len=512,
                    deadline=0.01),
            Request(request_id=1, arrival_time=0.0, input_len=16, output_len=16),
        ]
        report = simulate_continuous_serving(
            engine, requests, kv_budget_bytes=BUDGET, deadline=30.0
        )
        assert [r.request_id for r in report.timed_out] == [0]
        assert [m.request.request_id for m in report.completed] == [1]

    def test_no_deadline_means_no_timeouts(self, engine):
        report = simulate_continuous_serving(
            engine, burst(4), kv_budget_bytes=BUDGET
        )
        assert not report.timed_out
        assert report.n_requests == 4


class TestStallsAndRetries:
    STALL = FaultEvent(FaultKind.DEVICE_STALL, start=0.003, duration=0.003)

    def test_stall_aborts_then_retry_completes(self, engine):
        faults = FaultSchedule([self.STALL])  # inside the first prefill
        report = simulate_continuous_serving(
            engine, burst(1), kv_budget_bytes=BUDGET, faults=faults,
            max_retries=2, retry_backoff=0.001,
        )
        assert report.n_aborts == 1
        assert report.n_retries == 1
        assert not report.failed
        assert report.n_requests == 1
        # Re-admitted only after the stall cleared plus the backoff.
        assert report.completed[0].admit_time >= self.STALL.end + 0.001
        # No iteration span crosses the stall window's interior.
        for start, end in report.busy_intervals:
            assert end <= self.STALL.start + 1e-12 or start >= self.STALL.end - 1e-12

    def test_retry_exhaustion_marks_failed(self, engine):
        faults = FaultSchedule([self.STALL])
        report = simulate_continuous_serving(
            engine, burst(1), kv_budget_bytes=BUDGET, faults=faults,
            max_retries=0,
        )
        assert report.n_aborts == 1
        assert report.n_retries == 0
        assert [r.request_id for r in report.failed] == [0]
        assert not report.completed
        assert report.n_submitted == 1

    def test_backoff_grows_exponentially(self, engine):
        # Two stalls hit the same request's first and second attempts; the
        # second retry must wait twice the base backoff.
        faults = FaultSchedule([
            self.STALL,
            FaultEvent(FaultKind.DEVICE_STALL, start=0.0305, duration=0.003),
        ])
        backoff = 0.02  # first retry ready at 0.006 + 0.02 = 0.026
        report = simulate_continuous_serving(
            engine, burst(1), kv_budget_bytes=BUDGET, faults=faults,
            max_retries=3, retry_backoff=backoff,
        )
        assert report.n_aborts == 2
        assert report.completed[0].admit_time >= 0.0335 + 2 * backoff

    def test_stall_while_idle_delays_without_aborts(self, engine):
        faults = FaultSchedule(
            [FaultEvent(FaultKind.DEVICE_STALL, start=9.9, duration=0.6)]
        )
        requests = [
            Request(request_id=0, arrival_time=10.0, input_len=16, output_len=8)
        ]
        report = simulate_continuous_serving(
            engine, requests, kv_budget_bytes=BUDGET, faults=faults
        )
        assert report.n_aborts == 0
        # Arrived mid-stall: service waits for the window to clear.
        assert report.completed[0].ttft >= 0.5


class TestLoadShedding:
    def test_queue_bound_sheds_excess_arrivals(self, engine):
        report = simulate_continuous_serving(
            engine, burst(6, gap=0.0), max_batch=1,
            kv_budget_bytes=engine.request_kv_bytes(16, 32), max_queue=2,
        )
        assert len(report.shed) == 4
        assert report.n_requests == 2
        assert report.n_submitted == 6
        assert report.shed_rate == pytest.approx(4 / 6)
        # Shed requests never held KV.
        assert report.peak_kv_bytes <= report.kv_budget_bytes + 1e-6

    def test_unbounded_queue_sheds_nothing(self, engine):
        report = simulate_continuous_serving(
            engine, burst(6, gap=0.0), max_batch=1,
            kv_budget_bytes=engine.request_kv_bytes(16, 32),
        )
        assert not report.shed
        assert report.n_requests == 6


class TestKvShrinkDegradation:
    FAULTS = FaultSchedule(
        [FaultEvent(FaultKind.KV_SHRINK, start=0.0, duration=5.0, magnitude=0.1)]
    )

    def run(self, engine, degradation):
        return simulate_continuous_serving(
            engine, burst(4), kv_budget_bytes=2 * engine.request_kv_bytes(16, 32),
            faults=self.FAULTS, deadline=1.0, degradation=degradation,
        )

    def test_naive_starves_degraded_replans(self, engine):
        naive = self.run(engine, degradation=False)
        degraded = self.run(engine, degradation=True)
        # 10% of a two-request budget fits nothing: the naive server waits
        # out the 5 s window and every 1 s deadline expires.
        assert len(naive.timed_out) == 4
        assert not naive.completed
        # Demoting hot neurons buys the budget back: all served, slower.
        assert degraded.n_requests == 4
        assert not degraded.timed_out
        assert degraded.time_in_degraded_mode > 0.0
        assert naive.time_in_degraded_mode == 0.0

    def test_degraded_run_is_deterministic(self, engine):
        assert self.run(engine, degradation=True) == self.run(
            engine, degradation=True
        )

    def test_with_gpu_bytes_freed_plan_properties(self, mini_plan):
        nbytes = 10 * 2**20
        smaller = mini_plan.with_gpu_bytes_freed(nbytes)
        assert smaller.gpu_weight_bytes <= mini_plan.gpu_weight_bytes - nbytes
        # The pristine plan is untouched (masks were copied)...
        assert mini_plan.with_gpu_bytes_freed(0) is mini_plan
        assert mini_plan.gpu_weight_bytes > smaller.gpu_weight_bytes
        # ...and demotion is idempotent in the masks' dtype/shape.
        for a, b in zip(smaller.mlp_gpu_masks, mini_plan.mlp_gpu_masks):
            assert a.shape == b.shape
            assert a.sum() <= b.sum()


class TestThroughputBrownout:
    FAULTS = FaultSchedule([throttle(0.0, 10.0, magnitude=4.0)])

    @staticmethod
    def peak_in_flight(report):
        events = []
        for m in report.completed:
            events.append((m.admit_time, 1))
            events.append((m.finish_time, -1))
        peak = in_flight = 0
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            in_flight += delta
            peak = max(peak, in_flight)
        return peak

    def test_batch_cap_engages_only_with_degradation(self, engine):
        kwargs = dict(
            max_batch=4, kv_budget_bytes=BUDGET, faults=self.FAULTS,
            degraded_max_batch=1,
        )
        naive = simulate_continuous_serving(
            engine, burst(4, gap=0.0), degradation=False, **kwargs
        )
        capped = simulate_continuous_serving(
            engine, burst(4, gap=0.0), degradation=True, **kwargs
        )
        assert self.peak_in_flight(naive) > 1
        assert self.peak_in_flight(capped) == 1
        assert capped.time_in_degraded_mode > 0.0
        assert capped.time_in_degraded_mode <= capped.makespan + 1e-9
        assert naive.time_in_degraded_mode == 0.0


class TestDeterminismAndRecovery:
    def test_same_fault_seed_reproduces_the_report(self, engine):
        reports = []
        for _ in range(2):
            faults = FaultSchedule.from_seed(3, horizon=0.5, n_events=3)
            reports.append(
                simulate_continuous_serving(
                    engine, burst(8), kv_budget_bytes=BUDGET, faults=faults,
                    deadline=5.0, max_retries=2,
                )
            )
        assert reports[0] == reports[1]

    def test_server_recovers_after_fault_window(self, engine):
        faults = FaultSchedule([throttle(0.0, 0.05, magnitude=8.0)])
        faulted = simulate_continuous_serving(
            engine, burst(6), kv_budget_bytes=BUDGET, faults=faults
        )
        clean = simulate_continuous_serving(
            engine, burst(6), kv_budget_bytes=BUDGET
        )
        # Everything completes once the window passes — slower overall,
        # but with no residual effect on correctness.
        assert faulted.n_requests == 6
        assert not faulted.failed and not faulted.timed_out
        assert faulted.makespan > clean.makespan
