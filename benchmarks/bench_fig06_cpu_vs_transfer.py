"""Figure 6 — Insight-2: direct CPU execution vs load-then-execute.

Paper: for batch sizes under 32, computing CPU-resident neurons in place
beats transferring them to the GPU, for both the MLP (10% of neurons) and
attention (60%) blocks of OPT-30B.
"""

from conftest import run_once

from repro.bench.fig06 import run_fig06


def test_fig06_direct_execute_wins_small_batch(benchmark, record_rows):
    rows = run_once(benchmark, run_fig06)
    record_rows("fig06_cpu_vs_transfer", rows, "Figure 6 — load-then-execute vs direct-execute")

    for row in rows:
        if row["batch"] < 32:
            assert row["cpu_wins"], f"CPU should win at batch {row['batch']}"
        if row["batch"] >= 64:
            assert not row["cpu_wins"], "GPU should win at large batch"
